//! Profile explorer: inspect what JITSPMM generates for a given column count
//! and ISA tier — the register-allocation plan, the instruction listing
//! (the runtime equivalent of Listing 2 in the paper), and the
//! hardware-event counts measured by the instruction-level emulator.
//!
//! Run with:
//! `cargo run -p jitspmm-examples --release --bin profile_explorer -- [d] [isa]`
//! where `isa` is one of `scalar`, `sse128`, `avx2`, `avx512`.

use jitspmm::profile::{self, measure_jit_emulated};
use jitspmm::{CpuFeatures, IsaLevel, JitSpmmBuilder, ScalarKind, Strategy};
use jitspmm_examples::require_jit_host;
use jitspmm_sparse::{generate, DenseMatrix};

fn parse_args() -> (usize, Option<IsaLevel>) {
    let args: Vec<String> = std::env::args().collect();
    let d = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(45);
    let isa = args.get(2).map(|v| match v.as_str() {
        "scalar" => IsaLevel::Scalar,
        "sse128" => IsaLevel::Sse128,
        "avx2" => IsaLevel::Avx2,
        "avx512" => IsaLevel::Avx512,
        other => {
            eprintln!("unknown ISA tier {other}; using the best available");
            CpuFeatures::detect().best_isa()
        }
    });
    (d, isa)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    require_jit_host();
    let (d, isa) = parse_args();
    let isa = isa.unwrap_or_else(|| CpuFeatures::detect().best_isa());
    println!("JITSPMM profile explorer: d = {d}, ISA tier = {isa}\n");

    let matrix = generate::rmat::<f32>(11, 30_000, generate::RmatConfig::WEB, 23);
    let engine = JitSpmmBuilder::new()
        .strategy(Strategy::RowSplitStatic)
        .isa(isa)
        .threads(1)
        .listing(true)
        .build(&matrix, d)?;
    let meta = engine.meta();

    println!("register-allocation plan (coarse-grain column merging):");
    println!("  {}", meta.register_plan);
    println!("  {} pass(es) over each row's non-zero list", meta.nnz_passes);
    println!("  {} bytes of machine code, generated in {:?}\n", meta.code_bytes, meta.codegen_time);

    println!("generated instruction listing (first 60 instructions):");
    if let Some(listing) = engine.kernel().listing() {
        for (offset, text) in listing.iter().take(60) {
            println!("  {offset:>5x}:  {text}");
        }
        if listing.len() > 60 {
            println!("  ... {} more instructions", listing.len() - 60);
        }
    }

    println!("\nhardware-event counts (emulated single-thread execution):");
    let x = DenseMatrix::random(matrix.ncols(), d, 1);
    let mut y = DenseMatrix::zeros(matrix.nrows(), d);
    let measured = measure_jit_emulated(&engine, &x, &mut y)?;
    assert!(y.approx_eq(&matrix.spmm_reference(&x), 1e-3));
    println!(
        "  instructions {:>12}\n  memory loads {:>12}\n  memory stores {:>11}\n  branches {:>16}\n  branch misses {:>11}",
        measured.instructions,
        measured.memory_loads,
        measured.memory_stores,
        measured.branches,
        measured.branch_misses
    );

    println!("\nanalytic AOT models for the same problem (for comparison):");
    let lanes = profile::lanes_for(isa, ScalarKind::F32);
    let aot = profile::model_aot_vectorized(&matrix, d, lanes);
    let mkl = profile::model_mkl_like(&matrix, d, lanes);
    println!("  auto-vectorized: {} instructions, {} loads", aot.instructions, aot.memory_loads);
    println!("  MKL-like:        {} instructions, {} loads", mkl.instructions, mkl.memory_loads);
    Ok(())
}
