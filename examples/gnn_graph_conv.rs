//! Graph-convolution feature propagation — the GNN workload that motivates
//! the paper's introduction (§I).
//!
//! A two-layer graph convolution computes `H' = σ(Â · H · W)` per layer,
//! where `Â` is the degree-normalized adjacency matrix, `H` the node
//! features and `W` a small dense weight matrix. The expensive step is the
//! sparse-times-tall-skinny-dense product `Â · H`, which this example runs
//! through the JIT SpMM engine (one engine per layer, compiled once and
//! reused across epochs).
//!
//! Run with: `cargo run -p jitspmm-examples --release --bin gnn_graph_conv`

use jitspmm::{JitSpmmBuilder, Strategy};
use jitspmm_examples::{dense_matmul, require_jit_host};
use jitspmm_sparse::{generate, CooMatrix, CsrMatrix, DenseMatrix};
use std::time::Instant;

/// Symmetrically normalize an adjacency matrix: `Â = D^-1/2 (A + I) D^-1/2`.
fn normalize_adjacency(a: &CsrMatrix<f32>) -> CsrMatrix<f32> {
    let n = a.nrows();
    let mut coo = CooMatrix::with_capacity(n, n, a.nnz() + n);
    for (r, c, v) in a.iter() {
        coo.push(r, c, v.abs());
    }
    for i in 0..n {
        coo.push(i, i, 1.0);
    }
    let with_self_loops = coo.to_csr();
    let degrees: Vec<f32> =
        (0..n).map(|i| with_self_loops.row_values(i).iter().sum::<f32>()).collect();
    let mut normalized = CooMatrix::with_capacity(n, n, with_self_loops.nnz());
    for (r, c, v) in with_self_loops.iter() {
        let scale = 1.0 / (degrees[r].sqrt() * degrees[c].sqrt());
        normalized.push(r, c, v * scale);
    }
    normalized.to_csr()
}

fn relu(values: &mut [f32]) {
    for v in values {
        *v = v.max(0.0);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    require_jit_host();

    // A scaled-down social graph plus random node features.
    let raw = generate::rmat::<f32>(14, 500_000, generate::RmatConfig::GRAPH500, 3);
    let adj = normalize_adjacency(&raw);
    let n = adj.nrows();
    let (f_in, f_hidden, f_out) = (32usize, 16usize, 8usize);
    println!(
        "graph: {} nodes, {} edges; features {} -> {} -> {}",
        n,
        adj.nnz(),
        f_in,
        f_hidden,
        f_out
    );

    // Random dense weights for the two layers.
    let w1 = DenseMatrix::<f32>::random(f_in, f_hidden, 11);
    let w2 = DenseMatrix::<f32>::random(f_hidden, f_out, 12);
    let features = DenseMatrix::<f32>::random(n, f_in, 13);

    // One JIT engine per layer width, compiled once.
    let engine_l1 =
        JitSpmmBuilder::new().strategy(Strategy::row_split_dynamic_default()).build(&adj, f_in)?;
    let engine_l2 = JitSpmmBuilder::new()
        .strategy(Strategy::row_split_dynamic_default())
        .build(&adj, f_hidden)?;
    println!(
        "layer kernels: {} and {} bytes, codegen {:?} and {:?}",
        engine_l1.meta().code_bytes,
        engine_l2.meta().code_bytes,
        engine_l1.meta().codegen_time,
        engine_l2.meta().codegen_time
    );

    let start = Instant::now();
    // Layer 1: aggregate neighbours, then transform and apply ReLU.
    let (aggregated, _) = engine_l1.execute(&features)?;
    let mut hidden = dense_matmul(aggregated.as_slice(), n, f_in, w1.as_slice(), f_hidden);
    relu(&mut hidden);
    let hidden = DenseMatrix::from_vec(n, f_hidden, hidden);

    // Layer 2.
    let (aggregated2, _) = engine_l2.execute(&hidden)?;
    let output = dense_matmul(aggregated2.as_slice(), n, f_hidden, w2.as_slice(), f_out);
    let elapsed = start.elapsed();

    // Sanity: compare the layer-1 aggregation against the reference SpMM.
    let reference = adj.spmm_reference(&features);
    assert!(aggregated.approx_eq(&reference, 1e-3), "layer-1 aggregation mismatch");

    let checksum: f32 = output.iter().sum();
    println!("two-layer graph convolution finished in {elapsed:?} (output checksum {checksum:.3})");
    Ok(())
}
