//! Shared helpers for the example binaries.
//!
//! Each example is a standalone binary exercising the public JITSPMM API on a
//! realistic scenario:
//!
//! * `quickstart` — minimal compile-and-execute walk-through,
//! * `gnn_graph_conv` — graph-convolution feature propagation (the workload
//!   that motivates the paper's introduction),
//! * `pagerank` — PageRank power iteration driven by the JIT SpMM engine,
//! * `profile_explorer` — inspects the generated code, the register plan and
//!   the emulated hardware-event counts for a chosen configuration.

use jitspmm::CpuFeatures;

/// Exit early (successfully) when the host cannot run the JIT kernels, so
/// the examples remain runnable everywhere.
pub fn require_jit_host() {
    let features = CpuFeatures::detect();
    if !(features.avx && features.has_fma()) {
        eprintln!("This example needs a CPU with AVX and FMA; detected: {features}");
        std::process::exit(0);
    }
}

/// Simple dense matrix multiply `A (n x k) * B (k x m)` used by the GNN
/// example for the feature-transform step (this is deliberately plain Rust —
/// the paper's contribution is the sparse side).
pub fn dense_matmul(a: &[f32], n: usize, k: usize, b: &[f32], m: usize) -> Vec<f32> {
    assert_eq!(a.len(), n * k);
    assert_eq!(b.len(), k * m);
    let mut out = vec![0.0f32; n * m];
    for i in 0..n {
        for kk in 0..k {
            let aik = a[i * k + kk];
            for j in 0..m {
                out[i * m + j] += aik * b[kk * m + j];
            }
        }
    }
    out
}
