//! Quick start: compile a JIT SpMM kernel for a random power-law matrix and
//! compare it against the textbook reference and the execution-time of the
//! auto-vectorized baseline.
//!
//! Run with: `cargo run -p jitspmm-examples --release --bin quickstart`

use jitspmm::baseline::vectorized::spmm_vectorized;
use jitspmm::serve::{AdmissionPolicy, ServeOptions, ServerRequest, SpmmServer};
use jitspmm::{JitSpmmBuilder, MutableSpmm, Strategy, WorkerPool};
use jitspmm_examples::require_jit_host;
use jitspmm_sparse::{generate, DeltaBatch, DenseMatrix};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    require_jit_host();

    // 1. Build a sparse matrix (a social-network-like RMAT graph) and a
    //    dense feature matrix with 16 columns.
    let a = generate::rmat::<f32>(15, 1_000_000, generate::RmatConfig::GRAPH500, 42);
    let d = 16;
    let x = DenseMatrix::random(a.ncols(), d, 7);
    println!("sparse matrix: {} x {}, {} non-zeros", a.nrows(), a.ncols(), a.nnz());

    // 2. Compile a kernel specialized to this matrix, d, and the host CPU.
    let engine =
        JitSpmmBuilder::new().strategy(Strategy::row_split_dynamic_default()).build(&a, d)?;
    let meta = engine.meta();
    println!(
        "generated {} bytes of {} code in {:?} (register plan: {})",
        meta.code_bytes, meta.isa, meta.codegen_time, meta.register_plan
    );

    // 3. Execute it. Execution dispatches to a persistent worker pool (no
    //    threads are spawned per call) and the output buffer is recycled
    //    across calls, so steady-state latency tracks kernel time.
    let (y, report) = engine.execute(&x)?;
    println!(
        "JIT SpMM: {:?} on {} lanes ({:?} kernel + {:?} pool dispatch)",
        report.elapsed, report.threads, report.kernel, report.dispatch
    );
    drop(y);
    let (y, steady) = engine.execute(&x)?; // reuses the buffer just dropped
    println!("steady-state repeat: {:?} (zero spawns, zero allocations)", steady.elapsed);

    // 4. Cross-check against the reference implementation and time the AOT
    //    baseline for comparison.
    let reference = a.spmm_reference(&x);
    assert!(y.approx_eq(&reference, 1e-4), "JIT result disagrees with the reference");
    println!("result verified against the reference implementation");

    let mut y_aot = DenseMatrix::zeros(a.nrows(), d);
    let start = Instant::now();
    spmm_vectorized(&a, &x, &mut y_aot, Strategy::row_split_dynamic_default(), 0);
    let aot_time = start.elapsed();
    // Compare against the steady-state JIT time: the first call paid the
    // one-time pool wake-up that repeated execution does not.
    println!(
        "auto-vectorized AOT baseline: {:?} ({:.2}x slower than JIT)",
        aot_time,
        aot_time.as_secs_f64() / steady.elapsed.as_secs_f64()
    );

    // 5. Overlap two engines with asynchronous execution: inside a pool
    //    scope (which joins every launch before it returns, so the borrowed
    //    inputs stay safe), each launch is lane-capped to its engine's
    //    thread count and both kernels run concurrently on disjoint subsets
    //    of one shared pool instead of serializing — the shape of a server
    //    juggling several compiled models at once.
    let pool = WorkerPool::new(2);
    let b = generate::rmat::<f32>(13, 250_000, generate::RmatConfig::WEB, 43);
    let xb = DenseMatrix::random(b.ncols(), d, 8);
    let eng_a = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, d)?;
    let eng_b = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, d)?;
    let start = Instant::now();
    let (ya, report_a, yb, report_b) = pool.scope(|scope| -> Result<_, jitspmm::JitSpmmError> {
        let ha = eng_a.execute_async(scope, &x)?; // returns immediately; job in flight
        let hb = eng_b.execute_async(scope, &xb)?; // second job overlaps the first
        let (ya, report_a) = ha.wait();
        let (yb, report_b) = hb.wait();
        Ok((ya, report_a, yb, report_b))
    })?;
    println!(
        "overlapped engines: both done in {:?} (kernels {:?} + {:?})",
        start.elapsed(),
        report_a.kernel,
        report_b.kernel
    );
    assert!(ya.approx_eq(&reference, 1e-4));
    assert!(yb.approx_eq(&b.spmm_reference(&xb), 1e-4));
    drop((ya, yb));

    // 6. Batched serving: stream many dense inputs through one compiled
    //    kernel with `execute_batch`. The pipeline validates once up front,
    //    keeps the next launch queued while the current one runs (on hosts
    //    with real parallelism), and reports tail latency (p50/p99), the
    //    numbers a serving system actually answers for.
    let inputs: Vec<DenseMatrix<f32>> =
        (0..8).map(|seed| DenseMatrix::random(b.ncols(), d, 100 + seed)).collect();
    let batch_engine = JitSpmmBuilder::new().build(&b, d)?;
    let (outputs, batch) =
        batch_engine.pool().scope(|scope| batch_engine.execute_batch(scope, &inputs))?;
    println!(
        "batched serving: {} inputs in {:?} ({:.0} inputs/s, kernel p50 {:?} / p99 {:?}, \
         pipeline depth {})",
        batch.inputs,
        batch.elapsed,
        batch.throughput(),
        batch.kernel_p50,
        batch.kernel_p99,
        batch.depth
    );
    for (x, y) in inputs.iter().zip(&outputs) {
        assert!(y.approx_eq(&b.spmm_reference(x), 1e-4));
    }
    println!("all {} batched results verified", outputs.len());
    drop(outputs);

    // 7. Mixed-stream serving: route one stream of engine-tagged requests
    //    across several compiled engines sharing a pool. A producer thread
    //    feeds a bounded queue (backpressure, owned inputs — no borrows tie
    //    it to the serving scope); the server validates each request, routes
    //    it to its engine's pipeline on disjoint lane-capped workers, and
    //    reports per-engine tail latency plus whole-server throughput.
    let serve_pool = WorkerPool::new(2);
    let small_a = generate::rmat::<f32>(11, 40_000, generate::RmatConfig::GRAPH500, 44);
    let small_b = generate::uniform::<f32>(1_500, 1_200, 25_000, 45);
    let server = SpmmServer::new(vec![
        JitSpmmBuilder::new().pool(serve_pool.clone()).threads(1).build(&small_a, 16)?,
        JitSpmmBuilder::new().pool(serve_pool.clone()).threads(1).build(&small_b, 8)?,
    ])?;
    let cols = (small_a.ncols(), small_b.ncols());
    let (responses, report, sent) = server.serve_stream(0, 4, move |sender| {
        let mut sent = 0usize;
        for i in 0..10u64 {
            let engine = (i % 2) as usize;
            let input = if engine == 0 {
                DenseMatrix::random(cols.0, 16, 200 + i)
            } else {
                DenseMatrix::random(cols.1, 8, 300 + i)
            };
            if sender.send(engine, input).is_ok() {
                sent += 1;
            }
        }
        sent
    })?;
    println!(
        "mixed serving: {} of {sent} requests over {} engines in {:?} ({:.0} req/s; \
         kernel p99 per engine: {:?} / {:?})",
        report.requests,
        report.per_engine.len(),
        report.elapsed,
        report.throughput(),
        report.per_engine[0].kernel_p99,
        report.per_engine[1].kernel_p99,
    );
    for r in &responses {
        let m = server.single(r.engine()).expect("both engines are single").matrix();
        assert_eq!(r.output().nrows(), m.nrows());
    }
    println!("all {} routed responses verified for shape and order", responses.len());

    // 8. Sharded execution: split a huge matrix into nnz-balanced row
    //    shards, compile one engine per shard — each with a strategy picked
    //    for its *local* sparsity — and execute them as overlapped
    //    lane-capped launches, every shard kernel writing directly into its
    //    row range of one pooled output. Results are bit-identical to the
    //    single-engine path; the report shows the achieved balance and the
    //    per-shard tails.
    let shard_pool = WorkerPool::new(2);
    let plan = jitspmm::shard::plan_shards(&a, 2, 1)?;
    println!(
        "shard plan: {} shards, nnz imbalance {:.3}, strategies [{}]",
        plan.len(),
        plan.nnz_imbalance(),
        plan.shards().iter().map(|s| s.strategy.to_string()).collect::<Vec<_>>().join(", ")
    );
    let sharded = jitspmm::shard::ShardedSpmm::compile(&plan, d, shard_pool.clone())?;
    let (y_sharded, shard_report) = shard_pool.scope(|scope| sharded.execute(scope, &x))?;
    println!(
        "sharded SpMM: {:?} across {} shards (merged kernel {:?}; slowest shard p99 {:?})",
        shard_report.elapsed(),
        shard_report.shards,
        shard_report.merged.kernel_total,
        shard_report.per_shard.iter().map(|r| r.kernel_p99).max().unwrap_or_default()
    );
    assert!(y_sharded.approx_eq(&reference, 1e-4), "sharded result disagrees with the reference");
    println!("sharded result verified against the reference implementation");

    // 9. The serving control plane: flood the server with far more requests
    //    than its queue admits, under a *shedding* policy — overflow comes
    //    back to the producer immediately as a typed rejection instead of
    //    blocking it — with priorities deciding who goes first and deadlines
    //    shedding requests whose answers would arrive too late. Every
    //    admitted request is answered (completed, rejected or failed — never
    //    silently dropped), and the report separates goodput from offered
    //    load.
    let options = ServeOptions::new(AdmissionPolicy::shedding(4));
    let cols = (small_a.ncols(), small_b.ncols());
    let (ctrl_report, offered) = server.serve_controlled(
        options,
        move |sender| {
            let mut offered = 0usize;
            for i in 0..40u64 {
                let engine = (i % 2) as usize;
                let input = if engine == 0 {
                    DenseMatrix::random(cols.0, 16, 400 + i)
                } else {
                    DenseMatrix::random(cols.1, 8, 500 + i)
                };
                let request = ServerRequest::new(engine, input)
                    .with_priority((i % 3) as u8) // urgent traffic jumps the line
                    .with_deadline(Duration::from_secs(30));
                offered += 1;
                // A shedding queue never blocks: overflow is a typed error.
                let _ = sender.send_request(request);
            }
            offered
        },
        |response| {
            // Completions carry outputs; rejections say exactly why.
            debug_assert!(response.is_completed() || response.rejection().is_some());
        },
    )?;
    println!(
        "controlled serving: {} completed of {offered} offered ({} shed by admission, \
         {} past deadline; shed rate {:.0}%)",
        ctrl_report.requests,
        ctrl_report.rejected,
        ctrl_report.shed_deadline,
        ctrl_report.shed_rate() * 100.0
    );
    assert_eq!(ctrl_report.offered(), offered, "every offered request is accounted for");

    // 10. Retire an engine and drain: the control plane stops admission for
    //     it, lets in-flight work finish, and the drain barrier waits until
    //     every admitted request has been answered — the shape of a rolling
    //     restart.
    server.retire_engine(1);
    server.control().drain();
    server.control().resume(); // the barrier passed; admit traffic again
    println!(
        "engine 1 retired ({:?}); server drained and still serving engine 0",
        server.engine_status(1).unwrap()
    );
    let (responses, _, _) = server.serve_stream(0, 4, move |sender| {
        sender.send(0, DenseMatrix::random(cols.0, 16, 999)).expect("engine 0 still serves");
    })?;
    assert_eq!(responses.len(), 1);
    println!("post-retirement request on engine 0 verified");

    // 11. Mutate a served matrix live: register a *mutable* engine, serve
    //     requests against it, and apply an edge-delta batch mid-session
    //     through the control handle. The serving loop drains the engine's
    //     in-flight lane, recompiles only the shards the delta touches
    //     (untouched shards keep their compiled kernels pointer-identically),
    //     and swaps generations between launches — requests admitted after
    //     the revision bump see the new matrix, bit-identical to a
    //     from-scratch compile.
    let graph = generate::uniform::<f32>(2_000, 2_000, 30_000, 46);
    let update_pool = WorkerPool::new(2);
    let mutable_server: SpmmServer<'_, f32> = SpmmServer::with_pool(update_pool.clone());
    let engine_id =
        mutable_server.add_mutable(MutableSpmm::compile(&graph, 2, 1, 8, update_pool.clone())?)?;
    let control = mutable_server.control();
    let mut delta = DeltaBatch::new();
    for k in 0..64usize {
        delta.upsert(k * 31 % 2_000, k * 17 % 2_000, 0.5 + k as f32 * 0.01);
    }
    let producer_control = control.clone();
    let (update_report, ()) = mutable_server.serve_controlled(
        ServeOptions::new(AdmissionPolicy::blocking(4)),
        move |sender| {
            // A request against the revision-0 matrix...
            let x = DenseMatrix::random(2_000, 8, 600);
            sender.send_request(ServerRequest::new(engine_id, x)).unwrap();
            // ...then the live update: the loop applies it between launches.
            producer_control.apply_update(engine_id, delta);
            assert!(producer_control.wait_revision(engine_id, 1, Duration::from_secs(10)));
            // ...and a request that sees the updated matrix.
            let x = DenseMatrix::random(2_000, 8, 601);
            sender.send_request(ServerRequest::new(engine_id, x)).unwrap();
        },
        |response| assert!(response.is_completed()),
    )?;
    let mutable = mutable_server.mutable(engine_id).expect("registered above");
    println!(
        "live update: {} requests served across revisions 0..={} \
         ({} shards, nnz now {}; updates applied={} failed={})",
        update_report.requests,
        mutable.revision(),
        mutable.shards(),
        mutable.nnz(),
        control.update_counts().0,
        control.update_counts().1,
    );
    assert_eq!(update_report.requests, 2);
    assert_eq!(mutable.revision(), 1);
    Ok(())
}
