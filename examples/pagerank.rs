//! PageRank power iteration driven by the JIT SpMM engine (§I lists PageRank
//! as a classic SpMM consumer).
//!
//! Each iteration computes `r' = (1 - damping)/n + damping * Aᵀ_norm · r`.
//! The rank vector is a dense matrix with a single column, i.e. the `d = 1`
//! corner case of the JIT kernel (one scalar accumulator register).
//!
//! Run with: `cargo run -p jitspmm-examples --release --bin pagerank`

use jitspmm::{JitSpmmBuilder, Strategy};
use jitspmm_examples::require_jit_host;
use jitspmm_sparse::{generate, CooMatrix, CsrMatrix, DenseMatrix};

/// Column-normalize the adjacency matrix and transpose it, producing the
/// matrix whose SpMV redistributes rank along out-edges.
fn transition_matrix(a: &CsrMatrix<f32>) -> CsrMatrix<f32> {
    let n = a.nrows();
    // Out-degree of every vertex (row sums of the 0/1 adjacency).
    let out_degree: Vec<f32> = (0..n).map(|i| a.row_nnz(i) as f32).collect();
    let mut coo = CooMatrix::with_capacity(n, n, a.nnz());
    for (r, c, _) in a.iter() {
        coo.push(c, r, 1.0 / out_degree[r].max(1.0));
    }
    coo.to_csr()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    require_jit_host();

    let graph = generate::rmat::<f32>(15, 800_000, generate::RmatConfig::WEB, 17);
    let n = graph.nrows();
    let transition = transition_matrix(&graph);
    println!("graph: {} vertices, {} edges", n, graph.nnz());

    let damping = 0.85f32;
    let engine = JitSpmmBuilder::new().strategy(Strategy::NnzSplit).build(&transition, 1)?;
    println!(
        "rank-propagation kernel: {} bytes ({}, plan {})",
        engine.meta().code_bytes,
        engine.meta().isa,
        engine.meta().register_plan
    );

    let mut rank = DenseMatrix::<f32>::filled(n, 1, 1.0 / n as f32);
    let mut iterations = 0;
    let start = std::time::Instant::now();
    loop {
        let (propagated, _) = engine.execute(&rank)?;
        let mut next = DenseMatrix::<f32>::zeros(n, 1);
        let teleport = (1.0 - damping) / n as f32;
        let mut delta = 0.0f32;
        for i in 0..n {
            let v = teleport + damping * propagated.get(i, 0);
            delta += (v - rank.get(i, 0)).abs();
            next.set(i, 0, v);
        }
        rank = next;
        iterations += 1;
        if delta < 1e-6 || iterations >= 100 {
            println!("converged after {iterations} iterations (delta = {delta:.2e})");
            break;
        }
    }
    println!("power iteration took {:?}", start.elapsed());

    // Report the top-ranked vertices.
    let mut indexed: Vec<(usize, f32)> = (0..n).map(|i| (i, rank.get(i, 0))).collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top 5 vertices by PageRank:");
    for (vertex, score) in indexed.iter().take(5) {
        println!("  vertex {vertex:>8}  score {score:.6}");
    }
    let total: f32 = rank.as_slice().iter().sum();
    println!("rank mass (should be ~1.0): {total:.6}");
    Ok(())
}
