//! The [`JitSpmm`] engine: compile once, execute many times.
//!
//! The engine is layered into one module per concern, bottom-up:
//!
//! | module | layer |
//! |---|---|
//! | `options` | configuration: [`SpmmOptions`], [`JitSpmmBuilder`] |
//! | `compile` | [`JitSpmm`] construction: codegen, partitioning, spare slot kernels |
//! | `launch` | single launches: `execute*`, `execute_async`, [`ExecutionHandle`], the launch lock |
//! | `batch` | the pipelined stream: `execute_batch`, [`BatchStream`], owned-input slots |
//! | `report` | timing aggregation: [`ExecutionReport`], [`BatchReport`], reservoir percentiles |
//! | `tier` | adaptive tiering: [`TierPolicy`], warmup observation, background recompile, hot-swap |
//!
//! Everything public is re-exported here, so the paths callers use
//! (`jitspmm::engine::JitSpmm`, `jitspmm::BatchStream`, …) are unchanged
//! from when the engine was a single file. The multi-engine serving router
//! in [`crate::serve`] builds on the launch and batch layers.

mod batch;
mod compile;
mod launch;
mod options;
mod report;
pub mod tier;

#[cfg(test)]
mod batch_tests;
#[cfg(test)]
mod launch_tests;

pub use batch::{BatchStream, DEFAULT_BATCH_DEPTH};
pub use compile::{JitSpmm, KernelRef};
pub use launch::ExecutionHandle;
pub use options::{JitSpmmBuilder, SpmmOptions};
pub use report::{BatchReport, ExecutionReport};
pub use tier::{KernelTier, TierPolicy};

pub(crate) use report::BatchStats;
pub(crate) use tier::TierAction;
