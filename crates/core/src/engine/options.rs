//! Engine configuration: [`SpmmOptions`] and the [`JitSpmmBuilder`].

use super::compile::JitSpmm;
use super::tier::TierPolicy;
use crate::cache::KernelCache;
use crate::error::JitSpmmError;
use crate::runtime::WorkerPool;
use crate::schedule::Strategy;
use jitspmm_asm::IsaLevel;
use jitspmm_sparse::{CsrMatrix, Scalar};
use std::sync::Arc;

/// Configuration of a [`JitSpmm`] engine.
#[derive(Debug, Clone)]
pub struct SpmmOptions {
    /// Workload-division strategy (default: dynamic row-split with the
    /// paper's batch size of 128).
    pub strategy: Strategy,
    /// ISA tier to generate code for; `None` selects the best tier the host
    /// supports.
    pub isa: Option<IsaLevel>,
    /// Number of worker lanes; `0` uses one lane per pool worker.
    pub threads: usize,
    /// Whether to apply coarse-grain column merging (always on in the paper;
    /// disable only for the ablation experiment).
    pub ccm: bool,
    /// Record an instruction listing alongside the generated code.
    pub listing: bool,
    /// Adaptive tiering: `Some` starts the engine on a cheap scalar tier-0
    /// kernel and hot-swaps to the configuration above once observed
    /// launches justify the recompile (see [`crate::engine::tier`]); `None`
    /// (the default) compiles the requested configuration up front.
    pub tier: Option<TierPolicy>,
    /// NUMA node this engine's launches prefer ([`crate::NumaTopology`]
    /// node id). A **soft** placement hint: on a multi-node host, pool
    /// workers pinned to this node claim the engine's jobs first, keeping
    /// the kernel's matrix traffic on local memory; workers on other nodes
    /// still pick the jobs up rather than idle. `None` (the default) lets
    /// any worker claim, and on single-node hosts the hint is ignored
    /// entirely.
    pub numa_node: Option<usize>,
    /// Persistent kernel cache: compiled kernels (and tier-promotion
    /// outcomes) are stored here and reloaded by later processes, skipping
    /// code generation — and, for tiered engines, the whole tier-0 warmup
    /// phase — on a hit. `None` (the default) compiles fresh every time.
    /// Ignored while `listing` is set, since listings only exist on the
    /// codegen path.
    pub kernel_cache: Option<Arc<KernelCache>>,
}

impl Default for SpmmOptions {
    fn default() -> SpmmOptions {
        SpmmOptions {
            strategy: Strategy::row_split_dynamic_default(),
            isa: None,
            threads: 0,
            ccm: true,
            listing: false,
            tier: None,
            numa_node: None,
            kernel_cache: None,
        }
    }
}

impl PartialEq for SpmmOptions {
    fn eq(&self, other: &SpmmOptions) -> bool {
        let cache_eq = match (&self.kernel_cache, &other.kernel_cache) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        };
        cache_eq
            && self.strategy == other.strategy
            && self.isa == other.isa
            && self.threads == other.threads
            && self.ccm == other.ccm
            && self.listing == other.listing
            && self.tier == other.tier
            && self.numa_node == other.numa_node
    }
}

/// Builder for [`JitSpmm`].
///
/// # Example
///
/// ```
/// use jitspmm::{JitSpmmBuilder, Strategy};
/// use jitspmm_sparse::{generate, DenseMatrix};
///
/// # fn main() -> Result<(), jitspmm::JitSpmmError> {
/// let a = generate::uniform::<f32>(100, 100, 500, 1);
/// let x = DenseMatrix::random(100, 16, 2);
/// let engine = JitSpmmBuilder::new()
///     .strategy(Strategy::NnzSplit)
///     .threads(2)
///     .build(&a, x.ncols())?;
/// let (y, _report) = engine.execute(&x)?;
/// assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct JitSpmmBuilder {
    options: SpmmOptions,
    pool: Option<WorkerPool>,
}

impl JitSpmmBuilder {
    /// Start a builder with the default options.
    pub fn new() -> JitSpmmBuilder {
        JitSpmmBuilder::default()
    }

    /// Select the workload-division strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.options.strategy = strategy;
        self
    }

    /// Pin the ISA tier instead of auto-detecting.
    pub fn isa(mut self, isa: IsaLevel) -> Self {
        self.options.isa = Some(isa);
        self
    }

    /// Set the number of worker lanes (`0` = one per pool worker).
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Enable or disable coarse-grain column merging.
    pub fn ccm(mut self, ccm: bool) -> Self {
        self.options.ccm = ccm;
        self
    }

    /// Record a textual listing of the generated instructions.
    pub fn listing(mut self, listing: bool) -> Self {
        self.options.listing = listing;
        self
    }

    /// Compile adaptively: start on a cheap scalar tier-0 kernel and
    /// hot-swap to this builder's configuration once `policy` says observed
    /// launches justify the recompile. See [`crate::engine::tier`] for the
    /// promotion machinery and [`crate::serve::ServeOptions::tiering`] for
    /// the serving-session integration.
    pub fn tiered(mut self, policy: TierPolicy) -> Self {
        self.options.tier = Some(policy);
        self
    }

    /// Prefer scheduling this engine's launches on NUMA node `node` (see
    /// [`SpmmOptions::numa_node`]). A soft hint — work-conserving claiming
    /// means no worker ever idles to honor it — and a no-op on single-node
    /// hosts. The sharded engine ([`crate::ShardedSpmm`]) sets this
    /// automatically, spreading shards round-robin across detected nodes.
    pub fn numa_node(mut self, node: usize) -> Self {
        self.options.numa_node = Some(node);
        self
    }

    /// Persist compiled kernels in the cache directory `dir` and reload them
    /// on the next start instead of re-running code generation (see
    /// [`SpmmOptions::kernel_cache`] and [`crate::cache`] for the on-disk
    /// format). Opens an uncapped [`KernelCache`]; share a configured handle
    /// across engines with [`JitSpmmBuilder::kernel_cache_in`].
    pub fn kernel_cache(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.options.kernel_cache = Some(KernelCache::open(dir));
        self
    }

    /// Use an already-opened [`KernelCache`] (shared across engines and with
    /// [`crate::ShardedSpmm`], so hit statistics aggregate in one place).
    pub fn kernel_cache_in(mut self, cache: Arc<KernelCache>) -> Self {
        self.options.kernel_cache = Some(cache);
        self
    }

    /// Execute on `pool` instead of the process-wide default
    /// ([`WorkerPool::global`]). Any number of engines may share one pool;
    /// their executions are serialized per pool, never oversubscribing the
    /// machine.
    pub fn pool(mut self, pool: WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Compile a kernel for `matrix` and `d` dense columns.
    ///
    /// # Errors
    ///
    /// Fails if the host cannot execute the requested ISA tier, if `d` is
    /// zero, or if code generation fails.
    pub fn build<T: Scalar>(
        self,
        matrix: &CsrMatrix<T>,
        d: usize,
    ) -> Result<JitSpmm<'_, T>, JitSpmmError> {
        let pool = self.pool.unwrap_or_else(|| WorkerPool::global().clone());
        JitSpmm::compile_with_pool(matrix, d, self.options, pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitspmm_asm::CpuFeatures;
    use jitspmm_sparse::{generate, DenseMatrix};
    use std::time::Duration;

    fn host_ok() -> bool {
        let f = CpuFeatures::detect();
        f.avx && f.has_fma()
    }

    #[test]
    fn compile_rejects_zero_columns() {
        let a = generate::uniform::<f32>(10, 10, 20, 1);
        let err = JitSpmm::compile(&a, 0, SpmmOptions::default()).unwrap_err();
        assert!(matches!(err, JitSpmmError::EmptyDenseMatrix));
    }

    #[test]
    fn meta_reports_codegen_details() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(100, 100, 400, 2);
        let engine = JitSpmmBuilder::new().threads(1).listing(true).build(&a, 45).unwrap();
        let meta = engine.meta();
        assert_eq!(meta.d, 45);
        assert!(meta.code_bytes > 0);
        assert!(meta.codegen_time.as_nanos() > 0);
        assert!(!meta.register_plan.is_empty());
        assert!(engine.kernel().listing().is_some());
        assert!(engine.codegen_overhead_ratio(Duration::from_secs(1)) < 0.5);
    }

    #[test]
    fn explicit_pool_is_shared_across_engines() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let pool = WorkerPool::new(2);
        let a = generate::uniform::<f32>(100, 100, 800, 3);
        let b = generate::uniform::<f32>(80, 100, 500, 4);
        let x = DenseMatrix::random(100, 8, 5);
        let e1 = JitSpmmBuilder::new().pool(pool.clone()).build(&a, 8).unwrap();
        let e2 = JitSpmmBuilder::new().pool(pool.clone()).build(&b, 8).unwrap();
        assert_eq!(e1.pool().size(), 2);
        assert_eq!(e1.threads(), 2, "threads default to the pool size");
        let (ya, _) = e1.execute(&x).unwrap();
        let (yb, _) = e2.execute(&x).unwrap();
        assert!(ya.approx_eq(&a.spmm_reference(&x), 1e-4));
        assert!(yb.approx_eq(&b.spmm_reference(&x), 1e-4));
    }
}
