//! Engine construction: code generation, partitioning and the compiled
//! state a [`JitSpmm`] carries between launches.
//!
//! Since the adaptive-tiering work the compiled state lives in an
//! [`EngineCore`] behind an `Arc` swap point: every launch path snapshots
//! the active core under the launch lock, and the tier layer
//! ([`crate::engine::tier`]) can install a recompiled core between batches
//! without invalidating anything a running launch holds.

use crate::cache::key::CacheKey;
use crate::cache::{KernelCache, RelocTargets};
use crate::codegen::{
    generate_dynamic_kernel, generate_static_kernel, KernelOptions, MatrixBinding,
};
use crate::engine::options::SpmmOptions;
use crate::engine::tier::{KernelTier, TierState};
use crate::error::JitSpmmError;
use crate::kernel::{CompiledKernel, KernelKind, KernelMeta};
use crate::runtime::dispatch::BufferPool;
use crate::runtime::WorkerPool;
use crate::schedule::{partition, DynamicCounter, Partition, Strategy};
use crate::tiling::CcmPlan;
use jitspmm_asm::{CpuFeatures, IsaLevel};
use jitspmm_sparse::{CsrMatrix, DenseMatrix, Scalar};
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A JIT-compiled SpMM engine bound to one sparse matrix and one column
/// count.
///
/// Construction generates machine code specialized to the matrix (its array
/// base addresses are embedded in the instruction stream), the number of
/// dense columns `d`, the element type, the ISA tier and the workload
/// division strategy. The engine can then be executed repeatedly against
/// different dense inputs of shape `ncols x d`.
///
/// Execution runs on a persistent [`WorkerPool`] (the process-wide default
/// unless [`crate::JitSpmmBuilder::pool`] supplied one): no threads are
/// spawned per call, and [`JitSpmm::execute`] recycles output buffers, so
/// steady-state repeated execution performs no allocation at all.
///
/// Under a [`crate::TierPolicy`] ([`crate::JitSpmmBuilder::tiered`]) the
/// engine starts on a cheap scalar tier-0 kernel and hot-swaps to the
/// requested configuration once observed launches justify the recompile;
/// see [`crate::engine::tier`].
pub struct JitSpmm<'a, T: Scalar> {
    pub(super) matrix: &'a CsrMatrix<T>,
    pub(super) d: usize,
    /// The *requested* configuration. For a fixed engine this is also what
    /// compiled; for a tiered engine it is the promotion target while the
    /// active core starts at tier 0.
    pub(super) options: SpmmOptions,
    pub(super) threads: usize,
    /// Soft NUMA placement hint stamped on every job this engine submits
    /// (see [`SpmmOptions::numa_node`]); `None` = any worker.
    pub(super) node: Option<usize>,
    /// The compiled state launches run against. Swapped atomically (as an
    /// `Arc`) by the tier layer while the launch lock is held, so any
    /// snapshot taken under a [`crate::engine::launch::LaunchGuard`] stays
    /// coherent for that launch's whole lifetime.
    pub(super) active: Mutex<Arc<EngineCore<T>>>,
    /// Present only for tiered engines: warmup observations, the recompile
    /// state machine, and the promotion counter.
    pub(super) tier_state: Option<TierState<T>>,
    /// Serializes launches of this engine's kernel. The dynamic counter is
    /// shared mutable state embedded in the generated code, so two
    /// concurrent launches of one engine (possible from safe code — the
    /// engine is `Sync`) must not interleave a reset with a running claim
    /// loop. Holding it is also what makes a core snapshot stable: the tier
    /// layer only swaps `active` while holding this lock itself.
    pub(super) launch: Mutex<()>,
    /// The launch-thread token of the thread currently holding `launch`
    /// (0 = unheld); lets a same-thread re-entry fail fast instead of
    /// self-deadlocking (see the launch layer).
    pub(super) launch_owner: AtomicU64,
    pub(super) pool: WorkerPool,
    pub(super) output_pool: Arc<BufferPool<T>>,
}

/// One compiled configuration of an engine: the kernel, its metadata, the
/// partition and claim counter it launches with, and the per-slot spare
/// kernels batches compile against it. [`JitSpmm::active`] holds the
/// current one; a tier promotion builds a fresh core and swaps the `Arc`,
/// which also drops the old core's cached slot kernels — their embedded
/// counter addresses belong to the retired configuration.
pub(super) struct EngineCore<T: Scalar> {
    pub(super) kernel: CompiledKernel<T>,
    pub(super) meta: KernelMeta,
    pub(super) partition: Partition,
    pub(super) counter: Box<DynamicCounter>,
    /// The options this core's kernel was generated with, kept so the batch
    /// pipeline can compile spare slot kernels ([`SlotKernel`]) on demand.
    pub(super) kernel_options: KernelOptions,
    /// The workload-division strategy this core compiled (for a tier-0 core
    /// this differs from the engine's requested strategy).
    pub(super) strategy: Strategy,
    /// Which tier this core belongs to; stamped into batch reports.
    pub(super) tier: KernelTier,
    /// Lazily compiled spare kernels backing batch pipeline slots 1.. for
    /// dynamic-dispatch cores (see [`SlotKernel`]); cached per core so
    /// repeated [`JitSpmm::execute_batch`] calls pay codegen once, and
    /// discarded wholesale when the core is replaced.
    pub(super) batch_kernels: Mutex<Vec<Arc<SlotKernel<T>>>>,
}

impl<T: Scalar> std::fmt::Debug for JitSpmm<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let core = self.active();
        f.debug_struct("JitSpmm")
            .field("d", &self.d)
            .field("strategy", &core.strategy)
            .field("tier", &core.tier)
            .field("threads", &self.threads)
            .field("pool_workers", &self.pool.size())
            .field("code_bytes", &core.meta.code_bytes)
            .finish()
    }
}

impl<'a, T: Scalar> JitSpmm<'a, T> {
    /// Compile a kernel for `matrix` with `d` dense columns under `options`,
    /// executing on the process-wide default pool.
    ///
    /// # Errors
    ///
    /// See [`crate::JitSpmmBuilder::build`].
    pub fn compile(
        matrix: &'a CsrMatrix<T>,
        d: usize,
        options: SpmmOptions,
    ) -> Result<JitSpmm<'a, T>, JitSpmmError> {
        JitSpmm::compile_with_pool(matrix, d, options, WorkerPool::global().clone())
    }

    /// Compile a kernel as in [`JitSpmm::compile`], executing on `pool`.
    ///
    /// # Errors
    ///
    /// See [`crate::JitSpmmBuilder::build`].
    pub fn compile_with_pool(
        matrix: &'a CsrMatrix<T>,
        d: usize,
        options: SpmmOptions,
        pool: WorkerPool,
    ) -> Result<JitSpmm<'a, T>, JitSpmmError> {
        if d == 0 {
            return Err(JitSpmmError::EmptyDenseMatrix);
        }
        let features = CpuFeatures::detect();
        let isa = options.isa.unwrap_or_else(|| features.best_isa());
        let threads = pool.lanes_for(options.threads);
        // Listings only exist on the codegen path, so a listing engine
        // bypasses the cache entirely (it neither loads nor stores).
        let cache = if options.listing { None } else { options.kernel_cache.clone() };
        // A tiered engine compiles the cheapest safe configuration first —
        // scalar code, static row split — and keeps the requested one as the
        // promotion target; a fixed engine compiles the request directly.
        // With a cache, a tiered engine first consults the persisted
        // promotion record for its requested configuration: a hit means an
        // earlier process already profiled this exact workload, so the engine
        // warm-starts on the promoted configuration and skips tier-0 and the
        // warmup phase altogether.
        let mut promoted_plan: Option<(Strategy, KernelOptions)> = None;
        if options.tier.is_some() {
            if let Some(cache) = cache.as_ref() {
                let requested = KernelOptions { isa, ccm: options.ccm, features, listing: false };
                let key = CacheKey::for_kernel(matrix, d, options.strategy, &requested);
                if let Some(record) = cache.load_promotion(&key) {
                    let kernel_options = KernelOptions {
                        isa: record.isa,
                        ccm: record.ccm,
                        features,
                        listing: false,
                    };
                    // Feature bits are part of the key, so the record was
                    // written by a host with identical features; validate
                    // anyway — a failure just falls back to tier 0.
                    if crate::codegen::validate_options(&kernel_options).is_ok() {
                        promoted_plan = Some((record.strategy, kernel_options));
                    }
                }
            }
        }
        let (core_strategy, kernel_options, tier) = match (&options.tier, promoted_plan) {
            (Some(_), Some((strategy, kernel_options))) => {
                (strategy, kernel_options, KernelTier::Promoted)
            }
            (Some(_), None) => (
                Strategy::RowSplitStatic,
                KernelOptions {
                    isa: IsaLevel::Scalar,
                    ccm: options.ccm,
                    features,
                    listing: options.listing,
                },
                KernelTier::Tier0,
            ),
            (None, _) => (
                options.strategy,
                KernelOptions { isa, ccm: options.ccm, features, listing: options.listing },
                KernelTier::Fixed,
            ),
        };
        let core = JitSpmm::build_core(
            matrix,
            d,
            core_strategy,
            kernel_options,
            threads,
            tier,
            cache.as_deref(),
        )?;
        let tier_state = options.tier.map(|policy| {
            if tier == KernelTier::Promoted {
                TierState::warm_promoted(policy)
            } else {
                TierState::new(policy)
            }
        });
        let node = options.numa_node;
        Ok(JitSpmm {
            matrix,
            d,
            options,
            threads,
            node,
            active: Mutex::new(Arc::new(core)),
            tier_state,
            launch: Mutex::new(()),
            launch_owner: AtomicU64::new(0),
            pool,
            output_pool: Arc::new(BufferPool::new()),
        })
    }

    /// Generate, assemble and partition one complete engine configuration.
    /// Shared by initial compilation (tier 0, warm-started promoted, or
    /// fixed) and the tier layer's background promotion build.
    ///
    /// With a `cache`, the kernel image is first looked up on disk (a hit
    /// maps, patches and seals it — skipping code generation entirely) and
    /// stored after a fresh compile. Cache failures of any kind degrade to
    /// the fresh-compile path.
    pub(super) fn build_core(
        matrix: &CsrMatrix<T>,
        d: usize,
        strategy: Strategy,
        kernel_options: KernelOptions,
        threads: usize,
        tier: KernelTier,
        cache: Option<&KernelCache>,
    ) -> Result<EngineCore<T>, JitSpmmError> {
        crate::codegen::validate_options(&kernel_options)?;
        if let Strategy::RowSplitDynamic { batch: 0 } = strategy {
            return Err(JitSpmmError::InvalidConfig("dynamic batch size must be non-zero".into()));
        }
        let counter = Box::new(DynamicCounter::new());
        let binding = MatrixBinding::of(matrix);
        let kind = match strategy {
            Strategy::RowSplitDynamic { .. } => KernelKind::DynamicDispatch,
            _ => KernelKind::StaticRange,
        };
        // Listing engines bypass the cache: listings exist only on the
        // codegen path, and a cached image must not shadow them.
        let cache = if kernel_options.listing { None } else { cache };
        let key = cache.map(|_| CacheKey::for_kernel(matrix, d, strategy, &kernel_options));

        let start = Instant::now();
        if let (Some(cache), Some(key)) = (cache, key.as_ref()) {
            let targets = RelocTargets {
                row_ptr: binding.row_ptr as u64,
                col_indices: binding.col_indices as u64,
                values: binding.values as u64,
                next_counter: counter.as_ptr() as u64,
            };
            if let Some(buf) = cache.load_kernel(key, kind, &targets) {
                let load_time = start.elapsed();
                // The plan is a pure function of (d, isa, kind) — recompute
                // it instead of serializing it.
                let plan = CcmPlan::new(d, kernel_options.isa, T::KIND);
                let kernel = CompiledKernel::from_buffer(buf, kind);
                let meta = KernelMeta {
                    d,
                    kind: T::KIND,
                    isa: kernel_options.isa,
                    ccm: kernel_options.ccm,
                    strategy,
                    code_bytes: kernel.code().len(),
                    codegen_time: load_time,
                    register_plan: plan.describe(),
                    nnz_passes: plan.passes(),
                };
                let partition = partition(matrix, strategy, threads);
                return Ok(EngineCore {
                    kernel,
                    meta,
                    partition,
                    counter,
                    kernel_options,
                    strategy,
                    tier,
                    batch_kernels: Mutex::new(Vec::new()),
                });
            }
        }

        let generated = match strategy {
            Strategy::RowSplitDynamic { batch } => generate_dynamic_kernel(
                binding,
                d,
                T::KIND,
                batch,
                counter.as_ptr() as *const u8,
                &kernel_options,
            )?,
            _ => generate_static_kernel(binding, d, T::KIND, &kernel_options)?,
        };
        let kernel = CompiledKernel::new(&generated.code, kind, generated.listing)?;
        let codegen_time = start.elapsed();
        if let (Some(cache), Some(key)) = (cache, key.as_ref()) {
            cache.store_kernel(key, &generated.code, &generated.relocs, kind);
        }

        let meta = KernelMeta {
            d,
            kind: T::KIND,
            isa: kernel_options.isa,
            ccm: kernel_options.ccm,
            strategy,
            code_bytes: kernel.code().len(),
            codegen_time,
            register_plan: generated.plan.describe(),
            nnz_passes: generated.plan.passes(),
        };
        let partition = partition(matrix, strategy, threads);
        Ok(EngineCore {
            kernel,
            meta,
            partition,
            counter,
            kernel_options,
            strategy,
            tier,
            batch_kernels: Mutex::new(Vec::new()),
        })
    }

    /// Snapshot the active core. Stable for the lifetime of any launch that
    /// snapshotted it under the launch lock (swaps happen only while that
    /// lock is held by the swapper).
    pub(super) fn active(&self) -> Arc<EngineCore<T>> {
        Arc::clone(&crate::runtime::pool::lock(&self.active))
    }

    /// Build an engine for `matrix` that **shares the donor's compiled
    /// state**: the active [`EngineCore`] `Arc` (kernel, partition, claim
    /// counter, cached slot kernels) is cloned, not recompiled, so the new
    /// engine's core is pointer-identical to the donor's.
    ///
    /// This is the untouched-shard path of the incremental-update subsystem
    /// ([`crate::update`]): `matrix` must be **content-identical** to the
    /// donor's matrix (same row pointers, columns and values — e.g. a clone
    /// sharing the donor's nnz storage), and the donor — or whatever owns
    /// its matrix — must stay alive as long as the adopted engine may
    /// execute, because the shared kernel's embedded array base addresses
    /// point at the *donor's* buffers. The update layer guarantees both by
    /// retaining every superseded generation for the life of the mutable
    /// engine, and never launching two generations concurrently.
    ///
    /// A tiered donor's settled state carries over: a promoted (or
    /// warm-started) donor yields an engine that never re-enters warmup,
    /// while a donor still observing on tier 0 restarts its warmup window.
    pub(crate) fn adopt(donor: &JitSpmm<'_, T>, matrix: &'a CsrMatrix<T>) -> JitSpmm<'a, T> {
        debug_assert_eq!(matrix.row_ptr(), donor.matrix.row_ptr());
        debug_assert_eq!(matrix.nnz(), donor.matrix.nnz());
        let core = donor.active();
        let tier_state = donor.tier_state.as_ref().map(|state| match core.tier {
            KernelTier::Tier0 => TierState::new(state.policy),
            _ => TierState::warm_promoted(state.policy),
        });
        JitSpmm {
            matrix,
            d: donor.d,
            options: donor.options.clone(),
            threads: donor.threads,
            node: donor.node,
            active: Mutex::new(core),
            tier_state,
            launch: Mutex::new(()),
            launch_owner: AtomicU64::new(0),
            pool: donor.pool.clone(),
            output_pool: Arc::clone(&donor.output_pool),
        }
    }

    /// Probe the persistent kernel cache for the active core's stored image
    /// and discard the result. A hit both counts in [`crate::CacheStats`]
    /// and refreshes the entry's modification time, which is what the
    /// mtime-LRU eviction orders by — so the update layer calls this for
    /// every adopted (not recompiled) shard, keeping live shards' entries
    /// from aging out under entries of shards that actually recompiled.
    /// No-op without a cache.
    pub(crate) fn touch_cache_entry(&self) {
        let Some(cache) = self.options.kernel_cache.as_deref() else { return };
        if self.options.listing {
            return;
        }
        let core = self.active();
        let key = CacheKey::for_kernel(self.matrix, self.d, core.strategy, &core.kernel_options);
        let binding = MatrixBinding::of(self.matrix);
        let targets = RelocTargets {
            row_ptr: binding.row_ptr as u64,
            col_indices: binding.col_indices as u64,
            values: binding.values as u64,
            // The probed image is dropped unexecuted; any address patches
            // fine, and 0 avoids fabricating a counter.
            next_counter: 0,
        };
        drop(cache.load_kernel(&key, core.kernel.kind(), &targets));
    }

    /// An opaque identity for the currently active compiled core: two
    /// engines report the same value iff they share the same core (kernel,
    /// partition, claim counter) in memory. Diagnostic only — the
    /// incremental-update tests use it to assert untouched shards were
    /// adopted pointer-identically rather than recompiled.
    pub fn core_id(&self) -> usize {
        Arc::as_ptr(&self.active()) as usize
    }

    /// The sparse matrix this engine was compiled against.
    pub fn matrix(&self) -> &CsrMatrix<T> {
        self.matrix
    }

    /// The number of dense columns the kernel expects.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The number of worker lanes used by [`JitSpmm::execute`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The worker pool this engine executes on.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The NUMA node this engine's launches prefer, if one was configured
    /// (see [`SpmmOptions::numa_node`]).
    pub fn numa_node(&self) -> Option<usize> {
        self.node
    }

    /// Re-pin the soft NUMA placement hint after construction (see
    /// [`SpmmOptions::numa_node`]): subsequent launches prefer workers on
    /// `node`; `None` clears the hint. Servers that place engines by hand
    /// use this via [`crate::serve::SpmmServer::add_engine_on_node`], e.g.
    /// to land a warm-started engine on the node it was profiled on.
    pub fn place_on_node(&mut self, node: Option<usize>) {
        self.node = node;
    }

    /// The scheduling strategy of the currently active kernel; the serving
    /// layer stamps it into synthesized (zero-input) per-engine reports.
    pub(crate) fn strategy(&self) -> Strategy {
        self.active().strategy
    }

    /// Kernel metadata of the **currently active** core: code size, register
    /// plan, code-generation time. Returned by value — a tiered engine may
    /// hot-swap its core between calls, so the snapshot is the honest view.
    pub fn meta(&self) -> KernelMeta {
        self.active().meta.clone()
    }

    /// The compiled kernel (code bytes, listing) of the currently active
    /// core, behind a [`KernelRef`] guard that keeps the snapshot alive.
    pub fn kernel(&self) -> KernelRef<T> {
        KernelRef(self.active())
    }

    /// The static row partition the active core launches with (one range per
    /// lane; for the dynamic strategy this is only a fallback description).
    /// An owned snapshot, for the same hot-swap reason as [`JitSpmm::meta`].
    pub fn partition(&self) -> Partition {
        self.active().partition.clone()
    }

    /// The cached spare [`SlotKernel`]s for batch pipeline slots `1..=extra`
    /// of a dynamic-dispatch core, compiling any that do not exist yet.
    /// Static-range cores need none and get an empty list.
    pub(super) fn spare_slot_kernels(
        &self,
        core: &EngineCore<T>,
        extra: usize,
    ) -> Result<Vec<Arc<SlotKernel<T>>>, JitSpmmError> {
        if extra == 0 || core.kernel.kind() != KernelKind::DynamicDispatch {
            return Ok(Vec::new());
        }
        let Strategy::RowSplitDynamic { batch } = core.strategy else {
            unreachable!("dynamic kernels are only generated for dynamic row-split")
        };
        // Listings are a debugging aid of the primary kernel; spare copies
        // are byte-identical except for the counter address.
        let options = KernelOptions { listing: false, ..core.kernel_options };
        // Spare kernels differ from the primary only in their embedded
        // counter address — a relocation slot — so they share the primary's
        // cache entry: one stored image instantiates every pipeline slot.
        let disk = self.options.kernel_cache.as_deref();
        let key = disk.map(|_| CacheKey::for_kernel(self.matrix, self.d, core.strategy, &options));
        let binding = MatrixBinding::of(self.matrix);
        let mut slots = crate::runtime::pool::lock(&core.batch_kernels);
        while slots.len() < extra {
            let counter = Box::new(DynamicCounter::new());
            let cached = match (disk, key.as_ref()) {
                (Some(disk), Some(key)) => {
                    let targets = RelocTargets {
                        row_ptr: binding.row_ptr as u64,
                        col_indices: binding.col_indices as u64,
                        values: binding.values as u64,
                        next_counter: counter.as_ptr() as u64,
                    };
                    disk.load_kernel(key, KernelKind::DynamicDispatch, &targets)
                        .map(|buf| CompiledKernel::from_buffer(buf, KernelKind::DynamicDispatch))
                }
                _ => None,
            };
            let kernel = match cached {
                Some(kernel) => kernel,
                None => {
                    let generated = generate_dynamic_kernel(
                        binding,
                        self.d,
                        T::KIND,
                        batch,
                        counter.as_ptr() as *const u8,
                        &options,
                    )?;
                    if let (Some(disk), Some(key)) = (disk, key.as_ref()) {
                        disk.store_kernel(
                            key,
                            &generated.code,
                            &generated.relocs,
                            KernelKind::DynamicDispatch,
                        );
                    }
                    CompiledKernel::new(&generated.code, KernelKind::DynamicDispatch, None)?
                }
            };
            slots.push(Arc::new(SlotKernel { kernel, counter }));
        }
        Ok(slots.iter().take(extra).cloned().collect())
    }

    /// Grow the engine's retained output-buffer bound to `outstanding`, so a
    /// serving loop that holds that many of this engine's outputs at once
    /// recycles all of them instead of re-allocating every round. Same
    /// semantics as the batch path's internal reserve: the raised bound
    /// persists (it is a cache sized for the largest load served), bounded
    /// by the pool's hard count/byte ceilings.
    pub(crate) fn reserve_outputs(&self, outstanding: usize) {
        self.output_pool.reserve(outstanding);
    }

    /// Validate that `x` matches the compiled input shape (`A.ncols() x d`).
    ///
    /// Every launch path — blocking, asynchronous, batched and the serving
    /// router — calls this **before** taking the launch lock or touching the
    /// buffer pool, so user input can only ever produce a
    /// [`JitSpmmError::ShapeMismatch`], never a panic or a poisoned engine.
    pub(crate) fn check_input_shape(&self, x: &DenseMatrix<T>) -> Result<(), JitSpmmError> {
        if x.nrows() != self.matrix.ncols() || x.ncols() != self.d {
            return Err(JitSpmmError::ShapeMismatch(format!(
                "dense input is {}x{} but the kernel expects {}x{}",
                x.nrows(),
                x.ncols(),
                self.matrix.ncols(),
                self.d
            )));
        }
        Ok(())
    }

    pub(super) fn check_shapes(
        &self,
        x: &DenseMatrix<T>,
        y: &DenseMatrix<T>,
    ) -> Result<(), JitSpmmError> {
        self.check_input_shape(x)?;
        if y.nrows() != self.matrix.nrows() || y.ncols() != self.d {
            return Err(JitSpmmError::ShapeMismatch(format!(
                "dense output is {}x{} but the kernel produces {}x{}",
                y.nrows(),
                y.ncols(),
                self.matrix.nrows(),
                self.d
            )));
        }
        Ok(())
    }

    /// Fraction of the total build+execute time spent generating code, as
    /// reported in Table IV, given a measured execution time. Reflects the
    /// currently active core's codegen cost.
    pub fn codegen_overhead_ratio(&self, execution: Duration) -> f64 {
        let cg = self.active().meta.codegen_time.as_secs_f64();
        let total = cg + execution.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            cg / total
        }
    }
}

/// A borrow-like guard over the active core's [`CompiledKernel`], returned
/// by [`JitSpmm::kernel`]. Dereferences to the kernel; holding it keeps the
/// snapshotted core alive even if the engine promotes meanwhile.
pub struct KernelRef<T: Scalar>(Arc<EngineCore<T>>);

impl<T: Scalar> std::ops::Deref for KernelRef<T> {
    type Target = CompiledKernel<T>;

    fn deref(&self) -> &CompiledKernel<T> {
        &self.0.kernel
    }
}

impl<T: Scalar> std::fmt::Debug for KernelRef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelRef")
            .field("kind", &self.0.kernel.kind())
            .field("code_bytes", &self.0.kernel.code().len())
            .finish()
    }
}

/// A spare kernel instance backing one batch pipeline slot of a
/// dynamic-dispatch engine. The row-claim counter's address is embedded in
/// the generated code, so every launch that may be in flight concurrently
/// needs its own counter — and therefore its own compiled copy. (Static
/// kernels have no embedded mutable state; slots share the engine's.)
pub(super) struct SlotKernel<T: Scalar> {
    pub(super) kernel: CompiledKernel<T>,
    /// The claim counter the spare kernel's `lock xadd` targets; boxed so
    /// its address outlives any move of the surrounding struct.
    pub(super) counter: Box<DynamicCounter>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::JitSpmmBuilder;
    use jitspmm_asm::IsaLevel;
    use jitspmm_sparse::generate;

    fn host_ok() -> bool {
        let f = CpuFeatures::detect();
        f.avx && f.has_fma()
    }

    #[test]
    fn execute_matches_reference_all_strategies() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::rmat::<f32>(9, 6_000, generate::RmatConfig::GRAPH500, 5);
        let x = DenseMatrix::random(a.ncols(), 16, 7);
        let expected = a.spmm_reference(&x);
        for strategy in [
            Strategy::RowSplitStatic,
            Strategy::row_split_dynamic_default(),
            Strategy::NnzSplit,
            Strategy::MergeSplit,
        ] {
            let engine = JitSpmmBuilder::new().strategy(strategy).threads(4).build(&a, 16).unwrap();
            let (y, report) = engine.execute(&x).unwrap();
            assert!(
                y.approx_eq(&expected, 1e-4),
                "strategy {strategy}: max diff = {}",
                y.max_abs_diff(&expected)
            );
            assert_eq!(report.threads, 4);
        }
    }

    #[test]
    fn execute_handles_odd_column_counts() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(200, 150, 2_000, 3);
        for d in [1usize, 3, 8, 17, 45, 64] {
            let x = DenseMatrix::random(a.ncols(), d, 11);
            let expected = a.spmm_reference(&x);
            let engine = JitSpmmBuilder::new().threads(2).build(&a, d).unwrap();
            let (y, _) = engine.execute(&x).unwrap();
            assert!(y.approx_eq(&expected, 1e-4), "d = {d}: diff {}", y.max_abs_diff(&expected));
        }
    }

    #[test]
    fn f64_kernels_match_reference() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f64>(120, 120, 1_500, 9);
        for d in [1usize, 8, 19] {
            let x = DenseMatrix::<f64>::random(a.ncols(), d, 13);
            let expected = a.spmm_reference(&x);
            let engine = JitSpmmBuilder::new().threads(2).build(&a, d).unwrap();
            let (y, _) = engine.execute(&x).unwrap();
            assert!(y.approx_eq(&expected, 1e-10), "d = {d}");
        }
    }

    #[test]
    fn non_ccm_engine_still_correct() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::rmat::<f32>(8, 3_000, generate::RmatConfig::WEB, 4);
        for d in [8usize, 45] {
            let x = DenseMatrix::random(a.ncols(), d, 3);
            let expected = a.spmm_reference(&x);
            let engine = JitSpmmBuilder::new().ccm(false).threads(2).build(&a, d).unwrap();
            let (y, _) = engine.execute(&x).unwrap();
            assert!(y.approx_eq(&expected, 1e-4), "d = {d}");
        }
    }

    #[test]
    fn scalar_isa_engine_matches_reference() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(150, 150, 2_000, 8);
        let x = DenseMatrix::random(150, 8, 21);
        let expected = a.spmm_reference(&x);
        let engine = JitSpmmBuilder::new()
            .isa(IsaLevel::Scalar)
            .strategy(Strategy::RowSplitStatic)
            .threads(1)
            .build(&a, 8)
            .unwrap();
        let (y, _) = engine.execute(&x).unwrap();
        assert!(y.approx_eq(&expected, 1e-4));
    }

    #[test]
    fn empty_rows_produce_zero_output() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        // A matrix where many rows are empty.
        let a = CsrMatrix::<f32>::from_triplets(64, 64, &[(63, 0, 2.0)]).unwrap();
        let x = DenseMatrix::random(64, 16, 2);
        let engine = JitSpmmBuilder::new().threads(3).build(&a, 16).unwrap();
        let (y, _) = engine.execute(&x).unwrap();
        for r in 0..63 {
            assert!(y.row(r).iter().all(|&v| v == 0.0), "row {r} should be zero");
        }
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-5));
    }
}
