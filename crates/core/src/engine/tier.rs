//! Adaptive kernel tiering: start cheap, observe, recompile, hot-swap.
//!
//! A fixed engine pays full code generation for its requested configuration
//! up front, betting that the configuration is right. A *tiered* engine
//! ([`crate::JitSpmmBuilder::tiered`]) hedges: it first compiles the
//! cheapest safe configuration — scalar code with a static row split, tier
//! 0 — and starts serving immediately. The first
//! [`TierPolicy::warmup`] launches are recorded into the same reservoir
//! machinery batch reports use; once the window fills, a recompile (run in
//! the background by the serving loop, or synchronously via
//! [`JitSpmm::promote_now`]) picks the promotion target from what was
//! observed and from the analytic instruction model
//! ([`crate::profile::model_jit`]), builds a complete engine core for it,
//! and hot-swaps it in between launches.
//!
//! The swap is the same `Arc` exchange the launch paths already snapshot
//! under the launch lock: the installer acquires the lock non-blockingly,
//! so a launch in flight keeps its snapshotted core (and the spare slot
//! kernels whose embedded counter addresses belong to it) until it
//! completes, and the next launch sees the promoted core. Replacing the
//! core wholesale is also what invalidates the cached per-slot dynamic
//! kernels: their `lock xadd` targets are counter addresses owned by the
//! retired core, and they are dropped with it.
//!
//! Promotion never changes results. Workload division (strategy, claim
//! batch, lane count) does not affect per-row arithmetic, so a promotion
//! that keeps the ISA fixed is bit-identical across the swap boundary; a
//! promotion to a wider ISA produces exactly the bits a fixed engine
//! compiled at that ISA produces. A recompile that fails — codegen error or
//! a panic — is contained: the engine keeps serving on tier 0 forever,
//! which the fault-injection suite exercises.

use crate::codegen::KernelOptions;
use crate::engine::compile::{EngineCore, JitSpmm};
use crate::engine::report::{BatchStats, ExecutionReport};
use crate::error::JitSpmmError;
use crate::profile::model_jit;
use crate::runtime::pool::lock;
use crate::schedule::Strategy;
use jitspmm_asm::{CpuFeatures, IsaLevel};
use jitspmm_sparse::Scalar;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// When to promote a tiered engine off its tier-0 kernel, and what evidence
/// to require. Passed to [`crate::JitSpmmBuilder::tiered`] (per engine) or
/// [`crate::serve::ServeOptions::tiering`] (for every engine a session
/// serves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierPolicy {
    /// Number of launches to observe on tier 0 before the recompile is
    /// considered (clamped to at least 1).
    pub warmup: usize,
    /// Minimum modeled instruction-count gain (in percent) the promotion
    /// target must show over scalar code for an ISA-widening promotion to
    /// proceed. A strategy change alone always qualifies — it costs nothing
    /// at runtime and cannot change results.
    pub min_gain_percent: u32,
    /// Observed median kernel time below which promotion is declined: a
    /// kernel this fast is dominated by dispatch, and a recompile cannot
    /// buy anything worth its codegen. Zero (the default) disables the
    /// check.
    pub min_kernel_p50: Duration,
    /// Run the recompile on the serving pool as a background job (the
    /// default). When `false`, the serving loop recompiles inline — useful
    /// in tests and on zero-worker pools, where "background" has nowhere to
    /// run concurrently anyway.
    pub background: bool,
}

impl Default for TierPolicy {
    fn default() -> TierPolicy {
        TierPolicy {
            warmup: 8,
            min_gain_percent: 10,
            min_kernel_p50: Duration::ZERO,
            background: true,
        }
    }
}

impl TierPolicy {
    /// The default policy: promote after 8 observed launches when the model
    /// shows at least a 10% instruction-count gain.
    pub fn new() -> TierPolicy {
        TierPolicy::default()
    }

    /// Set the number of launches observed before recompiling.
    pub fn warmup(mut self, launches: usize) -> TierPolicy {
        self.warmup = launches;
        self
    }

    /// Set the minimum modeled gain (percent) required to promote.
    pub fn min_gain_percent(mut self, percent: u32) -> TierPolicy {
        self.min_gain_percent = percent;
        self
    }

    /// Decline promotion when the observed median kernel time is below
    /// `p50`.
    pub fn min_kernel_p50(mut self, p50: Duration) -> TierPolicy {
        self.min_kernel_p50 = p50;
        self
    }

    /// Recompile inline on the serving thread instead of as a background
    /// pool job.
    pub fn foreground(mut self) -> TierPolicy {
        self.background = false;
        self
    }
}

/// Which tier a compiled kernel (and the reports it produced) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// A non-tiered engine: the requested configuration, compiled up front.
    Fixed,
    /// The cheap safe starter configuration of a tiered engine: scalar code,
    /// static row split.
    Tier0,
    /// The configuration a tiered engine hot-swapped to after warmup.
    Promoted,
}

impl KernelTier {
    /// A short stable label for logs, benches and reports.
    pub fn label(&self) -> &'static str {
        match self {
            KernelTier::Fixed => "fixed",
            KernelTier::Tier0 => "tier0",
            KernelTier::Promoted => "promoted",
        }
    }
}

impl std::fmt::Display for KernelTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The promotion state machine of one tiered engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TierPhase {
    /// Recording warmup launches on tier 0.
    Observing,
    /// The warmup window is full; a recompile should be scheduled.
    NeedsCompile,
    /// A recompile is running (inline or as a background job).
    Compiling,
    /// A promoted core is built and waiting to be installed between
    /// launches.
    Ready,
    /// The promoted core is active.
    Promoted,
    /// Promotion was declined (no modeled gain, kernel too fast, codegen
    /// failure, or a recompile panic); the engine stays on tier 0.
    Declined,
}

/// What the serving loop should do for a tiered engine right now; returned
/// by [`JitSpmm::tier_poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TierAction {
    /// Nothing to do (observing, compiling, or settled).
    Idle,
    /// Schedule [`JitSpmm::tier_recompile`] (the poll claimed the compile).
    Recompile,
    /// A promoted core is ready: call [`JitSpmm::tier_try_install`] between
    /// launches.
    Install,
}

/// Tiering state carried by a tiered [`JitSpmm`]: the policy, the warmup
/// observations and recompile state machine, and the promotion counter.
pub(super) struct TierState<T: Scalar> {
    pub(super) policy: TierPolicy,
    shared: Mutex<TierShared<T>>,
    /// Successful hot-swaps so far (0 or 1 today; a counter so reports can
    /// aggregate across engines and shards).
    promotions: AtomicUsize,
}

struct TierShared<T: Scalar> {
    phase: TierPhase,
    /// Warmup observations: the same reservoir machinery batch reports use.
    stats: BatchStats,
    /// A built-but-not-yet-installed promoted core.
    pending: Option<EngineCore<T>>,
}

impl<T: Scalar> TierState<T> {
    pub(super) fn new(policy: TierPolicy) -> TierState<T> {
        TierState {
            policy,
            shared: Mutex::new(TierShared {
                phase: TierPhase::Observing,
                stats: BatchStats::default(),
                pending: None,
            }),
            promotions: AtomicUsize::new(0),
        }
    }

    /// State for an engine that warm-started directly on a promoted core (a
    /// persisted promotion record matched — see
    /// [`crate::engine::options::SpmmOptions::kernel_cache`]): the machine
    /// begins settled, so no warmup is recorded and no recompile is ever
    /// scheduled. The promotion counter stays 0 — this process performed no
    /// hot-swap.
    pub(super) fn warm_promoted(policy: TierPolicy) -> TierState<T> {
        TierState {
            policy,
            shared: Mutex::new(TierShared {
                phase: TierPhase::Promoted,
                stats: BatchStats::default(),
                pending: None,
            }),
            promotions: AtomicUsize::new(0),
        }
    }
}

impl<T: Scalar> JitSpmm<'_, T> {
    /// The tier of the currently active kernel: [`KernelTier::Fixed`] for a
    /// non-tiered engine, [`KernelTier::Tier0`] or [`KernelTier::Promoted`]
    /// for a tiered one.
    pub fn tier(&self) -> KernelTier {
        self.active().tier
    }

    /// How many times this engine has hot-swapped to a promoted kernel.
    pub fn promotions(&self) -> usize {
        self.tier_state.as_ref().map_or(0, |state| state.promotions.load(Ordering::Relaxed))
    }

    /// Record one launch into the warmup window. Called by the launch and
    /// batch layers after every completed launch; a no-op for non-tiered
    /// engines and outside the observing phase.
    pub(crate) fn tier_observe(&self, report: &ExecutionReport) {
        let Some(state) = &self.tier_state else { return };
        let mut shared = lock(&state.shared);
        if shared.phase != TierPhase::Observing {
            return;
        }
        shared.stats.record(report);
        if shared.stats.count >= state.policy.warmup.max(1) {
            shared.phase = TierPhase::NeedsCompile;
        }
    }

    /// What the serving loop should do for this engine right now. Returning
    /// [`TierAction::Recompile`] transitions the state machine to
    /// `Compiling`, so exactly one caller owns the recompile.
    pub(crate) fn tier_poll(&self) -> TierAction {
        let Some(state) = &self.tier_state else { return TierAction::Idle };
        let mut shared = lock(&state.shared);
        match shared.phase {
            TierPhase::NeedsCompile => {
                shared.phase = TierPhase::Compiling;
                TierAction::Recompile
            }
            TierPhase::Ready => TierAction::Install,
            _ => TierAction::Idle,
        }
    }

    /// Run the promotion recompile (the caller obtained
    /// [`TierAction::Recompile`] from [`JitSpmm::tier_poll`], or claimed the
    /// compile in [`JitSpmm::promote_now`]). Never panics and never blocks a
    /// launch: code generation happens outside every engine lock, and any
    /// failure — including a panic — parks the engine on tier 0 for good.
    pub(crate) fn tier_recompile(&self) {
        let Some(state) = &self.tier_state else { return };
        let observed_p50 = lock(&state.shared).stats.kernel_p50();
        let outcome = catch_unwind(AssertUnwindSafe(|| self.tier_build_promoted(observed_p50)));
        let mut shared = lock(&state.shared);
        match outcome {
            Ok(Ok(Some(core))) => {
                shared.pending = Some(core);
                shared.phase = TierPhase::Ready;
            }
            // Declined by policy, failed codegen, or a recompile panic: the
            // tier-0 kernel is correct and keeps serving.
            Ok(Ok(None)) | Ok(Err(_)) | Err(_) => {
                shared.pending = None;
                shared.phase = TierPhase::Declined;
            }
        }
    }

    /// Decide the promotion target and build its core, or decline.
    fn tier_build_promoted(
        &self,
        observed_p50: Duration,
    ) -> Result<Option<EngineCore<T>>, JitSpmmError> {
        // Chaos-test hook (test builds only): a recompile panic must be
        // contained to the tier state machine, never poison serving.
        #[cfg(any(test, feature = "fault-injection"))]
        crate::serve::fault::recompile_entry();
        let state = self.tier_state.as_ref().expect("recompile only runs on tiered engines");
        let policy = state.policy;
        if observed_p50 < policy.min_kernel_p50 {
            return Ok(None);
        }
        let features = CpuFeatures::detect();
        let target_isa = self.options.isa.unwrap_or_else(|| features.best_isa());
        // The requested strategy, with the claim batch re-derived from the
        // matrix actually served: the paper-default 128 is tuned for large
        // matrices, so for a dynamic row split size batches to give each
        // lane several claims without degenerating into per-row claims.
        let target_strategy = match self.options.strategy {
            Strategy::RowSplitDynamic { .. } => {
                let batch = (self.matrix.nrows() / (self.threads.max(1) * 8)).clamp(16, 256);
                Strategy::RowSplitDynamic { batch }
            }
            other => other,
        };
        let current = self.active();
        if target_strategy == current.strategy && target_isa == current.kernel_options.isa {
            // The request *is* the tier-0 configuration; nothing to gain.
            return Ok(None);
        }
        // An ISA widening must justify itself on the analytic instruction
        // model (the emulator-backed counters of `crate::profile`); a
        // strategy change alone is free and cannot change results.
        if target_isa != current.kernel_options.isa {
            let scalar = model_jit::<T>(self.matrix, self.d, IsaLevel::Scalar);
            let target = model_jit::<T>(self.matrix, self.d, target_isa);
            let gain = scalar.instruction_ratio(&target);
            let required = 1.0 + f64::from(policy.min_gain_percent) / 100.0;
            if gain < required && target_strategy == current.strategy {
                return Ok(None);
            }
        }
        let kernel_options = KernelOptions {
            isa: target_isa,
            ccm: self.options.ccm,
            features,
            listing: self.options.listing,
        };
        let cache = if self.options.listing { None } else { self.options.kernel_cache.as_deref() };
        let core = JitSpmm::build_core(
            self.matrix,
            self.d,
            target_strategy,
            kernel_options,
            self.threads,
            KernelTier::Promoted,
            cache,
        )?;
        // Persist the promotion outcome keyed by the *requested*
        // configuration, so the next process warm-starts straight onto this
        // core (build_core above stored its kernel image) and skips tier 0
        // and the warmup window entirely.
        if let Some(cache) = cache {
            let requested =
                KernelOptions { isa: target_isa, ccm: self.options.ccm, features, listing: false };
            let key = crate::cache::key::CacheKey::for_kernel(
                self.matrix,
                self.d,
                self.options.strategy,
                &requested,
            );
            let record = crate::cache::PromotionRecord {
                strategy: target_strategy,
                isa: target_isa,
                ccm: self.options.ccm,
            };
            cache.store_promotion(&key, &record);
        }
        Ok(Some(core))
    }

    /// Install a built promoted core if no launch is in flight. Non-blocking:
    /// takes the launch lock with `try_lock`, so a busy engine simply keeps
    /// its current core until the next quiet moment between batches. Returns
    /// whether a swap happened.
    pub(crate) fn tier_try_install(&self) -> bool {
        let Some(state) = &self.tier_state else { return false };
        let Ok(_guard) = self.begin_launch(false) else {
            return false;
        };
        let mut shared = lock(&state.shared);
        match shared.pending.take() {
            Some(core) => {
                shared.phase = TierPhase::Promoted;
                // The swap point every launch path snapshots; the old core
                // (and its cached per-slot dynamic kernels, whose embedded
                // counter addresses belong to it) drops with the last
                // snapshot holding it.
                *lock(&self.active) = Arc::new(core);
                state.promotions.fetch_add(1, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Drive promotion to completion right now, on the calling thread:
    /// recompile if the engine has not yet (warmup need not be complete) and
    /// install the result. Returns `true` if the engine is on its promoted
    /// kernel when the call returns; `false` if promotion was declined, a
    /// recompile is still running elsewhere, or a launch in flight deferred
    /// the installation. A no-op `false` for non-tiered engines.
    ///
    /// Serving sessions promote automatically
    /// ([`crate::serve::ServeOptions::tiering`]); this is the explicit hook
    /// for standalone engines, warm-up scripts and benchmarks.
    pub fn promote_now(&self) -> bool {
        let Some(state) = &self.tier_state else { return false };
        let recompile = {
            let mut shared = lock(&state.shared);
            match shared.phase {
                TierPhase::Observing | TierPhase::NeedsCompile => {
                    shared.phase = TierPhase::Compiling;
                    true
                }
                TierPhase::Ready => false,
                TierPhase::Promoted => return true,
                TierPhase::Compiling | TierPhase::Declined => return false,
            }
        };
        if recompile {
            self.tier_recompile();
        }
        self.tier_try_install()
    }
}
