//! The batched serving pipeline: [`JitSpmm::execute_batch`] over input
//! slices and the incremental [`BatchStream`] for unbounded streams, with
//! both borrowed ([`BatchStream::push`]) and owned
//! ([`BatchStream::push_owned`]) inputs.

use crate::engine::compile::{EngineCore, JitSpmm, SlotKernel};
use crate::engine::launch::LaunchGuard;
use crate::engine::report::{BatchReport, BatchStats, ExecutionReport};
use crate::error::JitSpmmError;
use crate::kernel::{CompiledKernel, KernelKind};
use crate::runtime::dispatch::{KernelJob, LaunchPayload};
use crate::runtime::{PoolScope, PooledMatrix, ScopedJobHandle};
use crate::schedule::DynamicCounter;
use jitspmm_sparse::{DenseMatrix, Scalar};
use std::collections::VecDeque;
use std::panic::resume_unwind;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The host's available parallelism, resolved once per process.
/// `std::thread::available_parallelism` consults the cgroup filesystem on
/// every call on Linux (~10µs), far too slow for a per-batch decision.
fn host_parallelism() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Default number of launches [`JitSpmm::execute_batch`] keeps in flight:
/// double buffering — one launch executing while the next is already queued,
/// so workers flow between inputs without re-parking.
pub const DEFAULT_BATCH_DEPTH: usize = 2;

/// Upper bound on the batch pipeline depth. Each slot holds one output
/// buffer (and, for dynamic engines, one spare kernel copy), and depths past
/// the pool's worker count buy no additional overlap.
const MAX_BATCH_DEPTH: usize = 16;

impl<'a, T: Scalar> JitSpmm<'a, T> {
    /// Compute `Y = A * X_i` for every input in `inputs`, pipelining up to
    /// [`DEFAULT_BATCH_DEPTH`] launches through the scope's worker pool at
    /// once, and return the outputs (in input order) together with a
    /// [`BatchReport`] aggregating per-input timing.
    ///
    /// This is the steady-state serving shape: one compiled kernel, a stream
    /// of dense right-hand sides. Relative to a loop of
    /// [`JitSpmm::execute`] calls, the pipeline
    ///
    /// * validates every input **once, up front** — a shape mismatch fails
    ///   the whole batch before any launch, never mid-stream,
    /// * takes the engine's launch lock once for the whole batch instead of
    ///   once per input,
    /// * keeps the next launch queued while the current one runs
    ///   (double-buffered outputs), so workers flow from one input's job
    ///   straight into the next without re-parking — degrading to direct
    ///   sequential execution on hosts where nothing can overlap (a single
    ///   hardware thread, or a zero-worker pool), where queue handoffs would
    ///   only cost, and
    /// * reuses per-slot job payloads, so steady-state submission performs
    ///   no per-launch boxing.
    ///
    /// Dynamic-dispatch engines compile one spare kernel per extra pipeline
    /// slot on first use (the row-claim counter's address is embedded in the
    /// generated code, so concurrently in-flight launches need their own
    /// copies); the spares are cached on the engine, so only the first batch
    /// pays that codegen. Static-range kernels have no embedded mutable
    /// state and share the engine's kernel across all slots.
    ///
    /// For unbounded streams — where inputs arrive one at a time and
    /// outputs should be consumed as they complete — drive a
    /// [`BatchStream`] directly via [`JitSpmm::batch_stream`]. To serve a
    /// mixed request stream across *several* engines sharing one pool, see
    /// [`crate::serve::SpmmServer`].
    ///
    /// ```
    /// use jitspmm::JitSpmmBuilder;
    /// use jitspmm_sparse::{generate, DenseMatrix};
    ///
    /// # fn main() -> Result<(), jitspmm::JitSpmmError> {
    /// let a = generate::uniform::<f32>(128, 128, 1_000, 1);
    /// let engine = JitSpmmBuilder::new().threads(2).build(&a, 8)?;
    /// let inputs: Vec<DenseMatrix<f32>> =
    ///     (0..6).map(|seed| DenseMatrix::random(128, 8, seed)).collect();
    /// let (outputs, report) = engine
    ///     .pool()
    ///     .scope(|scope| engine.execute_batch(scope, &inputs))?;
    /// assert_eq!(outputs.len(), 6);
    /// assert_eq!(report.inputs, 6);
    /// for (x, y) in inputs.iter().zip(&outputs) {
    ///     assert!(y.approx_eq(&a.spmm_reference(x), 1e-4));
    /// }
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] (naming the offending input
    /// index) if any input is not `A.ncols() x d`, and
    /// [`JitSpmmError::LaunchInProgress`] if the calling thread already
    /// holds a launch of this engine.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic of the batch after joining the
    /// launches still in flight; the engine stays usable afterwards.
    pub fn execute_batch<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        inputs: &'env [DenseMatrix<T>],
    ) -> Result<(Vec<PooledMatrix<T>>, BatchReport), JitSpmmError> {
        // One-time validation, hoisted out of the per-input path.
        for (index, x) in inputs.iter().enumerate() {
            self.check_input_shape(x).map_err(|e| match e {
                JitSpmmError::ShapeMismatch(msg) => {
                    JitSpmmError::ShapeMismatch(format!("batch input {index}: {msg}"))
                }
                other => other,
            })?;
        }
        // Depth 0 = auto: pipeline at the default depth where overlap is
        // available, run sequentially where it is not. A batch of at most
        // one input has nothing to pipeline either way.
        let depth = if inputs.len() <= 1 { 1 } else { 0 };
        let mut stream = self.batch_stream(scope, depth)?;
        // The caller holds all the batch's outputs at once; let the buffer
        // pool retain that many spares so repeated batches recycle them all.
        // (Only once the batch is actually going to run — a failed call must
        // not mutate engine state.)
        self.output_pool.reserve(inputs.len());
        let mut outputs = Vec::with_capacity(inputs.len());
        for x in inputs {
            if let Some((y, _)) = stream.push_validated(x) {
                outputs.push(y);
            }
        }
        let (rest, report) = stream.finish();
        outputs.extend(rest.into_iter().map(|(y, _)| y));
        Ok((outputs, report))
    }

    /// Open a [`BatchStream`]: the incremental form of
    /// [`JitSpmm::execute_batch`] for unbounded input streams.
    ///
    /// `depth` is the number of launches kept in flight at once (`0` selects
    /// [`DEFAULT_BATCH_DEPTH`]; values are capped at an internal maximum of
    /// 16). On hosts where deferred launches cannot overlap anything — a
    /// single hardware thread, or a zero-worker pool — depths of 0 and 1
    /// degrade to direct sequential execution on the calling thread (no
    /// queue round trips, bit-identical results); an explicit `depth >= 2`
    /// always uses the real pipeline. The stream holds the engine's launch
    /// lock until it is finished or dropped — other launches of this engine
    /// block (or fail with [`JitSpmmError::LaunchInProgress`] from the
    /// owning thread) meanwhile.
    ///
    /// Feed it from any iterator:
    ///
    /// ```
    /// use jitspmm::JitSpmmBuilder;
    /// use jitspmm_sparse::{generate, DenseMatrix};
    ///
    /// # fn main() -> Result<(), jitspmm::JitSpmmError> {
    /// let a = generate::uniform::<f32>(64, 64, 500, 2);
    /// let engine = JitSpmmBuilder::new().threads(2).build(&a, 4)?;
    /// let inputs: Vec<DenseMatrix<f32>> =
    ///     (0..5).map(|seed| DenseMatrix::random(64, 4, seed)).collect();
    /// engine.pool().scope(|scope| -> Result<(), jitspmm::JitSpmmError> {
    ///     let mut stream = engine.batch_stream(scope, 2)?;
    ///     let mut done = 0usize;
    ///     for x in &inputs {
    ///         // `push` hands back the oldest completed output once the
    ///         // pipeline is full.
    ///         if let Some((y, _report)) = stream.push(x)? {
    ///             done += 1;
    ///             drop(y); // recycled into the engine's buffer pool
    ///         }
    ///     }
    ///     let (rest, report) = stream.finish();
    ///     done += rest.len();
    ///     assert_eq!(done, inputs.len());
    ///     assert_eq!(report.inputs, inputs.len());
    ///     Ok(())
    /// })?;
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::LaunchInProgress`] if the calling thread already
    /// holds a launch of this engine, or a codegen error if compiling a
    /// spare slot kernel fails.
    pub fn batch_stream<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        depth: usize,
    ) -> Result<BatchStream<'scope, 'env, T>, JitSpmmError> {
        // Deferring launches through the job queue only pays off when
        // something can actually run concurrently with the submitting
        // thread. On a single-hardware-thread host (or a zero-worker pool)
        // the queue handoffs are pure overhead, so auto mode (depth 0 or 1)
        // degrades to direct sequential execution; an explicit depth >= 2 is
        // a request for real pipelining and is honoured everywhere.
        let no_overlap = scope.pool().size() == 0 || host_parallelism() == 1;
        let (depth, sequential) = match depth {
            0 => {
                if no_overlap {
                    (1, true)
                } else {
                    (DEFAULT_BATCH_DEPTH, false)
                }
            }
            1 => (1, no_overlap),
            n => (n.min(MAX_BATCH_DEPTH), false),
        };
        let launch = self.begin_launch(true)?;
        // The stream runs its whole lifetime against this snapshot: the
        // launch lock (held until finish/drop) pins it as the active core,
        // and a tier promotion can only install a new core afterwards.
        let core = self.active();
        let spares = self.spare_slot_kernels(&core, depth - 1)?;
        let mut slots = Vec::with_capacity(depth);
        slots.push(BatchSlot { kernel: None, payload: LaunchPayload::new(), busy: false });
        match core.kernel.kind() {
            // Each concurrently in-flight dynamic launch needs its own
            // claim counter, hence its own compiled kernel copy.
            KernelKind::DynamicDispatch => {
                for spare in spares {
                    slots.push(BatchSlot {
                        kernel: Some(spare),
                        payload: LaunchPayload::new(),
                        busy: false,
                    });
                }
            }
            // Static-range kernels carry no mutable state; every slot can
            // launch the engine's own kernel.
            KernelKind::StaticRange => {
                for _ in 1..depth {
                    slots.push(BatchSlot {
                        kernel: None,
                        payload: LaunchPayload::new(),
                        busy: false,
                    });
                }
            }
        }
        Ok(BatchStream {
            engine: self,
            core,
            scope,
            slots,
            in_flight: VecDeque::with_capacity(depth),
            sequential,
            stats: BatchStats::default(),
            first_submit: None,
            _launch: launch,
        })
    }
}

/// One lane of the batch pipeline: a (possibly spare) kernel to launch and a
/// reusable heap slot for the launch payload.
struct BatchSlot<T: Scalar> {
    /// `None` — launch the engine's own kernel (and reset the engine's
    /// counter); `Some` — a spare dynamic-dispatch copy with its own counter.
    kernel: Option<Arc<SlotKernel<T>>>,
    payload: LaunchPayload<T>,
    /// Whether a launch submitted from this slot is still in flight.
    busy: bool,
}

/// How one batch launch is completed.
enum Pending<'scope> {
    /// Deferred through the scope's job queue; joined on completion.
    Queued(ScopedJobHandle<'scope>),
    /// Already executed on the submitting thread (the stream's sequential
    /// mode); only the recorded kernel time remains.
    Done(std::time::Duration),
}

/// An input a [`BatchStream`] keeps alive until its launch has been joined
/// (the workers dereference its buffer). Owned inputs come from
/// [`BatchStream::push_owned`]; shared inputs are one request fanned out
/// across several pipelines at once — the sharded engine
/// ([`crate::shard::ShardedSpmm`]) pushes one `Arc`'d input into every
/// shard's stream, and the input stays alive until the *last* shard joins.
pub(crate) enum StowedInput<T: Scalar> {
    /// Exclusively owned by this stream's in-flight entry.
    Owned(DenseMatrix<T>),
    /// Shared across the streams of a sharded engine.
    Shared(Arc<DenseMatrix<T>>),
}

impl<T: Scalar> StowedInput<T> {
    /// The input's data pointer. Moving either variant never moves the heap
    /// buffer behind it, so the pointer stays valid while the entry lives.
    fn as_ptr(&self) -> *const T {
        match self {
            StowedInput::Owned(x) => x.as_ptr(),
            StowedInput::Shared(x) => x.as_ptr(),
        }
    }
}

/// One in-flight batch launch, oldest-first in [`BatchStream::in_flight`].
struct InFlight<'scope, T: Scalar> {
    pending: Pending<'scope>,
    slot: usize,
    y: Option<PooledMatrix<T>>,
    submitted: Instant,
    /// An input pushed by value ([`BatchStream::push_owned`]) or by shared
    /// handle, kept alive here until the launch has been joined — the
    /// workers dereference its buffer. `None` for borrowed pushes, whose
    /// input lives for `'env`. Field order matters for the drop path only in
    /// that the join (in `complete_oldest` or the stream's drop) always
    /// precedes this entry being dropped.
    _input: Option<StowedInput<T>>,
}

/// A pipelined stream of SpMM executions through one engine, created by
/// [`JitSpmm::batch_stream`] (or driven for you by
/// [`JitSpmm::execute_batch`]).
///
/// [`BatchStream::push`] submits the next input and, once the pipeline is
/// full, hands back the **oldest** completed output — results always come
/// back in submission order. Cross-thread producers that cannot provide
/// `'env` borrows hand inputs over by value with
/// [`BatchStream::push_owned`]; the stream keeps each owned input alive
/// until its launch has been joined. [`BatchStream::finish`] drains the
/// pipeline and aggregates the per-input timing into a [`BatchReport`].
///
/// The stream holds the engine's launch lock for its whole lifetime (batch
/// members do not re-take it per input), so the engine accepts no other
/// launches until the stream is finished or dropped. Dropping the stream
/// mid-batch joins the launches still in flight and discards their results;
/// leaking it (`std::mem::forget`) is safe — the owning [`PoolScope`] still
/// joins every launch — but leaks the in-flight output buffers (and any
/// owned inputs) and leaves the engine's launch lock held forever, exactly
/// like a leaked [`crate::ExecutionHandle`].
pub struct BatchStream<'scope, 'env, T: Scalar> {
    engine: &'env JitSpmm<'env, T>,
    /// The compiled core every launch of this stream runs against,
    /// snapshotted at open under the launch lock (see
    /// [`JitSpmm::batch_stream`]).
    core: Arc<EngineCore<T>>,
    scope: &'scope PoolScope<'scope, 'env>,
    slots: Vec<BatchSlot<T>>,
    /// Launches in flight, oldest first.
    in_flight: VecDeque<InFlight<'scope, T>>,
    /// Sequential mode: execute each input directly on the calling thread,
    /// single-lane, instead of deferring through the job queue. Chosen when
    /// queue handoffs cannot buy any overlap — a single-hardware-thread
    /// host, or a zero-worker pool — unless the caller explicitly requested
    /// a pipeline depth of 2 or more. Row-wise partitioning computes every
    /// output row with the same instruction sequence whichever lane claims
    /// it, so sequential results are bit-identical to pipelined ones.
    sequential: bool,
    stats: BatchStats,
    first_submit: Option<Instant>,
    /// The engine's launch lock, held once for the whole batch.
    _launch: LaunchGuard<'env>,
}

impl<'scope, 'env, T: Scalar> BatchStream<'scope, 'env, T> {
    /// The pipeline depth: how many launches this stream keeps in flight.
    pub fn depth(&self) -> usize {
        self.slots.len()
    }

    /// Number of launches currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Submit the next input. If the pipeline is already at depth, waits for
    /// the **oldest** in-flight launch first and returns its output and
    /// per-input [`ExecutionReport`]; otherwise returns `None` and the call
    /// does not block.
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] — without submitting anything
    /// — if `x` is not `A.ncols() x d`; the pipeline is unaffected and
    /// further pushes proceed normally.
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic from the completed launch (the stream is
    /// then dropped by unwinding, which joins the remaining launches and
    /// releases the engine).
    pub fn push(
        &mut self,
        x: &'env DenseMatrix<T>,
    ) -> Result<Option<(PooledMatrix<T>, ExecutionReport)>, JitSpmmError> {
        self.engine.check_input_shape(x)?;
        Ok(self.push_validated(x))
    }

    /// [`BatchStream::push`] for an input handed over **by value**, so a
    /// producer on another thread (or any caller without an `'env` borrow to
    /// offer — a request queue, a network socket) can feed the pipeline. The
    /// stream keeps the input alive until its launch has been joined, then
    /// drops it; everything else — ordering, completion, reporting — matches
    /// [`BatchStream::push`]. The multi-engine serving router
    /// ([`crate::serve::SpmmServer`]) feeds every request through this path.
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] if `x` is not `A.ncols() x d`;
    /// the rejected input is dropped (it was passed by value) and the
    /// pipeline is unaffected.
    ///
    /// # Panics
    ///
    /// As [`BatchStream::push`].
    pub fn push_owned(
        &mut self,
        x: DenseMatrix<T>,
    ) -> Result<Option<(PooledMatrix<T>, ExecutionReport)>, JitSpmmError> {
        self.engine.check_input_shape(&x)?;
        Ok(self.push_owned_validated(x))
    }

    /// [`BatchStream::push`] for pre-validated inputs
    /// ([`JitSpmm::execute_batch`] hoists the shape checks out of the loop).
    pub(crate) fn push_validated(
        &mut self,
        x: &'env DenseMatrix<T>,
    ) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        let done = self.make_room();
        // SAFETY (of the pointer handed to `submit_ptr`): `x` is borrowed
        // for 'env, which outlives the scope's join of every launch.
        self.submit_ptr(x.as_ptr(), None);
        done
    }

    /// [`BatchStream::push_owned`] for pre-validated inputs (the serving
    /// router validates at its own entry point).
    pub(crate) fn push_owned_validated(
        &mut self,
        x: DenseMatrix<T>,
    ) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        // SAFETY (of the pointer handed to `submit_ptr`): the owned matrix
        // is either consumed synchronously (sequential mode) or stowed in
        // the in-flight entry until its launch has been joined; moving a
        // `DenseMatrix` never moves its heap buffer, so the pointer taken
        // inside `submit_ptr` stays valid.
        self.push_stowed(StowedInput::Owned(x))
    }

    /// [`BatchStream::push_owned`] for an input **shared** with other
    /// streams: the sharded engine routes one request into every shard's
    /// pipeline, each stream holding one `Arc` clone until its own launch
    /// has been joined. Validation is the caller's job (the sharded engine
    /// validates once against the full matrix — every shard has the same
    /// column count and `d`).
    pub(crate) fn push_shared_validated(
        &mut self,
        x: Arc<DenseMatrix<T>>,
    ) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        // SAFETY: as in `push_owned_validated` — the `Arc` keeps the buffer
        // alive until this stream's in-flight entry drops, which happens
        // only after the launch is joined.
        self.push_stowed(StowedInput::Shared(x))
    }

    /// Shared tail of the by-value push paths.
    fn push_stowed(&mut self, x: StowedInput<T>) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        let done = self.make_room();
        self.submit_ptr(x.as_ptr(), Some(x));
        done
    }

    /// Free a pipeline slot for the next submission: when the pipeline is at
    /// depth, join the oldest launch and hand its result back.
    fn make_room(&mut self) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        if self.in_flight.len() == self.slots.len() {
            Some(self.complete_oldest())
        } else {
            None
        }
    }

    /// Join the oldest in-flight launch, if any — the serving control
    /// plane's building block: it drains pipelines one completion at a time
    /// so it can re-check deadlines and engine lifecycle between joins, and
    /// wraps each call in `catch_unwind` to convert a worker panic into a
    /// typed per-request failure. A panic unwinds out of here with the
    /// pipeline bookkeeping already restored (see
    /// [`BatchStream::complete_oldest`]), so the stream stays usable.
    pub(crate) fn complete_next(&mut self) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        if self.in_flight.is_empty() {
            None
        } else {
            Some(self.complete_oldest())
        }
    }

    /// Drain the pipeline: wait for every in-flight launch (oldest first),
    /// returning their outputs plus the aggregated [`BatchReport`].
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic among the remaining launches, after
    /// all of them have been joined.
    pub fn finish(mut self) -> (Vec<(PooledMatrix<T>, ExecutionReport)>, BatchReport) {
        let mut rest = Vec::with_capacity(self.in_flight.len());
        while !self.in_flight.is_empty() {
            rest.push(self.complete_oldest());
        }
        let elapsed = self.first_submit.map(|t| t.elapsed()).unwrap_or_default();
        let stats = std::mem::take(&mut self.stats);
        // Sequential launches all ran single-lane, whatever the engine is
        // configured with; the aggregate report matches the per-input ones.
        let threads = if self.sequential { 1 } else { self.engine.threads };
        let mut report = stats.report(elapsed, self.slots.len(), threads, self.core.strategy);
        report.tier = self.core.tier;
        report.promotions = self.engine.promotions();
        (rest, report)
    }

    /// Launch the input behind `x_ptr` from a free slot. The caller
    /// guarantees one exists (the pipeline was drained to below depth), that
    /// the input passed validation, and that the pointee stays alive until
    /// the launch is joined — by `'env` borrow, or by `owned` (the same
    /// matrix, passed by value) which this function keeps alive in the
    /// in-flight entry (queued mode) or through the synchronous kernel run
    /// (sequential mode).
    fn submit_ptr(&mut self, x_ptr: *const T, owned: Option<StowedInput<T>>) {
        if self.sequential {
            // `owned`, if any, lives until this call returns — after the
            // kernel has run to completion on this thread.
            return self.submit_sequential(x_ptr);
        }
        let engine = self.engine;
        let index = self
            .slots
            .iter()
            .position(|slot| !slot.busy)
            .expect("pipeline depth bounds the number of in-flight launches");
        let slot = &mut self.slots[index];
        let (kernel, counter): (&CompiledKernel<T>, &DynamicCounter) = match &slot.kernel {
            Some(spare) => (&spare.kernel, &spare.counter),
            None => (&self.core.kernel, &self.core.counter),
        };
        // The slot is free — its previous launch was joined — so nothing is
        // mid-claim on this counter: the per-launch reset that
        // `begin_launch` performs for a standalone execute happens here,
        // per slot. (Harmless for static kernels, as ever.)
        counter.reset();
        let mut y = PooledMatrix::new(
            engine.output_pool.acquire(engine.matrix.nrows(), engine.d),
            Arc::clone(&engine.output_pool),
        );
        let job = KernelJob::new(kernel, &self.core.partition.ranges, x_ptr, y.as_mut_ptr());
        let spec = job.spec(kernel.kind(), engine.threads);
        // SAFETY: the slot is free, so no in-flight job references its
        // payload.
        let data = unsafe { slot.payload.store(job) };
        let submitted = Instant::now();
        self.first_submit.get_or_insert(submitted);
        // SAFETY: the payload slot is owned by `self.slots` and only freed
        // (in the stream's drop) or rewritten (in a later `submit`) after
        // this launch has been joined — or leaked, never freed, if the
        // stream is leaked. The kernel (the core's, or a spare kept alive by
        // the slot's `Arc` and the core's cache) and the partition live in
        // the stream's core snapshot, and the engine-borrowed CSR arrays
        // live for at least 'env, which cannot end before the scope has
        // joined the job; the input behind
        // `x_ptr` is either borrowed for 'env or owned by the in-flight
        // entry pushed below, which the stream only drops (or returns) after
        // joining this launch — and leaks, never frees, if the stream is
        // leaked. Shapes were validated before this call and the slot's
        // counter reset above, while the engine's launch lock (held in
        // `_launch`) keeps non-batch launches out.
        let handle = unsafe { self.scope.submit_erased(spec, data, KernelJob::<T>::erased()) };
        slot.busy = true;
        self.in_flight.push_back(InFlight {
            pending: Pending::Queued(handle),
            slot: index,
            y: Some(y),
            submitted,
            _input: owned,
        });
    }

    /// Sequential-mode submission: run the kernel to completion on the
    /// calling thread, single-lane, with no pool round trip. Used on hosts
    /// where deferral cannot overlap anything (see
    /// [`JitSpmm::batch_stream`]); produces bit-identical results because
    /// per-row arithmetic does not depend on which lane computes a row.
    fn submit_sequential(&mut self, x_ptr: *const T) {
        // Chaos-test hook (test builds only): the sequential fast path is a
        // kernel-job entry too, so injected faults behave the same on
        // 1-core hosts.
        #[cfg(any(test, feature = "fault-injection"))]
        crate::serve::fault::kernel_entry();
        let engine = self.engine;
        let submitted = Instant::now();
        self.first_submit.get_or_insert(submitted);
        let mut y = PooledMatrix::new(
            engine.output_pool.acquire(engine.matrix.nrows(), engine.d),
            Arc::clone(&engine.output_pool),
        );
        // The launch lock is held for the stream's lifetime and nothing else
        // is in flight (sequential mode), so the core's own counter is
        // free to reset.
        self.core.counter.reset();
        let kernel_start = Instant::now();
        // SAFETY: shapes were validated before this call, the engine borrows
        // the CSR arrays its kernel embeds, the input behind `x_ptr` is kept
        // alive by the caller across this synchronous run, the counter was
        // reset above under the held launch lock, and a single lane
        // trivially keeps row writes disjoint.
        unsafe {
            match self.core.kernel.kind() {
                KernelKind::DynamicDispatch => self.core.kernel.call_dynamic(x_ptr, y.as_mut_ptr()),
                KernelKind::StaticRange => self.core.kernel.call_static(
                    0,
                    engine.matrix.nrows() as u64,
                    x_ptr,
                    y.as_mut_ptr(),
                ),
            }
        }
        let kernel = kernel_start.elapsed();
        self.slots[0].busy = true;
        self.in_flight.push_back(InFlight {
            pending: Pending::Done(kernel),
            slot: 0,
            y: Some(y),
            submitted,
            _input: None,
        });
    }

    /// Join the oldest in-flight launch, free its slot and record its
    /// timing. Re-raises a worker panic after the bookkeeping is restored
    /// (the slot is marked free and the launch removed from the queue), so
    /// the unwind path — the stream's drop — sees a consistent pipeline.
    fn complete_oldest(&mut self) -> (PooledMatrix<T>, ExecutionReport) {
        let mut launch = self.in_flight.pop_front().expect("caller checked a launch is in flight");
        // Sequential launches ran on exactly one lane, whatever the engine
        // is configured with; the per-input report says so.
        let (joined, threads, wake) = match &mut launch.pending {
            Pending::Queued(job) => {
                let joined = job.try_wait();
                (joined, self.engine.threads, job.wake())
            }
            // Sequential launches ran inline: no handoff, no wake cost.
            Pending::Done(kernel) => (Ok(*kernel), 1, Duration::ZERO),
        };
        self.slots[launch.slot].busy = false;
        let kernel = match joined {
            Ok(kernel) => kernel,
            Err(payload) => resume_unwind(payload),
        };
        let elapsed = launch.submitted.elapsed();
        let report = ExecutionReport {
            elapsed,
            kernel,
            dispatch: elapsed.saturating_sub(kernel),
            wake,
            threads,
            strategy: self.core.strategy,
        };
        self.stats.record(&report);
        self.engine.tier_observe(&report);
        // `launch` (with any owned input) drops at the end of this function,
        // strictly after the join above.
        (launch.y.take().expect("output held until completion"), report)
    }
}

impl<T: Scalar> Drop for BatchStream<'_, '_, T> {
    fn drop(&mut self) {
        // Join every launch still in flight before the payload slots (freed
        // when `slots` drops right after this body), the owned inputs (freed
        // with `in_flight`) and the launch guard are released. Panics are
        // discarded here, as in `ExecutionHandle`'s drop — `push`/`finish`
        // re-raise them.
        for launch in &mut self.in_flight {
            if let Pending::Queued(job) = &mut launch.pending {
                job.join_quiet();
            }
        }
    }
}

impl<T: Scalar> std::fmt::Debug for BatchStream<'_, '_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchStream")
            .field("depth", &self.slots.len())
            .field("in_flight", &self.in_flight.len())
            .field("completed", &self.stats.count)
            .finish()
    }
}
