//! Timing aggregation: per-launch [`ExecutionReport`]s, per-batch
//! [`BatchReport`]s and the bounded reservoir sampling behind the
//! percentile statistics. The serving layer's
//! [`crate::serve::ServerReport`] aggregates one [`BatchReport`] per engine
//! through the same machinery.

use crate::engine::tier::KernelTier;
use crate::schedule::Strategy;
use std::time::Duration;

/// Timing and configuration data for one `execute` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionReport {
    /// Total wall-clock time of the call, dispatch included.
    pub elapsed: Duration,
    /// Critical-path kernel time: the longest busy time of any participating
    /// lane while executing the compiled kernel.
    pub kernel: Duration,
    /// Overhead outside the kernel (`elapsed - kernel`): job submission,
    /// worker wake-up and join. With the persistent pool this is a few
    /// microseconds, where spawn-per-call paid tens per execution.
    pub dispatch: Duration,
    /// The wake (handoff) component of `dispatch`: time from the launch's
    /// enqueue until the first participant claimed a task — the cost of
    /// getting a parked worker onto the job (futex or condvar, see
    /// [`crate::WakeSlot`]). Zero for launches that ran inline on the
    /// calling thread (single-thread engines, zero-worker pools, sequential
    /// batch fast path), where no handoff happens at all.
    pub wake: Duration,
    /// Number of worker lanes used.
    pub threads: usize,
    /// Strategy used.
    pub strategy: Strategy,
}

/// Aggregated timing for one batch, returned by
/// [`crate::JitSpmm::execute_batch`] and
/// [`crate::BatchStream::finish`](crate::BatchStream::finish).
///
/// Per-input timing follows [`ExecutionReport`]: `kernel` is a launch's
/// critical-path kernel time, `dispatch` is everything else between its
/// submission and its join — which, inside a pipeline, includes time spent
/// queued behind the previous input *and*, when a
/// [`crate::BatchStream`] is driven at the caller's own pace, time a
/// finished result waited for the caller to collect it. Dispatch percentiles
/// therefore measure runtime overhead only when the stream is driven
/// back-to-back (as [`crate::JitSpmm::execute_batch`] does); for a paced
/// stream they measure end-to-end result latency. The report keeps order
/// statistics (p50 and p99, nearest-rank; past 4096 inputs, estimated from a
/// uniform reservoir sample) rather than just means, because a serving
/// system's tail is what its clients feel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchReport {
    /// Number of inputs executed.
    pub inputs: usize,
    /// Wall-clock time from the first submission to the last join.
    pub elapsed: Duration,
    /// Pipeline depth used (launches kept in flight at once).
    pub depth: usize,
    /// Worker lanes per launch: the engine's configured lane count, or 1
    /// when the stream ran on the sequential fast path (see
    /// [`crate::JitSpmm::batch_stream`]).
    pub threads: usize,
    /// Strategy of the engine that ran the batch.
    pub strategy: Strategy,
    /// Tier of the kernel that finished the batch ([`KernelTier::Fixed`]
    /// for non-tiered engines; a tiered engine reports the tier it ended
    /// on — [`KernelTier::Promoted`] once a hot-swap has happened).
    pub tier: KernelTier,
    /// Hot-swap promotions the engine has performed so far (see
    /// [`crate::TierPolicy`]); `0` for non-tiered engines.
    pub promotions: usize,
    /// Sum of per-input critical-path kernel times.
    pub kernel_total: Duration,
    /// Median per-input kernel time.
    pub kernel_p50: Duration,
    /// 99th-percentile per-input kernel time.
    pub kernel_p99: Duration,
    /// Median per-input dispatch (non-kernel) time.
    pub dispatch_p50: Duration,
    /// 99th-percentile per-input dispatch time.
    pub dispatch_p99: Duration,
    /// Median per-input wake (handoff) time — the enqueue→first-claim
    /// component of dispatch (see [`ExecutionReport::wake`]).
    pub wake_p50: Duration,
    /// 99th-percentile per-input wake time.
    pub wake_p99: Duration,
}

impl BatchReport {
    /// Inputs completed per second of batch wall-clock time. Guarded against
    /// the two degenerate denominators a serving loop can produce: an empty
    /// batch and a batch so small its wall clock rounds to zero both report
    /// `0.0` instead of dividing by zero (which for floats would yield `NaN`
    /// or `inf` and poison any aggregate built on top).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 || self.inputs == 0 {
            0.0
        } else {
            self.inputs as f64 / secs
        }
    }
}

/// Nearest-rank percentile of a **sorted** duration slice (`pct` in 0..=100);
/// zero for an empty slice.
pub(super) fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Upper bound on the per-input timing samples a stream retains for the
/// percentile report. An unbounded stream must run in O(1) memory, so past
/// this many inputs the samples become a uniform reservoir (Vitter's
/// algorithm R) — `inputs` and `kernel_total` stay exact, the percentiles
/// become estimates over an unbiased sample.
pub(super) const MAX_BATCH_SAMPLES: usize = 4096;

/// Per-input samples accumulated while a batch runs: exact counters plus a
/// bounded uniform reservoir of (kernel, dispatch) sample pairs.
#[derive(Default)]
pub(crate) struct BatchStats {
    kernel: Vec<Duration>,
    dispatch: Vec<Duration>,
    wake: Vec<Duration>,
    /// Exact number of inputs recorded (the reservoir may hold fewer).
    pub(crate) count: usize,
    kernel_total: Duration,
    /// Deterministic LCG state for reservoir replacement (no RNG
    /// dependency; statistical uniformity is all the percentiles need).
    rng: u64,
}

impl BatchStats {
    pub(crate) fn record(&mut self, report: &ExecutionReport) {
        self.count += 1;
        self.kernel_total += report.kernel;
        if self.kernel.len() < MAX_BATCH_SAMPLES {
            self.kernel.push(report.kernel);
            self.dispatch.push(report.dispatch);
            self.wake.push(report.wake);
            return;
        }
        // Algorithm R: the i-th input replaces a uniformly drawn reservoir
        // slot with probability MAX_BATCH_SAMPLES / i.
        self.rng = self.rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let slot = (self.rng >> 33) as usize % self.count;
        if slot < MAX_BATCH_SAMPLES {
            self.kernel[slot] = report.kernel;
            self.dispatch[slot] = report.dispatch;
            self.wake[slot] = report.wake;
        }
    }

    /// Median of the kernel-time reservoir without consuming the stats —
    /// the tier layer's promotion evidence, read mid-window.
    pub(crate) fn kernel_p50(&self) -> Duration {
        let mut sorted = self.kernel.clone();
        sorted.sort_unstable();
        percentile(&sorted, 50.0)
    }

    pub(crate) fn report(
        mut self,
        elapsed: Duration,
        depth: usize,
        threads: usize,
        strategy: Strategy,
    ) -> BatchReport {
        self.kernel.sort_unstable();
        self.dispatch.sort_unstable();
        self.wake.sort_unstable();
        BatchReport {
            inputs: self.count,
            elapsed,
            depth,
            threads,
            strategy,
            tier: KernelTier::Fixed,
            promotions: 0,
            kernel_total: self.kernel_total,
            kernel_p50: percentile(&self.kernel, 50.0),
            kernel_p99: percentile(&self.kernel, 99.0),
            dispatch_p50: percentile(&self.dispatch, 50.0),
            dispatch_p99: percentile(&self.dispatch, 99.0),
            wake_p50: percentile(&self.wake, 50.0),
            wake_p99: percentile(&self.wake, 99.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_stats_stay_bounded_for_unbounded_streams() {
        // An unbounded stream must run in O(1) memory: past the reservoir
        // bound the sample vectors stop growing while the exact counters
        // keep counting.
        let mut stats = BatchStats::default();
        let total = MAX_BATCH_SAMPLES + 1_000;
        for i in 0..total {
            let kernel = Duration::from_nanos(1 + i as u64);
            stats.record(&ExecutionReport {
                elapsed: kernel * 2,
                kernel,
                dispatch: kernel,
                wake: kernel / 2,
                threads: 1,
                strategy: Strategy::RowSplitStatic,
            });
        }
        assert_eq!(stats.count, total);
        assert_eq!(stats.kernel.len(), MAX_BATCH_SAMPLES);
        assert_eq!(stats.dispatch.len(), MAX_BATCH_SAMPLES);
        let report = stats.report(Duration::from_secs(1), 2, 1, Strategy::RowSplitStatic);
        assert_eq!(report.inputs, total);
        assert!(report.kernel_p50 <= report.kernel_p99);
        assert!(report.kernel_p99 <= Duration::from_nanos(total as u64));
        assert!(report.wake_p50 <= report.wake_p99);
        assert!(report.wake_p99 <= report.dispatch_p99);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 100.0), Duration::from_millis(100));
        let one = [Duration::from_millis(7)];
        assert_eq!(percentile(&one, 50.0), one[0]);
        assert_eq!(percentile(&one, 99.0), one[0]);
    }

    fn report_with(inputs: usize, elapsed: Duration) -> BatchReport {
        BatchReport {
            inputs,
            elapsed,
            depth: 1,
            threads: 1,
            strategy: Strategy::RowSplitStatic,
            tier: KernelTier::Fixed,
            promotions: 0,
            kernel_total: Duration::ZERO,
            kernel_p50: Duration::ZERO,
            kernel_p99: Duration::ZERO,
            dispatch_p50: Duration::ZERO,
            dispatch_p99: Duration::ZERO,
            wake_p50: Duration::ZERO,
            wake_p99: Duration::ZERO,
        }
    }

    #[test]
    fn throughput_is_zero_for_empty_batches() {
        // An empty batch has nothing per second, whatever the clock says —
        // including a nonzero elapsed (a stream opened, fed nothing, and
        // finished later must not report infinite or negative-zero rates).
        assert_eq!(report_with(0, Duration::ZERO).throughput(), 0.0);
        assert_eq!(report_with(0, Duration::from_millis(5)).throughput(), 0.0);
    }

    #[test]
    fn throughput_is_zero_for_zero_duration_batches() {
        // A batch whose wall clock rounds to zero must not divide by it.
        let r = report_with(17, Duration::ZERO);
        assert_eq!(r.throughput(), 0.0);
        assert!(r.throughput().is_finite());
        // The regular case still computes a rate.
        let r = report_with(10, Duration::from_secs(2));
        assert!((r.throughput() - 5.0).abs() < 1e-9);
    }
}
