//! Unit tests for the single-launch layer (split out of `launch.rs` to
//! keep each engine layer file readable).

use crate::engine::JitSpmmBuilder;
use crate::error::JitSpmmError;
use crate::runtime::WorkerPool;
use crate::schedule::Strategy;
use jitspmm_asm::CpuFeatures;
use jitspmm_sparse::generate;
use jitspmm_sparse::DenseMatrix;

fn host_ok() -> bool {
    let f = CpuFeatures::detect();
    f.avx && f.has_fma()
}

#[test]
fn shape_mismatch_is_detected() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(50, 60, 300, 1);
    let engine = JitSpmmBuilder::new().threads(1).build(&a, 8).unwrap();
    let wrong_rows = DenseMatrix::<f32>::zeros(10, 8);
    assert!(engine.execute(&wrong_rows).is_err());
    let wrong_cols = DenseMatrix::<f32>::zeros(60, 9);
    assert!(engine.execute(&wrong_cols).is_err());
    let x = DenseMatrix::<f32>::zeros(60, 8);
    let mut bad_y = DenseMatrix::<f32>::zeros(50, 9);
    assert!(engine.execute_into(&x, &mut bad_y).is_err());
    assert!(engine.execute_into_spawning(&x, &mut bad_y).is_err());
}

#[test]
fn repeated_execution_is_consistent() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(300, 300, 5_000, 6);
    let x = DenseMatrix::random(300, 32, 1);
    let engine = JitSpmmBuilder::new().threads(4).build(&a, 32).unwrap();
    let (y1, _) = engine.execute(&x).unwrap();
    let (y2, _) = engine.execute(&x).unwrap();
    assert_eq!(y1, y2);
}

#[test]
fn execute_recycles_output_buffers() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(128, 128, 1_000, 4);
    let x = DenseMatrix::random(128, 8, 1);
    let engine = JitSpmmBuilder::new().threads(2).build(&a, 8).unwrap();
    let first_ptr = {
        let (y, _) = engine.execute(&x).unwrap();
        y.as_ptr()
    };
    // The buffer from the dropped result must be reused verbatim.
    let (y2, _) = engine.execute(&x).unwrap();
    assert_eq!(y2.as_ptr(), first_ptr, "steady-state execute must not allocate");
    assert!(y2.approx_eq(&a.spmm_reference(&x), 1e-4));
    // Results reused after stale (non-zeroed) recycling are still exact:
    // run a second input through the same buffer.
    drop(y2);
    let x2 = DenseMatrix::random(128, 8, 99);
    let (y3, _) = engine.execute(&x2).unwrap();
    assert!(y3.approx_eq(&a.spmm_reference(&x2), 1e-4));
}

#[test]
fn reports_split_dispatch_from_kernel_time() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(256, 256, 4_000, 2);
    let x = DenseMatrix::random(256, 16, 3);
    let engine = JitSpmmBuilder::new().threads(2).build(&a, 16).unwrap();
    let mut y = DenseMatrix::zeros(256, 16);
    let report = engine.execute_into(&x, &mut y).unwrap();
    assert!(report.kernel <= report.elapsed);
    assert_eq!(report.elapsed, report.kernel + report.dispatch);
    let legacy = engine.execute_into_spawning(&x, &mut y).unwrap();
    assert!(legacy.kernel <= legacy.elapsed);
}

#[test]
fn execute_async_matches_blocking_execute() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::rmat::<f32>(8, 4_000, generate::RmatConfig::GRAPH500, 3);
    let x = DenseMatrix::random(a.ncols(), 16, 9);
    for strategy in [Strategy::RowSplitStatic, Strategy::row_split_dynamic_default()] {
        let engine = JitSpmmBuilder::new()
            .strategy(strategy)
            .threads(2)
            .pool(WorkerPool::new(2))
            .build(&a, 16)
            .unwrap();
        let (y_blocking, _) = engine.execute(&x).unwrap();
        let y_blocking = y_blocking.into_dense();
        engine.pool().scope(|scope| {
            let handle = engine.execute_async(scope, &x).unwrap();
            let (y_async, report) = handle.wait();
            assert_eq!(y_async, y_blocking, "strategy {strategy}");
            assert_eq!(report.threads, 2);
            assert_eq!(report.elapsed, report.kernel + report.dispatch);
        });
    }
}

#[test]
fn concurrent_async_launches_of_one_engine_are_rejected() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(300, 300, 3_000, 4);
    let x = DenseMatrix::random(300, 8, 5);
    let engine = JitSpmmBuilder::new().threads(2).pool(WorkerPool::new(2)).build(&a, 8).unwrap();
    engine.pool().scope(|scope| {
        let handle = engine.execute_async(scope, &x).unwrap();
        // The dynamic counter is engine-owned; a second launch must be
        // refused (not deadlock) while the first handle is outstanding.
        assert!(matches!(
            engine.execute_async(scope, &x).unwrap_err(),
            JitSpmmError::LaunchInProgress
        ));
        let (y, _) = handle.wait();
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
        // With the handle gone the engine accepts launches again.
        let (y2, _) = engine.execute_async(scope, &x).unwrap().wait();
        assert!(y2.approx_eq(&a.spmm_reference(&x), 1e-4));
    });
}

#[test]
fn blocking_execute_with_outstanding_handle_errors_instead_of_deadlocking() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(200, 200, 2_000, 9);
    let x = DenseMatrix::random(200, 8, 10);
    let engine = JitSpmmBuilder::new().threads(2).pool(WorkerPool::new(2)).build(&a, 8).unwrap();
    engine.pool().scope(|scope| {
        let handle = engine.execute_async(scope, &x).unwrap();
        // Same thread, launch lock held by `handle`: a blocking execute
        // must fail fast, not self-deadlock on the launch mutex.
        assert!(matches!(engine.execute(&x).unwrap_err(), JitSpmmError::LaunchInProgress));
        let mut y = DenseMatrix::zeros(200, 8);
        assert!(matches!(
            engine.execute_into(&x, &mut y).unwrap_err(),
            JitSpmmError::LaunchInProgress
        ));
        assert!(matches!(
            engine.execute_single_thread(&x, &mut y).unwrap_err(),
            JitSpmmError::LaunchInProgress
        ));
        let (ya, _) = handle.wait();
        assert!(ya.approx_eq(&a.spmm_reference(&x), 1e-4));
    });
    // Lock released: blocking execution works again.
    let (yb, _) = engine.execute(&x).unwrap();
    assert!(yb.approx_eq(&a.spmm_reference(&x), 1e-4));
}

#[test]
fn two_engines_overlap_on_disjoint_lanes() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let pool = WorkerPool::new(2);
    let a = generate::uniform::<f32>(400, 400, 5_000, 6);
    let b = generate::rmat::<f32>(9, 6_000, generate::RmatConfig::WEB, 7);
    let ea = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, 8).unwrap();
    let eb = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, 8).unwrap();
    let xa = DenseMatrix::random(a.ncols(), 8, 1);
    let xb = DenseMatrix::random(b.ncols(), 8, 2);
    pool.scope(|scope| {
        for _ in 0..20 {
            let ha = ea.execute_async(scope, &xa).unwrap();
            let hb = eb.execute_async(scope, &xb).unwrap();
            let (ya, _) = ha.wait();
            let (yb, _) = hb.wait();
            assert!(ya.approx_eq(&a.spmm_reference(&xa), 1e-4));
            assert!(yb.approx_eq(&b.spmm_reference(&xb), 1e-4));
        }
    });
}

#[test]
fn dropped_handle_joins_and_recycles_the_buffer() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(256, 256, 3_000, 8);
    let x = DenseMatrix::random(256, 8, 3);
    let engine = JitSpmmBuilder::new().threads(2).pool(WorkerPool::new(2)).build(&a, 8).unwrap();
    let first_ptr = engine.pool().scope(|scope| {
        let handle = engine.execute_async(scope, &x).unwrap();
        handle.y.as_ref().unwrap().as_ptr()
        // Dropped without wait: must join and return the buffer.
    });
    let (y, _) = engine.execute(&x).unwrap();
    assert_eq!(y.as_ptr(), first_ptr, "abandoned launch must recycle its output buffer");
    assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
}

#[test]
fn leaked_execution_handle_is_joined_by_the_scope() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(128, 128, 1_200, 6);
    let x = DenseMatrix::random(128, 8, 7);
    let engine = JitSpmmBuilder::new().threads(2).pool(WorkerPool::new(2)).build(&a, 8).unwrap();
    engine.pool().scope(|scope| {
        // `mem::forget` is safe: the scope must join the kernel job
        // before `x`, the engine or the matrix can be freed.
        std::mem::forget(engine.execute_async(scope, &x).unwrap());
    });
    // The leaked handle kept the launch lock (and leaked the output
    // buffer), so the engine refuses further launches — safely.
    assert!(matches!(engine.execute(&x).unwrap_err(), JitSpmmError::LaunchInProgress));
}

#[test]
fn execute_async_on_inline_pool_completes_eagerly() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(100, 100, 900, 2);
    let x = DenseMatrix::random(100, 4, 4);
    let engine = JitSpmmBuilder::new().threads(2).pool(WorkerPool::inline()).build(&a, 4).unwrap();
    engine.pool().scope(|scope| {
        let handle = engine.execute_async(scope, &x).unwrap();
        assert!(handle.is_done());
        let (y, _) = handle.wait();
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
    });
}

#[test]
fn execute_async_rejects_bad_shapes() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(50, 60, 300, 1);
    let engine = JitSpmmBuilder::new().threads(1).build(&a, 8).unwrap();
    let wrong = DenseMatrix::<f32>::zeros(10, 8);
    engine.pool().scope(|scope| {
        assert!(matches!(
            engine.execute_async(scope, &wrong).unwrap_err(),
            JitSpmmError::ShapeMismatch(_)
        ));
    });
}

#[test]
fn spawning_path_matches_pooled_path() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::rmat::<f32>(8, 3_000, generate::RmatConfig::GRAPH500, 8);
    let x = DenseMatrix::random(a.ncols(), 16, 2);
    for strategy in [Strategy::RowSplitStatic, Strategy::row_split_dynamic_default()] {
        let engine = JitSpmmBuilder::new().strategy(strategy).threads(3).build(&a, 16).unwrap();
        let mut y_spawn = DenseMatrix::zeros(a.nrows(), 16);
        engine.execute_into_spawning(&x, &mut y_spawn).unwrap();
        let (y_pool, _) = engine.execute(&x).unwrap();
        assert_eq!(y_pool, y_spawn, "strategy {strategy}");
    }
}
