//! Unit tests for the batch pipeline layer (split out of `batch.rs` to
//! keep each engine layer file readable).

#![allow(clippy::module_name_repetitions)]

use super::batch::*;
use crate::engine::JitSpmmBuilder;
use crate::error::JitSpmmError;
use crate::runtime::WorkerPool;
use crate::schedule::Strategy;
use jitspmm_asm::CpuFeatures;
use jitspmm_sparse::generate;
use jitspmm_sparse::DenseMatrix;
use std::time::Duration;

fn host_ok() -> bool {
    let f = CpuFeatures::detect();
    f.avx && f.has_fma()
}

#[test]
fn execute_batch_matches_per_input_execute_exactly() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::rmat::<f32>(8, 3_000, generate::RmatConfig::GRAPH500, 6);
    let inputs: Vec<DenseMatrix<f32>> =
        (0..7).map(|seed| DenseMatrix::random(a.ncols(), 8, 100 + seed)).collect();
    for strategy in [Strategy::RowSplitStatic, Strategy::RowSplitDynamic { batch: 32 }] {
        let engine = JitSpmmBuilder::new()
            .strategy(strategy)
            .threads(2)
            .pool(WorkerPool::new(2))
            .build(&a, 8)
            .unwrap();
        // Per-row arithmetic is fixed by the compiled kernel, so the
        // batched pipeline must be bit-identical to the blocking path.
        let expected: Vec<DenseMatrix<f32>> =
            inputs.iter().map(|x| engine.execute(x).unwrap().0.into_dense()).collect();
        let (outputs, report) =
            engine.pool().scope(|scope| engine.execute_batch(scope, &inputs)).unwrap();
        assert_eq!(outputs.len(), inputs.len());
        for (i, (y, e)) in outputs.iter().zip(&expected).enumerate() {
            assert_eq!(**y, *e, "input {i}, strategy {strategy}");
        }
        assert_eq!(report.inputs, inputs.len());
        // Auto depth: the default pipeline on multi-core hosts, the
        // sequential fast path (depth 1, single-lane) on single-core
        // ones — and the reported lane count must match what ran.
        assert!(report.depth == DEFAULT_BATCH_DEPTH || report.depth == 1);
        assert_eq!(report.threads, if report.depth == 1 { 1 } else { 2 });
        assert!(report.kernel_p50 <= report.kernel_p99);
        assert!(report.kernel_total >= report.kernel_p99);
        assert!(report.throughput() > 0.0);
    }
}

#[test]
fn execute_batch_handles_empty_and_single_input_batches() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(90, 90, 700, 4);
    let engine = JitSpmmBuilder::new().threads(2).build(&a, 4).unwrap();
    let (outputs, report) = engine.pool().scope(|scope| engine.execute_batch(scope, &[])).unwrap();
    assert!(outputs.is_empty());
    assert_eq!(report.inputs, 0);
    assert_eq!(report.elapsed, Duration::ZERO);
    assert_eq!(report.throughput(), 0.0);

    let one = [DenseMatrix::random(90, 4, 9)];
    let (outputs, report) = engine.pool().scope(|scope| engine.execute_batch(scope, &one)).unwrap();
    assert_eq!(outputs.len(), 1);
    assert_eq!(report.inputs, 1);
    assert_eq!(report.depth, 1, "a single-input batch needs no extra slots");
    assert!(outputs[0].approx_eq(&a.spmm_reference(&one[0]), 1e-4));
}

#[test]
fn execute_batch_rejects_mismatched_inputs_up_front() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(80, 80, 600, 5);
    let engine = JitSpmmBuilder::new().threads(2).build(&a, 8).unwrap();
    let inputs = vec![
        DenseMatrix::random(80, 8, 1),
        DenseMatrix::random(80, 9, 2), // wrong d
        DenseMatrix::random(80, 8, 3),
    ];
    let err = engine.pool().scope(|scope| engine.execute_batch(scope, &inputs)).unwrap_err();
    match err {
        JitSpmmError::ShapeMismatch(msg) => {
            assert!(msg.contains("batch input 1"), "message should name the input: {msg}")
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    // Nothing launched, nothing corrupted: the engine still executes.
    let x = DenseMatrix::random(80, 8, 4);
    let (y, _) = engine.execute(&x).unwrap();
    assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
}

#[test]
fn batch_stream_survives_a_mismatched_push() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(100, 100, 900, 7);
    let engine = JitSpmmBuilder::new()
        .threads(2)
        .pool(WorkerPool::new(2))
        .strategy(Strategy::RowSplitDynamic { batch: 16 })
        .build(&a, 8)
        .unwrap();
    let good: Vec<DenseMatrix<f32>> =
        (0..5).map(|seed| DenseMatrix::random(100, 8, 40 + seed)).collect();
    let bad = DenseMatrix::<f32>::zeros(100, 3);
    engine.pool().scope(|scope| {
        let mut stream = engine.batch_stream(scope, 2).unwrap();
        let mut completed = Vec::new();
        for (i, x) in good.iter().enumerate() {
            if i == 2 {
                // A mid-stream bad input must error without submitting
                // or disturbing the launches in flight.
                assert!(matches!(stream.push(&bad).unwrap_err(), JitSpmmError::ShapeMismatch(_)));
            }
            if let Some(done) = stream.push(x).unwrap() {
                completed.push(done);
            }
        }
        let (rest, report) = stream.finish();
        completed.extend(rest);
        assert_eq!(report.inputs, good.len());
        for ((y, _), x) in completed.iter().zip(&good) {
            assert!(y.approx_eq(&a.spmm_reference(x), 1e-4));
        }
    });
}

#[test]
fn push_owned_matches_borrowed_push_exactly() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::rmat::<f32>(8, 2_500, generate::RmatConfig::GRAPH500, 12);
    for strategy in [Strategy::RowSplitStatic, Strategy::RowSplitDynamic { batch: 16 }] {
        let engine = JitSpmmBuilder::new()
            .strategy(strategy)
            .threads(2)
            .pool(WorkerPool::new(2))
            .build(&a, 8)
            .unwrap();
        let inputs: Vec<DenseMatrix<f32>> =
            (0..6).map(|seed| DenseMatrix::random(a.ncols(), 8, 500 + seed)).collect();
        let expected: Vec<DenseMatrix<f32>> =
            inputs.iter().map(|x| engine.execute(x).unwrap().0.into_dense()).collect();
        // Owned pushes through an explicit depth-2 pipeline (the real
        // queue on every host) must be bit-identical to the blocking
        // path, in submission order.
        engine.pool().scope(|scope| {
            let mut stream = engine.batch_stream(scope, 2).unwrap();
            let mut outputs = Vec::new();
            for x in &inputs {
                if let Some((y, _)) = stream.push_owned(x.clone()).unwrap() {
                    outputs.push(y.into_dense());
                }
            }
            let (rest, report) = stream.finish();
            outputs.extend(rest.into_iter().map(|(y, _)| y.into_dense()));
            assert_eq!(outputs, expected, "strategy {strategy}");
            assert_eq!(report.inputs, inputs.len());
        });
    }
}

#[test]
fn push_owned_from_a_producer_thread() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    // The motivating shape: a producer thread creates inputs that never
    // live in the consumer's 'env, handing them over by value through a
    // channel. The stream must keep each one alive until its launch has
    // been joined.
    let a = generate::uniform::<f32>(120, 120, 1_100, 3);
    let engine = JitSpmmBuilder::new().threads(2).pool(WorkerPool::new(2)).build(&a, 8).unwrap();
    let expected: Vec<DenseMatrix<f32>> = (0..8)
        .map(|seed| {
            engine.execute(&DenseMatrix::random(120, 8, 900 + seed)).unwrap().0.into_dense()
        })
        .collect();
    let (tx, rx) = std::sync::mpsc::sync_channel::<DenseMatrix<f32>>(2);
    std::thread::scope(|ts| {
        ts.spawn(move || {
            for seed in 0..8 {
                tx.send(DenseMatrix::random(120, 8, 900 + seed)).unwrap();
            }
        });
        engine.pool().scope(|scope| {
            let mut stream = engine.batch_stream(scope, 2).unwrap();
            let mut outputs = Vec::new();
            for x in rx {
                if let Some((y, _)) = stream.push_owned(x).unwrap() {
                    outputs.push(y.into_dense());
                }
            }
            let (rest, _) = stream.finish();
            outputs.extend(rest.into_iter().map(|(y, _)| y.into_dense()));
            assert_eq!(outputs, expected);
        });
    });
}

#[test]
fn push_owned_rejects_bad_shapes_without_disturbing_the_pipeline() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(70, 70, 500, 6);
    let engine = JitSpmmBuilder::new().threads(1).build(&a, 4).unwrap();
    let good: Vec<DenseMatrix<f32>> = (0..3).map(|seed| DenseMatrix::random(70, 4, seed)).collect();
    engine.pool().scope(|scope| {
        let mut stream = engine.batch_stream(scope, 2).unwrap();
        let mut done = 0usize;
        for (i, x) in good.iter().enumerate() {
            if i == 1 {
                assert!(matches!(
                    stream.push_owned(DenseMatrix::<f32>::zeros(70, 9)).unwrap_err(),
                    JitSpmmError::ShapeMismatch(_)
                ));
            }
            if stream.push_owned(x.clone()).unwrap().is_some() {
                done += 1;
            }
        }
        let (rest, report) = stream.finish();
        done += rest.len();
        assert_eq!(done, good.len());
        assert_eq!(report.inputs, good.len());
    });
}

#[test]
fn open_batch_stream_blocks_other_launches_and_releases_them() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(70, 70, 500, 8);
    let engine = JitSpmmBuilder::new().threads(1).build(&a, 4).unwrap();
    let x = DenseMatrix::random(70, 4, 3);
    engine.pool().scope(|scope| {
        let mut stream = engine.batch_stream(scope, 2).unwrap();
        // The stream holds the launch lock: a same-thread execute must
        // fail fast instead of self-deadlocking.
        assert!(matches!(engine.execute(&x).unwrap_err(), JitSpmmError::LaunchInProgress));
        assert!(stream.push(&x).unwrap().is_none());
        let (rest, _) = stream.finish();
        assert_eq!(rest.len(), 1);
    });
    // Stream gone: the engine accepts launches again.
    let (y, _) = engine.execute(&x).unwrap();
    assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
}

#[test]
fn dropped_batch_stream_joins_in_flight_launches() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(150, 150, 2_000, 9);
    let engine = JitSpmmBuilder::new().threads(2).pool(WorkerPool::new(2)).build(&a, 8).unwrap();
    let inputs: Vec<DenseMatrix<f32>> =
        (0..3).map(|seed| DenseMatrix::random(150, 8, 60 + seed)).collect();
    engine.pool().scope(|scope| {
        let mut stream = engine.batch_stream(scope, 2).unwrap();
        for x in &inputs {
            let _ = stream.push(x).unwrap();
        }
        assert!(stream.in_flight() > 0);
        // Dropped mid-batch: the launches join, buffers recycle.
        drop(stream);
    });
    let x = DenseMatrix::random(150, 8, 99);
    let (y, _) = engine.execute(&x).unwrap();
    assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
}

#[test]
fn batch_slot_kernels_are_cached_across_batches() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(120, 120, 1_000, 10);
    let engine = JitSpmmBuilder::new()
        .strategy(Strategy::RowSplitDynamic { batch: 16 })
        .threads(2)
        .pool(WorkerPool::new(2))
        .build(&a, 8)
        .unwrap();
    let inputs: Vec<DenseMatrix<f32>> =
        (0..4).map(|seed| DenseMatrix::random(120, 8, seed)).collect();
    let expected: Vec<DenseMatrix<f32>> =
        inputs.iter().map(|x| engine.execute(x).unwrap().0.into_dense()).collect();
    for _ in 0..3 {
        // Explicit depth 2 forces the real pipeline on any host.
        engine.pool().scope(|scope| {
            let mut stream = engine.batch_stream(scope, 2).unwrap();
            let mut outputs = Vec::new();
            for x in &inputs {
                if let Some((y, _)) = stream.push(x).unwrap() {
                    outputs.push(y.into_dense());
                }
            }
            let (rest, _) = stream.finish();
            outputs.extend(rest.into_iter().map(|(y, _)| y.into_dense()));
            assert_eq!(outputs, expected);
        });
    }
    // Depth 2 needs exactly one spare dynamic kernel, compiled once.
    assert_eq!(crate::runtime::pool::lock(&engine.active().batch_kernels).len(), 1);
}

#[test]
fn execute_batch_on_inline_pool_runs_eagerly() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(60, 60, 400, 11);
    let engine = JitSpmmBuilder::new().threads(2).pool(WorkerPool::inline()).build(&a, 4).unwrap();
    let inputs: Vec<DenseMatrix<f32>> =
        (0..5).map(|seed| DenseMatrix::random(60, 4, seed)).collect();
    let (outputs, report) =
        engine.pool().scope(|scope| engine.execute_batch(scope, &inputs)).unwrap();
    assert_eq!(outputs.len(), 5);
    assert_eq!(report.inputs, 5);
    for (x, y) in inputs.iter().zip(&outputs) {
        assert!(y.approx_eq(&a.spmm_reference(x), 1e-4));
    }
}
