//! Single-launch execution paths: the launch lock, the blocking `execute*`
//! family, and the asynchronous [`ExecutionHandle`].
//!
//! Every path here snapshots the engine's active [`EngineCore`] once, under
//! the launch lock, and runs entirely against that snapshot — so a tier
//! promotion ([`crate::engine::tier`]) swapping the core between launches
//! can never change the kernel, partition or counter a launch already
//! started with.

use crate::engine::compile::{EngineCore, JitSpmm};
use crate::engine::report::ExecutionReport;
use crate::error::JitSpmmError;
use crate::kernel::KernelKind;
use crate::runtime::dispatch::{self, KernelJob};
use crate::runtime::{PoolScope, PooledMatrix, ScopedJobHandle};
use crate::schedule::Strategy;
use jitspmm_sparse::{DenseMatrix, Scalar};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, MutexGuard, TryLockError};
use std::time::{Duration, Instant};

/// A small process-unique id for the current thread, used to detect a thread
/// re-acquiring an engine's launch lock it already holds (`std::sync::Mutex`
/// would deadlock). `ThreadId::as_u64` is unstable, so mint our own.
fn launch_thread_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TOKEN.with(|token| *token)
}

/// Holds an engine's launch lock for the duration of one launch, recording
/// which thread holds it so a same-thread re-entry (e.g. `execute` while an
/// [`ExecutionHandle`] is outstanding) fails with
/// [`JitSpmmError::LaunchInProgress`] instead of deadlocking.
pub(crate) struct LaunchGuard<'a> {
    owner: &'a AtomicU64,
    _guard: MutexGuard<'a, ()>,
}

impl Drop for LaunchGuard<'_> {
    fn drop(&mut self) {
        // Cleared while the mutex is still held, so a racing thread can at
        // worst read 0 and fall through to a blocking lock that is about to
        // succeed.
        self.owner.store(0, Ordering::Release);
    }
}

impl<'a, T: Scalar> JitSpmm<'a, T> {
    /// Begin a kernel launch: serialize against other launches of this
    /// engine and reset the per-launch dispatch state. The returned guard
    /// must be held until the launch completes.
    ///
    /// Invariant: the [`crate::DynamicCounter`] is core-owned shared state
    /// whose address is embedded in dynamically dispatched kernels, so it
    /// must be at row zero whenever such a kernel starts — whether the
    /// launch goes through the pool, the legacy spawning path, the
    /// single-thread path or the emulator. To keep that invariant in one
    /// place the reset happens here, unconditionally, before *every* launch
    /// (for static-range kernels it is a harmless store to memory nothing
    /// reads), and under the launch lock, so a concurrent launch of the same
    /// engine can never interleave a reset with a running claim loop.
    /// Holding the lock also pins the active core: the tier layer only swaps
    /// it while holding this lock itself, so a snapshot taken under the
    /// guard stays the launching core for the guard's whole lifetime.
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::LaunchInProgress`] if the calling thread
    /// already holds the launch lock (it is waiting on — or holding — an
    /// [`ExecutionHandle`] of this engine; blocking would self-deadlock),
    /// or, with `blocking` false, if any other launch is in flight. With
    /// `blocking` true a launch held by *another* thread is waited for, as
    /// the blocking execute paths always have.
    pub(crate) fn begin_launch(&self, blocking: bool) -> Result<LaunchGuard<'_>, JitSpmmError> {
        let guard = match self.launch.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => {
                let same_thread =
                    self.launch_owner.load(Ordering::Acquire) == launch_thread_token();
                if !blocking || same_thread {
                    return Err(JitSpmmError::LaunchInProgress);
                }
                crate::runtime::pool::lock(&self.launch)
            }
        };
        self.launch_owner.store(launch_thread_token(), Ordering::Release);
        self.active().counter.reset();
        Ok(LaunchGuard { owner: &self.launch_owner, _guard: guard })
    }

    /// Compute `Y = A * X` into an output buffer borrowed from the engine's
    /// internal pool.
    ///
    /// The returned [`PooledMatrix`] dereferences to [`DenseMatrix`];
    /// dropping it hands the buffer back, so a steady-state loop of
    /// `execute` calls performs **no allocation and no thread spawning**.
    /// The kernels overwrite every output element (empty rows included), so
    /// recycled buffers are not re-zeroed either. To manage the output
    /// buffer yourself — e.g. to reuse one across engines — see
    /// [`JitSpmm::execute_into`].
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] if `x` is not
    /// `A.ncols() x d`.
    pub fn execute(
        &self,
        x: &DenseMatrix<T>,
    ) -> Result<(PooledMatrix<T>, ExecutionReport), JitSpmmError> {
        // Validate, then lock, then allocate — the ordering every launch
        // path shares: a call that fails shape validation or blocks behind
        // another launch must not pay the buffer-pool round trip first.
        self.check_input_shape(x)?;
        let launch = self.begin_launch(true)?;
        let core = self.active();
        let mut y = PooledMatrix::new(
            self.output_pool.acquire(self.matrix.nrows(), self.d),
            Arc::clone(&self.output_pool),
        );
        let report = self.launch_kernel(&launch, &core, x, &mut y);
        Ok((y, report))
    }

    /// Compute `Y = A * X` without blocking: the kernel launch is submitted
    /// through `scope` to its worker pool and runs in the background while
    /// this call returns. Join it with [`ExecutionHandle::wait`] to obtain
    /// the result and its [`ExecutionReport`]; the waiting thread steals
    /// remaining kernel tasks, so submit-then-wait costs no more than the
    /// blocking [`JitSpmm::execute`].
    ///
    /// The job is capped to this engine's lane count
    /// ([`crate::JitSpmmBuilder::threads`]), so several engines sharing a
    /// pool can execute **concurrently on disjoint worker subsets** — submit
    /// one handle per engine, then wait on all of them, and the launches
    /// overlap instead of serializing:
    ///
    /// ```
    /// use jitspmm::{JitSpmmBuilder, WorkerPool};
    /// use jitspmm_sparse::{generate, DenseMatrix};
    ///
    /// # fn main() -> Result<(), jitspmm::JitSpmmError> {
    /// let pool = WorkerPool::new(2);
    /// let a = generate::uniform::<f32>(200, 200, 2_000, 1);
    /// let b = generate::uniform::<f32>(150, 200, 1_500, 2);
    /// let eng_a = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, 8)?;
    /// let eng_b = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, 8)?;
    /// let x = DenseMatrix::random(200, 8, 3);
    /// pool.scope(|scope| -> Result<(), jitspmm::JitSpmmError> {
    ///     let ha = eng_a.execute_async(scope, &x)?; // both jobs now in flight,
    ///     let hb = eng_b.execute_async(scope, &x)?; // one worker lane each
    ///     let (ya, _) = ha.wait();
    ///     let (yb, _) = hb.wait();
    ///     assert!(ya.approx_eq(&a.spmm_reference(&x), 1e-4));
    ///     assert!(yb.approx_eq(&b.spmm_reference(&x), 1e-4));
    ///     Ok(())
    /// })?;
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// The launch is anchored to a [`PoolScope`] (see
    /// [`crate::WorkerPool::scope`]) because the job dereferences borrowed
    /// data — the compiled kernel, the CSR arrays its code embeds, and `x` —
    /// and memory safety must not depend on the handle's destructor running
    /// ([`std::mem::forget`] is safe): the scope joins every launch before
    /// it returns, even if the handle was dropped or leaked. Dropping the
    /// handle without waiting joins the job right away and recycles the
    /// output buffer; leaking it is safe but leaks the buffer and keeps the
    /// engine's launch slot occupied forever — non-blocking launches (and
    /// blocking ones from the leaking thread) fail with
    /// [`JitSpmmError::LaunchInProgress`], while blocking launches from
    /// *other* threads wait for a launch that never ends. The job runs on
    /// `scope`'s pool — normally the engine's own, as in the example; the
    /// lane cap applies to whichever pool the scope wraps.
    ///
    /// One engine can only run one launch at a time (the dynamic row-claim
    /// counter is core-owned state embedded in the generated code), so a
    /// second `execute_async` on the *same* engine while a handle is
    /// outstanding returns [`JitSpmmError::LaunchInProgress`] instead of
    /// blocking — blocking would deadlock a caller that holds the first
    /// handle on the same thread. The blocking paths ([`JitSpmm::execute`]
    /// and friends) return the same error when the *calling thread* already
    /// holds an outstanding handle (they still block, as always, on
    /// launches held by other threads). On a zero-worker
    /// ([`crate::WorkerPool::inline`]) pool the kernel runs to completion
    /// inside this call.
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] if `x` is not `A.ncols() x d`
    /// and [`JitSpmmError::LaunchInProgress`] if another launch of this
    /// engine has not completed yet.
    pub fn execute_async<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        x: &'env DenseMatrix<T>,
    ) -> Result<ExecutionHandle<'scope, T>, JitSpmmError> {
        // Validate, then lock, then allocate: a rejected call (bad shape, or
        // the expected busy-poll LaunchInProgress answer) must not pay a
        // buffer-pool round trip for an output it will never produce.
        self.check_input_shape(x)?;
        let guard = self.begin_launch(false)?;
        let core = self.active();
        let mut y = PooledMatrix::new(
            self.output_pool.acquire(self.matrix.nrows(), self.d),
            Arc::clone(&self.output_pool),
        );
        let job = KernelJob::new(&core.kernel, &core.partition.ranges, x.as_ptr(), y.as_mut_ptr());
        let spec = job.spec(core.kernel.kind(), self.threads).prefer_node(self.node);
        // Owned through `Box::into_raw`/`from_raw` rather than as a `Box`
        // field: workers hold a raw pointer to the payload, which moving a
        // box (with every move of the handle) would invalidate under the
        // aliasing rules.
        let payload: *mut KernelJob<T> = Box::into_raw(Box::new(job));
        let start = Instant::now();
        // SAFETY: the payload allocation and the output buffer are owned by
        // the returned handle — released only after its drop has joined the
        // job, and leaked (never freed) if the handle is leaked — while the
        // kernel and partition live in the core snapshot the handle also
        // owns, and the engine-borrowed CSR arrays and `x` are borrowed for
        // 'env, which cannot end before the scope has joined the job. Shapes
        // were checked above and the counter reset under the launch lock
        // held in `guard`.
        let job =
            unsafe { scope.submit_erased(spec, payload as *const (), KernelJob::<T>::erased()) };
        let strategy = core.strategy;
        Ok(ExecutionHandle {
            job: Some(job),
            payload,
            y: Some(y),
            start,
            threads: self.threads,
            strategy,
            _core: core,
            _launch: guard,
        })
    }

    /// [`JitSpmm::execute_async`] with raw operand pointers and **no** pooled
    /// output: the launch writes `A.nrows() x d` elements starting at `y`.
    /// This is the stitch-into-range hook for the sharded engine
    /// ([`crate::shard::ShardedSpmm`]), whose shard kernels write disjoint
    /// row ranges of one shared full-size output — a shard compiled for rows
    /// `start..end` of the full matrix is handed `y_full + start * d` and
    /// its rows land exactly in place, no copy.
    ///
    /// Blocks behind a launch held by another thread (like the blocking
    /// execute family: concurrent sharded executes acquire their shard locks
    /// in shard order, so ordered blocking cannot deadlock) and returns
    /// [`JitSpmmError::LaunchInProgress`] for a same-thread re-entry. Join
    /// with [`ExecutionHandle::wait_report`]; [`ExecutionHandle::wait`] would
    /// panic — there is no pooled output to hand back.
    ///
    /// # Safety
    ///
    /// The caller must keep the memory behind `x` (shape `A.ncols() x d`)
    /// and `y` (shape `A.nrows() x d`, exclusive to this launch) alive and
    /// valid until the returned handle has been joined — by
    /// [`ExecutionHandle::wait_report`], by dropping the handle, or by the
    /// scope's own join. Shape validation is the caller's job too.
    pub(crate) unsafe fn execute_async_raw<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        x: *const T,
        y: *mut T,
    ) -> Result<ExecutionHandle<'scope, T>, JitSpmmError> {
        let guard = self.begin_launch(true)?;
        let core = self.active();
        let job = KernelJob::new(&core.kernel, &core.partition.ranges, x, y);
        let spec = job.spec(core.kernel.kind(), self.threads).prefer_node(self.node);
        // Owned through a raw pointer, exactly as in `execute_async`.
        let payload: *mut KernelJob<T> = Box::into_raw(Box::new(job));
        let start = Instant::now();
        // SAFETY: payload ownership and join discipline as in
        // `execute_async`, with the kernel and partition kept alive by the
        // handle's core snapshot; liveness and exclusivity of `x`/`y` are
        // the caller's contract, and the counter was reset under the launch
        // lock held in `guard`.
        let job =
            unsafe { scope.submit_erased(spec, payload as *const (), KernelJob::<T>::erased()) };
        let strategy = core.strategy;
        Ok(ExecutionHandle {
            job: Some(job),
            payload,
            y: None,
            start,
            threads: self.threads,
            strategy,
            _core: core,
            _launch: guard,
        })
    }

    /// Compute `Y = A * X` into an existing output matrix (its previous
    /// contents are overwritten; no zeroing is required beforehand).
    ///
    /// This is the zero-allocation entry point for callers that manage their
    /// own buffers; [`JitSpmm::execute`] achieves the same steady-state cost
    /// by recycling buffers internally.
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] if `x` is not `A.ncols() x d`
    /// or `y` is not `A.nrows() x d`.
    pub fn execute_into(
        &self,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> Result<ExecutionReport, JitSpmmError> {
        self.check_shapes(x, y)?;
        let launch = self.begin_launch(true)?;
        let core = self.active();
        Ok(self.launch_kernel(&launch, &core, x, y))
    }

    /// Dispatch one launch of the snapshotted core's kernel over the pool.
    /// The caller has already validated the shapes and holds the launch lock
    /// (`_launch` proves it, and pins `core` as the active core).
    fn launch_kernel(
        &self,
        _launch: &LaunchGuard<'_>,
        core: &EngineCore<T>,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> ExecutionReport {
        let start = Instant::now();
        // SAFETY: the engine borrows the CSR matrix whose pointers the kernel
        // embeds, the caller checked the shapes, and rows are partitioned
        // disjointly across lanes (statically or via the dynamic counter,
        // reset under the held launch lock).
        let (kernel, wake) = unsafe {
            match core.kernel.kind() {
                KernelKind::DynamicDispatch => dispatch::run_dynamic(
                    &self.pool,
                    &core.kernel,
                    self.threads,
                    x.as_ptr(),
                    y.as_mut_ptr(),
                    self.node,
                ),
                KernelKind::StaticRange => dispatch::run_static(
                    &self.pool,
                    &core.kernel,
                    &core.partition.ranges,
                    self.threads,
                    x.as_ptr(),
                    y.as_mut_ptr(),
                    self.node,
                ),
            }
        };
        let elapsed = start.elapsed();
        let report = ExecutionReport {
            elapsed,
            kernel,
            dispatch: elapsed.saturating_sub(kernel),
            wake,
            threads: self.threads,
            strategy: core.strategy,
        };
        self.tier_observe(&report);
        report
    }

    /// Compute `Y = A * X` by spawning fresh OS threads for this one call —
    /// the pre-pool dispatch path, kept as the baseline for the
    /// `dispatch_overhead` benchmark and for environments where a persistent
    /// pool is undesirable.
    ///
    /// # Errors
    ///
    /// Same shape requirements as [`JitSpmm::execute_into`].
    pub fn execute_into_spawning(
        &self,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> Result<ExecutionReport, JitSpmmError> {
        self.check_shapes(x, y)?;
        let _launch = self.begin_launch(true)?;
        let core = self.active();
        let x_addr = x.as_ptr() as usize;
        let y_addr = y.as_mut_ptr() as usize;
        let busy_ns = AtomicU64::new(0);
        let start = Instant::now();
        match core.kernel.kind() {
            KernelKind::DynamicDispatch => {
                std::thread::scope(|scope| {
                    for _ in 0..self.threads {
                        let busy_ns = &busy_ns;
                        let core = &core;
                        scope.spawn(move || {
                            let lane_start = Instant::now();
                            // SAFETY: as in `execute_into`; the dynamic
                            // counter partitions rows disjointly.
                            unsafe {
                                core.kernel.call_dynamic(x_addr as *const T, y_addr as *mut T);
                            }
                            busy_ns.fetch_max(
                                lane_start.elapsed().as_nanos() as u64,
                                Ordering::Relaxed,
                            );
                        });
                    }
                });
            }
            KernelKind::StaticRange => {
                std::thread::scope(|scope| {
                    for range in &core.partition.ranges {
                        if range.is_empty() {
                            continue;
                        }
                        let busy_ns = &busy_ns;
                        let core = &core;
                        scope.spawn(move || {
                            let lane_start = Instant::now();
                            // SAFETY: as above; static ranges are disjoint by
                            // construction.
                            unsafe {
                                core.kernel.call_static(
                                    range.start as u64,
                                    range.end as u64,
                                    x_addr as *const T,
                                    y_addr as *mut T,
                                );
                            }
                            busy_ns.fetch_max(
                                lane_start.elapsed().as_nanos() as u64,
                                Ordering::Relaxed,
                            );
                        });
                    }
                });
            }
        }
        let elapsed = start.elapsed();
        let kernel = Duration::from_nanos(busy_ns.load(Ordering::Relaxed));
        Ok(ExecutionReport {
            elapsed,
            kernel,
            dispatch: elapsed.saturating_sub(kernel),
            // No pool handoff on the spawning path; thread-spawn cost shows
            // up in `dispatch` as before.
            wake: Duration::ZERO,
            threads: self.threads,
            strategy: core.strategy,
        })
    }

    /// Run the kernel single-threaded over the whole matrix (used by the
    /// profiling harness, where the emulator measures one thread's work).
    ///
    /// # Errors
    ///
    /// Same shape requirements as [`JitSpmm::execute_into`].
    pub fn execute_single_thread(
        &self,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> Result<ExecutionReport, JitSpmmError> {
        self.check_shapes(x, y)?;
        let _launch = self.begin_launch(true)?;
        let core = self.active();
        let start = Instant::now();
        match core.kernel.kind() {
            KernelKind::DynamicDispatch => {
                // SAFETY: see execute_into.
                unsafe { core.kernel.call_dynamic(x.as_ptr(), y.as_mut_ptr()) };
            }
            KernelKind::StaticRange => {
                // SAFETY: see execute_into.
                unsafe {
                    core.kernel.call_static(
                        0,
                        self.matrix.nrows() as u64,
                        x.as_ptr(),
                        y.as_mut_ptr(),
                    )
                };
            }
        }
        let elapsed = start.elapsed();
        Ok(ExecutionReport {
            elapsed,
            kernel: elapsed,
            dispatch: Duration::ZERO,
            wake: Duration::ZERO,
            threads: 1,
            strategy: core.strategy,
        })
    }
}

/// An in-flight asynchronous kernel launch, returned by
/// [`JitSpmm::execute_async`].
///
/// The launch runs on the scope's worker pool while the submitting thread
/// is free to do other work — typically submitting launches on *other*
/// engines so that several compiled kernels overlap on disjoint, lane-capped
/// worker subsets. [`ExecutionHandle::wait`] joins the job (stealing its
/// remaining tasks) and returns the pooled output plus the usual
/// [`ExecutionReport`].
///
/// Dropping the handle without waiting joins the job too and hands the
/// output buffer back to the engine's pool — nothing leaks and the pool
/// shuts down cleanly. The handle also holds the engine's launch lock, so
/// the engine accepts no other launch until the handle is gone. Leaking the
/// handle (e.g. [`std::mem::forget`]) is safe — the owning [`PoolScope`]
/// still joins the kernel job before any borrowed input can be freed — but
/// leaks the output buffer and leaves the launch lock held forever: the
/// engine refuses non-blocking (and same-thread blocking) launches with
/// [`crate::JitSpmmError::LaunchInProgress`], and blocking launches from
/// other threads wait indefinitely.
pub struct ExecutionHandle<'s, T: Scalar> {
    /// Joined in [`ExecutionHandle::wait`] or in the drop below; when the
    /// handle is leaked instead, the owning [`PoolScope`] joins the job.
    job: Option<ScopedJobHandle<'s>>,
    /// The erased task data the pool workers dereference, owned through
    /// `Box::into_raw` (a box field would be invalidated by handle moves);
    /// freed in drop after the join, leaked with a leaked handle.
    payload: *mut KernelJob<T>,
    pub(super) y: Option<PooledMatrix<T>>,
    start: Instant,
    threads: usize,
    strategy: Strategy,
    /// The core snapshot this launch runs against: keeps the compiled kernel
    /// and partition behind the payload's raw pointers alive for the
    /// launch's whole lifetime, whatever the tier layer installs meanwhile.
    _core: Arc<EngineCore<T>>,
    /// Holds the engine's launch lock for the lifetime of the launch (the
    /// dynamic counter must not be reset mid-claim by another launch).
    _launch: LaunchGuard<'s>,
}

impl<T: Scalar> Drop for ExecutionHandle<'_, T> {
    fn drop(&mut self) {
        // Join before the payload, the output buffer and the launch guard
        // are released. Kernel panics are discarded here — `wait` re-raises
        // them — so an abandoned launch cannot poison the scope exit.
        if let Some(job) = &mut self.job {
            job.join_quiet();
        }
        // SAFETY: produced by `Box::into_raw` in `execute_async`; the job is
        // joined (above, or before `wait` returned), so no worker can reach
        // the payload.
        drop(unsafe { Box::from_raw(self.payload) });
    }
}

impl<T: Scalar> ExecutionHandle<'_, T> {
    /// Whether the launch has completed (lock-free; `true` means
    /// [`ExecutionHandle::wait`] will not block).
    pub fn is_done(&self) -> bool {
        self.job.as_ref().is_none_or(|job| job.is_done())
    }

    /// Join the launch and return the output with its [`ExecutionReport`].
    ///
    /// The calling thread participates in the remaining kernel tasks.
    /// `ExecutionReport::elapsed` spans submission to join, so time the
    /// caller spent on other work between [`JitSpmm::execute_async`] and
    /// `wait` — the overlap this API exists for — shows up in `dispatch`,
    /// not in `kernel`.
    pub fn wait(mut self) -> (PooledMatrix<T>, ExecutionReport) {
        let report = self.join();
        let y = self.y.take().expect("output present until wait");
        (y, report)
    }

    /// Join a raw launch ([`JitSpmm::execute_async_raw`]) and return only its
    /// [`ExecutionReport`] — the output was written in place into the
    /// caller-provided region, there is nothing to hand back.
    pub(crate) fn wait_report(mut self) -> ExecutionReport {
        self.join()
    }

    /// Join the launch and assemble the report; shared by both wait paths.
    fn join(&mut self) -> ExecutionReport {
        let mut job = self.job.take().expect("launch joined at most once");
        let kernel = match job.try_wait() {
            Ok(busy) => busy,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        let wake = job.wake();
        let elapsed = self.start.elapsed();
        ExecutionReport {
            elapsed,
            kernel,
            dispatch: elapsed.saturating_sub(kernel),
            wake,
            threads: self.threads,
            strategy: self.strategy,
        }
    }
}

impl<T: Scalar> std::fmt::Debug for ExecutionHandle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionHandle")
            .field("done", &self.is_done())
            .field("threads", &self.threads)
            .finish()
    }
}
