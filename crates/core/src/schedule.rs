//! Workload division: row-split, nnz-split and merge-split (§IV.B).
//!
//! All three strategies partition the sparse matrix's rows across threads;
//! they differ in *what* they balance:
//!
//! * **row-split** gives every thread the same number of rows (and, in its
//!   dynamic variant, hands out fixed-size row batches through an atomic
//!   counter — Listing 1),
//! * **nnz-split** gives every thread (approximately) the same number of
//!   non-zeros,
//! * **merge-split** balances the *sum* of rows and non-zeros, following the
//!   merge-path formulation of Merrill & Garland.
//!
//! The nnz-split and merge-split boundaries are found with a binary search
//! over the row-pointer array, exactly as described in §IV.B.2; the search
//! runs on the host (it is `O(threads · log nnz)` and far too cheap to
//! matter), while the per-range computation runs inside the generated
//! kernel.

use jitspmm_sparse::{CsrMatrix, Scalar};
use std::sync::atomic::{AtomicU64, Ordering};

/// The workload-division strategy used to distribute rows across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Contiguous, equally sized row blocks per thread.
    RowSplitStatic,
    /// Dynamic row dispatching: threads repeatedly claim `batch` rows from a
    /// shared atomic counter with `lock xadd` (Listing 1). The paper uses a
    /// batch size of 128.
    RowSplitDynamic {
        /// Number of rows claimed per atomic increment.
        batch: usize,
    },
    /// Equal numbers of non-zeros per thread (row-granular).
    NnzSplit,
    /// Balanced rows + non-zeros per thread (row-granular merge path).
    MergeSplit,
}

impl Strategy {
    /// The dynamic row-split strategy with the paper's default batch of 128.
    pub const fn row_split_dynamic_default() -> Strategy {
        Strategy::RowSplitDynamic { batch: 128 }
    }

    /// Stable, unambiguous name used as the key in reports and benchmark
    /// JSON. Every distinct configuration renders distinctly — in
    /// particular, dynamic row-split includes its batch size
    /// (`row-split(dynamic,batch=128)`), so JSON rows from different batch
    /// sizes can be told apart, and it can never collide with
    /// `row-split(static)`.
    pub fn name(&self) -> String {
        match self {
            Strategy::RowSplitStatic => "row-split(static)".to_string(),
            Strategy::RowSplitDynamic { batch } => format!("row-split(dynamic,batch={batch})"),
            Strategy::NnzSplit => "nnz-split".to_string(),
            Strategy::MergeSplit => "merge-split".to_string(),
        }
    }

    /// Whether this strategy distributes work dynamically at run time (as
    /// opposed to a precomputed static partition).
    pub fn is_dynamic(&self) -> bool {
        matches!(self, Strategy::RowSplitDynamic { .. })
    }

    /// The three strategies evaluated throughout the paper's figures, in the
    /// order they appear there.
    pub fn paper_set() -> [Strategy; 3] {
        [Strategy::row_split_dynamic_default(), Strategy::NnzSplit, Strategy::MergeSplit]
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// A contiguous range of rows assigned to one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowRange {
    /// First row (inclusive).
    pub start: usize,
    /// One past the last row (exclusive).
    pub end: usize,
}

impl RowRange {
    /// Number of rows in the range.
    ///
    /// Saturating: [`RowRange::is_empty`] admits inverted ranges
    /// (`start > end`, e.g. from a partitioner whose boundaries crossed), so
    /// `len` treats them as empty instead of underflowing.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the range contains no rows.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Number of non-zeros of `matrix` that fall inside this row range.
    /// Shared by the partition metrics and the shard planner, so every
    /// balance report counts the same way.
    pub fn nnz_in<T: Scalar>(&self, matrix: &CsrMatrix<T>) -> u64 {
        if self.is_empty() {
            return 0;
        }
        matrix.row_ptr()[self.end] - matrix.row_ptr()[self.start]
    }
}

/// A static partition of the matrix rows into per-thread ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One row range per thread (possibly empty for surplus threads).
    pub ranges: Vec<RowRange>,
}

impl Partition {
    /// Number of per-thread ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the partition holds no ranges.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The largest number of non-zeros assigned to any single range —
    /// the quantity whose imbalance row-split suffers from (§IV.B.1).
    pub fn max_nnz<T: Scalar>(&self, matrix: &CsrMatrix<T>) -> u64 {
        max_nnz_of(&self.ranges, matrix)
    }

    /// Ratio between the heaviest range and the average, by non-zero count.
    ///
    /// Returns the true ratio `max_nnz / (nnz / ranges)`: a perfectly
    /// balanced partition scores 1.0, and concentrating all non-zeros in one
    /// of `k` ranges scores `k` — even when `nnz < ranges` (the average is
    /// then below one non-zero per range, and the ratio is correspondingly
    /// large). An empty matrix or empty partition has nothing to balance and
    /// reports 1.0 explicitly.
    pub fn nnz_imbalance<T: Scalar>(&self, matrix: &CsrMatrix<T>) -> f64 {
        nnz_imbalance_of(&self.ranges, matrix)
    }
}

/// [`Partition::max_nnz`] on a borrowed slice of ranges, so callers that
/// hold a `Vec<RowRange>` (the shard planner) don't need to clone it into a
/// `Partition` just to measure it.
pub fn max_nnz_of<T: Scalar>(ranges: &[RowRange], matrix: &CsrMatrix<T>) -> u64 {
    ranges.iter().map(|r| r.nnz_in(matrix)).max().unwrap_or(0)
}

/// [`Partition::nnz_imbalance`] on a borrowed slice of ranges (same metric,
/// same degenerate-case guards — see the method docs).
pub fn nnz_imbalance_of<T: Scalar>(ranges: &[RowRange], matrix: &CsrMatrix<T>) -> f64 {
    if matrix.nnz() == 0 || ranges.is_empty() {
        return 1.0;
    }
    let avg = matrix.nnz() as f64 / ranges.len() as f64;
    max_nnz_of(ranges, matrix) as f64 / avg
}

/// Row-split: contiguous blocks of `ceil(nrows / threads)` rows.
pub fn partition_row_split<T: Scalar>(matrix: &CsrMatrix<T>, threads: usize) -> Partition {
    let threads = threads.max(1);
    let nrows = matrix.nrows();
    let per = nrows.div_ceil(threads.max(1)).max(1);
    let ranges = (0..threads)
        .map(|t| {
            let start = (t * per).min(nrows);
            let end = ((t + 1) * per).min(nrows);
            RowRange { start, end }
        })
        .collect();
    Partition { ranges }
}

/// nnz-split: choose row boundaries so every thread receives approximately
/// `nnz / threads` non-zeros, via binary search on the row-pointer array.
pub fn partition_nnz_split<T: Scalar>(matrix: &CsrMatrix<T>, threads: usize) -> Partition {
    let threads = threads.max(1);
    let row_ptr = matrix.row_ptr();
    let nnz = matrix.nnz() as u64;
    let nrows = matrix.nrows();
    let mut boundaries = Vec::with_capacity(threads + 1);
    boundaries.push(0usize);
    for t in 1..threads {
        let target = nnz * t as u64 / threads as u64;
        // First row whose starting offset is >= target.
        let row = row_ptr.partition_point(|&p| p < target).min(nrows);
        boundaries.push(row.max(*boundaries.last().unwrap()));
    }
    boundaries.push(nrows);
    let ranges = boundaries.windows(2).map(|w| RowRange { start: w[0], end: w[1] }).collect();
    Partition { ranges }
}

/// merge-split: balance `rows + nnz` per thread (the row-granular merge-path
/// decomposition of Merrill & Garland), again via binary search.
pub fn partition_merge_split<T: Scalar>(matrix: &CsrMatrix<T>, threads: usize) -> Partition {
    let threads = threads.max(1);
    let row_ptr = matrix.row_ptr();
    let nrows = matrix.nrows();
    let total_work = nrows as u64 + matrix.nnz() as u64;
    let mut boundaries = Vec::with_capacity(threads + 1);
    boundaries.push(0usize);
    for t in 1..threads {
        let target = total_work * t as u64 / threads as u64;
        // Work consumed after finishing row r is (r + 1) + row_ptr[r + 1];
        // find the first row boundary whose cumulative work reaches target.
        let mut lo = 0usize;
        let mut hi = nrows;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let work = mid as u64 + row_ptr[mid];
            if work < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        boundaries.push(lo.max(*boundaries.last().unwrap()).min(nrows));
    }
    boundaries.push(nrows);
    let ranges = boundaries.windows(2).map(|w| RowRange { start: w[0], end: w[1] }).collect();
    Partition { ranges }
}

/// Compute the static partition for `strategy` (dynamic row-split has no
/// static partition and returns one covering range per thread for fallback
/// purposes).
pub fn partition<T: Scalar>(
    matrix: &CsrMatrix<T>,
    strategy: Strategy,
    threads: usize,
) -> Partition {
    match strategy {
        Strategy::RowSplitStatic | Strategy::RowSplitDynamic { .. } => {
            partition_row_split(matrix, threads)
        }
        Strategy::NnzSplit => partition_nnz_split(matrix, threads),
        Strategy::MergeSplit => partition_merge_split(matrix, threads),
    }
}

/// The shared counter used by dynamic row dispatching.
///
/// The generated code performs `lock xadd` directly on the embedded address
/// of this counter.
///
/// # Invariant
///
/// The counter is engine-owned state shared by *every* launch of that
/// engine's kernel — pooled, spawning, single-thread or emulated — and a
/// dynamic kernel reads it before doing any work, so it must be back at row
/// zero when a launch starts. The engine maintains this by resetting the
/// counter unconditionally (for static kernels too, where the store is
/// harmless) in one place, `JitSpmm::begin_launch`, rather than remembering
/// to reset on each dynamic code path.
#[derive(Debug, Default)]
pub struct DynamicCounter {
    next: AtomicU64,
}

impl DynamicCounter {
    /// A counter starting at row zero.
    pub fn new() -> DynamicCounter {
        DynamicCounter { next: AtomicU64::new(0) }
    }

    /// Reset to row zero (done before every kernel launch).
    pub fn reset(&self) {
        self.next.store(0, Ordering::SeqCst);
    }

    /// The raw address the generated `lock xadd` targets.
    pub fn as_ptr(&self) -> *const AtomicU64 {
        &self.next as *const AtomicU64
    }

    /// Current value (for tests and diagnostics).
    pub fn load(&self) -> u64 {
        self.next.load(Ordering::SeqCst)
    }

    /// Host-side equivalent of the generated claim sequence; used by the
    /// Rust baselines and by tests.
    pub fn claim(&self, batch: u64) -> u64 {
        self.next.fetch_add(batch, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitspmm_sparse::generate;

    fn skewed() -> CsrMatrix<f32> {
        generate::rmat(10, 20_000, generate::RmatConfig::GRAPH500, 1)
    }

    fn check_covers_all_rows(p: &Partition, nrows: usize) {
        assert_eq!(p.ranges.first().unwrap().start, 0);
        assert_eq!(p.ranges.last().unwrap().end, nrows);
        for w in p.ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
        }
    }

    #[test]
    fn row_split_counts_rows_evenly() {
        let m = skewed();
        let p = partition_row_split(&m, 8);
        check_covers_all_rows(&p, m.nrows());
        let lens: Vec<usize> = p.ranges.iter().map(|r| r.len()).collect();
        let max = lens.iter().max().unwrap();
        let min = lens.iter().filter(|&&l| l > 0).min().unwrap();
        assert!(max - min <= 128, "row counts should be nearly equal: {lens:?}");
    }

    #[test]
    fn nnz_split_balances_nonzeros() {
        let m = skewed();
        let row = partition_row_split(&m, 8);
        let nnz = partition_nnz_split(&m, 8);
        check_covers_all_rows(&nnz, m.nrows());
        assert!(
            nnz.nnz_imbalance(&m) <= row.nnz_imbalance(&m) + 1e-9,
            "nnz-split ({}) should not be more imbalanced than row-split ({})",
            nnz.nnz_imbalance(&m),
            row.nnz_imbalance(&m)
        );
        // And it should be close to perfectly balanced on this matrix.
        assert!(nnz.nnz_imbalance(&m) < 1.6, "imbalance = {}", nnz.nnz_imbalance(&m));
    }

    #[test]
    fn merge_split_is_between_row_and_nnz() {
        let m = skewed();
        let p = partition_merge_split(&m, 8);
        check_covers_all_rows(&p, m.nrows());
        // The heaviest thread should carry a bounded share of rows + nnz.
        let total = m.nrows() as u64 + m.nnz() as u64;
        let max_work = p
            .ranges
            .iter()
            .map(|r| (r.len() as u64) + m.row_ptr()[r.end] - m.row_ptr()[r.start])
            .max()
            .unwrap();
        assert!(max_work as f64 <= 1.5 * total as f64 / 8.0, "max work = {max_work}");
    }

    #[test]
    fn partitions_with_more_threads_than_rows() {
        let m = generate::banded::<f32>(5, 1, 0);
        for strategy in [Strategy::RowSplitStatic, Strategy::NnzSplit, Strategy::MergeSplit] {
            let p = partition(&m, strategy, 16);
            assert_eq!(p.len(), 16);
            check_covers_all_rows(&p, 5);
            let covered: usize = p.ranges.iter().map(|r| r.len()).sum();
            assert_eq!(covered, 5);
        }
    }

    #[test]
    fn single_thread_partition_is_whole_matrix() {
        let m = skewed();
        for strategy in Strategy::paper_set() {
            let p = partition(&m, strategy, 1);
            assert_eq!(p.len(), 1);
            assert_eq!(p.ranges[0], RowRange { start: 0, end: m.nrows() });
        }
    }

    #[test]
    fn empty_matrix_partitions() {
        let m = CsrMatrix::<f32>::zeros(0, 10);
        let p = partition(&m, Strategy::NnzSplit, 4);
        assert_eq!(p.len(), 4);
        assert!(p.ranges.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn dynamic_counter_claims_batches() {
        let c = DynamicCounter::new();
        assert_eq!(c.claim(128), 0);
        assert_eq!(c.claim(128), 128);
        c.reset();
        assert_eq!(c.claim(64), 0);
        assert_eq!(c.load(), 64);
        assert!(!c.as_ptr().is_null());
    }

    #[test]
    fn strategy_names_and_display() {
        assert_eq!(Strategy::NnzSplit.name(), "nnz-split");
        assert_eq!(
            Strategy::row_split_dynamic_default().to_string(),
            "row-split(dynamic,batch=128)"
        );
        assert!(Strategy::row_split_dynamic_default().is_dynamic());
        assert!(!Strategy::MergeSplit.is_dynamic());
        assert_eq!(Strategy::paper_set().len(), 3);
    }

    #[test]
    fn strategy_names_distinguish_every_configuration() {
        // Regression: dynamic row-split used to render as a bare
        // "row-split", so benchmark JSON rows could neither be told apart
        // across batch sizes nor distinguished from the static variant.
        let names: Vec<String> = [
            Strategy::RowSplitStatic,
            Strategy::RowSplitDynamic { batch: 16 },
            Strategy::RowSplitDynamic { batch: 128 },
            Strategy::NnzSplit,
            Strategy::MergeSplit,
        ]
        .iter()
        .map(|s| s.name())
        .collect();
        let distinct: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(distinct.len(), names.len(), "ambiguous strategy names: {names:?}");
        assert!(names[1].contains("16") && names[2].contains("128"));
    }

    #[test]
    fn partition_metrics() {
        let m = skewed();
        let p = partition_row_split(&m, 4);
        assert!(p.max_nnz(&m) > 0);
        assert!(p.nnz_imbalance(&m) >= 1.0);
    }

    #[test]
    fn borrowed_imbalance_helpers_match_partition_methods() {
        let m = skewed();
        let p = partition_row_split(&m, 4);
        assert_eq!(max_nnz_of(&p.ranges, &m), p.max_nnz(&m));
        assert_eq!(nnz_imbalance_of(&p.ranges, &m), p.nnz_imbalance(&m));
        // Same degenerate guards as the methods.
        assert_eq!(nnz_imbalance_of(&[], &m), 1.0);
        let empty = CsrMatrix::<f32>::zeros(4, 4);
        assert_eq!(nnz_imbalance_of(&partition_row_split(&empty, 2).ranges, &empty), 1.0);
    }

    #[test]
    fn inverted_row_range_len_saturates() {
        // Regression: `is_empty` admits start > end, but `len` used to
        // compute `end - start` unchecked and panic on underflow.
        let inverted = RowRange { start: 5, end: 3 };
        assert!(inverted.is_empty());
        assert_eq!(inverted.len(), 0);
        assert_eq!(RowRange { start: 3, end: 5 }.len(), 2);
    }

    #[test]
    fn nnz_imbalance_is_not_clamped_for_sparse_tiny_matrices() {
        // Regression: with fewer non-zeros than ranges the denominator used
        // to be clamped to 1.0, silently understating the imbalance. Two
        // non-zeros in one of four ranges averages 0.5 nnz per range, so the
        // true ratio is 2 / 0.5 = 4.
        let m = CsrMatrix::<f32>::from_triplets(8, 8, &[(0, 0, 1.0), (0, 1, 2.0)]).unwrap();
        let p = partition_row_split(&m, 4);
        assert_eq!(p.max_nnz(&m), 2);
        let ratio = p.nnz_imbalance(&m);
        assert!((ratio - 4.0).abs() < 1e-12, "expected the true ratio 4.0, got {ratio}");
        // The explicit guards still report 1.0 when there is nothing to
        // balance.
        let empty = CsrMatrix::<f32>::zeros(4, 4);
        assert_eq!(partition_row_split(&empty, 2).nnz_imbalance(&empty), 1.0);
        assert_eq!(Partition { ranges: Vec::new() }.nnz_imbalance(&m), 1.0);
    }
}
