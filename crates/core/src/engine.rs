//! The [`JitSpmm`] engine: compile once, execute many times.

use crate::codegen::{
    generate_dynamic_kernel, generate_static_kernel, KernelOptions, MatrixBinding,
};
use crate::error::JitSpmmError;
use crate::kernel::{CompiledKernel, KernelKind, KernelMeta};
use crate::schedule::{partition, DynamicCounter, Partition, Strategy};
use jitspmm_asm::{CpuFeatures, IsaLevel};
use jitspmm_sparse::{CsrMatrix, DenseMatrix, Scalar};
use std::time::{Duration, Instant};

/// Configuration of a [`JitSpmm`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmmOptions {
    /// Workload-division strategy (default: dynamic row-split with the
    /// paper's batch size of 128).
    pub strategy: Strategy,
    /// ISA tier to generate code for; `None` selects the best tier the host
    /// supports.
    pub isa: Option<IsaLevel>,
    /// Number of worker threads; `0` uses all available hardware threads.
    pub threads: usize,
    /// Whether to apply coarse-grain column merging (always on in the paper;
    /// disable only for the ablation experiment).
    pub ccm: bool,
    /// Record an instruction listing alongside the generated code.
    pub listing: bool,
}

impl Default for SpmmOptions {
    fn default() -> SpmmOptions {
        SpmmOptions {
            strategy: Strategy::row_split_dynamic_default(),
            isa: None,
            threads: 0,
            ccm: true,
            listing: false,
        }
    }
}

/// Builder for [`JitSpmm`].
///
/// # Example
///
/// ```
/// use jitspmm::{JitSpmmBuilder, Strategy};
/// use jitspmm_sparse::{generate, DenseMatrix};
///
/// # fn main() -> Result<(), jitspmm::JitSpmmError> {
/// let a = generate::uniform::<f32>(100, 100, 500, 1);
/// let x = DenseMatrix::random(100, 16, 2);
/// let engine = JitSpmmBuilder::new()
///     .strategy(Strategy::NnzSplit)
///     .threads(2)
///     .build(&a, x.ncols())?;
/// let (y, _report) = engine.execute(&x)?;
/// assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct JitSpmmBuilder {
    options: SpmmOptions,
}

impl JitSpmmBuilder {
    /// Start a builder with the default options.
    pub fn new() -> JitSpmmBuilder {
        JitSpmmBuilder::default()
    }

    /// Select the workload-division strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.options.strategy = strategy;
        self
    }

    /// Pin the ISA tier instead of auto-detecting.
    pub fn isa(mut self, isa: IsaLevel) -> Self {
        self.options.isa = Some(isa);
        self
    }

    /// Set the number of worker threads (`0` = all hardware threads).
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Enable or disable coarse-grain column merging.
    pub fn ccm(mut self, ccm: bool) -> Self {
        self.options.ccm = ccm;
        self
    }

    /// Record a textual listing of the generated instructions.
    pub fn listing(mut self, listing: bool) -> Self {
        self.options.listing = listing;
        self
    }

    /// Compile a kernel for `matrix` and `d` dense columns.
    ///
    /// # Errors
    ///
    /// Fails if the host cannot execute the requested ISA tier, if `d` is
    /// zero, or if code generation fails.
    pub fn build<T: Scalar>(
        self,
        matrix: &CsrMatrix<T>,
        d: usize,
    ) -> Result<JitSpmm<'_, T>, JitSpmmError> {
        JitSpmm::compile(matrix, d, self.options)
    }
}

/// Timing and configuration data for one `execute` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionReport {
    /// Wall-clock time of the multi-threaded kernel execution.
    pub elapsed: Duration,
    /// Number of worker threads used.
    pub threads: usize,
    /// Strategy used.
    pub strategy: Strategy,
}

/// A JIT-compiled SpMM engine bound to one sparse matrix and one column
/// count.
///
/// Construction generates machine code specialized to the matrix (its array
/// base addresses are embedded in the instruction stream), the number of
/// dense columns `d`, the element type, the ISA tier and the workload
/// division strategy. The engine can then be executed repeatedly against
/// different dense inputs of shape `ncols x d`.
pub struct JitSpmm<'a, T: Scalar> {
    matrix: &'a CsrMatrix<T>,
    d: usize,
    options: SpmmOptions,
    threads: usize,
    kernel: CompiledKernel<T>,
    meta: KernelMeta,
    partition: Partition,
    counter: Box<DynamicCounter>,
}

impl<T: Scalar> std::fmt::Debug for JitSpmm<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JitSpmm")
            .field("d", &self.d)
            .field("strategy", &self.options.strategy)
            .field("threads", &self.threads)
            .field("code_bytes", &self.meta.code_bytes)
            .finish()
    }
}

impl<'a, T: Scalar> JitSpmm<'a, T> {
    /// Compile a kernel for `matrix` with `d` dense columns under `options`.
    ///
    /// # Errors
    ///
    /// See [`JitSpmmBuilder::build`].
    pub fn compile(
        matrix: &'a CsrMatrix<T>,
        d: usize,
        options: SpmmOptions,
    ) -> Result<JitSpmm<'a, T>, JitSpmmError> {
        if d == 0 {
            return Err(JitSpmmError::EmptyDenseMatrix);
        }
        let features = CpuFeatures::detect();
        let isa = options.isa.unwrap_or_else(|| features.best_isa());
        let kernel_options =
            KernelOptions { isa, ccm: options.ccm, features, listing: options.listing };
        let threads = resolve_threads(options.threads);
        let counter = Box::new(DynamicCounter::new());
        let binding = MatrixBinding::of(matrix);

        let start = Instant::now();
        let (generated, kind) = match options.strategy {
            Strategy::RowSplitDynamic { batch } => (
                generate_dynamic_kernel(
                    binding,
                    d,
                    T::KIND,
                    batch,
                    counter.as_ptr() as *const u8,
                    &kernel_options,
                )?,
                KernelKind::DynamicDispatch,
            ),
            _ => (
                generate_static_kernel(binding, d, T::KIND, &kernel_options)?,
                KernelKind::StaticRange,
            ),
        };
        let kernel = CompiledKernel::new(&generated.code, kind, generated.listing)?;
        let codegen_time = start.elapsed();

        let meta = KernelMeta {
            d,
            kind: T::KIND,
            isa,
            ccm: options.ccm,
            strategy: options.strategy,
            code_bytes: kernel.code().len(),
            codegen_time,
            register_plan: generated.plan.describe(),
            nnz_passes: generated.plan.passes(),
        };
        let partition = partition(matrix, options.strategy, threads);
        Ok(JitSpmm { matrix, d, options, threads, kernel, meta, partition, counter })
    }

    /// The sparse matrix this engine was compiled against.
    pub fn matrix(&self) -> &CsrMatrix<T> {
        self.matrix
    }

    /// The number of dense columns the kernel expects.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The number of worker threads used by [`JitSpmm::execute`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Kernel metadata: code size, register plan, code-generation time.
    pub fn meta(&self) -> &KernelMeta {
        &self.meta
    }

    /// The compiled kernel (code bytes, listing).
    pub fn kernel(&self) -> &CompiledKernel<T> {
        &self.kernel
    }

    /// The static row partition this engine will use (one range per thread;
    /// for the dynamic strategy this is only a fallback description).
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Compute `Y = A * X` into a freshly allocated matrix.
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] if `x` is not
    /// `A.ncols() x d`.
    pub fn execute(
        &self,
        x: &DenseMatrix<T>,
    ) -> Result<(DenseMatrix<T>, ExecutionReport), JitSpmmError> {
        let mut y = DenseMatrix::zeros(self.matrix.nrows(), self.d);
        let report = self.execute_into(x, &mut y)?;
        Ok((y, report))
    }

    /// Compute `Y = A * X` into an existing output matrix (its previous
    /// contents are overwritten).
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] if `x` is not `A.ncols() x d`
    /// or `y` is not `A.nrows() x d`.
    pub fn execute_into(
        &self,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> Result<ExecutionReport, JitSpmmError> {
        if x.nrows() != self.matrix.ncols() || x.ncols() != self.d {
            return Err(JitSpmmError::ShapeMismatch(format!(
                "dense input is {}x{} but the kernel expects {}x{}",
                x.nrows(),
                x.ncols(),
                self.matrix.ncols(),
                self.d
            )));
        }
        if y.nrows() != self.matrix.nrows() || y.ncols() != self.d {
            return Err(JitSpmmError::ShapeMismatch(format!(
                "dense output is {}x{} but the kernel produces {}x{}",
                y.nrows(),
                y.ncols(),
                self.matrix.nrows(),
                self.d
            )));
        }

        let x_addr = x.as_ptr() as usize;
        let y_addr = y.as_mut_ptr() as usize;
        let start = Instant::now();
        match self.kernel.kind() {
            KernelKind::DynamicDispatch => {
                self.counter.reset();
                std::thread::scope(|scope| {
                    for _ in 0..self.threads {
                        scope.spawn(move || {
                            // SAFETY: the engine borrows the CSR matrix whose
                            // pointers the kernel embeds, shapes were checked
                            // above, and the dynamic counter partitions rows
                            // disjointly across threads.
                            unsafe {
                                self.kernel
                                    .call_dynamic(x_addr as *const T, y_addr as *mut T);
                            }
                        });
                    }
                });
            }
            KernelKind::StaticRange => {
                std::thread::scope(|scope| {
                    for range in &self.partition.ranges {
                        if range.is_empty() {
                            continue;
                        }
                        scope.spawn(move || {
                            // SAFETY: as above; static ranges are disjoint by
                            // construction.
                            unsafe {
                                self.kernel.call_static(
                                    range.start as u64,
                                    range.end as u64,
                                    x_addr as *const T,
                                    y_addr as *mut T,
                                );
                            }
                        });
                    }
                });
            }
        }
        Ok(ExecutionReport {
            elapsed: start.elapsed(),
            threads: self.threads,
            strategy: self.options.strategy,
        })
    }

    /// Run the kernel single-threaded over the whole matrix (used by the
    /// profiling harness, where the emulator measures one thread's work).
    ///
    /// # Errors
    ///
    /// Same shape requirements as [`JitSpmm::execute_into`].
    pub fn execute_single_thread(
        &self,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> Result<ExecutionReport, JitSpmmError> {
        if x.nrows() != self.matrix.ncols() || x.ncols() != self.d {
            return Err(JitSpmmError::ShapeMismatch("dense input shape".into()));
        }
        if y.nrows() != self.matrix.nrows() || y.ncols() != self.d {
            return Err(JitSpmmError::ShapeMismatch("dense output shape".into()));
        }
        let start = Instant::now();
        match self.kernel.kind() {
            KernelKind::DynamicDispatch => {
                self.counter.reset();
                // SAFETY: see execute_into.
                unsafe { self.kernel.call_dynamic(x.as_ptr(), y.as_mut_ptr()) };
            }
            KernelKind::StaticRange => {
                // SAFETY: see execute_into.
                unsafe {
                    self.kernel.call_static(
                        0,
                        self.matrix.nrows() as u64,
                        x.as_ptr(),
                        y.as_mut_ptr(),
                    )
                };
            }
        }
        Ok(ExecutionReport { elapsed: start.elapsed(), threads: 1, strategy: self.options.strategy })
    }

    /// Fraction of the total build+execute time spent generating code, as
    /// reported in Table IV, given a measured execution time.
    pub fn codegen_overhead_ratio(&self, execution: Duration) -> f64 {
        let cg = self.meta.codegen_time.as_secs_f64();
        let total = cg + execution.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            cg / total
        }
    }
}

fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitspmm_sparse::generate;

    fn host_ok() -> bool {
        let f = CpuFeatures::detect();
        f.avx && f.has_fma()
    }

    #[test]
    fn compile_rejects_zero_columns() {
        let a = generate::uniform::<f32>(10, 10, 20, 1);
        let err = JitSpmm::compile(&a, 0, SpmmOptions::default()).unwrap_err();
        assert!(matches!(err, JitSpmmError::EmptyDenseMatrix));
    }

    #[test]
    fn execute_matches_reference_all_strategies() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::rmat::<f32>(9, 6_000, generate::RmatConfig::GRAPH500, 5);
        let x = DenseMatrix::random(a.ncols(), 16, 7);
        let expected = a.spmm_reference(&x);
        for strategy in [
            Strategy::RowSplitStatic,
            Strategy::row_split_dynamic_default(),
            Strategy::NnzSplit,
            Strategy::MergeSplit,
        ] {
            let engine = JitSpmmBuilder::new().strategy(strategy).threads(4).build(&a, 16).unwrap();
            let (y, report) = engine.execute(&x).unwrap();
            assert!(
                y.approx_eq(&expected, 1e-4),
                "strategy {strategy}: max diff = {}",
                y.max_abs_diff(&expected)
            );
            assert_eq!(report.threads, 4);
        }
    }

    #[test]
    fn execute_handles_odd_column_counts() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(200, 150, 2_000, 3);
        for d in [1usize, 3, 8, 17, 45, 64] {
            let x = DenseMatrix::random(a.ncols(), d, 11);
            let expected = a.spmm_reference(&x);
            let engine = JitSpmmBuilder::new().threads(2).build(&a, d).unwrap();
            let (y, _) = engine.execute(&x).unwrap();
            assert!(y.approx_eq(&expected, 1e-4), "d = {d}: diff {}", y.max_abs_diff(&expected));
        }
    }

    #[test]
    fn f64_kernels_match_reference() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f64>(120, 120, 1_500, 9);
        for d in [1usize, 8, 19] {
            let x = DenseMatrix::<f64>::random(a.ncols(), d, 13);
            let expected = a.spmm_reference(&x);
            let engine = JitSpmmBuilder::new().threads(2).build(&a, d).unwrap();
            let (y, _) = engine.execute(&x).unwrap();
            assert!(y.approx_eq(&expected, 1e-10), "d = {d}");
        }
    }

    #[test]
    fn shape_mismatch_is_detected() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(50, 60, 300, 1);
        let engine = JitSpmmBuilder::new().threads(1).build(&a, 8).unwrap();
        let wrong_rows = DenseMatrix::<f32>::zeros(10, 8);
        assert!(engine.execute(&wrong_rows).is_err());
        let wrong_cols = DenseMatrix::<f32>::zeros(60, 9);
        assert!(engine.execute(&wrong_cols).is_err());
        let x = DenseMatrix::<f32>::zeros(60, 8);
        let mut bad_y = DenseMatrix::<f32>::zeros(50, 9);
        assert!(engine.execute_into(&x, &mut bad_y).is_err());
    }

    #[test]
    fn meta_reports_codegen_details() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(100, 100, 400, 2);
        let engine = JitSpmmBuilder::new().threads(1).listing(true).build(&a, 45).unwrap();
        let meta = engine.meta();
        assert_eq!(meta.d, 45);
        assert!(meta.code_bytes > 0);
        assert!(meta.codegen_time.as_nanos() > 0);
        assert!(!meta.register_plan.is_empty());
        assert!(engine.kernel().listing().is_some());
        assert!(engine.codegen_overhead_ratio(Duration::from_secs(1)) < 0.5);
    }

    #[test]
    fn non_ccm_engine_still_correct() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::rmat::<f32>(8, 3_000, generate::RmatConfig::WEB, 4);
        for d in [8usize, 45] {
            let x = DenseMatrix::random(a.ncols(), d, 3);
            let expected = a.spmm_reference(&x);
            let engine = JitSpmmBuilder::new().ccm(false).threads(2).build(&a, d).unwrap();
            let (y, _) = engine.execute(&x).unwrap();
            assert!(y.approx_eq(&expected, 1e-4), "d = {d}");
        }
    }

    #[test]
    fn scalar_isa_engine_matches_reference() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(150, 150, 2_000, 8);
        let x = DenseMatrix::random(150, 8, 21);
        let expected = a.spmm_reference(&x);
        let engine = JitSpmmBuilder::new()
            .isa(IsaLevel::Scalar)
            .strategy(Strategy::RowSplitStatic)
            .threads(1)
            .build(&a, 8)
            .unwrap();
        let (y, _) = engine.execute(&x).unwrap();
        assert!(y.approx_eq(&expected, 1e-4));
    }

    #[test]
    fn repeated_execution_is_consistent() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(300, 300, 5_000, 6);
        let x = DenseMatrix::random(300, 32, 1);
        let engine = JitSpmmBuilder::new().threads(4).build(&a, 32).unwrap();
        let (y1, _) = engine.execute(&x).unwrap();
        let (y2, _) = engine.execute(&x).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn empty_rows_produce_zero_output() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        // A matrix where many rows are empty.
        let a = CsrMatrix::<f32>::from_triplets(64, 64, &[(63, 0, 2.0)]).unwrap();
        let x = DenseMatrix::random(64, 16, 2);
        let engine = JitSpmmBuilder::new().threads(3).build(&a, 16).unwrap();
        let (y, _) = engine.execute(&x).unwrap();
        for r in 0..63 {
            assert!(y.row(r).iter().all(|&v| v == 0.0), "row {r} should be zero");
        }
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-5));
    }
}
