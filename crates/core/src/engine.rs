//! The [`JitSpmm`] engine: compile once, execute many times.

use crate::codegen::{
    generate_dynamic_kernel, generate_static_kernel, KernelOptions, MatrixBinding,
};
use crate::error::JitSpmmError;
use crate::kernel::{CompiledKernel, KernelKind, KernelMeta};
use crate::runtime::dispatch::{self, BufferPool, KernelJob, LaunchPayload};
use crate::runtime::{PoolScope, PooledMatrix, ScopedJobHandle, WorkerPool};
use crate::schedule::{partition, DynamicCounter, Partition, Strategy};
use jitspmm_asm::{CpuFeatures, IsaLevel};
use jitspmm_sparse::{CsrMatrix, DenseMatrix, Scalar};
use std::collections::VecDeque;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};
use std::time::{Duration, Instant};

/// The host's available parallelism, resolved once per process.
/// `std::thread::available_parallelism` consults the cgroup filesystem on
/// every call on Linux (~10µs), far too slow for a per-batch decision.
fn host_parallelism() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED
        .get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// A small process-unique id for the current thread, used to detect a thread
/// re-acquiring an engine's launch lock it already holds (`std::sync::Mutex`
/// would deadlock). `ThreadId::as_u64` is unstable, so mint our own.
fn launch_thread_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TOKEN.with(|token| *token)
}

/// Holds an engine's launch lock for the duration of one launch, recording
/// which thread holds it so a same-thread re-entry (e.g. `execute` while an
/// [`ExecutionHandle`] is outstanding) fails with
/// [`JitSpmmError::LaunchInProgress`] instead of deadlocking.
pub(crate) struct LaunchGuard<'a> {
    owner: &'a AtomicU64,
    _guard: MutexGuard<'a, ()>,
}

impl Drop for LaunchGuard<'_> {
    fn drop(&mut self) {
        // Cleared while the mutex is still held, so a racing thread can at
        // worst read 0 and fall through to a blocking lock that is about to
        // succeed.
        self.owner.store(0, Ordering::Release);
    }
}

/// Configuration of a [`JitSpmm`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmmOptions {
    /// Workload-division strategy (default: dynamic row-split with the
    /// paper's batch size of 128).
    pub strategy: Strategy,
    /// ISA tier to generate code for; `None` selects the best tier the host
    /// supports.
    pub isa: Option<IsaLevel>,
    /// Number of worker lanes; `0` uses one lane per pool worker.
    pub threads: usize,
    /// Whether to apply coarse-grain column merging (always on in the paper;
    /// disable only for the ablation experiment).
    pub ccm: bool,
    /// Record an instruction listing alongside the generated code.
    pub listing: bool,
}

impl Default for SpmmOptions {
    fn default() -> SpmmOptions {
        SpmmOptions {
            strategy: Strategy::row_split_dynamic_default(),
            isa: None,
            threads: 0,
            ccm: true,
            listing: false,
        }
    }
}

/// Builder for [`JitSpmm`].
///
/// # Example
///
/// ```
/// use jitspmm::{JitSpmmBuilder, Strategy};
/// use jitspmm_sparse::{generate, DenseMatrix};
///
/// # fn main() -> Result<(), jitspmm::JitSpmmError> {
/// let a = generate::uniform::<f32>(100, 100, 500, 1);
/// let x = DenseMatrix::random(100, 16, 2);
/// let engine = JitSpmmBuilder::new()
///     .strategy(Strategy::NnzSplit)
///     .threads(2)
///     .build(&a, x.ncols())?;
/// let (y, _report) = engine.execute(&x)?;
/// assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct JitSpmmBuilder {
    options: SpmmOptions,
    pool: Option<WorkerPool>,
}

impl JitSpmmBuilder {
    /// Start a builder with the default options.
    pub fn new() -> JitSpmmBuilder {
        JitSpmmBuilder::default()
    }

    /// Select the workload-division strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.options.strategy = strategy;
        self
    }

    /// Pin the ISA tier instead of auto-detecting.
    pub fn isa(mut self, isa: IsaLevel) -> Self {
        self.options.isa = Some(isa);
        self
    }

    /// Set the number of worker lanes (`0` = one per pool worker).
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Enable or disable coarse-grain column merging.
    pub fn ccm(mut self, ccm: bool) -> Self {
        self.options.ccm = ccm;
        self
    }

    /// Record a textual listing of the generated instructions.
    pub fn listing(mut self, listing: bool) -> Self {
        self.options.listing = listing;
        self
    }

    /// Execute on `pool` instead of the process-wide default
    /// ([`WorkerPool::global`]). Any number of engines may share one pool;
    /// their executions are serialized per pool, never oversubscribing the
    /// machine.
    pub fn pool(mut self, pool: WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Compile a kernel for `matrix` and `d` dense columns.
    ///
    /// # Errors
    ///
    /// Fails if the host cannot execute the requested ISA tier, if `d` is
    /// zero, or if code generation fails.
    pub fn build<T: Scalar>(
        self,
        matrix: &CsrMatrix<T>,
        d: usize,
    ) -> Result<JitSpmm<'_, T>, JitSpmmError> {
        let pool = self.pool.unwrap_or_else(|| WorkerPool::global().clone());
        JitSpmm::compile_with_pool(matrix, d, self.options, pool)
    }
}

/// Timing and configuration data for one `execute` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionReport {
    /// Total wall-clock time of the call, dispatch included.
    pub elapsed: Duration,
    /// Critical-path kernel time: the longest busy time of any participating
    /// lane while executing the compiled kernel.
    pub kernel: Duration,
    /// Overhead outside the kernel (`elapsed - kernel`): job submission,
    /// worker wake-up and join. With the persistent pool this is a few
    /// microseconds, where spawn-per-call paid tens per execution.
    pub dispatch: Duration,
    /// Number of worker lanes used.
    pub threads: usize,
    /// Strategy used.
    pub strategy: Strategy,
}

/// A JIT-compiled SpMM engine bound to one sparse matrix and one column
/// count.
///
/// Construction generates machine code specialized to the matrix (its array
/// base addresses are embedded in the instruction stream), the number of
/// dense columns `d`, the element type, the ISA tier and the workload
/// division strategy. The engine can then be executed repeatedly against
/// different dense inputs of shape `ncols x d`.
///
/// Execution runs on a persistent [`WorkerPool`] (the process-wide default
/// unless [`JitSpmmBuilder::pool`] supplied one): no threads are spawned per
/// call, and [`JitSpmm::execute`] recycles output buffers, so steady-state
/// repeated execution performs no allocation at all.
pub struct JitSpmm<'a, T: Scalar> {
    matrix: &'a CsrMatrix<T>,
    d: usize,
    options: SpmmOptions,
    threads: usize,
    kernel: CompiledKernel<T>,
    meta: KernelMeta,
    partition: Partition,
    counter: Box<DynamicCounter>,
    /// Serializes launches of this engine's kernel. The dynamic counter is
    /// shared mutable state embedded in the generated code, so two
    /// concurrent launches of one engine (possible from safe code — the
    /// engine is `Sync`) must not interleave a reset with a running claim
    /// loop.
    launch: Mutex<()>,
    /// [`launch_thread_token`] of the thread currently holding `launch`
    /// (0 = unheld); lets a same-thread re-entry fail fast instead of
    /// self-deadlocking.
    launch_owner: AtomicU64,
    pool: WorkerPool,
    output_pool: Arc<BufferPool<T>>,
    /// The options the kernel was generated with, kept so the batch pipeline
    /// can compile spare slot kernels ([`SlotKernel`]) on demand.
    kernel_options: KernelOptions,
    /// Lazily compiled spare kernels backing batch pipeline slots 1.. for
    /// dynamic-dispatch engines (see [`SlotKernel`]); cached across batches
    /// so repeated [`JitSpmm::execute_batch`] calls pay codegen once.
    batch_kernels: Mutex<Vec<Arc<SlotKernel<T>>>>,
}

impl<T: Scalar> std::fmt::Debug for JitSpmm<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JitSpmm")
            .field("d", &self.d)
            .field("strategy", &self.options.strategy)
            .field("threads", &self.threads)
            .field("pool_workers", &self.pool.size())
            .field("code_bytes", &self.meta.code_bytes)
            .finish()
    }
}

impl<'a, T: Scalar> JitSpmm<'a, T> {
    /// Compile a kernel for `matrix` with `d` dense columns under `options`,
    /// executing on the process-wide default pool.
    ///
    /// # Errors
    ///
    /// See [`JitSpmmBuilder::build`].
    pub fn compile(
        matrix: &'a CsrMatrix<T>,
        d: usize,
        options: SpmmOptions,
    ) -> Result<JitSpmm<'a, T>, JitSpmmError> {
        JitSpmm::compile_with_pool(matrix, d, options, WorkerPool::global().clone())
    }

    /// Compile a kernel as in [`JitSpmm::compile`], executing on `pool`.
    ///
    /// # Errors
    ///
    /// See [`JitSpmmBuilder::build`].
    pub fn compile_with_pool(
        matrix: &'a CsrMatrix<T>,
        d: usize,
        options: SpmmOptions,
        pool: WorkerPool,
    ) -> Result<JitSpmm<'a, T>, JitSpmmError> {
        if d == 0 {
            return Err(JitSpmmError::EmptyDenseMatrix);
        }
        let features = CpuFeatures::detect();
        let isa = options.isa.unwrap_or_else(|| features.best_isa());
        let kernel_options =
            KernelOptions { isa, ccm: options.ccm, features, listing: options.listing };
        let threads = pool.lanes_for(options.threads);
        let counter = Box::new(DynamicCounter::new());
        let binding = MatrixBinding::of(matrix);

        let start = Instant::now();
        let (generated, kind) = match options.strategy {
            Strategy::RowSplitDynamic { batch } => (
                generate_dynamic_kernel(
                    binding,
                    d,
                    T::KIND,
                    batch,
                    counter.as_ptr() as *const u8,
                    &kernel_options,
                )?,
                KernelKind::DynamicDispatch,
            ),
            _ => (
                generate_static_kernel(binding, d, T::KIND, &kernel_options)?,
                KernelKind::StaticRange,
            ),
        };
        let kernel = CompiledKernel::new(&generated.code, kind, generated.listing)?;
        let codegen_time = start.elapsed();

        let meta = KernelMeta {
            d,
            kind: T::KIND,
            isa,
            ccm: options.ccm,
            strategy: options.strategy,
            code_bytes: kernel.code().len(),
            codegen_time,
            register_plan: generated.plan.describe(),
            nnz_passes: generated.plan.passes(),
        };
        let partition = partition(matrix, options.strategy, threads);
        Ok(JitSpmm {
            matrix,
            d,
            options,
            threads,
            kernel,
            meta,
            partition,
            counter,
            launch: Mutex::new(()),
            launch_owner: AtomicU64::new(0),
            pool,
            output_pool: Arc::new(BufferPool::new()),
            kernel_options,
            batch_kernels: Mutex::new(Vec::new()),
        })
    }

    /// The sparse matrix this engine was compiled against.
    pub fn matrix(&self) -> &CsrMatrix<T> {
        self.matrix
    }

    /// The number of dense columns the kernel expects.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The number of worker lanes used by [`JitSpmm::execute`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The worker pool this engine executes on.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Kernel metadata: code size, register plan, code-generation time.
    pub fn meta(&self) -> &KernelMeta {
        &self.meta
    }

    /// The compiled kernel (code bytes, listing).
    pub fn kernel(&self) -> &CompiledKernel<T> {
        &self.kernel
    }

    /// The static row partition this engine will use (one range per lane;
    /// for the dynamic strategy this is only a fallback description).
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Begin a kernel launch: serialize against other launches of this
    /// engine and reset the per-launch dispatch state. The returned guard
    /// must be held until the launch completes.
    ///
    /// Invariant: the [`DynamicCounter`] is engine-owned shared state whose
    /// address is embedded in dynamically dispatched kernels, so it must be
    /// at row zero whenever such a kernel starts — whether the launch goes
    /// through the pool, the legacy spawning path, the single-thread path or
    /// the emulator. To keep that invariant in one place the reset happens
    /// here, unconditionally, before *every* launch (for static-range
    /// kernels it is a harmless store to memory nothing reads), and under
    /// the launch lock, so a concurrent launch of the same engine can never
    /// interleave a reset with a running claim loop.
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::LaunchInProgress`] if the calling thread
    /// already holds the launch lock (it is waiting on — or holding — an
    /// [`ExecutionHandle`] of this engine; blocking would self-deadlock),
    /// or, with `blocking` false, if any other launch is in flight. With
    /// `blocking` true a launch held by *another* thread is waited for, as
    /// the blocking execute paths always have.
    pub(crate) fn begin_launch(&self, blocking: bool) -> Result<LaunchGuard<'_>, JitSpmmError> {
        let guard = match self.launch.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => {
                let same_thread =
                    self.launch_owner.load(Ordering::Acquire) == launch_thread_token();
                if !blocking || same_thread {
                    return Err(JitSpmmError::LaunchInProgress);
                }
                crate::runtime::pool::lock(&self.launch)
            }
        };
        self.launch_owner.store(launch_thread_token(), Ordering::Release);
        self.counter.reset();
        Ok(LaunchGuard { owner: &self.launch_owner, _guard: guard })
    }

    /// Compute `Y = A * X` into an output buffer borrowed from the engine's
    /// internal pool.
    ///
    /// The returned [`PooledMatrix`] dereferences to [`DenseMatrix`];
    /// dropping it hands the buffer back, so a steady-state loop of
    /// `execute` calls performs **no allocation and no thread spawning**.
    /// The kernels overwrite every output element (empty rows included), so
    /// recycled buffers are not re-zeroed either. To manage the output
    /// buffer yourself — e.g. to reuse one across engines — see
    /// [`JitSpmm::execute_into`].
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] if `x` is not
    /// `A.ncols() x d`.
    pub fn execute(
        &self,
        x: &DenseMatrix<T>,
    ) -> Result<(PooledMatrix<T>, ExecutionReport), JitSpmmError> {
        // Validate, then lock, then allocate — the ordering every launch
        // path shares: a call that fails shape validation or blocks behind
        // another launch must not pay the buffer-pool round trip first.
        self.check_input_shape(x)?;
        let launch = self.begin_launch(true)?;
        let mut y = PooledMatrix::new(
            self.output_pool.acquire(self.matrix.nrows(), self.d),
            Arc::clone(&self.output_pool),
        );
        let report = self.launch_kernel(&launch, x, &mut y);
        Ok((y, report))
    }

    /// Compute `Y = A * X` without blocking: the kernel launch is submitted
    /// through `scope` to its worker pool and runs in the background while
    /// this call returns. Join it with [`ExecutionHandle::wait`] to obtain
    /// the result and its [`ExecutionReport`]; the waiting thread steals
    /// remaining kernel tasks, so submit-then-wait costs no more than the
    /// blocking [`JitSpmm::execute`].
    ///
    /// The job is capped to this engine's lane count
    /// ([`JitSpmmBuilder::threads`]), so several engines sharing a pool can
    /// execute **concurrently on disjoint worker subsets** — submit one
    /// handle per engine, then wait on all of them, and the launches overlap
    /// instead of serializing:
    ///
    /// ```
    /// use jitspmm::{JitSpmmBuilder, WorkerPool};
    /// use jitspmm_sparse::{generate, DenseMatrix};
    ///
    /// # fn main() -> Result<(), jitspmm::JitSpmmError> {
    /// let pool = WorkerPool::new(2);
    /// let a = generate::uniform::<f32>(200, 200, 2_000, 1);
    /// let b = generate::uniform::<f32>(150, 200, 1_500, 2);
    /// let eng_a = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, 8)?;
    /// let eng_b = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, 8)?;
    /// let x = DenseMatrix::random(200, 8, 3);
    /// pool.scope(|scope| -> Result<(), jitspmm::JitSpmmError> {
    ///     let ha = eng_a.execute_async(scope, &x)?; // both jobs now in flight,
    ///     let hb = eng_b.execute_async(scope, &x)?; // one worker lane each
    ///     let (ya, _) = ha.wait();
    ///     let (yb, _) = hb.wait();
    ///     assert!(ya.approx_eq(&a.spmm_reference(&x), 1e-4));
    ///     assert!(yb.approx_eq(&b.spmm_reference(&x), 1e-4));
    ///     Ok(())
    /// })?;
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// The launch is anchored to a [`PoolScope`] (see [`WorkerPool::scope`])
    /// because the job dereferences borrowed data — the compiled kernel, the
    /// CSR arrays its code embeds, and `x` — and memory safety must not
    /// depend on the handle's destructor running ([`std::mem::forget`] is
    /// safe): the scope joins every launch before it returns, even if the
    /// handle was dropped or leaked. Dropping the handle without waiting
    /// joins the job right away and recycles the output buffer; leaking it
    /// is safe but leaks the buffer and keeps the engine's launch slot
    /// occupied forever — non-blocking launches (and blocking ones from the
    /// leaking thread) fail with [`JitSpmmError::LaunchInProgress`], while
    /// blocking launches from *other* threads wait for a launch that never
    /// ends. The job runs on `scope`'s pool — normally the engine's own, as
    /// in the example; the lane cap applies to whichever pool the scope
    /// wraps.
    ///
    /// One engine can only run one launch at a time (the dynamic row-claim
    /// counter is engine-owned state embedded in the generated code), so a
    /// second `execute_async` on the *same* engine while a handle is
    /// outstanding returns [`JitSpmmError::LaunchInProgress`] instead of
    /// blocking — blocking would deadlock a caller that holds the first
    /// handle on the same thread. The blocking paths ([`JitSpmm::execute`]
    /// and friends) return the same error when the *calling thread* already
    /// holds an outstanding handle (they still block, as always, on
    /// launches held by other threads). On a zero-worker
    /// ([`WorkerPool::inline`]) pool the kernel runs to completion inside
    /// this call.
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] if `x` is not `A.ncols() x d`
    /// and [`JitSpmmError::LaunchInProgress`] if another launch of this
    /// engine has not completed yet.
    pub fn execute_async<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        x: &'env DenseMatrix<T>,
    ) -> Result<ExecutionHandle<'scope, T>, JitSpmmError> {
        // Validate, then lock, then allocate: a rejected call (bad shape, or
        // the expected busy-poll LaunchInProgress answer) must not pay a
        // buffer-pool round trip for an output it will never produce.
        self.check_input_shape(x)?;
        let guard = self.begin_launch(false)?;
        let mut y = PooledMatrix::new(
            self.output_pool.acquire(self.matrix.nrows(), self.d),
            Arc::clone(&self.output_pool),
        );
        let job = KernelJob::new(&self.kernel, &self.partition.ranges, x.as_ptr(), y.as_mut_ptr());
        let spec = job.spec(self.kernel.kind(), self.threads);
        // Owned through `Box::into_raw`/`from_raw` rather than as a `Box`
        // field: workers hold a raw pointer to the payload, which moving a
        // box (with every move of the handle) would invalidate under the
        // aliasing rules.
        let payload: *mut KernelJob<T> = Box::into_raw(Box::new(job));
        let start = Instant::now();
        // SAFETY: the payload allocation and the output buffer are owned by
        // the returned handle — released only after its drop has joined the
        // job, and leaked (never freed) if the handle is leaked — while the
        // kernel, the partition, the engine-borrowed CSR arrays and `x` are
        // borrowed for 'env, which cannot end before the scope has joined
        // the job. Shapes were checked above and the counter reset under the
        // launch lock held in `guard`.
        let job = unsafe {
            scope.submit_erased(spec, payload as *const (), KernelJob::<T>::erased())
        };
        Ok(ExecutionHandle {
            job: Some(job),
            payload,
            y: Some(y),
            start,
            threads: self.threads,
            strategy: self.options.strategy,
            _launch: guard,
        })
    }

    /// Compute `Y = A * X_i` for every input in `inputs`, pipelining up to
    /// [`DEFAULT_BATCH_DEPTH`] launches through the scope's worker pool at
    /// once, and return the outputs (in input order) together with a
    /// [`BatchReport`] aggregating per-input timing.
    ///
    /// This is the steady-state serving shape: one compiled kernel, a stream
    /// of dense right-hand sides. Relative to a loop of
    /// [`JitSpmm::execute`] calls, the pipeline
    ///
    /// * validates every input **once, up front** — a shape mismatch fails
    ///   the whole batch before any launch, never mid-stream,
    /// * takes the engine's launch lock once for the whole batch instead of
    ///   once per input,
    /// * keeps the next launch queued while the current one runs
    ///   (double-buffered outputs), so workers flow from one input's job
    ///   straight into the next without re-parking — degrading to direct
    ///   sequential execution on hosts where nothing can overlap (a single
    ///   hardware thread, or a zero-worker pool), where queue handoffs would
    ///   only cost, and
    /// * reuses per-slot job payloads, so steady-state submission performs
    ///   no per-launch boxing.
    ///
    /// Dynamic-dispatch engines compile one spare kernel per extra pipeline
    /// slot on first use (the row-claim counter's address is embedded in the
    /// generated code, so concurrently in-flight launches need their own
    /// copies); the spares are cached on the engine, so only the first batch
    /// pays that codegen. Static-range kernels have no embedded mutable
    /// state and share the engine's kernel across all slots.
    ///
    /// For unbounded streams — where inputs arrive one at a time and
    /// outputs should be consumed as they complete — drive a
    /// [`BatchStream`] directly via [`JitSpmm::batch_stream`].
    ///
    /// ```
    /// use jitspmm::JitSpmmBuilder;
    /// use jitspmm_sparse::{generate, DenseMatrix};
    ///
    /// # fn main() -> Result<(), jitspmm::JitSpmmError> {
    /// let a = generate::uniform::<f32>(128, 128, 1_000, 1);
    /// let engine = JitSpmmBuilder::new().threads(2).build(&a, 8)?;
    /// let inputs: Vec<DenseMatrix<f32>> =
    ///     (0..6).map(|seed| DenseMatrix::random(128, 8, seed)).collect();
    /// let (outputs, report) = engine
    ///     .pool()
    ///     .scope(|scope| engine.execute_batch(scope, &inputs))?;
    /// assert_eq!(outputs.len(), 6);
    /// assert_eq!(report.inputs, 6);
    /// for (x, y) in inputs.iter().zip(&outputs) {
    ///     assert!(y.approx_eq(&a.spmm_reference(x), 1e-4));
    /// }
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] (naming the offending input
    /// index) if any input is not `A.ncols() x d`, and
    /// [`JitSpmmError::LaunchInProgress`] if the calling thread already
    /// holds a launch of this engine.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic of the batch after joining the
    /// launches still in flight; the engine stays usable afterwards.
    pub fn execute_batch<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        inputs: &'env [DenseMatrix<T>],
    ) -> Result<(Vec<PooledMatrix<T>>, BatchReport), JitSpmmError> {
        // One-time validation, hoisted out of the per-input path.
        for (index, x) in inputs.iter().enumerate() {
            self.check_input_shape(x).map_err(|e| match e {
                JitSpmmError::ShapeMismatch(msg) => {
                    JitSpmmError::ShapeMismatch(format!("batch input {index}: {msg}"))
                }
                other => other,
            })?;
        }
        // Depth 0 = auto: pipeline at the default depth where overlap is
        // available, run sequentially where it is not. A batch of at most
        // one input has nothing to pipeline either way.
        let depth = if inputs.len() <= 1 { 1 } else { 0 };
        let mut stream = self.batch_stream(scope, depth)?;
        // The caller holds all the batch's outputs at once; let the buffer
        // pool retain that many spares so repeated batches recycle them all.
        // (Only once the batch is actually going to run — a failed call must
        // not mutate engine state.)
        self.output_pool.reserve(inputs.len());
        let mut outputs = Vec::with_capacity(inputs.len());
        for x in inputs {
            if let Some((y, _)) = stream.push_validated(x) {
                outputs.push(y);
            }
        }
        let (rest, report) = stream.finish();
        outputs.extend(rest.into_iter().map(|(y, _)| y));
        Ok((outputs, report))
    }

    /// Open a [`BatchStream`]: the incremental form of
    /// [`JitSpmm::execute_batch`] for unbounded input streams.
    ///
    /// `depth` is the number of launches kept in flight at once (`0` selects
    /// [`DEFAULT_BATCH_DEPTH`]; values are capped at an internal maximum of
    /// 16). On hosts where deferred launches cannot overlap anything — a
    /// single hardware thread, or a zero-worker pool — depths of 0 and 1
    /// degrade to direct sequential execution on the calling thread (no
    /// queue round trips, bit-identical results); an explicit `depth >= 2`
    /// always uses the real pipeline. The stream holds the engine's launch
    /// lock until it is finished or dropped — other launches of this engine
    /// block (or fail with [`JitSpmmError::LaunchInProgress`] from the
    /// owning thread) meanwhile.
    ///
    /// Feed it from any iterator:
    ///
    /// ```
    /// use jitspmm::JitSpmmBuilder;
    /// use jitspmm_sparse::{generate, DenseMatrix};
    ///
    /// # fn main() -> Result<(), jitspmm::JitSpmmError> {
    /// let a = generate::uniform::<f32>(64, 64, 500, 2);
    /// let engine = JitSpmmBuilder::new().threads(2).build(&a, 4)?;
    /// let inputs: Vec<DenseMatrix<f32>> =
    ///     (0..5).map(|seed| DenseMatrix::random(64, 4, seed)).collect();
    /// engine.pool().scope(|scope| -> Result<(), jitspmm::JitSpmmError> {
    ///     let mut stream = engine.batch_stream(scope, 2)?;
    ///     let mut done = 0usize;
    ///     for x in &inputs {
    ///         // `push` hands back the oldest completed output once the
    ///         // pipeline is full.
    ///         if let Some((y, _report)) = stream.push(x)? {
    ///             done += 1;
    ///             drop(y); // recycled into the engine's buffer pool
    ///         }
    ///     }
    ///     let (rest, report) = stream.finish();
    ///     done += rest.len();
    ///     assert_eq!(done, inputs.len());
    ///     assert_eq!(report.inputs, inputs.len());
    ///     Ok(())
    /// })?;
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::LaunchInProgress`] if the calling thread already
    /// holds a launch of this engine, or a codegen error if compiling a
    /// spare slot kernel fails.
    pub fn batch_stream<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        depth: usize,
    ) -> Result<BatchStream<'scope, 'env, T>, JitSpmmError> {
        // Deferring launches through the job queue only pays off when
        // something can actually run concurrently with the submitting
        // thread. On a single-hardware-thread host (or a zero-worker pool)
        // the queue handoffs are pure overhead, so auto mode (depth 0 or 1)
        // degrades to direct sequential execution; an explicit depth >= 2 is
        // a request for real pipelining and is honoured everywhere.
        let no_overlap = scope.pool().size() == 0 || host_parallelism() == 1;
        let (depth, sequential) = match depth {
            0 => {
                if no_overlap {
                    (1, true)
                } else {
                    (DEFAULT_BATCH_DEPTH, false)
                }
            }
            1 => (1, no_overlap),
            n => (n.min(MAX_BATCH_DEPTH), false),
        };
        let launch = self.begin_launch(true)?;
        let spares = self.spare_slot_kernels(depth - 1)?;
        let mut slots = Vec::with_capacity(depth);
        slots.push(BatchSlot { kernel: None, payload: LaunchPayload::new(), busy: false });
        match self.kernel.kind() {
            // Each concurrently in-flight dynamic launch needs its own
            // claim counter, hence its own compiled kernel copy.
            KernelKind::DynamicDispatch => {
                for spare in spares {
                    slots.push(BatchSlot {
                        kernel: Some(spare),
                        payload: LaunchPayload::new(),
                        busy: false,
                    });
                }
            }
            // Static-range kernels carry no mutable state; every slot can
            // launch the engine's own kernel.
            KernelKind::StaticRange => {
                for _ in 1..depth {
                    slots.push(BatchSlot {
                        kernel: None,
                        payload: LaunchPayload::new(),
                        busy: false,
                    });
                }
            }
        }
        Ok(BatchStream {
            engine: self,
            scope,
            slots,
            in_flight: VecDeque::with_capacity(depth),
            sequential,
            stats: BatchStats::default(),
            first_submit: None,
            _launch: launch,
        })
    }

    /// The cached spare [`SlotKernel`]s for batch pipeline slots `1..=extra`
    /// of a dynamic-dispatch engine, compiling any that do not exist yet.
    /// Static-range engines need none and get an empty list.
    fn spare_slot_kernels(&self, extra: usize) -> Result<Vec<Arc<SlotKernel<T>>>, JitSpmmError> {
        if extra == 0 || self.kernel.kind() != KernelKind::DynamicDispatch {
            return Ok(Vec::new());
        }
        let Strategy::RowSplitDynamic { batch } = self.options.strategy else {
            unreachable!("dynamic kernels are only generated for dynamic row-split")
        };
        let mut cache = crate::runtime::pool::lock(&self.batch_kernels);
        while cache.len() < extra {
            let counter = Box::new(DynamicCounter::new());
            // Listings are a debugging aid of the primary kernel; spare
            // copies are byte-identical except for the counter address.
            let options = KernelOptions { listing: false, ..self.kernel_options };
            let generated = generate_dynamic_kernel(
                MatrixBinding::of(self.matrix),
                self.d,
                T::KIND,
                batch,
                counter.as_ptr() as *const u8,
                &options,
            )?;
            let kernel = CompiledKernel::new(&generated.code, KernelKind::DynamicDispatch, None)?;
            cache.push(Arc::new(SlotKernel { kernel, counter }));
        }
        Ok(cache.iter().take(extra).cloned().collect())
    }

    /// Compute `Y = A * X` into an existing output matrix (its previous
    /// contents are overwritten; no zeroing is required beforehand).
    ///
    /// This is the zero-allocation entry point for callers that manage their
    /// own buffers; [`JitSpmm::execute`] achieves the same steady-state cost
    /// by recycling buffers internally.
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] if `x` is not `A.ncols() x d`
    /// or `y` is not `A.nrows() x d`.
    pub fn execute_into(
        &self,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> Result<ExecutionReport, JitSpmmError> {
        self.check_shapes(x, y)?;
        let launch = self.begin_launch(true)?;
        Ok(self.launch_kernel(&launch, x, y))
    }

    /// Dispatch one launch of the compiled kernel over the pool. The caller
    /// has already validated the shapes and holds the launch lock (`_launch`
    /// proves it).
    fn launch_kernel(
        &self,
        _launch: &LaunchGuard<'_>,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> ExecutionReport {
        let start = Instant::now();
        // SAFETY: the engine borrows the CSR matrix whose pointers the kernel
        // embeds, the caller checked the shapes, and rows are partitioned
        // disjointly across lanes (statically or via the dynamic counter,
        // reset under the held launch lock).
        let kernel = unsafe {
            match self.kernel.kind() {
                KernelKind::DynamicDispatch => dispatch::run_dynamic(
                    &self.pool,
                    &self.kernel,
                    self.threads,
                    x.as_ptr(),
                    y.as_mut_ptr(),
                ),
                KernelKind::StaticRange => dispatch::run_static(
                    &self.pool,
                    &self.kernel,
                    &self.partition.ranges,
                    self.threads,
                    x.as_ptr(),
                    y.as_mut_ptr(),
                ),
            }
        };
        let elapsed = start.elapsed();
        ExecutionReport {
            elapsed,
            kernel,
            dispatch: elapsed.saturating_sub(kernel),
            threads: self.threads,
            strategy: self.options.strategy,
        }
    }

    /// Compute `Y = A * X` by spawning fresh OS threads for this one call —
    /// the pre-pool dispatch path, kept as the baseline for the
    /// `dispatch_overhead` benchmark and for environments where a persistent
    /// pool is undesirable.
    ///
    /// # Errors
    ///
    /// Same shape requirements as [`JitSpmm::execute_into`].
    pub fn execute_into_spawning(
        &self,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> Result<ExecutionReport, JitSpmmError> {
        self.check_shapes(x, y)?;
        let _launch = self.begin_launch(true)?;
        let x_addr = x.as_ptr() as usize;
        let y_addr = y.as_mut_ptr() as usize;
        let busy_ns = AtomicU64::new(0);
        let start = Instant::now();
        match self.kernel.kind() {
            KernelKind::DynamicDispatch => {
                std::thread::scope(|scope| {
                    for _ in 0..self.threads {
                        let busy_ns = &busy_ns;
                        scope.spawn(move || {
                            let lane_start = Instant::now();
                            // SAFETY: as in `execute_into`; the dynamic
                            // counter partitions rows disjointly.
                            unsafe {
                                self.kernel
                                    .call_dynamic(x_addr as *const T, y_addr as *mut T);
                            }
                            busy_ns.fetch_max(
                                lane_start.elapsed().as_nanos() as u64,
                                Ordering::Relaxed,
                            );
                        });
                    }
                });
            }
            KernelKind::StaticRange => {
                std::thread::scope(|scope| {
                    for range in &self.partition.ranges {
                        if range.is_empty() {
                            continue;
                        }
                        let busy_ns = &busy_ns;
                        scope.spawn(move || {
                            let lane_start = Instant::now();
                            // SAFETY: as above; static ranges are disjoint by
                            // construction.
                            unsafe {
                                self.kernel.call_static(
                                    range.start as u64,
                                    range.end as u64,
                                    x_addr as *const T,
                                    y_addr as *mut T,
                                );
                            }
                            busy_ns.fetch_max(
                                lane_start.elapsed().as_nanos() as u64,
                                Ordering::Relaxed,
                            );
                        });
                    }
                });
            }
        }
        let elapsed = start.elapsed();
        let kernel = Duration::from_nanos(busy_ns.load(Ordering::Relaxed));
        Ok(ExecutionReport {
            elapsed,
            kernel,
            dispatch: elapsed.saturating_sub(kernel),
            threads: self.threads,
            strategy: self.options.strategy,
        })
    }

    /// Run the kernel single-threaded over the whole matrix (used by the
    /// profiling harness, where the emulator measures one thread's work).
    ///
    /// # Errors
    ///
    /// Same shape requirements as [`JitSpmm::execute_into`].
    pub fn execute_single_thread(
        &self,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> Result<ExecutionReport, JitSpmmError> {
        self.check_shapes(x, y)?;
        let _launch = self.begin_launch(true)?;
        let start = Instant::now();
        match self.kernel.kind() {
            KernelKind::DynamicDispatch => {
                // SAFETY: see execute_into.
                unsafe { self.kernel.call_dynamic(x.as_ptr(), y.as_mut_ptr()) };
            }
            KernelKind::StaticRange => {
                // SAFETY: see execute_into.
                unsafe {
                    self.kernel.call_static(
                        0,
                        self.matrix.nrows() as u64,
                        x.as_ptr(),
                        y.as_mut_ptr(),
                    )
                };
            }
        }
        let elapsed = start.elapsed();
        Ok(ExecutionReport {
            elapsed,
            kernel: elapsed,
            dispatch: Duration::ZERO,
            threads: 1,
            strategy: self.options.strategy,
        })
    }

    fn check_input_shape(&self, x: &DenseMatrix<T>) -> Result<(), JitSpmmError> {
        if x.nrows() != self.matrix.ncols() || x.ncols() != self.d {
            return Err(JitSpmmError::ShapeMismatch(format!(
                "dense input is {}x{} but the kernel expects {}x{}",
                x.nrows(),
                x.ncols(),
                self.matrix.ncols(),
                self.d
            )));
        }
        Ok(())
    }

    fn check_shapes(&self, x: &DenseMatrix<T>, y: &DenseMatrix<T>) -> Result<(), JitSpmmError> {
        self.check_input_shape(x)?;
        if y.nrows() != self.matrix.nrows() || y.ncols() != self.d {
            return Err(JitSpmmError::ShapeMismatch(format!(
                "dense output is {}x{} but the kernel produces {}x{}",
                y.nrows(),
                y.ncols(),
                self.matrix.nrows(),
                self.d
            )));
        }
        Ok(())
    }

    /// Fraction of the total build+execute time spent generating code, as
    /// reported in Table IV, given a measured execution time.
    pub fn codegen_overhead_ratio(&self, execution: Duration) -> f64 {
        let cg = self.meta.codegen_time.as_secs_f64();
        let total = cg + execution.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            cg / total
        }
    }
}

/// An in-flight asynchronous kernel launch, returned by
/// [`JitSpmm::execute_async`].
///
/// The launch runs on the scope's worker pool while the submitting thread
/// is free to do other work — typically submitting launches on *other*
/// engines so that several compiled kernels overlap on disjoint, lane-capped
/// worker subsets. [`ExecutionHandle::wait`] joins the job (stealing its
/// remaining tasks) and returns the pooled output plus the usual
/// [`ExecutionReport`].
///
/// Dropping the handle without waiting joins the job too and hands the
/// output buffer back to the engine's pool — nothing leaks and the pool
/// shuts down cleanly. The handle also holds the engine's launch lock, so
/// the engine accepts no other launch until the handle is gone. Leaking the
/// handle (e.g. [`std::mem::forget`]) is safe — the owning [`PoolScope`]
/// still joins the kernel job before any borrowed input can be freed — but
/// leaks the output buffer and leaves the launch lock held forever: the
/// engine refuses non-blocking (and same-thread blocking) launches with
/// [`crate::JitSpmmError::LaunchInProgress`], and blocking launches from
/// other threads wait indefinitely.
pub struct ExecutionHandle<'s, T: Scalar> {
    /// Joined in [`ExecutionHandle::wait`] or in the drop below; when the
    /// handle is leaked instead, the owning [`PoolScope`] joins the job.
    job: Option<ScopedJobHandle<'s>>,
    /// The erased task data the pool workers dereference, owned through
    /// `Box::into_raw` (a box field would be invalidated by handle moves);
    /// freed in drop after the join, leaked with a leaked handle.
    payload: *mut KernelJob<T>,
    y: Option<PooledMatrix<T>>,
    start: Instant,
    threads: usize,
    strategy: Strategy,
    /// Holds the engine's launch lock for the lifetime of the launch (the
    /// dynamic counter must not be reset mid-claim by another launch).
    _launch: LaunchGuard<'s>,
}

impl<T: Scalar> Drop for ExecutionHandle<'_, T> {
    fn drop(&mut self) {
        // Join before the payload, the output buffer and the launch guard
        // are released. Kernel panics are discarded here — `wait` re-raises
        // them — so an abandoned launch cannot poison the scope exit.
        if let Some(job) = &mut self.job {
            job.join_quiet();
        }
        // SAFETY: produced by `Box::into_raw` in `execute_async`; the job is
        // joined (above, or before `wait` returned), so no worker can reach
        // the payload.
        drop(unsafe { Box::from_raw(self.payload) });
    }
}

impl<T: Scalar> ExecutionHandle<'_, T> {
    /// Whether the launch has completed (lock-free; `true` means
    /// [`ExecutionHandle::wait`] will not block).
    pub fn is_done(&self) -> bool {
        self.job.as_ref().is_none_or(|job| job.is_done())
    }

    /// Join the launch and return the output with its [`ExecutionReport`].
    ///
    /// The calling thread participates in the remaining kernel tasks.
    /// `ExecutionReport::elapsed` spans submission to join, so time the
    /// caller spent on other work between [`JitSpmm::execute_async`] and
    /// `wait` — the overlap this API exists for — shows up in `dispatch`,
    /// not in `kernel`.
    pub fn wait(mut self) -> (PooledMatrix<T>, ExecutionReport) {
        let kernel = self.job.take().expect("launch joined at most once").wait();
        let elapsed = self.start.elapsed();
        let y = self.y.take().expect("output present until wait");
        let report = ExecutionReport {
            elapsed,
            kernel,
            dispatch: elapsed.saturating_sub(kernel),
            threads: self.threads,
            strategy: self.strategy,
        };
        (y, report)
    }
}

impl<T: Scalar> std::fmt::Debug for ExecutionHandle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionHandle")
            .field("done", &self.is_done())
            .field("threads", &self.threads)
            .finish()
    }
}

/// Default number of launches [`JitSpmm::execute_batch`] keeps in flight:
/// double buffering — one launch executing while the next is already queued,
/// so workers flow between inputs without re-parking.
pub const DEFAULT_BATCH_DEPTH: usize = 2;

/// Upper bound on the batch pipeline depth. Each slot holds one output
/// buffer (and, for dynamic engines, one spare kernel copy), and depths past
/// the pool's worker count buy no additional overlap.
const MAX_BATCH_DEPTH: usize = 16;

/// A spare kernel instance backing one batch pipeline slot of a
/// dynamic-dispatch engine. The row-claim counter's address is embedded in
/// the generated code, so every launch that may be in flight concurrently
/// needs its own counter — and therefore its own compiled copy. (Static
/// kernels have no embedded mutable state; slots share the engine's.)
struct SlotKernel<T: Scalar> {
    kernel: CompiledKernel<T>,
    /// The claim counter the spare kernel's `lock xadd` targets; boxed so
    /// its address outlives any move of the surrounding struct.
    counter: Box<DynamicCounter>,
}

/// Aggregated timing for one batch, returned by [`JitSpmm::execute_batch`]
/// and [`BatchStream::finish`].
///
/// Per-input timing follows [`ExecutionReport`]: `kernel` is a launch's
/// critical-path kernel time, `dispatch` is everything else between its
/// submission and its join — which, inside a pipeline, includes time spent
/// queued behind the previous input *and*, when a [`BatchStream`] is driven
/// at the caller's own pace, time a finished result waited for the caller
/// to collect it. Dispatch percentiles therefore measure runtime overhead
/// only when the stream is driven back-to-back (as [`JitSpmm::execute_batch`]
/// does); for a paced stream they measure end-to-end result latency. The
/// report keeps order statistics (p50 and p99, nearest-rank; past 4096
/// inputs, estimated from a uniform reservoir sample) rather than just
/// means, because a serving system's tail is what its clients feel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchReport {
    /// Number of inputs executed.
    pub inputs: usize,
    /// Wall-clock time from the first submission to the last join.
    pub elapsed: Duration,
    /// Pipeline depth used (launches kept in flight at once).
    pub depth: usize,
    /// Worker lanes per launch: the engine's configured lane count, or 1
    /// when the stream ran on the sequential fast path (see
    /// [`JitSpmm::batch_stream`]).
    pub threads: usize,
    /// Strategy of the engine that ran the batch.
    pub strategy: Strategy,
    /// Sum of per-input critical-path kernel times.
    pub kernel_total: Duration,
    /// Median per-input kernel time.
    pub kernel_p50: Duration,
    /// 99th-percentile per-input kernel time.
    pub kernel_p99: Duration,
    /// Median per-input dispatch (non-kernel) time.
    pub dispatch_p50: Duration,
    /// 99th-percentile per-input dispatch time.
    pub dispatch_p99: Duration,
}

impl BatchReport {
    /// Inputs completed per second of batch wall-clock time (0.0 for an
    /// empty or instantaneous batch).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.inputs as f64 / secs
        }
    }
}

/// Nearest-rank percentile of a **sorted** duration slice (`pct` in 0..=100);
/// zero for an empty slice.
fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Upper bound on the per-input timing samples a stream retains for the
/// percentile report. An unbounded stream must run in O(1) memory, so past
/// this many inputs the samples become a uniform reservoir (Vitter's
/// algorithm R) — `inputs` and `kernel_total` stay exact, the percentiles
/// become estimates over an unbiased sample.
const MAX_BATCH_SAMPLES: usize = 4096;

/// Per-input samples accumulated while a batch runs: exact counters plus a
/// bounded uniform reservoir of (kernel, dispatch) sample pairs.
#[derive(Default)]
struct BatchStats {
    kernel: Vec<Duration>,
    dispatch: Vec<Duration>,
    /// Exact number of inputs recorded (the reservoir may hold fewer).
    count: usize,
    kernel_total: Duration,
    /// Deterministic LCG state for reservoir replacement (no RNG
    /// dependency; statistical uniformity is all the percentiles need).
    rng: u64,
}

impl BatchStats {
    fn record(&mut self, report: &ExecutionReport) {
        self.count += 1;
        self.kernel_total += report.kernel;
        if self.kernel.len() < MAX_BATCH_SAMPLES {
            self.kernel.push(report.kernel);
            self.dispatch.push(report.dispatch);
            return;
        }
        // Algorithm R: the i-th input replaces a uniformly drawn reservoir
        // slot with probability MAX_BATCH_SAMPLES / i.
        self.rng =
            self.rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let slot = (self.rng >> 33) as usize % self.count;
        if slot < MAX_BATCH_SAMPLES {
            self.kernel[slot] = report.kernel;
            self.dispatch[slot] = report.dispatch;
        }
    }

    fn report(
        mut self,
        elapsed: Duration,
        depth: usize,
        threads: usize,
        strategy: Strategy,
    ) -> BatchReport {
        self.kernel.sort_unstable();
        self.dispatch.sort_unstable();
        BatchReport {
            inputs: self.count,
            elapsed,
            depth,
            threads,
            strategy,
            kernel_total: self.kernel_total,
            kernel_p50: percentile(&self.kernel, 50.0),
            kernel_p99: percentile(&self.kernel, 99.0),
            dispatch_p50: percentile(&self.dispatch, 50.0),
            dispatch_p99: percentile(&self.dispatch, 99.0),
        }
    }
}

/// One lane of the batch pipeline: a (possibly spare) kernel to launch and a
/// reusable heap slot for the launch payload.
struct BatchSlot<T: Scalar> {
    /// `None` — launch the engine's own kernel (and reset the engine's
    /// counter); `Some` — a spare dynamic-dispatch copy with its own counter.
    kernel: Option<Arc<SlotKernel<T>>>,
    payload: LaunchPayload<T>,
    /// Whether a launch submitted from this slot is still in flight.
    busy: bool,
}

/// How one batch launch is completed.
enum Pending<'scope> {
    /// Deferred through the scope's job queue; joined on completion.
    Queued(ScopedJobHandle<'scope>),
    /// Already executed on the submitting thread (the stream's sequential
    /// mode); only the recorded kernel time remains.
    Done(Duration),
}

/// One in-flight batch launch, oldest-first in [`BatchStream::in_flight`].
struct InFlight<'scope, T: Scalar> {
    pending: Pending<'scope>,
    slot: usize,
    y: Option<PooledMatrix<T>>,
    submitted: Instant,
}

/// A pipelined stream of SpMM executions through one engine, created by
/// [`JitSpmm::batch_stream`] (or driven for you by
/// [`JitSpmm::execute_batch`]).
///
/// [`BatchStream::push`] submits the next input and, once the pipeline is
/// full, hands back the **oldest** completed output — results always come
/// back in submission order. [`BatchStream::finish`] drains the pipeline and
/// aggregates the per-input timing into a [`BatchReport`].
///
/// The stream holds the engine's launch lock for its whole lifetime (batch
/// members do not re-take it per input), so the engine accepts no other
/// launches until the stream is finished or dropped. Dropping the stream
/// mid-batch joins the launches still in flight and discards their results;
/// leaking it (`std::mem::forget`) is safe — the owning [`PoolScope`] still
/// joins every launch — but leaks the in-flight output buffers and leaves
/// the engine's launch lock held forever, exactly like a leaked
/// [`ExecutionHandle`].
pub struct BatchStream<'scope, 'env, T: Scalar> {
    engine: &'env JitSpmm<'env, T>,
    scope: &'scope PoolScope<'scope, 'env>,
    slots: Vec<BatchSlot<T>>,
    /// Launches in flight, oldest first.
    in_flight: VecDeque<InFlight<'scope, T>>,
    /// Sequential mode: execute each input directly on the calling thread,
    /// single-lane, instead of deferring through the job queue. Chosen when
    /// queue handoffs cannot buy any overlap — a single-hardware-thread
    /// host, or a zero-worker pool — unless the caller explicitly requested
    /// a pipeline depth of 2 or more. Row-wise partitioning computes every
    /// output row with the same instruction sequence whichever lane claims
    /// it, so sequential results are bit-identical to pipelined ones.
    sequential: bool,
    stats: BatchStats,
    first_submit: Option<Instant>,
    /// The engine's launch lock, held once for the whole batch.
    _launch: LaunchGuard<'env>,
}

impl<'scope, 'env, T: Scalar> BatchStream<'scope, 'env, T> {
    /// The pipeline depth: how many launches this stream keeps in flight.
    pub fn depth(&self) -> usize {
        self.slots.len()
    }

    /// Number of launches currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Submit the next input. If the pipeline is already at depth, waits for
    /// the **oldest** in-flight launch first and returns its output and
    /// per-input [`ExecutionReport`]; otherwise returns `None` and the call
    /// does not block.
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] — without submitting anything
    /// — if `x` is not `A.ncols() x d`; the pipeline is unaffected and
    /// further pushes proceed normally.
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic from the completed launch (the stream is
    /// then dropped by unwinding, which joins the remaining launches and
    /// releases the engine).
    pub fn push(
        &mut self,
        x: &'env DenseMatrix<T>,
    ) -> Result<Option<(PooledMatrix<T>, ExecutionReport)>, JitSpmmError> {
        self.engine.check_input_shape(x)?;
        Ok(self.push_validated(x))
    }

    /// [`BatchStream::push`] for pre-validated inputs
    /// ([`JitSpmm::execute_batch`] hoists the shape checks out of the loop).
    fn push_validated(
        &mut self,
        x: &'env DenseMatrix<T>,
    ) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        let done = if self.in_flight.len() == self.slots.len() {
            Some(self.complete_oldest())
        } else {
            None
        };
        self.submit(x);
        done
    }

    /// Drain the pipeline: wait for every in-flight launch (oldest first),
    /// returning their outputs plus the aggregated [`BatchReport`].
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic among the remaining launches, after
    /// all of them have been joined.
    pub fn finish(mut self) -> (Vec<(PooledMatrix<T>, ExecutionReport)>, BatchReport) {
        let mut rest = Vec::with_capacity(self.in_flight.len());
        while !self.in_flight.is_empty() {
            rest.push(self.complete_oldest());
        }
        let elapsed = self.first_submit.map(|t| t.elapsed()).unwrap_or_default();
        let stats = std::mem::take(&mut self.stats);
        // Sequential launches all ran single-lane, whatever the engine is
        // configured with; the aggregate report matches the per-input ones.
        let threads = if self.sequential { 1 } else { self.engine.threads };
        let report =
            stats.report(elapsed, self.slots.len(), threads, self.engine.options.strategy);
        (rest, report)
    }

    /// Launch `x` from a free slot. The caller guarantees one exists (the
    /// pipeline was drained to below depth) and that `x` passed validation.
    fn submit(&mut self, x: &'env DenseMatrix<T>) {
        if self.sequential {
            return self.submit_sequential(x);
        }
        let engine = self.engine;
        let index = self
            .slots
            .iter()
            .position(|slot| !slot.busy)
            .expect("pipeline depth bounds the number of in-flight launches");
        let slot = &mut self.slots[index];
        let (kernel, counter): (&CompiledKernel<T>, &DynamicCounter) = match &slot.kernel {
            Some(spare) => (&spare.kernel, &spare.counter),
            None => (&engine.kernel, &engine.counter),
        };
        // The slot is free — its previous launch was joined — so nothing is
        // mid-claim on this counter: the per-launch reset that
        // `begin_launch` performs for a standalone execute happens here,
        // per slot. (Harmless for static kernels, as ever.)
        counter.reset();
        let mut y = PooledMatrix::new(
            engine.output_pool.acquire(engine.matrix.nrows(), engine.d),
            Arc::clone(&engine.output_pool),
        );
        let job = KernelJob::new(kernel, &engine.partition.ranges, x.as_ptr(), y.as_mut_ptr());
        let spec = job.spec(kernel.kind(), engine.threads);
        // SAFETY: the slot is free, so no in-flight job references its
        // payload.
        let data = unsafe { slot.payload.store(job) };
        let submitted = Instant::now();
        self.first_submit.get_or_insert(submitted);
        // SAFETY: the payload slot is owned by `self.slots` and only freed
        // (in the stream's drop) or rewritten (in a later `submit`) after
        // this launch has been joined — or leaked, never freed, if the
        // stream is leaked. The kernel (engine's, or a spare kept alive by
        // the slot's `Arc` and the engine's cache), the partition, the
        // engine-borrowed CSR arrays and `x` all live for at least 'env,
        // which cannot end before the scope has joined the job. Shapes were
        // validated before this call and the slot's counter reset above,
        // while the engine's launch lock (held in `_launch`) keeps
        // non-batch launches out.
        let handle = unsafe { self.scope.submit_erased(spec, data, KernelJob::<T>::erased()) };
        slot.busy = true;
        self.in_flight.push_back(InFlight {
            pending: Pending::Queued(handle),
            slot: index,
            y: Some(y),
            submitted,
        });
    }

    /// Sequential-mode [`BatchStream::submit`]: run the kernel to completion
    /// on the calling thread, single-lane, with no pool round trip. Used on
    /// hosts where deferral cannot overlap anything (see
    /// [`JitSpmm::batch_stream`]); produces bit-identical results because
    /// per-row arithmetic does not depend on which lane computes a row.
    fn submit_sequential(&mut self, x: &'env DenseMatrix<T>) {
        let engine = self.engine;
        let submitted = Instant::now();
        self.first_submit.get_or_insert(submitted);
        let mut y = PooledMatrix::new(
            engine.output_pool.acquire(engine.matrix.nrows(), engine.d),
            Arc::clone(&engine.output_pool),
        );
        // The launch lock is held for the stream's lifetime and nothing else
        // is in flight (sequential mode), so the engine's own counter is
        // free to reset.
        engine.counter.reset();
        let kernel_start = Instant::now();
        // SAFETY: shapes were validated before this call, the engine borrows
        // the CSR arrays its kernel embeds, the counter was reset above
        // under the held launch lock, and a single lane trivially keeps row
        // writes disjoint.
        unsafe {
            match engine.kernel.kind() {
                KernelKind::DynamicDispatch => {
                    engine.kernel.call_dynamic(x.as_ptr(), y.as_mut_ptr())
                }
                KernelKind::StaticRange => engine.kernel.call_static(
                    0,
                    engine.matrix.nrows() as u64,
                    x.as_ptr(),
                    y.as_mut_ptr(),
                ),
            }
        }
        let kernel = kernel_start.elapsed();
        self.slots[0].busy = true;
        self.in_flight.push_back(InFlight {
            pending: Pending::Done(kernel),
            slot: 0,
            y: Some(y),
            submitted,
        });
    }

    /// Join the oldest in-flight launch, free its slot and record its
    /// timing. Re-raises a worker panic after the bookkeeping is restored
    /// (the slot is marked free and the launch removed from the queue), so
    /// the unwind path — the stream's drop — sees a consistent pipeline.
    fn complete_oldest(&mut self) -> (PooledMatrix<T>, ExecutionReport) {
        let mut launch =
            self.in_flight.pop_front().expect("caller checked a launch is in flight");
        // Sequential launches ran on exactly one lane, whatever the engine
        // is configured with; the per-input report says so.
        let (joined, threads) = match &mut launch.pending {
            Pending::Queued(job) => (job.try_wait(), self.engine.threads),
            Pending::Done(kernel) => (Ok(*kernel), 1),
        };
        self.slots[launch.slot].busy = false;
        let kernel = match joined {
            Ok(kernel) => kernel,
            Err(payload) => resume_unwind(payload),
        };
        let elapsed = launch.submitted.elapsed();
        let report = ExecutionReport {
            elapsed,
            kernel,
            dispatch: elapsed.saturating_sub(kernel),
            threads,
            strategy: self.engine.options.strategy,
        };
        self.stats.record(&report);
        (launch.y.take().expect("output held until completion"), report)
    }
}

impl<T: Scalar> Drop for BatchStream<'_, '_, T> {
    fn drop(&mut self) {
        // Join every launch still in flight before the payload slots (freed
        // when `slots` drops right after this body) and the launch guard are
        // released. Panics are discarded here, as in `ExecutionHandle`'s
        // drop — `push`/`finish` re-raise them.
        for launch in &mut self.in_flight {
            if let Pending::Queued(job) = &mut launch.pending {
                job.join_quiet();
            }
        }
    }
}

impl<T: Scalar> std::fmt::Debug for BatchStream<'_, '_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchStream")
            .field("depth", &self.slots.len())
            .field("in_flight", &self.in_flight.len())
            .field("completed", &self.stats.count)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitspmm_sparse::generate;

    fn host_ok() -> bool {
        let f = CpuFeatures::detect();
        f.avx && f.has_fma()
    }

    #[test]
    fn compile_rejects_zero_columns() {
        let a = generate::uniform::<f32>(10, 10, 20, 1);
        let err = JitSpmm::compile(&a, 0, SpmmOptions::default()).unwrap_err();
        assert!(matches!(err, JitSpmmError::EmptyDenseMatrix));
    }

    #[test]
    fn execute_matches_reference_all_strategies() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::rmat::<f32>(9, 6_000, generate::RmatConfig::GRAPH500, 5);
        let x = DenseMatrix::random(a.ncols(), 16, 7);
        let expected = a.spmm_reference(&x);
        for strategy in [
            Strategy::RowSplitStatic,
            Strategy::row_split_dynamic_default(),
            Strategy::NnzSplit,
            Strategy::MergeSplit,
        ] {
            let engine = JitSpmmBuilder::new().strategy(strategy).threads(4).build(&a, 16).unwrap();
            let (y, report) = engine.execute(&x).unwrap();
            assert!(
                y.approx_eq(&expected, 1e-4),
                "strategy {strategy}: max diff = {}",
                y.max_abs_diff(&expected)
            );
            assert_eq!(report.threads, 4);
        }
    }

    #[test]
    fn execute_handles_odd_column_counts() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(200, 150, 2_000, 3);
        for d in [1usize, 3, 8, 17, 45, 64] {
            let x = DenseMatrix::random(a.ncols(), d, 11);
            let expected = a.spmm_reference(&x);
            let engine = JitSpmmBuilder::new().threads(2).build(&a, d).unwrap();
            let (y, _) = engine.execute(&x).unwrap();
            assert!(y.approx_eq(&expected, 1e-4), "d = {d}: diff {}", y.max_abs_diff(&expected));
        }
    }

    #[test]
    fn f64_kernels_match_reference() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f64>(120, 120, 1_500, 9);
        for d in [1usize, 8, 19] {
            let x = DenseMatrix::<f64>::random(a.ncols(), d, 13);
            let expected = a.spmm_reference(&x);
            let engine = JitSpmmBuilder::new().threads(2).build(&a, d).unwrap();
            let (y, _) = engine.execute(&x).unwrap();
            assert!(y.approx_eq(&expected, 1e-10), "d = {d}");
        }
    }

    #[test]
    fn shape_mismatch_is_detected() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(50, 60, 300, 1);
        let engine = JitSpmmBuilder::new().threads(1).build(&a, 8).unwrap();
        let wrong_rows = DenseMatrix::<f32>::zeros(10, 8);
        assert!(engine.execute(&wrong_rows).is_err());
        let wrong_cols = DenseMatrix::<f32>::zeros(60, 9);
        assert!(engine.execute(&wrong_cols).is_err());
        let x = DenseMatrix::<f32>::zeros(60, 8);
        let mut bad_y = DenseMatrix::<f32>::zeros(50, 9);
        assert!(engine.execute_into(&x, &mut bad_y).is_err());
        assert!(engine.execute_into_spawning(&x, &mut bad_y).is_err());
    }

    #[test]
    fn meta_reports_codegen_details() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(100, 100, 400, 2);
        let engine = JitSpmmBuilder::new().threads(1).listing(true).build(&a, 45).unwrap();
        let meta = engine.meta();
        assert_eq!(meta.d, 45);
        assert!(meta.code_bytes > 0);
        assert!(meta.codegen_time.as_nanos() > 0);
        assert!(!meta.register_plan.is_empty());
        assert!(engine.kernel().listing().is_some());
        assert!(engine.codegen_overhead_ratio(Duration::from_secs(1)) < 0.5);
    }

    #[test]
    fn non_ccm_engine_still_correct() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::rmat::<f32>(8, 3_000, generate::RmatConfig::WEB, 4);
        for d in [8usize, 45] {
            let x = DenseMatrix::random(a.ncols(), d, 3);
            let expected = a.spmm_reference(&x);
            let engine = JitSpmmBuilder::new().ccm(false).threads(2).build(&a, d).unwrap();
            let (y, _) = engine.execute(&x).unwrap();
            assert!(y.approx_eq(&expected, 1e-4), "d = {d}");
        }
    }

    #[test]
    fn scalar_isa_engine_matches_reference() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(150, 150, 2_000, 8);
        let x = DenseMatrix::random(150, 8, 21);
        let expected = a.spmm_reference(&x);
        let engine = JitSpmmBuilder::new()
            .isa(IsaLevel::Scalar)
            .strategy(Strategy::RowSplitStatic)
            .threads(1)
            .build(&a, 8)
            .unwrap();
        let (y, _) = engine.execute(&x).unwrap();
        assert!(y.approx_eq(&expected, 1e-4));
    }

    #[test]
    fn repeated_execution_is_consistent() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(300, 300, 5_000, 6);
        let x = DenseMatrix::random(300, 32, 1);
        let engine = JitSpmmBuilder::new().threads(4).build(&a, 32).unwrap();
        let (y1, _) = engine.execute(&x).unwrap();
        let (y2, _) = engine.execute(&x).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn empty_rows_produce_zero_output() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        // A matrix where many rows are empty.
        let a = CsrMatrix::<f32>::from_triplets(64, 64, &[(63, 0, 2.0)]).unwrap();
        let x = DenseMatrix::random(64, 16, 2);
        let engine = JitSpmmBuilder::new().threads(3).build(&a, 16).unwrap();
        let (y, _) = engine.execute(&x).unwrap();
        for r in 0..63 {
            assert!(y.row(r).iter().all(|&v| v == 0.0), "row {r} should be zero");
        }
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-5));
    }

    #[test]
    fn execute_recycles_output_buffers() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(128, 128, 1_000, 4);
        let x = DenseMatrix::random(128, 8, 1);
        let engine = JitSpmmBuilder::new().threads(2).build(&a, 8).unwrap();
        let first_ptr = {
            let (y, _) = engine.execute(&x).unwrap();
            y.as_ptr()
        };
        // The buffer from the dropped result must be reused verbatim.
        let (y2, _) = engine.execute(&x).unwrap();
        assert_eq!(y2.as_ptr(), first_ptr, "steady-state execute must not allocate");
        assert!(y2.approx_eq(&a.spmm_reference(&x), 1e-4));
        // Results reused after stale (non-zeroed) recycling are still exact:
        // run a second input through the same buffer.
        drop(y2);
        let x2 = DenseMatrix::random(128, 8, 99);
        let (y3, _) = engine.execute(&x2).unwrap();
        assert!(y3.approx_eq(&a.spmm_reference(&x2), 1e-4));
    }

    #[test]
    fn reports_split_dispatch_from_kernel_time() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(256, 256, 4_000, 2);
        let x = DenseMatrix::random(256, 16, 3);
        let engine = JitSpmmBuilder::new().threads(2).build(&a, 16).unwrap();
        let mut y = DenseMatrix::zeros(256, 16);
        let report = engine.execute_into(&x, &mut y).unwrap();
        assert!(report.kernel <= report.elapsed);
        assert_eq!(report.elapsed, report.kernel + report.dispatch);
        let legacy = engine.execute_into_spawning(&x, &mut y).unwrap();
        assert!(legacy.kernel <= legacy.elapsed);
    }

    #[test]
    fn explicit_pool_is_shared_across_engines() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let pool = WorkerPool::new(2);
        let a = generate::uniform::<f32>(100, 100, 800, 3);
        let b = generate::uniform::<f32>(80, 100, 500, 4);
        let x = DenseMatrix::random(100, 8, 5);
        let e1 = JitSpmmBuilder::new().pool(pool.clone()).build(&a, 8).unwrap();
        let e2 = JitSpmmBuilder::new().pool(pool.clone()).build(&b, 8).unwrap();
        assert_eq!(e1.pool().size(), 2);
        assert_eq!(e1.threads(), 2, "threads default to the pool size");
        let (ya, _) = e1.execute(&x).unwrap();
        let (yb, _) = e2.execute(&x).unwrap();
        assert!(ya.approx_eq(&a.spmm_reference(&x), 1e-4));
        assert!(yb.approx_eq(&b.spmm_reference(&x), 1e-4));
    }

    #[test]
    fn execute_async_matches_blocking_execute() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::rmat::<f32>(8, 4_000, generate::RmatConfig::GRAPH500, 3);
        let x = DenseMatrix::random(a.ncols(), 16, 9);
        for strategy in [Strategy::RowSplitStatic, Strategy::row_split_dynamic_default()] {
            let engine = JitSpmmBuilder::new()
                .strategy(strategy)
                .threads(2)
                .pool(WorkerPool::new(2))
                .build(&a, 16)
                .unwrap();
            let (y_blocking, _) = engine.execute(&x).unwrap();
            let y_blocking = y_blocking.into_dense();
            engine.pool().scope(|scope| {
                let handle = engine.execute_async(scope, &x).unwrap();
                let (y_async, report) = handle.wait();
                assert_eq!(y_async, y_blocking, "strategy {strategy}");
                assert_eq!(report.threads, 2);
                assert_eq!(report.elapsed, report.kernel + report.dispatch);
            });
        }
    }

    #[test]
    fn concurrent_async_launches_of_one_engine_are_rejected() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(300, 300, 3_000, 4);
        let x = DenseMatrix::random(300, 8, 5);
        let engine =
            JitSpmmBuilder::new().threads(2).pool(WorkerPool::new(2)).build(&a, 8).unwrap();
        engine.pool().scope(|scope| {
            let handle = engine.execute_async(scope, &x).unwrap();
            // The dynamic counter is engine-owned; a second launch must be
            // refused (not deadlock) while the first handle is outstanding.
            assert!(matches!(
                engine.execute_async(scope, &x).unwrap_err(),
                JitSpmmError::LaunchInProgress
            ));
            let (y, _) = handle.wait();
            assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
            // With the handle gone the engine accepts launches again.
            let (y2, _) = engine.execute_async(scope, &x).unwrap().wait();
            assert!(y2.approx_eq(&a.spmm_reference(&x), 1e-4));
        });
    }

    #[test]
    fn blocking_execute_with_outstanding_handle_errors_instead_of_deadlocking() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(200, 200, 2_000, 9);
        let x = DenseMatrix::random(200, 8, 10);
        let engine =
            JitSpmmBuilder::new().threads(2).pool(WorkerPool::new(2)).build(&a, 8).unwrap();
        engine.pool().scope(|scope| {
            let handle = engine.execute_async(scope, &x).unwrap();
            // Same thread, launch lock held by `handle`: a blocking execute
            // must fail fast, not self-deadlock on the launch mutex.
            assert!(matches!(engine.execute(&x).unwrap_err(), JitSpmmError::LaunchInProgress));
            let mut y = DenseMatrix::zeros(200, 8);
            assert!(matches!(
                engine.execute_into(&x, &mut y).unwrap_err(),
                JitSpmmError::LaunchInProgress
            ));
            assert!(matches!(
                engine.execute_single_thread(&x, &mut y).unwrap_err(),
                JitSpmmError::LaunchInProgress
            ));
            let (ya, _) = handle.wait();
            assert!(ya.approx_eq(&a.spmm_reference(&x), 1e-4));
        });
        // Lock released: blocking execution works again.
        let (yb, _) = engine.execute(&x).unwrap();
        assert!(yb.approx_eq(&a.spmm_reference(&x), 1e-4));
    }

    #[test]
    fn two_engines_overlap_on_disjoint_lanes() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let pool = WorkerPool::new(2);
        let a = generate::uniform::<f32>(400, 400, 5_000, 6);
        let b = generate::rmat::<f32>(9, 6_000, generate::RmatConfig::WEB, 7);
        let ea = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, 8).unwrap();
        let eb = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, 8).unwrap();
        let xa = DenseMatrix::random(a.ncols(), 8, 1);
        let xb = DenseMatrix::random(b.ncols(), 8, 2);
        pool.scope(|scope| {
            for _ in 0..20 {
                let ha = ea.execute_async(scope, &xa).unwrap();
                let hb = eb.execute_async(scope, &xb).unwrap();
                let (ya, _) = ha.wait();
                let (yb, _) = hb.wait();
                assert!(ya.approx_eq(&a.spmm_reference(&xa), 1e-4));
                assert!(yb.approx_eq(&b.spmm_reference(&xb), 1e-4));
            }
        });
    }

    #[test]
    fn dropped_handle_joins_and_recycles_the_buffer() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(256, 256, 3_000, 8);
        let x = DenseMatrix::random(256, 8, 3);
        let engine =
            JitSpmmBuilder::new().threads(2).pool(WorkerPool::new(2)).build(&a, 8).unwrap();
        let first_ptr = engine.pool().scope(|scope| {
            let handle = engine.execute_async(scope, &x).unwrap();
            handle.y.as_ref().unwrap().as_ptr()
            // Dropped without wait: must join and return the buffer.
        });
        let (y, _) = engine.execute(&x).unwrap();
        assert_eq!(y.as_ptr(), first_ptr, "abandoned launch must recycle its output buffer");
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
    }

    #[test]
    fn leaked_execution_handle_is_joined_by_the_scope() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(128, 128, 1_200, 6);
        let x = DenseMatrix::random(128, 8, 7);
        let engine =
            JitSpmmBuilder::new().threads(2).pool(WorkerPool::new(2)).build(&a, 8).unwrap();
        engine.pool().scope(|scope| {
            // `mem::forget` is safe: the scope must join the kernel job
            // before `x`, the engine or the matrix can be freed.
            std::mem::forget(engine.execute_async(scope, &x).unwrap());
        });
        // The leaked handle kept the launch lock (and leaked the output
        // buffer), so the engine refuses further launches — safely.
        assert!(matches!(engine.execute(&x).unwrap_err(), JitSpmmError::LaunchInProgress));
    }

    #[test]
    fn execute_async_on_inline_pool_completes_eagerly() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(100, 100, 900, 2);
        let x = DenseMatrix::random(100, 4, 4);
        let engine =
            JitSpmmBuilder::new().threads(2).pool(WorkerPool::inline()).build(&a, 4).unwrap();
        engine.pool().scope(|scope| {
            let handle = engine.execute_async(scope, &x).unwrap();
            assert!(handle.is_done());
            let (y, _) = handle.wait();
            assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
        });
    }

    #[test]
    fn execute_async_rejects_bad_shapes() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(50, 60, 300, 1);
        let engine = JitSpmmBuilder::new().threads(1).build(&a, 8).unwrap();
        let wrong = DenseMatrix::<f32>::zeros(10, 8);
        engine.pool().scope(|scope| {
            assert!(matches!(
                engine.execute_async(scope, &wrong).unwrap_err(),
                JitSpmmError::ShapeMismatch(_)
            ));
        });
    }

    #[test]
    fn execute_batch_matches_per_input_execute_exactly() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::rmat::<f32>(8, 3_000, generate::RmatConfig::GRAPH500, 6);
        let inputs: Vec<DenseMatrix<f32>> =
            (0..7).map(|seed| DenseMatrix::random(a.ncols(), 8, 100 + seed)).collect();
        for strategy in [Strategy::RowSplitStatic, Strategy::RowSplitDynamic { batch: 32 }] {
            let engine = JitSpmmBuilder::new()
                .strategy(strategy)
                .threads(2)
                .pool(WorkerPool::new(2))
                .build(&a, 8)
                .unwrap();
            // Per-row arithmetic is fixed by the compiled kernel, so the
            // batched pipeline must be bit-identical to the blocking path.
            let expected: Vec<DenseMatrix<f32>> =
                inputs.iter().map(|x| engine.execute(x).unwrap().0.into_dense()).collect();
            let (outputs, report) =
                engine.pool().scope(|scope| engine.execute_batch(scope, &inputs)).unwrap();
            assert_eq!(outputs.len(), inputs.len());
            for (i, (y, e)) in outputs.iter().zip(&expected).enumerate() {
                assert_eq!(**y, *e, "input {i}, strategy {strategy}");
            }
            assert_eq!(report.inputs, inputs.len());
            // Auto depth: the default pipeline on multi-core hosts, the
            // sequential fast path (depth 1, single-lane) on single-core
            // ones — and the reported lane count must match what ran.
            assert!(report.depth == DEFAULT_BATCH_DEPTH || report.depth == 1);
            assert_eq!(report.threads, if report.depth == 1 { 1 } else { 2 });
            assert!(report.kernel_p50 <= report.kernel_p99);
            assert!(report.kernel_total >= report.kernel_p99);
            assert!(report.throughput() > 0.0);
        }
    }

    #[test]
    fn execute_batch_handles_empty_and_single_input_batches() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(90, 90, 700, 4);
        let engine = JitSpmmBuilder::new().threads(2).build(&a, 4).unwrap();
        let (outputs, report) =
            engine.pool().scope(|scope| engine.execute_batch(scope, &[])).unwrap();
        assert!(outputs.is_empty());
        assert_eq!(report.inputs, 0);
        assert_eq!(report.elapsed, Duration::ZERO);
        assert_eq!(report.throughput(), 0.0);

        let one = [DenseMatrix::random(90, 4, 9)];
        let (outputs, report) =
            engine.pool().scope(|scope| engine.execute_batch(scope, &one)).unwrap();
        assert_eq!(outputs.len(), 1);
        assert_eq!(report.inputs, 1);
        assert_eq!(report.depth, 1, "a single-input batch needs no extra slots");
        assert!(outputs[0].approx_eq(&a.spmm_reference(&one[0]), 1e-4));
    }

    #[test]
    fn execute_batch_rejects_mismatched_inputs_up_front() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(80, 80, 600, 5);
        let engine = JitSpmmBuilder::new().threads(2).build(&a, 8).unwrap();
        let inputs = vec![
            DenseMatrix::random(80, 8, 1),
            DenseMatrix::random(80, 9, 2), // wrong d
            DenseMatrix::random(80, 8, 3),
        ];
        let err = engine
            .pool()
            .scope(|scope| engine.execute_batch(scope, &inputs))
            .unwrap_err();
        match err {
            JitSpmmError::ShapeMismatch(msg) => {
                assert!(msg.contains("batch input 1"), "message should name the input: {msg}")
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
        // Nothing launched, nothing corrupted: the engine still executes.
        let x = DenseMatrix::random(80, 8, 4);
        let (y, _) = engine.execute(&x).unwrap();
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
    }

    #[test]
    fn batch_stream_survives_a_mismatched_push() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(100, 100, 900, 7);
        let engine = JitSpmmBuilder::new()
            .threads(2)
            .pool(WorkerPool::new(2))
            .strategy(Strategy::RowSplitDynamic { batch: 16 })
            .build(&a, 8)
            .unwrap();
        let good: Vec<DenseMatrix<f32>> =
            (0..5).map(|seed| DenseMatrix::random(100, 8, 40 + seed)).collect();
        let bad = DenseMatrix::<f32>::zeros(100, 3);
        engine.pool().scope(|scope| {
            let mut stream = engine.batch_stream(scope, 2).unwrap();
            let mut completed = Vec::new();
            for (i, x) in good.iter().enumerate() {
                if i == 2 {
                    // A mid-stream bad input must error without submitting
                    // or disturbing the launches in flight.
                    assert!(matches!(
                        stream.push(&bad).unwrap_err(),
                        JitSpmmError::ShapeMismatch(_)
                    ));
                }
                if let Some(done) = stream.push(x).unwrap() {
                    completed.push(done);
                }
            }
            let (rest, report) = stream.finish();
            completed.extend(rest);
            assert_eq!(report.inputs, good.len());
            for ((y, _), x) in completed.iter().zip(&good) {
                assert!(y.approx_eq(&a.spmm_reference(x), 1e-4));
            }
        });
    }

    #[test]
    fn open_batch_stream_blocks_other_launches_and_releases_them() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(70, 70, 500, 8);
        let engine = JitSpmmBuilder::new().threads(1).build(&a, 4).unwrap();
        let x = DenseMatrix::random(70, 4, 3);
        engine.pool().scope(|scope| {
            let mut stream = engine.batch_stream(scope, 2).unwrap();
            // The stream holds the launch lock: a same-thread execute must
            // fail fast instead of self-deadlocking.
            assert!(matches!(engine.execute(&x).unwrap_err(), JitSpmmError::LaunchInProgress));
            assert!(stream.push(&x).unwrap().is_none());
            let (rest, _) = stream.finish();
            assert_eq!(rest.len(), 1);
        });
        // Stream gone: the engine accepts launches again.
        let (y, _) = engine.execute(&x).unwrap();
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
    }

    #[test]
    fn dropped_batch_stream_joins_in_flight_launches() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(150, 150, 2_000, 9);
        let engine = JitSpmmBuilder::new()
            .threads(2)
            .pool(WorkerPool::new(2))
            .build(&a, 8)
            .unwrap();
        let inputs: Vec<DenseMatrix<f32>> =
            (0..3).map(|seed| DenseMatrix::random(150, 8, 60 + seed)).collect();
        engine.pool().scope(|scope| {
            let mut stream = engine.batch_stream(scope, 2).unwrap();
            for x in &inputs {
                let _ = stream.push(x).unwrap();
            }
            assert!(stream.in_flight() > 0);
            // Dropped mid-batch: the launches join, buffers recycle.
            drop(stream);
        });
        let x = DenseMatrix::random(150, 8, 99);
        let (y, _) = engine.execute(&x).unwrap();
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
    }

    #[test]
    fn batch_slot_kernels_are_cached_across_batches() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(120, 120, 1_000, 10);
        let engine = JitSpmmBuilder::new()
            .strategy(Strategy::RowSplitDynamic { batch: 16 })
            .threads(2)
            .pool(WorkerPool::new(2))
            .build(&a, 8)
            .unwrap();
        let inputs: Vec<DenseMatrix<f32>> =
            (0..4).map(|seed| DenseMatrix::random(120, 8, seed)).collect();
        let expected: Vec<DenseMatrix<f32>> =
            inputs.iter().map(|x| engine.execute(x).unwrap().0.into_dense()).collect();
        for _ in 0..3 {
            // Explicit depth 2 forces the real pipeline on any host.
            engine.pool().scope(|scope| {
                let mut stream = engine.batch_stream(scope, 2).unwrap();
                let mut outputs = Vec::new();
                for x in &inputs {
                    if let Some((y, _)) = stream.push(x).unwrap() {
                        outputs.push(y.into_dense());
                    }
                }
                let (rest, _) = stream.finish();
                outputs.extend(rest.into_iter().map(|(y, _)| y.into_dense()));
                assert_eq!(outputs, expected);
            });
        }
        // Depth 2 needs exactly one spare dynamic kernel, compiled once.
        assert_eq!(crate::runtime::pool::lock(&engine.batch_kernels).len(), 1);
    }

    #[test]
    fn execute_batch_on_inline_pool_runs_eagerly() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(60, 60, 400, 11);
        let engine =
            JitSpmmBuilder::new().threads(2).pool(WorkerPool::inline()).build(&a, 4).unwrap();
        let inputs: Vec<DenseMatrix<f32>> =
            (0..5).map(|seed| DenseMatrix::random(60, 4, seed)).collect();
        let (outputs, report) =
            engine.pool().scope(|scope| engine.execute_batch(scope, &inputs)).unwrap();
        assert_eq!(outputs.len(), 5);
        assert_eq!(report.inputs, 5);
        for (x, y) in inputs.iter().zip(&outputs) {
            assert!(y.approx_eq(&a.spmm_reference(x), 1e-4));
        }
    }

    #[test]
    fn batch_stats_stay_bounded_for_unbounded_streams() {
        // An unbounded stream must run in O(1) memory: past the reservoir
        // bound the sample vectors stop growing while the exact counters
        // keep counting.
        let mut stats = BatchStats::default();
        let total = MAX_BATCH_SAMPLES + 1_000;
        for i in 0..total {
            let kernel = Duration::from_nanos(1 + i as u64);
            stats.record(&ExecutionReport {
                elapsed: kernel * 2,
                kernel,
                dispatch: kernel,
                threads: 1,
                strategy: Strategy::RowSplitStatic,
            });
        }
        assert_eq!(stats.count, total);
        assert_eq!(stats.kernel.len(), MAX_BATCH_SAMPLES);
        assert_eq!(stats.dispatch.len(), MAX_BATCH_SAMPLES);
        let report =
            stats.report(Duration::from_secs(1), 2, 1, Strategy::RowSplitStatic);
        assert_eq!(report.inputs, total);
        assert!(report.kernel_p50 <= report.kernel_p99);
        assert!(report.kernel_p99 <= Duration::from_nanos(total as u64));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&ms, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&ms, 100.0), Duration::from_millis(100));
        let one = [Duration::from_millis(7)];
        assert_eq!(percentile(&one, 50.0), one[0]);
        assert_eq!(percentile(&one, 99.0), one[0]);
    }

    #[test]
    fn spawning_path_matches_pooled_path() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::rmat::<f32>(8, 3_000, generate::RmatConfig::GRAPH500, 8);
        let x = DenseMatrix::random(a.ncols(), 16, 2);
        for strategy in [Strategy::RowSplitStatic, Strategy::row_split_dynamic_default()] {
            let engine =
                JitSpmmBuilder::new().strategy(strategy).threads(3).build(&a, 16).unwrap();
            let mut y_spawn = DenseMatrix::zeros(a.nrows(), 16);
            engine.execute_into_spawning(&x, &mut y_spawn).unwrap();
            let (y_pool, _) = engine.execute(&x).unwrap();
            assert_eq!(y_pool, y_spawn, "strategy {strategy}");
        }
    }
}
