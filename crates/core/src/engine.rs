//! The [`JitSpmm`] engine: compile once, execute many times.

use crate::codegen::{
    generate_dynamic_kernel, generate_static_kernel, KernelOptions, MatrixBinding,
};
use crate::error::JitSpmmError;
use crate::kernel::{CompiledKernel, KernelKind, KernelMeta};
use crate::runtime::dispatch::{self, BufferPool, KernelJob};
use crate::runtime::{PoolScope, PooledMatrix, ScopedJobHandle, WorkerPool};
use crate::schedule::{partition, DynamicCounter, Partition, Strategy};
use jitspmm_asm::{CpuFeatures, IsaLevel};
use jitspmm_sparse::{CsrMatrix, DenseMatrix, Scalar};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};
use std::time::{Duration, Instant};

/// A small process-unique id for the current thread, used to detect a thread
/// re-acquiring an engine's launch lock it already holds (`std::sync::Mutex`
/// would deadlock). `ThreadId::as_u64` is unstable, so mint our own.
fn launch_thread_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TOKEN.with(|token| *token)
}

/// Holds an engine's launch lock for the duration of one launch, recording
/// which thread holds it so a same-thread re-entry (e.g. `execute` while an
/// [`ExecutionHandle`] is outstanding) fails with
/// [`JitSpmmError::LaunchInProgress`] instead of deadlocking.
pub(crate) struct LaunchGuard<'a> {
    owner: &'a AtomicU64,
    _guard: MutexGuard<'a, ()>,
}

impl Drop for LaunchGuard<'_> {
    fn drop(&mut self) {
        // Cleared while the mutex is still held, so a racing thread can at
        // worst read 0 and fall through to a blocking lock that is about to
        // succeed.
        self.owner.store(0, Ordering::Release);
    }
}

/// Configuration of a [`JitSpmm`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmmOptions {
    /// Workload-division strategy (default: dynamic row-split with the
    /// paper's batch size of 128).
    pub strategy: Strategy,
    /// ISA tier to generate code for; `None` selects the best tier the host
    /// supports.
    pub isa: Option<IsaLevel>,
    /// Number of worker lanes; `0` uses one lane per pool worker.
    pub threads: usize,
    /// Whether to apply coarse-grain column merging (always on in the paper;
    /// disable only for the ablation experiment).
    pub ccm: bool,
    /// Record an instruction listing alongside the generated code.
    pub listing: bool,
}

impl Default for SpmmOptions {
    fn default() -> SpmmOptions {
        SpmmOptions {
            strategy: Strategy::row_split_dynamic_default(),
            isa: None,
            threads: 0,
            ccm: true,
            listing: false,
        }
    }
}

/// Builder for [`JitSpmm`].
///
/// # Example
///
/// ```
/// use jitspmm::{JitSpmmBuilder, Strategy};
/// use jitspmm_sparse::{generate, DenseMatrix};
///
/// # fn main() -> Result<(), jitspmm::JitSpmmError> {
/// let a = generate::uniform::<f32>(100, 100, 500, 1);
/// let x = DenseMatrix::random(100, 16, 2);
/// let engine = JitSpmmBuilder::new()
///     .strategy(Strategy::NnzSplit)
///     .threads(2)
///     .build(&a, x.ncols())?;
/// let (y, _report) = engine.execute(&x)?;
/// assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct JitSpmmBuilder {
    options: SpmmOptions,
    pool: Option<WorkerPool>,
}

impl JitSpmmBuilder {
    /// Start a builder with the default options.
    pub fn new() -> JitSpmmBuilder {
        JitSpmmBuilder::default()
    }

    /// Select the workload-division strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.options.strategy = strategy;
        self
    }

    /// Pin the ISA tier instead of auto-detecting.
    pub fn isa(mut self, isa: IsaLevel) -> Self {
        self.options.isa = Some(isa);
        self
    }

    /// Set the number of worker lanes (`0` = one per pool worker).
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Enable or disable coarse-grain column merging.
    pub fn ccm(mut self, ccm: bool) -> Self {
        self.options.ccm = ccm;
        self
    }

    /// Record a textual listing of the generated instructions.
    pub fn listing(mut self, listing: bool) -> Self {
        self.options.listing = listing;
        self
    }

    /// Execute on `pool` instead of the process-wide default
    /// ([`WorkerPool::global`]). Any number of engines may share one pool;
    /// their executions are serialized per pool, never oversubscribing the
    /// machine.
    pub fn pool(mut self, pool: WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Compile a kernel for `matrix` and `d` dense columns.
    ///
    /// # Errors
    ///
    /// Fails if the host cannot execute the requested ISA tier, if `d` is
    /// zero, or if code generation fails.
    pub fn build<T: Scalar>(
        self,
        matrix: &CsrMatrix<T>,
        d: usize,
    ) -> Result<JitSpmm<'_, T>, JitSpmmError> {
        let pool = self.pool.unwrap_or_else(|| WorkerPool::global().clone());
        JitSpmm::compile_with_pool(matrix, d, self.options, pool)
    }
}

/// Timing and configuration data for one `execute` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionReport {
    /// Total wall-clock time of the call, dispatch included.
    pub elapsed: Duration,
    /// Critical-path kernel time: the longest busy time of any participating
    /// lane while executing the compiled kernel.
    pub kernel: Duration,
    /// Overhead outside the kernel (`elapsed - kernel`): job submission,
    /// worker wake-up and join. With the persistent pool this is a few
    /// microseconds, where spawn-per-call paid tens per execution.
    pub dispatch: Duration,
    /// Number of worker lanes used.
    pub threads: usize,
    /// Strategy used.
    pub strategy: Strategy,
}

/// A JIT-compiled SpMM engine bound to one sparse matrix and one column
/// count.
///
/// Construction generates machine code specialized to the matrix (its array
/// base addresses are embedded in the instruction stream), the number of
/// dense columns `d`, the element type, the ISA tier and the workload
/// division strategy. The engine can then be executed repeatedly against
/// different dense inputs of shape `ncols x d`.
///
/// Execution runs on a persistent [`WorkerPool`] (the process-wide default
/// unless [`JitSpmmBuilder::pool`] supplied one): no threads are spawned per
/// call, and [`JitSpmm::execute`] recycles output buffers, so steady-state
/// repeated execution performs no allocation at all.
pub struct JitSpmm<'a, T: Scalar> {
    matrix: &'a CsrMatrix<T>,
    d: usize,
    options: SpmmOptions,
    threads: usize,
    kernel: CompiledKernel<T>,
    meta: KernelMeta,
    partition: Partition,
    counter: Box<DynamicCounter>,
    /// Serializes launches of this engine's kernel. The dynamic counter is
    /// shared mutable state embedded in the generated code, so two
    /// concurrent launches of one engine (possible from safe code — the
    /// engine is `Sync`) must not interleave a reset with a running claim
    /// loop.
    launch: Mutex<()>,
    /// [`launch_thread_token`] of the thread currently holding `launch`
    /// (0 = unheld); lets a same-thread re-entry fail fast instead of
    /// self-deadlocking.
    launch_owner: AtomicU64,
    pool: WorkerPool,
    output_pool: Arc<BufferPool<T>>,
}

impl<T: Scalar> std::fmt::Debug for JitSpmm<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JitSpmm")
            .field("d", &self.d)
            .field("strategy", &self.options.strategy)
            .field("threads", &self.threads)
            .field("pool_workers", &self.pool.size())
            .field("code_bytes", &self.meta.code_bytes)
            .finish()
    }
}

impl<'a, T: Scalar> JitSpmm<'a, T> {
    /// Compile a kernel for `matrix` with `d` dense columns under `options`,
    /// executing on the process-wide default pool.
    ///
    /// # Errors
    ///
    /// See [`JitSpmmBuilder::build`].
    pub fn compile(
        matrix: &'a CsrMatrix<T>,
        d: usize,
        options: SpmmOptions,
    ) -> Result<JitSpmm<'a, T>, JitSpmmError> {
        JitSpmm::compile_with_pool(matrix, d, options, WorkerPool::global().clone())
    }

    /// Compile a kernel as in [`JitSpmm::compile`], executing on `pool`.
    ///
    /// # Errors
    ///
    /// See [`JitSpmmBuilder::build`].
    pub fn compile_with_pool(
        matrix: &'a CsrMatrix<T>,
        d: usize,
        options: SpmmOptions,
        pool: WorkerPool,
    ) -> Result<JitSpmm<'a, T>, JitSpmmError> {
        if d == 0 {
            return Err(JitSpmmError::EmptyDenseMatrix);
        }
        let features = CpuFeatures::detect();
        let isa = options.isa.unwrap_or_else(|| features.best_isa());
        let kernel_options =
            KernelOptions { isa, ccm: options.ccm, features, listing: options.listing };
        let threads = pool.lanes_for(options.threads);
        let counter = Box::new(DynamicCounter::new());
        let binding = MatrixBinding::of(matrix);

        let start = Instant::now();
        let (generated, kind) = match options.strategy {
            Strategy::RowSplitDynamic { batch } => (
                generate_dynamic_kernel(
                    binding,
                    d,
                    T::KIND,
                    batch,
                    counter.as_ptr() as *const u8,
                    &kernel_options,
                )?,
                KernelKind::DynamicDispatch,
            ),
            _ => (
                generate_static_kernel(binding, d, T::KIND, &kernel_options)?,
                KernelKind::StaticRange,
            ),
        };
        let kernel = CompiledKernel::new(&generated.code, kind, generated.listing)?;
        let codegen_time = start.elapsed();

        let meta = KernelMeta {
            d,
            kind: T::KIND,
            isa,
            ccm: options.ccm,
            strategy: options.strategy,
            code_bytes: kernel.code().len(),
            codegen_time,
            register_plan: generated.plan.describe(),
            nnz_passes: generated.plan.passes(),
        };
        let partition = partition(matrix, options.strategy, threads);
        Ok(JitSpmm {
            matrix,
            d,
            options,
            threads,
            kernel,
            meta,
            partition,
            counter,
            launch: Mutex::new(()),
            launch_owner: AtomicU64::new(0),
            pool,
            output_pool: Arc::new(BufferPool::new()),
        })
    }

    /// The sparse matrix this engine was compiled against.
    pub fn matrix(&self) -> &CsrMatrix<T> {
        self.matrix
    }

    /// The number of dense columns the kernel expects.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The number of worker lanes used by [`JitSpmm::execute`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The worker pool this engine executes on.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Kernel metadata: code size, register plan, code-generation time.
    pub fn meta(&self) -> &KernelMeta {
        &self.meta
    }

    /// The compiled kernel (code bytes, listing).
    pub fn kernel(&self) -> &CompiledKernel<T> {
        &self.kernel
    }

    /// The static row partition this engine will use (one range per lane;
    /// for the dynamic strategy this is only a fallback description).
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Begin a kernel launch: serialize against other launches of this
    /// engine and reset the per-launch dispatch state. The returned guard
    /// must be held until the launch completes.
    ///
    /// Invariant: the [`DynamicCounter`] is engine-owned shared state whose
    /// address is embedded in dynamically dispatched kernels, so it must be
    /// at row zero whenever such a kernel starts — whether the launch goes
    /// through the pool, the legacy spawning path, the single-thread path or
    /// the emulator. To keep that invariant in one place the reset happens
    /// here, unconditionally, before *every* launch (for static-range
    /// kernels it is a harmless store to memory nothing reads), and under
    /// the launch lock, so a concurrent launch of the same engine can never
    /// interleave a reset with a running claim loop.
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::LaunchInProgress`] if the calling thread
    /// already holds the launch lock (it is waiting on — or holding — an
    /// [`ExecutionHandle`] of this engine; blocking would self-deadlock),
    /// or, with `blocking` false, if any other launch is in flight. With
    /// `blocking` true a launch held by *another* thread is waited for, as
    /// the blocking execute paths always have.
    pub(crate) fn begin_launch(&self, blocking: bool) -> Result<LaunchGuard<'_>, JitSpmmError> {
        let guard = match self.launch.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(TryLockError::WouldBlock) => {
                let same_thread =
                    self.launch_owner.load(Ordering::Acquire) == launch_thread_token();
                if !blocking || same_thread {
                    return Err(JitSpmmError::LaunchInProgress);
                }
                crate::runtime::pool::lock(&self.launch)
            }
        };
        self.launch_owner.store(launch_thread_token(), Ordering::Release);
        self.counter.reset();
        Ok(LaunchGuard { owner: &self.launch_owner, _guard: guard })
    }

    /// Compute `Y = A * X` into an output buffer borrowed from the engine's
    /// internal pool.
    ///
    /// The returned [`PooledMatrix`] dereferences to [`DenseMatrix`];
    /// dropping it hands the buffer back, so a steady-state loop of
    /// `execute` calls performs **no allocation and no thread spawning**.
    /// The kernels overwrite every output element (empty rows included), so
    /// recycled buffers are not re-zeroed either. To manage the output
    /// buffer yourself — e.g. to reuse one across engines — see
    /// [`JitSpmm::execute_into`].
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] if `x` is not
    /// `A.ncols() x d`.
    pub fn execute(
        &self,
        x: &DenseMatrix<T>,
    ) -> Result<(PooledMatrix<T>, ExecutionReport), JitSpmmError> {
        // Validate, then lock, then allocate — the ordering every launch
        // path shares: a call that fails shape validation or blocks behind
        // another launch must not pay the buffer-pool round trip first.
        self.check_input_shape(x)?;
        let launch = self.begin_launch(true)?;
        let mut y = PooledMatrix::new(
            self.output_pool.acquire(self.matrix.nrows(), self.d),
            Arc::clone(&self.output_pool),
        );
        let report = self.launch_kernel(&launch, x, &mut y);
        Ok((y, report))
    }

    /// Compute `Y = A * X` without blocking: the kernel launch is submitted
    /// through `scope` to its worker pool and runs in the background while
    /// this call returns. Join it with [`ExecutionHandle::wait`] to obtain
    /// the result and its [`ExecutionReport`]; the waiting thread steals
    /// remaining kernel tasks, so submit-then-wait costs no more than the
    /// blocking [`JitSpmm::execute`].
    ///
    /// The job is capped to this engine's lane count
    /// ([`JitSpmmBuilder::threads`]), so several engines sharing a pool can
    /// execute **concurrently on disjoint worker subsets** — submit one
    /// handle per engine, then wait on all of them, and the launches overlap
    /// instead of serializing:
    ///
    /// ```
    /// use jitspmm::{JitSpmmBuilder, WorkerPool};
    /// use jitspmm_sparse::{generate, DenseMatrix};
    ///
    /// # fn main() -> Result<(), jitspmm::JitSpmmError> {
    /// let pool = WorkerPool::new(2);
    /// let a = generate::uniform::<f32>(200, 200, 2_000, 1);
    /// let b = generate::uniform::<f32>(150, 200, 1_500, 2);
    /// let eng_a = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, 8)?;
    /// let eng_b = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, 8)?;
    /// let x = DenseMatrix::random(200, 8, 3);
    /// pool.scope(|scope| -> Result<(), jitspmm::JitSpmmError> {
    ///     let ha = eng_a.execute_async(scope, &x)?; // both jobs now in flight,
    ///     let hb = eng_b.execute_async(scope, &x)?; // one worker lane each
    ///     let (ya, _) = ha.wait();
    ///     let (yb, _) = hb.wait();
    ///     assert!(ya.approx_eq(&a.spmm_reference(&x), 1e-4));
    ///     assert!(yb.approx_eq(&b.spmm_reference(&x), 1e-4));
    ///     Ok(())
    /// })?;
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// The launch is anchored to a [`PoolScope`] (see [`WorkerPool::scope`])
    /// because the job dereferences borrowed data — the compiled kernel, the
    /// CSR arrays its code embeds, and `x` — and memory safety must not
    /// depend on the handle's destructor running ([`std::mem::forget`] is
    /// safe): the scope joins every launch before it returns, even if the
    /// handle was dropped or leaked. Dropping the handle without waiting
    /// joins the job right away and recycles the output buffer; leaking it
    /// is safe but leaks the buffer and keeps the engine's launch slot
    /// occupied forever — non-blocking launches (and blocking ones from the
    /// leaking thread) fail with [`JitSpmmError::LaunchInProgress`], while
    /// blocking launches from *other* threads wait for a launch that never
    /// ends. The job runs on `scope`'s pool — normally the engine's own, as
    /// in the example; the lane cap applies to whichever pool the scope
    /// wraps.
    ///
    /// One engine can only run one launch at a time (the dynamic row-claim
    /// counter is engine-owned state embedded in the generated code), so a
    /// second `execute_async` on the *same* engine while a handle is
    /// outstanding returns [`JitSpmmError::LaunchInProgress`] instead of
    /// blocking — blocking would deadlock a caller that holds the first
    /// handle on the same thread. The blocking paths ([`JitSpmm::execute`]
    /// and friends) return the same error when the *calling thread* already
    /// holds an outstanding handle (they still block, as always, on
    /// launches held by other threads). On a zero-worker
    /// ([`WorkerPool::inline`]) pool the kernel runs to completion inside
    /// this call.
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] if `x` is not `A.ncols() x d`
    /// and [`JitSpmmError::LaunchInProgress`] if another launch of this
    /// engine has not completed yet.
    pub fn execute_async<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        x: &'env DenseMatrix<T>,
    ) -> Result<ExecutionHandle<'scope, T>, JitSpmmError> {
        // Validate, then lock, then allocate: a rejected call (bad shape, or
        // the expected busy-poll LaunchInProgress answer) must not pay a
        // buffer-pool round trip for an output it will never produce.
        self.check_input_shape(x)?;
        let guard = self.begin_launch(false)?;
        let mut y = PooledMatrix::new(
            self.output_pool.acquire(self.matrix.nrows(), self.d),
            Arc::clone(&self.output_pool),
        );
        let job = KernelJob::new(&self.kernel, &self.partition.ranges, x.as_ptr(), y.as_mut_ptr());
        let spec = job.spec(self.kernel.kind(), self.threads);
        // Owned through `Box::into_raw`/`from_raw` rather than as a `Box`
        // field: workers hold a raw pointer to the payload, which moving a
        // box (with every move of the handle) would invalidate under the
        // aliasing rules.
        let payload: *mut KernelJob<T> = Box::into_raw(Box::new(job));
        let start = Instant::now();
        // SAFETY: the payload allocation and the output buffer are owned by
        // the returned handle — released only after its drop has joined the
        // job, and leaked (never freed) if the handle is leaked — while the
        // kernel, the partition, the engine-borrowed CSR arrays and `x` are
        // borrowed for 'env, which cannot end before the scope has joined
        // the job. Shapes were checked above and the counter reset under the
        // launch lock held in `guard`.
        let job = unsafe {
            scope.submit_erased(spec, payload as *const (), KernelJob::<T>::erased())
        };
        Ok(ExecutionHandle {
            job: Some(job),
            payload,
            y: Some(y),
            start,
            threads: self.threads,
            strategy: self.options.strategy,
            _launch: guard,
        })
    }

    /// Compute `Y = A * X` into an existing output matrix (its previous
    /// contents are overwritten; no zeroing is required beforehand).
    ///
    /// This is the zero-allocation entry point for callers that manage their
    /// own buffers; [`JitSpmm::execute`] achieves the same steady-state cost
    /// by recycling buffers internally.
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::ShapeMismatch`] if `x` is not `A.ncols() x d`
    /// or `y` is not `A.nrows() x d`.
    pub fn execute_into(
        &self,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> Result<ExecutionReport, JitSpmmError> {
        self.check_shapes(x, y)?;
        let launch = self.begin_launch(true)?;
        Ok(self.launch_kernel(&launch, x, y))
    }

    /// Dispatch one launch of the compiled kernel over the pool. The caller
    /// has already validated the shapes and holds the launch lock (`_launch`
    /// proves it).
    fn launch_kernel(
        &self,
        _launch: &LaunchGuard<'_>,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> ExecutionReport {
        let start = Instant::now();
        // SAFETY: the engine borrows the CSR matrix whose pointers the kernel
        // embeds, the caller checked the shapes, and rows are partitioned
        // disjointly across lanes (statically or via the dynamic counter,
        // reset under the held launch lock).
        let kernel = unsafe {
            match self.kernel.kind() {
                KernelKind::DynamicDispatch => dispatch::run_dynamic(
                    &self.pool,
                    &self.kernel,
                    self.threads,
                    x.as_ptr(),
                    y.as_mut_ptr(),
                ),
                KernelKind::StaticRange => dispatch::run_static(
                    &self.pool,
                    &self.kernel,
                    &self.partition.ranges,
                    self.threads,
                    x.as_ptr(),
                    y.as_mut_ptr(),
                ),
            }
        };
        let elapsed = start.elapsed();
        ExecutionReport {
            elapsed,
            kernel,
            dispatch: elapsed.saturating_sub(kernel),
            threads: self.threads,
            strategy: self.options.strategy,
        }
    }

    /// Compute `Y = A * X` by spawning fresh OS threads for this one call —
    /// the pre-pool dispatch path, kept as the baseline for the
    /// `dispatch_overhead` benchmark and for environments where a persistent
    /// pool is undesirable.
    ///
    /// # Errors
    ///
    /// Same shape requirements as [`JitSpmm::execute_into`].
    pub fn execute_into_spawning(
        &self,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> Result<ExecutionReport, JitSpmmError> {
        self.check_shapes(x, y)?;
        let _launch = self.begin_launch(true)?;
        let x_addr = x.as_ptr() as usize;
        let y_addr = y.as_mut_ptr() as usize;
        let busy_ns = AtomicU64::new(0);
        let start = Instant::now();
        match self.kernel.kind() {
            KernelKind::DynamicDispatch => {
                std::thread::scope(|scope| {
                    for _ in 0..self.threads {
                        let busy_ns = &busy_ns;
                        scope.spawn(move || {
                            let lane_start = Instant::now();
                            // SAFETY: as in `execute_into`; the dynamic
                            // counter partitions rows disjointly.
                            unsafe {
                                self.kernel
                                    .call_dynamic(x_addr as *const T, y_addr as *mut T);
                            }
                            busy_ns.fetch_max(
                                lane_start.elapsed().as_nanos() as u64,
                                Ordering::Relaxed,
                            );
                        });
                    }
                });
            }
            KernelKind::StaticRange => {
                std::thread::scope(|scope| {
                    for range in &self.partition.ranges {
                        if range.is_empty() {
                            continue;
                        }
                        let busy_ns = &busy_ns;
                        scope.spawn(move || {
                            let lane_start = Instant::now();
                            // SAFETY: as above; static ranges are disjoint by
                            // construction.
                            unsafe {
                                self.kernel.call_static(
                                    range.start as u64,
                                    range.end as u64,
                                    x_addr as *const T,
                                    y_addr as *mut T,
                                );
                            }
                            busy_ns.fetch_max(
                                lane_start.elapsed().as_nanos() as u64,
                                Ordering::Relaxed,
                            );
                        });
                    }
                });
            }
        }
        let elapsed = start.elapsed();
        let kernel = Duration::from_nanos(busy_ns.load(Ordering::Relaxed));
        Ok(ExecutionReport {
            elapsed,
            kernel,
            dispatch: elapsed.saturating_sub(kernel),
            threads: self.threads,
            strategy: self.options.strategy,
        })
    }

    /// Run the kernel single-threaded over the whole matrix (used by the
    /// profiling harness, where the emulator measures one thread's work).
    ///
    /// # Errors
    ///
    /// Same shape requirements as [`JitSpmm::execute_into`].
    pub fn execute_single_thread(
        &self,
        x: &DenseMatrix<T>,
        y: &mut DenseMatrix<T>,
    ) -> Result<ExecutionReport, JitSpmmError> {
        self.check_shapes(x, y)?;
        let _launch = self.begin_launch(true)?;
        let start = Instant::now();
        match self.kernel.kind() {
            KernelKind::DynamicDispatch => {
                // SAFETY: see execute_into.
                unsafe { self.kernel.call_dynamic(x.as_ptr(), y.as_mut_ptr()) };
            }
            KernelKind::StaticRange => {
                // SAFETY: see execute_into.
                unsafe {
                    self.kernel.call_static(
                        0,
                        self.matrix.nrows() as u64,
                        x.as_ptr(),
                        y.as_mut_ptr(),
                    )
                };
            }
        }
        let elapsed = start.elapsed();
        Ok(ExecutionReport {
            elapsed,
            kernel: elapsed,
            dispatch: Duration::ZERO,
            threads: 1,
            strategy: self.options.strategy,
        })
    }

    fn check_input_shape(&self, x: &DenseMatrix<T>) -> Result<(), JitSpmmError> {
        if x.nrows() != self.matrix.ncols() || x.ncols() != self.d {
            return Err(JitSpmmError::ShapeMismatch(format!(
                "dense input is {}x{} but the kernel expects {}x{}",
                x.nrows(),
                x.ncols(),
                self.matrix.ncols(),
                self.d
            )));
        }
        Ok(())
    }

    fn check_shapes(&self, x: &DenseMatrix<T>, y: &DenseMatrix<T>) -> Result<(), JitSpmmError> {
        self.check_input_shape(x)?;
        if y.nrows() != self.matrix.nrows() || y.ncols() != self.d {
            return Err(JitSpmmError::ShapeMismatch(format!(
                "dense output is {}x{} but the kernel produces {}x{}",
                y.nrows(),
                y.ncols(),
                self.matrix.nrows(),
                self.d
            )));
        }
        Ok(())
    }

    /// Fraction of the total build+execute time spent generating code, as
    /// reported in Table IV, given a measured execution time.
    pub fn codegen_overhead_ratio(&self, execution: Duration) -> f64 {
        let cg = self.meta.codegen_time.as_secs_f64();
        let total = cg + execution.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            cg / total
        }
    }
}

/// An in-flight asynchronous kernel launch, returned by
/// [`JitSpmm::execute_async`].
///
/// The launch runs on the scope's worker pool while the submitting thread
/// is free to do other work — typically submitting launches on *other*
/// engines so that several compiled kernels overlap on disjoint, lane-capped
/// worker subsets. [`ExecutionHandle::wait`] joins the job (stealing its
/// remaining tasks) and returns the pooled output plus the usual
/// [`ExecutionReport`].
///
/// Dropping the handle without waiting joins the job too and hands the
/// output buffer back to the engine's pool — nothing leaks and the pool
/// shuts down cleanly. The handle also holds the engine's launch lock, so
/// the engine accepts no other launch until the handle is gone. Leaking the
/// handle (e.g. [`std::mem::forget`]) is safe — the owning [`PoolScope`]
/// still joins the kernel job before any borrowed input can be freed — but
/// leaks the output buffer and leaves the launch lock held forever: the
/// engine refuses non-blocking (and same-thread blocking) launches with
/// [`crate::JitSpmmError::LaunchInProgress`], and blocking launches from
/// other threads wait indefinitely.
pub struct ExecutionHandle<'s, T: Scalar> {
    /// Joined in [`ExecutionHandle::wait`] or in the drop below; when the
    /// handle is leaked instead, the owning [`PoolScope`] joins the job.
    job: Option<ScopedJobHandle<'s>>,
    /// The erased task data the pool workers dereference, owned through
    /// `Box::into_raw` (a box field would be invalidated by handle moves);
    /// freed in drop after the join, leaked with a leaked handle.
    payload: *mut KernelJob<T>,
    y: Option<PooledMatrix<T>>,
    start: Instant,
    threads: usize,
    strategy: Strategy,
    /// Holds the engine's launch lock for the lifetime of the launch (the
    /// dynamic counter must not be reset mid-claim by another launch).
    _launch: LaunchGuard<'s>,
}

impl<T: Scalar> Drop for ExecutionHandle<'_, T> {
    fn drop(&mut self) {
        // Join before the payload, the output buffer and the launch guard
        // are released. Kernel panics are discarded here — `wait` re-raises
        // them — so an abandoned launch cannot poison the scope exit.
        if let Some(job) = &mut self.job {
            job.join_quiet();
        }
        // SAFETY: produced by `Box::into_raw` in `execute_async`; the job is
        // joined (above, or before `wait` returned), so no worker can reach
        // the payload.
        drop(unsafe { Box::from_raw(self.payload) });
    }
}

impl<T: Scalar> ExecutionHandle<'_, T> {
    /// Whether the launch has completed (lock-free; `true` means
    /// [`ExecutionHandle::wait`] will not block).
    pub fn is_done(&self) -> bool {
        self.job.as_ref().is_none_or(|job| job.is_done())
    }

    /// Join the launch and return the output with its [`ExecutionReport`].
    ///
    /// The calling thread participates in the remaining kernel tasks.
    /// `ExecutionReport::elapsed` spans submission to join, so time the
    /// caller spent on other work between [`JitSpmm::execute_async`] and
    /// `wait` — the overlap this API exists for — shows up in `dispatch`,
    /// not in `kernel`.
    pub fn wait(mut self) -> (PooledMatrix<T>, ExecutionReport) {
        let kernel = self.job.take().expect("launch joined at most once").wait();
        let elapsed = self.start.elapsed();
        let y = self.y.take().expect("output present until wait");
        let report = ExecutionReport {
            elapsed,
            kernel,
            dispatch: elapsed.saturating_sub(kernel),
            threads: self.threads,
            strategy: self.strategy,
        };
        (y, report)
    }
}

impl<T: Scalar> std::fmt::Debug for ExecutionHandle<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionHandle")
            .field("done", &self.is_done())
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitspmm_sparse::generate;

    fn host_ok() -> bool {
        let f = CpuFeatures::detect();
        f.avx && f.has_fma()
    }

    #[test]
    fn compile_rejects_zero_columns() {
        let a = generate::uniform::<f32>(10, 10, 20, 1);
        let err = JitSpmm::compile(&a, 0, SpmmOptions::default()).unwrap_err();
        assert!(matches!(err, JitSpmmError::EmptyDenseMatrix));
    }

    #[test]
    fn execute_matches_reference_all_strategies() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::rmat::<f32>(9, 6_000, generate::RmatConfig::GRAPH500, 5);
        let x = DenseMatrix::random(a.ncols(), 16, 7);
        let expected = a.spmm_reference(&x);
        for strategy in [
            Strategy::RowSplitStatic,
            Strategy::row_split_dynamic_default(),
            Strategy::NnzSplit,
            Strategy::MergeSplit,
        ] {
            let engine = JitSpmmBuilder::new().strategy(strategy).threads(4).build(&a, 16).unwrap();
            let (y, report) = engine.execute(&x).unwrap();
            assert!(
                y.approx_eq(&expected, 1e-4),
                "strategy {strategy}: max diff = {}",
                y.max_abs_diff(&expected)
            );
            assert_eq!(report.threads, 4);
        }
    }

    #[test]
    fn execute_handles_odd_column_counts() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(200, 150, 2_000, 3);
        for d in [1usize, 3, 8, 17, 45, 64] {
            let x = DenseMatrix::random(a.ncols(), d, 11);
            let expected = a.spmm_reference(&x);
            let engine = JitSpmmBuilder::new().threads(2).build(&a, d).unwrap();
            let (y, _) = engine.execute(&x).unwrap();
            assert!(y.approx_eq(&expected, 1e-4), "d = {d}: diff {}", y.max_abs_diff(&expected));
        }
    }

    #[test]
    fn f64_kernels_match_reference() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f64>(120, 120, 1_500, 9);
        for d in [1usize, 8, 19] {
            let x = DenseMatrix::<f64>::random(a.ncols(), d, 13);
            let expected = a.spmm_reference(&x);
            let engine = JitSpmmBuilder::new().threads(2).build(&a, d).unwrap();
            let (y, _) = engine.execute(&x).unwrap();
            assert!(y.approx_eq(&expected, 1e-10), "d = {d}");
        }
    }

    #[test]
    fn shape_mismatch_is_detected() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(50, 60, 300, 1);
        let engine = JitSpmmBuilder::new().threads(1).build(&a, 8).unwrap();
        let wrong_rows = DenseMatrix::<f32>::zeros(10, 8);
        assert!(engine.execute(&wrong_rows).is_err());
        let wrong_cols = DenseMatrix::<f32>::zeros(60, 9);
        assert!(engine.execute(&wrong_cols).is_err());
        let x = DenseMatrix::<f32>::zeros(60, 8);
        let mut bad_y = DenseMatrix::<f32>::zeros(50, 9);
        assert!(engine.execute_into(&x, &mut bad_y).is_err());
        assert!(engine.execute_into_spawning(&x, &mut bad_y).is_err());
    }

    #[test]
    fn meta_reports_codegen_details() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(100, 100, 400, 2);
        let engine = JitSpmmBuilder::new().threads(1).listing(true).build(&a, 45).unwrap();
        let meta = engine.meta();
        assert_eq!(meta.d, 45);
        assert!(meta.code_bytes > 0);
        assert!(meta.codegen_time.as_nanos() > 0);
        assert!(!meta.register_plan.is_empty());
        assert!(engine.kernel().listing().is_some());
        assert!(engine.codegen_overhead_ratio(Duration::from_secs(1)) < 0.5);
    }

    #[test]
    fn non_ccm_engine_still_correct() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::rmat::<f32>(8, 3_000, generate::RmatConfig::WEB, 4);
        for d in [8usize, 45] {
            let x = DenseMatrix::random(a.ncols(), d, 3);
            let expected = a.spmm_reference(&x);
            let engine = JitSpmmBuilder::new().ccm(false).threads(2).build(&a, d).unwrap();
            let (y, _) = engine.execute(&x).unwrap();
            assert!(y.approx_eq(&expected, 1e-4), "d = {d}");
        }
    }

    #[test]
    fn scalar_isa_engine_matches_reference() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(150, 150, 2_000, 8);
        let x = DenseMatrix::random(150, 8, 21);
        let expected = a.spmm_reference(&x);
        let engine = JitSpmmBuilder::new()
            .isa(IsaLevel::Scalar)
            .strategy(Strategy::RowSplitStatic)
            .threads(1)
            .build(&a, 8)
            .unwrap();
        let (y, _) = engine.execute(&x).unwrap();
        assert!(y.approx_eq(&expected, 1e-4));
    }

    #[test]
    fn repeated_execution_is_consistent() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(300, 300, 5_000, 6);
        let x = DenseMatrix::random(300, 32, 1);
        let engine = JitSpmmBuilder::new().threads(4).build(&a, 32).unwrap();
        let (y1, _) = engine.execute(&x).unwrap();
        let (y2, _) = engine.execute(&x).unwrap();
        assert_eq!(y1, y2);
    }

    #[test]
    fn empty_rows_produce_zero_output() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        // A matrix where many rows are empty.
        let a = CsrMatrix::<f32>::from_triplets(64, 64, &[(63, 0, 2.0)]).unwrap();
        let x = DenseMatrix::random(64, 16, 2);
        let engine = JitSpmmBuilder::new().threads(3).build(&a, 16).unwrap();
        let (y, _) = engine.execute(&x).unwrap();
        for r in 0..63 {
            assert!(y.row(r).iter().all(|&v| v == 0.0), "row {r} should be zero");
        }
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-5));
    }

    #[test]
    fn execute_recycles_output_buffers() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(128, 128, 1_000, 4);
        let x = DenseMatrix::random(128, 8, 1);
        let engine = JitSpmmBuilder::new().threads(2).build(&a, 8).unwrap();
        let first_ptr = {
            let (y, _) = engine.execute(&x).unwrap();
            y.as_ptr()
        };
        // The buffer from the dropped result must be reused verbatim.
        let (y2, _) = engine.execute(&x).unwrap();
        assert_eq!(y2.as_ptr(), first_ptr, "steady-state execute must not allocate");
        assert!(y2.approx_eq(&a.spmm_reference(&x), 1e-4));
        // Results reused after stale (non-zeroed) recycling are still exact:
        // run a second input through the same buffer.
        drop(y2);
        let x2 = DenseMatrix::random(128, 8, 99);
        let (y3, _) = engine.execute(&x2).unwrap();
        assert!(y3.approx_eq(&a.spmm_reference(&x2), 1e-4));
    }

    #[test]
    fn reports_split_dispatch_from_kernel_time() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(256, 256, 4_000, 2);
        let x = DenseMatrix::random(256, 16, 3);
        let engine = JitSpmmBuilder::new().threads(2).build(&a, 16).unwrap();
        let mut y = DenseMatrix::zeros(256, 16);
        let report = engine.execute_into(&x, &mut y).unwrap();
        assert!(report.kernel <= report.elapsed);
        assert_eq!(report.elapsed, report.kernel + report.dispatch);
        let legacy = engine.execute_into_spawning(&x, &mut y).unwrap();
        assert!(legacy.kernel <= legacy.elapsed);
    }

    #[test]
    fn explicit_pool_is_shared_across_engines() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let pool = WorkerPool::new(2);
        let a = generate::uniform::<f32>(100, 100, 800, 3);
        let b = generate::uniform::<f32>(80, 100, 500, 4);
        let x = DenseMatrix::random(100, 8, 5);
        let e1 = JitSpmmBuilder::new().pool(pool.clone()).build(&a, 8).unwrap();
        let e2 = JitSpmmBuilder::new().pool(pool.clone()).build(&b, 8).unwrap();
        assert_eq!(e1.pool().size(), 2);
        assert_eq!(e1.threads(), 2, "threads default to the pool size");
        let (ya, _) = e1.execute(&x).unwrap();
        let (yb, _) = e2.execute(&x).unwrap();
        assert!(ya.approx_eq(&a.spmm_reference(&x), 1e-4));
        assert!(yb.approx_eq(&b.spmm_reference(&x), 1e-4));
    }

    #[test]
    fn execute_async_matches_blocking_execute() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::rmat::<f32>(8, 4_000, generate::RmatConfig::GRAPH500, 3);
        let x = DenseMatrix::random(a.ncols(), 16, 9);
        for strategy in [Strategy::RowSplitStatic, Strategy::row_split_dynamic_default()] {
            let engine = JitSpmmBuilder::new()
                .strategy(strategy)
                .threads(2)
                .pool(WorkerPool::new(2))
                .build(&a, 16)
                .unwrap();
            let (y_blocking, _) = engine.execute(&x).unwrap();
            let y_blocking = y_blocking.into_dense();
            engine.pool().scope(|scope| {
                let handle = engine.execute_async(scope, &x).unwrap();
                let (y_async, report) = handle.wait();
                assert_eq!(y_async, y_blocking, "strategy {strategy}");
                assert_eq!(report.threads, 2);
                assert_eq!(report.elapsed, report.kernel + report.dispatch);
            });
        }
    }

    #[test]
    fn concurrent_async_launches_of_one_engine_are_rejected() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(300, 300, 3_000, 4);
        let x = DenseMatrix::random(300, 8, 5);
        let engine =
            JitSpmmBuilder::new().threads(2).pool(WorkerPool::new(2)).build(&a, 8).unwrap();
        engine.pool().scope(|scope| {
            let handle = engine.execute_async(scope, &x).unwrap();
            // The dynamic counter is engine-owned; a second launch must be
            // refused (not deadlock) while the first handle is outstanding.
            assert!(matches!(
                engine.execute_async(scope, &x).unwrap_err(),
                JitSpmmError::LaunchInProgress
            ));
            let (y, _) = handle.wait();
            assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
            // With the handle gone the engine accepts launches again.
            let (y2, _) = engine.execute_async(scope, &x).unwrap().wait();
            assert!(y2.approx_eq(&a.spmm_reference(&x), 1e-4));
        });
    }

    #[test]
    fn blocking_execute_with_outstanding_handle_errors_instead_of_deadlocking() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(200, 200, 2_000, 9);
        let x = DenseMatrix::random(200, 8, 10);
        let engine =
            JitSpmmBuilder::new().threads(2).pool(WorkerPool::new(2)).build(&a, 8).unwrap();
        engine.pool().scope(|scope| {
            let handle = engine.execute_async(scope, &x).unwrap();
            // Same thread, launch lock held by `handle`: a blocking execute
            // must fail fast, not self-deadlock on the launch mutex.
            assert!(matches!(engine.execute(&x).unwrap_err(), JitSpmmError::LaunchInProgress));
            let mut y = DenseMatrix::zeros(200, 8);
            assert!(matches!(
                engine.execute_into(&x, &mut y).unwrap_err(),
                JitSpmmError::LaunchInProgress
            ));
            assert!(matches!(
                engine.execute_single_thread(&x, &mut y).unwrap_err(),
                JitSpmmError::LaunchInProgress
            ));
            let (ya, _) = handle.wait();
            assert!(ya.approx_eq(&a.spmm_reference(&x), 1e-4));
        });
        // Lock released: blocking execution works again.
        let (yb, _) = engine.execute(&x).unwrap();
        assert!(yb.approx_eq(&a.spmm_reference(&x), 1e-4));
    }

    #[test]
    fn two_engines_overlap_on_disjoint_lanes() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let pool = WorkerPool::new(2);
        let a = generate::uniform::<f32>(400, 400, 5_000, 6);
        let b = generate::rmat::<f32>(9, 6_000, generate::RmatConfig::WEB, 7);
        let ea = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, 8).unwrap();
        let eb = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, 8).unwrap();
        let xa = DenseMatrix::random(a.ncols(), 8, 1);
        let xb = DenseMatrix::random(b.ncols(), 8, 2);
        pool.scope(|scope| {
            for _ in 0..20 {
                let ha = ea.execute_async(scope, &xa).unwrap();
                let hb = eb.execute_async(scope, &xb).unwrap();
                let (ya, _) = ha.wait();
                let (yb, _) = hb.wait();
                assert!(ya.approx_eq(&a.spmm_reference(&xa), 1e-4));
                assert!(yb.approx_eq(&b.spmm_reference(&xb), 1e-4));
            }
        });
    }

    #[test]
    fn dropped_handle_joins_and_recycles_the_buffer() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(256, 256, 3_000, 8);
        let x = DenseMatrix::random(256, 8, 3);
        let engine =
            JitSpmmBuilder::new().threads(2).pool(WorkerPool::new(2)).build(&a, 8).unwrap();
        let first_ptr = engine.pool().scope(|scope| {
            let handle = engine.execute_async(scope, &x).unwrap();
            handle.y.as_ref().unwrap().as_ptr()
            // Dropped without wait: must join and return the buffer.
        });
        let (y, _) = engine.execute(&x).unwrap();
        assert_eq!(y.as_ptr(), first_ptr, "abandoned launch must recycle its output buffer");
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
    }

    #[test]
    fn leaked_execution_handle_is_joined_by_the_scope() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(128, 128, 1_200, 6);
        let x = DenseMatrix::random(128, 8, 7);
        let engine =
            JitSpmmBuilder::new().threads(2).pool(WorkerPool::new(2)).build(&a, 8).unwrap();
        engine.pool().scope(|scope| {
            // `mem::forget` is safe: the scope must join the kernel job
            // before `x`, the engine or the matrix can be freed.
            std::mem::forget(engine.execute_async(scope, &x).unwrap());
        });
        // The leaked handle kept the launch lock (and leaked the output
        // buffer), so the engine refuses further launches — safely.
        assert!(matches!(engine.execute(&x).unwrap_err(), JitSpmmError::LaunchInProgress));
    }

    #[test]
    fn execute_async_on_inline_pool_completes_eagerly() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(100, 100, 900, 2);
        let x = DenseMatrix::random(100, 4, 4);
        let engine =
            JitSpmmBuilder::new().threads(2).pool(WorkerPool::inline()).build(&a, 4).unwrap();
        engine.pool().scope(|scope| {
            let handle = engine.execute_async(scope, &x).unwrap();
            assert!(handle.is_done());
            let (y, _) = handle.wait();
            assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
        });
    }

    #[test]
    fn execute_async_rejects_bad_shapes() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::uniform::<f32>(50, 60, 300, 1);
        let engine = JitSpmmBuilder::new().threads(1).build(&a, 8).unwrap();
        let wrong = DenseMatrix::<f32>::zeros(10, 8);
        engine.pool().scope(|scope| {
            assert!(matches!(
                engine.execute_async(scope, &wrong).unwrap_err(),
                JitSpmmError::ShapeMismatch(_)
            ));
        });
    }

    #[test]
    fn spawning_path_matches_pooled_path() {
        if !host_ok() {
            eprintln!("skipping: host lacks AVX/FMA");
            return;
        }
        let a = generate::rmat::<f32>(8, 3_000, generate::RmatConfig::GRAPH500, 8);
        let x = DenseMatrix::random(a.ncols(), 16, 2);
        for strategy in [Strategy::RowSplitStatic, Strategy::row_split_dynamic_default()] {
            let engine =
                JitSpmmBuilder::new().strategy(strategy).threads(3).build(&a, 16).unwrap();
            let mut y_spawn = DenseMatrix::zeros(a.nrows(), 16);
            engine.execute_into_spawning(&x, &mut y_spawn).unwrap();
            let (y_pool, _) = engine.execute(&x).unwrap();
            assert_eq!(y_pool, y_spawn, "strategy {strategy}");
        }
    }
}
