//! # jitspmm — just-in-time instruction generation for accelerated SpMM
//!
//! A Rust reproduction of **JITSPMM: Just-in-Time Instruction Generation for
//! Accelerated Sparse Matrix-Matrix Multiplication** (CGO 2024). SpMM
//! computes `Y = A · X` where `A` is sparse (CSR) and `X`/`Y` are dense;
//! JITSPMM generates the SpMM kernel's machine code *at run time*, when the
//! number of dense columns `d`, the matrix layout and the host ISA are all
//! known, and thereby
//!
//! * keeps an entire output row in SIMD registers (**coarse-grain column
//!   merging**, §IV.C),
//! * removes the column-loop branches an ahead-of-time kernel must execute
//!   (§III),
//! * picks registers and instructions (`vbroadcastss`, `vfmadd231ps`,
//!   `vmovups`, `lock xadd`) tailored to the problem instance (§IV.D), and
//! * plugs into three workload-division strategies — row-split (static or
//!   dynamic), nnz-split and merge-split (§IV.B).
//!
//! # Quick start
//!
//! ```
//! use jitspmm::{JitSpmmBuilder, Strategy};
//! use jitspmm_sparse::{generate, DenseMatrix};
//!
//! # fn main() -> Result<(), jitspmm::JitSpmmError> {
//! // A sparse matrix (here: a small power-law graph) and a dense input.
//! let a = generate::rmat::<f32>(10, 10_000, generate::RmatConfig::GRAPH500, 42);
//! let x = DenseMatrix::random(a.ncols(), 16, 7);
//!
//! // Compile a kernel specialized to `a`, d = 16, this CPU, and the
//! // dynamic row-split strategy; then execute it.
//! let engine = JitSpmmBuilder::new()
//!     .strategy(Strategy::row_split_dynamic_default())
//!     .build(&a, x.ncols())?;
//! let (y, report) = engine.execute(&x)?;
//! assert_eq!(y.nrows(), a.nrows());
//! println!(
//!     "SpMM took {:?} on {} lanes ({:?} kernel + {:?} dispatch)",
//!     report.elapsed, report.threads, report.kernel, report.dispatch
//! );
//! # Ok(())
//! # }
//! ```
//!
//! # The persistent runtime
//!
//! Execution never spawns threads per call: engines dispatch to a persistent
//! [`WorkerPool`] of parked threads (the process-wide [`WorkerPool::global`]
//! by default), and [`JitSpmm::execute`] recycles output buffers through a
//! [`PooledMatrix`], so a steady-state execute loop performs **zero thread
//! spawns and zero allocations** — per-call latency tracks kernel time, not
//! dispatch overhead. Engines can share an explicit pool:
//!
//! ```
//! use jitspmm::{JitSpmmBuilder, WorkerPool};
//! use jitspmm_sparse::{generate, DenseMatrix};
//!
//! # fn main() -> Result<(), jitspmm::JitSpmmError> {
//! let pool = WorkerPool::new(2); // spawned once, parked between jobs
//! let a = generate::uniform::<f32>(200, 200, 2_000, 1);
//! let b = generate::uniform::<f32>(150, 200, 1_500, 2);
//! let eng_a = JitSpmmBuilder::new().pool(pool.clone()).build(&a, 8)?;
//! let eng_b = JitSpmmBuilder::new().pool(pool.clone()).build(&b, 8)?;
//! let x = DenseMatrix::random(200, 8, 3);
//! let (ya, _) = eng_a.execute(&x)?; // both engines share the two workers
//! let (yb, _) = eng_b.execute(&x)?;
//! assert!(ya.approx_eq(&a.spmm_reference(&x), 1e-4));
//! assert!(yb.approx_eq(&b.spmm_reference(&x), 1e-4));
//! # Ok(())
//! # }
//! ```
//!
//! # Overlapping engines: asynchronous execution
//!
//! Inside a [`WorkerPool::scope`], [`JitSpmm::execute_async`] submits a
//! launch and returns an [`ExecutionHandle`] immediately;
//! [`ExecutionHandle::wait`] joins it, with the waiting thread stealing
//! remaining kernel tasks. Each launch is lane-capped to its engine's
//! [`JitSpmmBuilder::threads`] count, so several engines submitted
//! back-to-back run **concurrently on disjoint subsets of one pool's
//! workers** instead of serializing — the configuration a server handling
//! many models (or many clients) wants:
//!
//! ```
//! use jitspmm::{JitSpmmBuilder, WorkerPool};
//! use jitspmm_sparse::{generate, DenseMatrix};
//!
//! # fn main() -> Result<(), jitspmm::JitSpmmError> {
//! let pool = WorkerPool::new(2);
//! let a = generate::uniform::<f32>(200, 200, 2_000, 1);
//! let b = generate::uniform::<f32>(150, 200, 1_500, 2);
//! let eng_a = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, 8)?;
//! let eng_b = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, 8)?;
//! let x = DenseMatrix::random(200, 8, 3);
//! pool.scope(|scope| -> Result<(), jitspmm::JitSpmmError> {
//!     let ha = eng_a.execute_async(scope, &x)?; // in flight on worker lane 1
//!     let hb = eng_b.execute_async(scope, &x)?; // in flight on worker lane 2
//!     let (ya, _) = ha.wait();
//!     let (yb, _) = hb.wait();
//!     assert!(ya.approx_eq(&a.spmm_reference(&x), 1e-4));
//!     assert!(yb.approx_eq(&b.spmm_reference(&x), 1e-4));
//!     Ok(())
//! })?;
//! # Ok(())
//! # }
//! ```
//!
//! The scope is what makes asynchronous launches over *borrowed* data sound
//! without relying on handle destructors (which [`std::mem::forget`] can
//! skip): it joins every job submitted through it before returning, the
//! same discipline as [`std::thread::scope`]. Raw pool jobs get the same
//! treatment through [`PoolScope::submit`] (borrowed tasks, returning a
//! [`ScopedJobHandle`]) or [`WorkerPool::submit`] (owned `'static` tasks,
//! returning a [`JobHandle`]), each with a [`JobSpec`] giving the task
//! count and lane cap.
//!
//! # Batched serving
//!
//! The steady-state traffic shape JIT compilation is amortized against is a
//! *stream* of dense right-hand sides through one compiled kernel.
//! [`JitSpmm::execute_batch`] pipelines a whole slice of inputs: validation
//! happens once up front, the engine's launch lock is taken once, and up to
//! [`DEFAULT_BATCH_DEPTH`] launches stay in flight so workers flow from one
//! input's job into the next without re-parking (on hosts with a single
//! hardware thread the pipeline degrades to a direct sequential fast path —
//! bit-identical results, no queue overhead). The returned [`BatchReport`]
//! aggregates per-input timing as order statistics — kernel and dispatch
//! p50/p99, not just means — because a serving system answers for its tail:
//!
//! ```
//! use jitspmm::JitSpmmBuilder;
//! use jitspmm_sparse::{generate, DenseMatrix};
//!
//! # fn main() -> Result<(), jitspmm::JitSpmmError> {
//! let a = generate::uniform::<f32>(256, 256, 3_000, 1);
//! let engine = JitSpmmBuilder::new().build(&a, 16)?;
//! let inputs: Vec<DenseMatrix<f32>> =
//!     (0..8).map(|seed| DenseMatrix::random(256, 16, seed)).collect();
//! let (outputs, report) =
//!     engine.pool().scope(|scope| engine.execute_batch(scope, &inputs))?;
//! assert_eq!(outputs.len(), 8);
//! println!(
//!     "{} inputs at {:.0}/s, kernel p50 {:?} p99 {:?}",
//!     report.inputs, report.throughput(), report.kernel_p50, report.kernel_p99
//! );
//! # for (x, y) in inputs.iter().zip(&outputs) {
//! #     assert!(y.approx_eq(&a.spmm_reference(x), 1e-4));
//! # }
//! # Ok(())
//! # }
//! ```
//!
//! For unbounded streams, [`JitSpmm::batch_stream`] exposes the pipeline
//! incrementally: [`BatchStream::push`] submits the next input (returning
//! the oldest completed output once the pipeline is full, so results arrive
//! in submission order while buffers recycle), [`BatchStream::push_owned`]
//! accepts inputs by value (so cross-thread producers need no `'env`
//! borrows), and [`BatchStream::finish`] drains it. The AOT baselines gain
//! matching batch entry points ([`baseline::scalar::spmm_scalar_batch`],
//! [`baseline::vectorized::spmm_vectorized_batch`],
//! [`baseline::mkl_like::spmm_mkl_like_f32_batch`]) so batched comparisons
//! stay like-for-like.
//!
//! # Mixed-stream serving
//!
//! One level up from batching through a single engine, the [`serve`] module
//! routes a **mixed** request stream across several compiled engines
//! sharing one pool — the paper's amortization argument applied across
//! kernels. An [`serve::SpmmServer`] owns N engines (different matrices,
//! `d`, strategies), validates every engine-tagged request before touching
//! any launch state, feeds each engine's requests through its own batch
//! pipeline by value, keeps concurrent engines on disjoint lane-capped
//! worker subsets, and reports per-engine tail latency plus whole-server
//! throughput in a [`serve::ServerReport`]. Producers on other threads feed
//! it through a bounded [`serve::RequestQueue`]
//! ([`serve::SpmmServer::serve_stream`]); pre-collected request batches go
//! through [`serve::SpmmServer::serve_batch`].
//!
//! # The serving control plane
//!
//! Routing is only half of serving — the other half is staying bounded and
//! alive when the traffic misbehaves. [`serve::SpmmServer::serve_controlled`]
//! runs the router under a control plane configured by
//! [`serve::ServeOptions`]: an [`serve::AdmissionPolicy`] bounds the queue
//! and (optionally) total in-flight work, either blocking the producer
//! (backpressure) or shedding with a typed [`serve::RejectReason`] — a
//! producer flooding ten times the queue depth never blocks indefinitely
//! and learns each verdict in nanoseconds. Requests carry priorities and
//! deadline budgets ([`serve::ServerRequest::with_priority`] /
//! [`serve::ServerRequest::with_deadline`]); a [`serve::ReorderBuffer`]
//! schedules urgent work first and expired requests are shed before launch,
//! while the admitted subset still produces **bit-identical** outputs to
//! FIFO serving. A [`serve::ControlHandle`] retires engines mid-stream,
//! drains to a barrier (every admitted request answered) and resumes, and
//! engines can be added while a session is open. A panic in generated code
//! is contained to a typed [`serve::ServerResponse::Failed`] for exactly
//! the request that hit it — unrelated engines keep serving and the server
//! stays usable; the cfg-gated `serve::fault` module injects such crashes
//! for the chaos suite. Every verdict is accounted in the
//! [`serve::ServerReport`] counters (`requests`, `rejected`,
//! `shed_deadline`, `failed` — [`serve::ServerReport::offered`] always adds
//! up to the load the producers offered).
//!
//! ```
//! use jitspmm::serve::{AdmissionPolicy, ServeOptions, ServerRequest, SpmmServer};
//! use jitspmm::JitSpmmBuilder;
//! use jitspmm_sparse::{generate, DenseMatrix};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), jitspmm::JitSpmmError> {
//! let a = generate::uniform::<f32>(200, 200, 2_000, 1);
//! let server = SpmmServer::new(vec![JitSpmmBuilder::new().build(&a, 8)?])?;
//! let inputs: Vec<DenseMatrix<f32>> =
//!     (0..6).map(|seed| DenseMatrix::random(200, 8, seed)).collect();
//! let (report, sent) = server.serve_controlled(
//!     ServeOptions::new(AdmissionPolicy::blocking(2)),
//!     |sender| {
//!         let mut sent = 0;
//!         for x in inputs {
//!             let request = ServerRequest::new(0, x).with_deadline(Duration::from_secs(5));
//!             if sender.send_request(request).is_ok() {
//!                 sent += 1;
//!             }
//!         }
//!         sent
//!     },
//!     |response| assert!(response.is_completed()),
//! )?;
//! assert_eq!(report.requests, sent);
//! assert_eq!(report.offered(), 6);
//! # Ok(())
//! # }
//! ```
//!
//! # Sharded execution
//!
//! For matrices too large for one launch pipeline, the [`shard`] module
//! splits the CSR into K contiguous row shards balanced by non-zero count
//! ([`shard::plan_shards`] — a greedy prefix-sum cut reporting its achieved
//! imbalance), picks a workload-division strategy *per shard* to match its
//! local sparsity (uniform shards go static, skewed shards get the dynamic
//! claim loop), and compiles one engine per shard on a shared pool
//! ([`shard::ShardedSpmm`]). Sharding is **zero-copy**: each shard matrix
//! is a [`CsrMatrix::share_rows`] view aliasing the parent's
//! `col_indices`/`values` buffers, materializing only a rebased `row_ptr`
//! (O(rows) per shard) — a plan over a billion-nonzero matrix weighs
//! kilobytes, not gigabytes. Execution launches every shard as an
//! overlapped lane-capped job — each kernel writing directly into its row
//! range of one pooled full-height output — and
//! [`shard::ShardedSpmm::execute_batch`] pipelines whole batches through
//! per-shard streams, stitching completed inputs with one contiguous copy
//! per shard. Results are bit-identical to the unsharded engine's, and a
//! [`shard::ShardReport`] breaks kernel/dispatch tails down per shard. A
//! sharded engine registers with the serving router behind one logical id
//! ([`serve::SpmmServer::add_sharded`]), so mixed streams can target huge
//! sharded matrices and small single-engine ones uniformly.
//!
//! # Adaptive kernel tiering
//!
//! Picking the *right* kernel configuration up front requires knowing the
//! traffic — which a server does not, until it has served some. A tiered
//! engine ([`JitSpmmBuilder::tiered`]) starts on a cheap safe **tier-0**
//! kernel (scalar code, static row split), records its first
//! [`TierPolicy::warmup`] launches, then recompiles for the configuration
//! the observations and the analytic instruction model justify and
//! **hot-swaps** the new kernel in between launches. Promotion never
//! changes results: outputs across the swap boundary are bit-identical to a
//! fixed engine compiled at the promoted configuration. Serving sessions
//! promote automatically ([`serve::ServeOptions::tiering`] — the recompile
//! rides the shared pool as a lane-capped background job, and
//! [`serve::ServerReport`] counts the swaps); standalone engines can watch
//! a promotion by hand:
//!
//! ```
//! use jitspmm::{IsaLevel, JitSpmmBuilder, KernelTier, Strategy, TierPolicy};
//! use jitspmm_sparse::{generate, DenseMatrix};
//!
//! # fn main() -> Result<(), jitspmm::JitSpmmError> {
//! let a = generate::rmat::<f32>(9, 6_000, generate::RmatConfig::GRAPH500, 11);
//! let x = DenseMatrix::random(a.ncols(), 8, 3);
//! // Request a dynamic row split, but let tiering decide when it is worth
//! // compiling (the scalar pin keeps this doctest host-independent).
//! let engine = JitSpmmBuilder::new()
//!     .strategy(Strategy::row_split_dynamic_default())
//!     .isa(IsaLevel::Scalar)
//!     .tiered(TierPolicy::new().warmup(4))
//!     .build(&a, x.ncols())?;
//! assert_eq!(engine.tier(), KernelTier::Tier0); // serving already, cheaply
//! let (y0, _) = engine.execute(&x)?;
//! assert!(engine.promote_now()); // warmup not done: promote explicitly
//! assert_eq!(engine.tier(), KernelTier::Promoted);
//! let (y1, _) = engine.execute(&x)?;
//! assert_eq!(y0.max_abs_diff(&y1), 0.0); // bit-identical across the swap
//! # Ok(())
//! # }
//! ```
//!
//! # Warm restarts: the persistent kernel cache
//!
//! Code generation is cheap next to steady-state execution, but a restarted
//! server pays it again for *every* engine — and a tiered engine also
//! re-pays the tier-0 warmup and the profile-guided recompile it already
//! did last boot. The [`cache`] module makes compilation artifacts survive
//! the process: [`JitSpmmBuilder::kernel_cache`] points an engine at a
//! directory, compiled kernels are persisted as relocatable templates, and
//! the next process **mmaps them back** instead of generating code
//! ([`CacheStats`] records hits/misses/rejects per cache).
//!
//! Entries are keyed by everything the generated code depends on: a 128-bit
//! fingerprint of the sparse matrix (structure *and* values), the dense
//! width `d`, scalar kind, strategy (with dynamic batch), ISA tier, CCM
//! flag, detected CPU features, and the crate/codegen revision — so a
//! library upgrade or a different machine re-keys rather than mis-executes.
//! On disk an entry is a 4 KiB header (magic, bytewise key echo, code
//! length, checksum, relocation table) followed by the code at page offset
//! 4096; the matrix-address `mov` immediates are stored **zeroed** and
//! patched per process after a copy-on-write file mapping, so a loaded
//! kernel is bit-identical to a fresh compile. Any mismatch — truncation,
//! checksum, foreign CPU features, colliding key digest — degrades to a
//! silent recompile; a corrupt cache can never crash or corrupt results.
//! Tier promotions persist too: a promotion record keyed by the *requested*
//! configuration lets the next boot warm-start straight onto the promoted
//! kernel ([`KernelTier::Promoted`] with zero in-process promotions),
//! skipping warmup entirely. Directories are bounded
//! ([`KernelCache::with_capacity`] evicts oldest-first;
//! [`KernelCache::clear`] empties) and shared safely across engines,
//! sharded compiles ([`ShardOptions::kernel_cache`]) and processes (atomic
//! tmp+rename stores serialized by an advisory `flock` on the directory).
//! The `jitspmm-serve` binary (crates/bench) wraps this in a TCP front end
//! whose warm-restart round trip CI exercises end to end.
//!
//! # Memory locality: NUMA placement and the futex wake path
//!
//! SpMM is memory-bound, so the runtime fights for locality on two fronts.
//! On multi-socket hosts the pool detects the NUMA topology from sysfs
//! ([`NumaTopology::detect`] — single-node fallback everywhere else), pins
//! workers round-robin across nodes, and honors a **soft node preference**
//! per job: [`JitSpmmBuilder::numa_node`] stamps it on an engine's
//! launches, and [`shard::ShardedSpmm`] assigns shards contiguously across
//! nodes automatically, first-touching each shard's rows of a fresh output
//! on its node so kernel, CSR slice and output pages share a memory
//! controller. Preferences never idle a worker: claiming stays
//! work-conserving, so a mismatched job is still picked up when nothing
//! local is queued. Independently, the park/wake handoff between submitters
//! and workers runs on raw futex words on Linux ([`WakeSlot`], a condvar
//! fallback elsewhere via `--no-default-features`), and every
//! [`ExecutionReport`] exposes the measured handoff as
//! [`ExecutionReport::wake`] (p50/p99 in [`BatchReport`]) so the dispatch
//! tail is attributable per launch, not just in benchmarks.
//!
//! # Dynamic graphs: incremental matrix updates
//!
//! Per-matrix compilation assumes one matrix serves many multiplies;
//! dynamic graphs mutate the matrix between multiplies. The [`update`]
//! module keeps the premise intact by making the unit of recompilation the
//! **shard**: a [`MutableSpmm`] owns its shard plan, and
//! [`MutableSpmm::apply`] merges a [`jitspmm_sparse::DeltaBatch`] of edge
//! upserts/deletes into **only the shards the delta touches** —
//! re-materializing and recompiling those (probing the kernel cache) while
//! every untouched shard keeps its compiled core pointer-identically and
//! shares the previous generation's non-zero storage. The rebuilt engine
//! becomes a new *generation* that swaps in between launches; when
//! accumulated deltas skew the shard balance past 1.5x the update re-cuts
//! the whole matrix instead ([`UpdateReport::replanned`]). Because
//! partitioning is row-granular, any generation is **bit-identical** to a
//! from-scratch engine compiled on the merged matrix.
//!
//! ```
//! use jitspmm::{MutableSpmm, WorkerPool};
//! use jitspmm_sparse::{generate, DeltaBatch, DenseMatrix};
//!
//! # fn main() -> Result<(), jitspmm::JitSpmmError> {
//! let pool = WorkerPool::new(2);
//! let a = generate::uniform::<f32>(400, 400, 6_000, 1);
//! let engine = MutableSpmm::compile(&a, 4, 1, 8, pool.clone())?;
//! let mut delta = DeltaBatch::new();
//! delta.upsert(0, 7, 2.5).delete(1, 0);
//! let report = engine.apply(&delta)?; // one shard recompiles, three adopt
//! assert_eq!(report.revision, 1);
//! assert!(report.rebuilt_shards <= 1);
//! let x = DenseMatrix::random(400, 8, 3);
//! let merged = a.apply_delta(&delta).unwrap();
//! let (y, _) = pool.scope(|s| engine.execute(s, &x))?;
//! assert!(y.approx_eq(&merged.spmm_reference(&x), 1e-4));
//! # Ok(())
//! # }
//! ```
//!
//! Behind the server, [`serve::SpmmServer::add_mutable`] registers a
//! mutable engine under one logical id and
//! [`serve::ControlHandle::apply_update`] applies a delta to a **live**
//! [`serve::SpmmServer::serve_controlled`] session: the serving loop drains
//! the engine's in-flight lane, swaps generations, and admits subsequent
//! requests against the new matrix — observable via
//! [`serve::ControlHandle::engine_revision`] /
//! [`serve::ControlHandle::wait_revision`]. The `jitspmm-serve` binary
//! exposes the same path over TCP (`--mutable`, the `UPDATE` frame).
//!
//! # Architecture map
//!
//! ```text
//! jitspmm (crates/core)
//! ├── engine/            compile once, execute many
//! │   ├── options        SpmmOptions, JitSpmmBuilder
//! │   ├── compile        JitSpmm construction, spare slot kernels
//! │   ├── launch         execute / execute_async, launch lock, ExecutionHandle
//! │   ├── batch          execute_batch, BatchStream (borrowed + owned pushes)
//! │   ├── tier           adaptive tiering: tier-0 start, profiled recompile, hot-swap
//! │   └── report         ExecutionReport, BatchReport, reservoir percentiles
//! ├── cache/             persistent kernel cache (mmap-backed warm starts)
//! │   ├── key            CacheKey: matrix fingerprint + config + CPU + revision
//! │   └── (mod)          KernelCache: store/load/evict, flock'd stores, promotions
//! ├── update/            incremental matrix updates behind live serving
//! │   ├── delta          delta routing onto shard row ranges
//! │   ├── apply          shard-local merge + recompile, re-plan on drift
//! │   └── (mod)          MutableSpmm generations, MutableStream revision pinning
//! ├── serve/             multi-engine serving router + control plane
//! │   ├── server         SpmmServer, ServerSession, serve_controlled loop
//! │   ├── queue          bounded RequestQueue / RequestSender, admission gate
//! │   ├── control        AdmissionPolicy, ControlHandle, ReorderBuffer
//! │   ├── fault          cfg-gated crash/delay injection for chaos tests
//! │   └── report         ServerReport (per-engine tails + verdict counters)
//! ├── shard/             nnz-balanced multi-engine sharding
//! │   ├── plan           plan_shards: prefix-sum cuts, per-shard strategies
//! │   ├── engine         ShardedSpmm: K engines, overlapped stitched launches
//! │   ├── stream         ShardedStream: lockstep pipelined shard batches
//! │   └── report         ShardReport (per-shard + merged critical path)
//! ├── runtime/           persistent execution substrate
//! │   ├── pool           WorkerPool: FIFO job queue, lane caps, scopes, node claiming
//! │   ├── wake           WakeSlot: futex wake path (condvar fallback)
//! │   ├── numa           NumaTopology: sysfs detection, worker pinning
//! │   └── dispatch       KernelJob, LaunchPayload slots, BufferPool
//! ├── schedule           workload-division strategies and partitioning
//! ├── tiling             coarse-grain column merging register allocation
//! ├── codegen            the x86-64 kernel generator
//! ├── baseline/          AOT baselines (scalar, auto-vectorized, MKL-like)
//! └── profile            hardware-event models, emulator-based measurement
//! ```
//!
//! The sparse/dense containers live in [`jitspmm_sparse`] (whose
//! `CsrStorage` backs the owned-or-borrowed nnz arrays behind
//! [`CsrMatrix::share_rows`]), the runtime assembler in [`jitspmm_asm`],
//! and the profiling emulator in [`jitspmm_emu`]; all three are re-exported
//! for convenience.

#![deny(missing_docs)]

pub mod baseline;
pub mod cache;
pub mod codegen;
pub mod engine;
pub mod error;
pub mod kernel;
pub mod profile;
pub mod runtime;
pub mod schedule;
pub mod serve;
pub mod shard;
pub mod tiling;
pub mod update;

pub use cache::{CacheStats, KernelCache};
pub use codegen::KernelOptions;
pub use engine::{
    BatchReport, BatchStream, ExecutionHandle, ExecutionReport, JitSpmm, JitSpmmBuilder, KernelRef,
    KernelTier, SpmmOptions, TierPolicy, DEFAULT_BATCH_DEPTH,
};
pub use error::JitSpmmError;
pub use kernel::{CompiledKernel, KernelKind, KernelMeta};
pub use profile::ProfileCounts;
pub use runtime::{
    JobHandle, JobSpec, NumaNode, NumaTopology, PoolScope, PooledMatrix, ScopedJobHandle, WakeSlot,
    WorkerPool,
};
pub use schedule::{DynamicCounter, Partition, RowRange, Strategy};
pub use serve::{
    AdmissionPolicy, ControlHandle, EngineStatus, RecvTimeout, RejectReason, ReorderBuffer,
    RequestQueue, RequestSender, SendError, ServeOptions, ServerReport, ServerRequest,
    ServerResponse, ServerSession, SpmmServer,
};
pub use shard::{
    plan_shards, ShardOptions, ShardPlan, ShardReport, ShardSpec, ShardedSpmm, ShardedStream,
};
pub use tiling::{CcmPlan, ColumnTile, Segment, SegmentWidth};
pub use update::{MutableSpmm, MutableStream, UpdateReport};

pub use jitspmm_asm::{CpuFeatures, IsaLevel};
pub use jitspmm_sparse::{CooMatrix, CsrMatrix, DenseMatrix, Scalar, ScalarKind};
