//! Hardware-event models for the profiling analysis (Table II, Figure 11).
//!
//! The paper collects memory loads, branches, branch misses and executed
//! instructions with Linux `perf`. Hardware performance counters are not
//! reliably available in this environment, so this module provides two
//! substitutes:
//!
//! * **analytic models** for the AOT baselines — closed-form event counts
//!   derived from each kernel's loop structure and the matrix statistics
//!   (`nnz`, rows, `d`); and
//! * an **emulator-measured** count for the JIT kernels (see
//!   [`measure_jit_emulated`]), obtained by running the generated machine
//!   code instruction-by-instruction in `jitspmm-emu` with an architectural
//!   event model.
//!
//! The quantities the paper reports are *comparative* (JIT performs fewer
//! loads/branches/instructions than the AOT baselines by some factor), and
//! both substitutes preserve exactly those ratios.

use crate::engine::JitSpmm;
use crate::error::JitSpmmError;
use crate::tiling::CcmPlan;
use jitspmm_asm::IsaLevel;
use jitspmm_emu::{EmuError, Emulator, HwCounters};
use jitspmm_sparse::{CsrMatrix, DenseMatrix, Scalar, ScalarKind};

/// Modeled or measured hardware-event counts for one SpMM execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileCounts {
    /// Executed instructions.
    pub instructions: u64,
    /// Memory load operations.
    pub memory_loads: u64,
    /// Memory store operations.
    pub memory_stores: u64,
    /// Executed branch instructions (conditional and unconditional).
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_misses: u64,
}

impl ProfileCounts {
    /// Ratio of this profile's metric to `other`'s, as reported in the
    /// paper's "N× fewer" comparisons.
    pub fn load_ratio(&self, other: &ProfileCounts) -> f64 {
        ratio(self.memory_loads, other.memory_loads)
    }

    /// Instruction-count ratio versus `other`.
    pub fn instruction_ratio(&self, other: &ProfileCounts) -> f64 {
        ratio(self.instructions, other.instructions)
    }

    /// Branch-count ratio versus `other`.
    pub fn branch_ratio(&self, other: &ProfileCounts) -> f64 {
        ratio(self.branches, other.branches)
    }
}

impl From<HwCounters> for ProfileCounts {
    fn from(c: HwCounters) -> ProfileCounts {
        ProfileCounts {
            instructions: c.instructions,
            memory_loads: c.memory_loads,
            memory_stores: c.memory_stores,
            branches: c.branches,
            branch_misses: c.branch_misses,
        }
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Structural facts about one SpMM problem instance, extracted once and
/// shared by all the analytic models.
#[derive(Debug, Clone, Copy)]
struct Workload {
    rows: u64,
    nnz: u64,
    d: u64,
}

impl Workload {
    fn of<T: Scalar>(matrix: &CsrMatrix<T>, d: usize) -> Workload {
        Workload { rows: matrix.nrows() as u64, nnz: matrix.nnz() as u64, d: d as u64 }
    }
}

/// Analytic event model for the naive scalar AOT kernel (Algorithm 1 as
/// compiled by a C compiler): the column loop is outermost inside each row,
/// so every non-zero is revisited `d` times and each visit reloads the
/// column index, the value and one dense element.
pub fn model_aot_scalar<T: Scalar>(matrix: &CsrMatrix<T>, d: usize) -> ProfileCounts {
    let w = Workload::of(matrix, d);
    let inner = w.nnz * w.d;
    ProfileCounts {
        memory_loads: inner * 3 + w.rows * 2,
        memory_stores: w.rows * w.d,
        branches: inner + w.rows * w.d + w.rows,
        instructions: inner * 8 + w.rows * w.d * 5 + w.rows * 4,
        branch_misses: w.rows * w.d + w.rows,
    }
}

/// Analytic event model for the auto-vectorized AOT kernel: the inner column
/// loop is vectorized with `lanes`-wide operations, but because `d` is a
/// runtime value the accumulator row lives in memory and is re-loaded and
/// re-stored on every non-zero.
pub fn model_aot_vectorized<T: Scalar>(
    matrix: &CsrMatrix<T>,
    d: usize,
    lanes: usize,
) -> ProfileCounts {
    let w = Workload::of(matrix, d);
    let blocks = (d as u64).div_ceil(lanes as u64);
    ProfileCounts {
        memory_loads: w.nnz * (2 + blocks * 2) + w.rows * 2,
        memory_stores: w.nnz * blocks + w.rows * blocks,
        branches: w.nnz * (blocks + 1) + w.rows * 2,
        instructions: w.nnz * (4 + blocks * 6) + w.rows * (blocks * 2 + 6),
        branch_misses: w.nnz + w.rows,
    }
}

/// Analytic event model for the hand-optimized (MKL-like) AOT kernel: column
/// tiles of `lanes` elements with register accumulators, nnz loop innermost,
/// one pass over the row's non-zeros per tile.
pub fn model_mkl_like<T: Scalar>(matrix: &CsrMatrix<T>, d: usize, lanes: usize) -> ProfileCounts {
    let w = Workload::of(matrix, d);
    let tiles = (d as u64).div_ceil(lanes as u64);
    ProfileCounts {
        memory_loads: w.nnz * tiles * 3 + w.rows * 2,
        memory_stores: w.rows * tiles,
        // Compared to the JIT kernel, the AOT tile loop keeps a column
        // cursor and re-tests the tile and remainder bounds every
        // iteration, costing one extra instruction per non-zero and extra
        // per-row loop control.
        branches: w.nnz * tiles + w.rows * (tiles + 2) + w.rows,
        instructions: w.nnz * tiles * 8 + w.rows * (tiles * 6 + 6),
        branch_misses: w.rows * tiles + w.rows,
    }
}

/// Analytic event model for the JIT kernel with coarse-grain column merging,
/// derived from the register-allocation plan: per non-zero the kernel loads
/// the column index and the (broadcast) value once per pass and touches each
/// dense segment exactly once, with a single loop-carried branch.
pub fn model_jit_ccm<T: Scalar>(matrix: &CsrMatrix<T>, plan: &CcmPlan) -> ProfileCounts {
    let w = Workload::of(matrix, plan.d);
    let passes = plan.passes() as u64;
    let segments: u64 = plan.tiles.iter().map(|t| t.segments.len() as u64).sum();
    ProfileCounts {
        memory_loads: w.nnz * (2 * passes + segments) + w.rows * (2 + passes.saturating_sub(1)),
        memory_stores: w.rows * segments,
        branches: w.nnz * passes + w.rows * passes + w.rows,
        instructions: w.nnz * (passes * 6 + segments) + w.rows * (2 * segments + passes * 4 + 5),
        branch_misses: w.rows * passes + w.rows,
    }
}

/// Convenience wrapper: the analytic JIT model for a given ISA tier and
/// element kind (builds the CCM plan internally).
pub fn model_jit<T: Scalar>(matrix: &CsrMatrix<T>, d: usize, isa: IsaLevel) -> ProfileCounts {
    let plan = CcmPlan::new(d, isa, T::KIND);
    model_jit_ccm(matrix, &plan)
}

/// The vector width (in elements of `kind`) that the auto-vectorized and
/// MKL-like models should assume for a given ISA tier.
pub fn lanes_for(isa: IsaLevel, kind: ScalarKind) -> usize {
    match kind {
        ScalarKind::F32 => isa.max_f32_lanes(),
        ScalarKind::F64 => isa.max_f64_lanes(),
    }
}

/// Run a compiled JIT kernel single-threaded under the instruction-level
/// emulator and return the measured event counts.
///
/// The emulator executes the exact machine code the engine generated (the
/// same bytes that run natively), so the counts reflect the real instruction
/// stream rather than a model.
///
/// # Errors
///
/// Returns [`JitSpmmError::ShapeMismatch`] for shape errors and
/// [`JitSpmmError::InvalidConfig`] if the emulator rejects an instruction
/// (which would indicate an encoder/emulator mismatch — covered by tests).
pub fn measure_jit_emulated<T: Scalar>(
    engine: &JitSpmm<'_, T>,
    x: &DenseMatrix<T>,
    y: &mut DenseMatrix<T>,
) -> Result<ProfileCounts, JitSpmmError> {
    if x.nrows() != engine.matrix().ncols() || x.ncols() != engine.d() {
        return Err(JitSpmmError::ShapeMismatch("dense input shape".into()));
    }
    if y.nrows() != engine.matrix().nrows() || y.ncols() != engine.d() {
        return Err(JitSpmmError::ShapeMismatch("dense output shape".into()));
    }
    // A dynamically dispatched kernel claims rows from the engine's shared
    // counter; reset it exactly as a native launch would, so emulation after
    // a previous execution does not observe an exhausted counter (and
    // silently compute nothing).
    let _launch = engine.begin_launch(true)?;
    let mut emulator = Emulator::new();
    let args: Vec<u64> = match engine.kernel().kind() {
        crate::kernel::KernelKind::StaticRange => {
            vec![0, engine.matrix().nrows() as u64, x.as_ptr() as u64, y.as_mut_ptr() as u64]
        }
        crate::kernel::KernelKind::DynamicDispatch => {
            vec![x.as_ptr() as u64, y.as_mut_ptr() as u64]
        }
    };
    // SAFETY: the kernel was generated against live buffers owned by the
    // borrowed matrix and the caller-provided dense matrices, whose shapes
    // were validated above; the emulator performs the same accesses the
    // hardware would.
    let counters = unsafe { emulator.run(engine.kernel().code(), &args) }.map_err(emu_to_jit)?;
    Ok(counters.into())
}

fn emu_to_jit(e: EmuError) -> JitSpmmError {
    JitSpmmError::InvalidConfig(format!("emulation failed: {e}"))
}

/// Cache-behaviour comparison of the two dense-access patterns of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheComparison {
    /// Misses incurred when every selected dense row is streamed
    /// sequentially in one pass (the CCM pattern, Figure 7(b)).
    pub ccm_misses: u64,
    /// Misses incurred when the dense rows are revisited once per column
    /// block with a stride of the row length (the non-CCM pattern,
    /// Figure 7(a)).
    pub column_loop_misses: u64,
    /// Total dense-element accesses simulated (identical for both patterns).
    pub accesses: u64,
}

impl CacheComparison {
    /// `column_loop_misses / ccm_misses` — how many times fewer misses the
    /// CCM access order takes.
    pub fn improvement(&self) -> f64 {
        if self.ccm_misses == 0 {
            return f64::INFINITY;
        }
        self.column_loop_misses as f64 / self.ccm_misses as f64
    }
}

/// Simulate the dense-matrix (`X`) access stream of one SpMM execution under
/// the two access orders contrasted in Figure 7 and report the cache misses
/// of each, using a cache of the given configuration.
///
/// `block_columns` is the number of columns processed per pass in the
/// non-CCM order (1 for a scalar kernel, the SIMD lane count for a
/// vectorized AOT kernel).
pub fn simulate_figure7_cache_misses<T: Scalar>(
    matrix: &CsrMatrix<T>,
    d: usize,
    block_columns: usize,
    config: jitspmm_emu::CacheConfig,
) -> CacheComparison {
    let elem = T::KIND.bytes() as u64;
    let row_bytes = d as u64 * elem;
    let block = block_columns.max(1);

    // CCM order (Figure 7(b)): one pass per row, each selected dense row
    // streamed start to finish.
    let mut ccm_cache = jitspmm_emu::CacheModel::new(config);
    for i in 0..matrix.nrows() {
        for &k in matrix.row_cols(i) {
            let base = k as u64 * row_bytes;
            let mut j = 0u64;
            while j < d as u64 {
                ccm_cache.access(base + j * elem, elem as usize);
                j += 1;
            }
        }
    }

    // Column-loop order (Figure 7(a)): the row's non-zero list is re-walked
    // once per column block, touching a narrow slice of each dense row with
    // a `row_bytes` stride between consecutive accesses.
    let mut col_cache = jitspmm_emu::CacheModel::new(config);
    for i in 0..matrix.nrows() {
        let mut col = 0usize;
        while col < d {
            let cols_here = block.min(d - col);
            for &k in matrix.row_cols(i) {
                let base = k as u64 * row_bytes + col as u64 * elem;
                for j in 0..cols_here as u64 {
                    col_cache.access(base + j * elem, elem as usize);
                }
            }
            col += cols_here;
        }
    }

    CacheComparison {
        ccm_misses: ccm_cache.misses(),
        column_loop_misses: col_cache.misses(),
        accesses: matrix.nnz() as u64 * d as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitspmm_sparse::generate;

    fn matrix() -> CsrMatrix<f32> {
        generate::rmat(10, 20_000, generate::RmatConfig::WEB, 3)
    }

    #[test]
    fn jit_model_beats_aot_scalar_on_every_metric() {
        let m = matrix();
        let d = 8;
        let aot = model_aot_scalar(&m, d);
        let jit = model_jit::<f32>(&m, d, IsaLevel::Scalar);
        // The paper's Table II reductions: loads 2.4-2.7x, instructions
        // 3.4-4.4x, branches >1x.
        assert!(aot.load_ratio(&jit) > 2.0, "load ratio = {}", aot.load_ratio(&jit));
        assert!(aot.instruction_ratio(&jit) > 3.0);
        assert!(aot.branch_ratio(&jit) > 1.2);
        assert!(aot.branch_misses > jit.branch_misses);
    }

    #[test]
    fn jit_model_beats_vectorized_and_mkl_models() {
        let m = matrix();
        let d = 16;
        let lanes = lanes_for(IsaLevel::Avx512, ScalarKind::F32);
        let vec = model_aot_vectorized(&m, d, lanes);
        let mkl = model_mkl_like(&m, d, lanes);
        let jit = model_jit::<f32>(&m, d, IsaLevel::Avx512);
        assert!(vec.memory_loads > jit.memory_loads);
        assert!(vec.instructions > jit.instructions);
        assert!(mkl.memory_loads >= jit.memory_loads);
        assert!(mkl.instructions > jit.instructions);
        // MKL-like is itself better than naive auto-vectorization, mirroring
        // Figure 11 where MKL sits between auto-vectorization and JITSPMM.
        assert!(vec.memory_loads > mkl.memory_loads);
    }

    #[test]
    fn wider_d_scales_all_models() {
        let m = matrix();
        for model in [
            model_aot_scalar::<f32>,
            |m: &CsrMatrix<f32>, d| model_aot_vectorized(m, d, 16),
            |m: &CsrMatrix<f32>, d| model_mkl_like(m, d, 16),
            |m: &CsrMatrix<f32>, d| model_jit(m, d, IsaLevel::Avx512),
        ] {
            let small = model(&m, 16);
            let large = model(&m, 64);
            assert!(large.instructions > small.instructions);
            assert!(large.memory_loads > small.memory_loads);
        }
    }

    #[test]
    fn lanes_for_matches_isa() {
        assert_eq!(lanes_for(IsaLevel::Avx512, ScalarKind::F32), 16);
        assert_eq!(lanes_for(IsaLevel::Avx2, ScalarKind::F32), 8);
        assert_eq!(lanes_for(IsaLevel::Avx512, ScalarKind::F64), 8);
        assert_eq!(lanes_for(IsaLevel::Scalar, ScalarKind::F64), 1);
    }

    #[test]
    fn figure7_ccm_access_order_misses_less() {
        // A matrix with heavy rows (~1000 non-zeros per row): one pass over a
        // row's dense operands touches more lines than the L1 holds, so the
        // column-loop order re-misses on every revisit.
        let m = generate::power_law_rows::<f32>(128, 8192, 120_000, 0.1, 5);
        let d = 16;
        let cmp = simulate_figure7_cache_misses(&m, d, 1, jitspmm_emu::CacheConfig::L1D);
        assert_eq!(cmp.accesses, m.nnz() as u64 * d as u64);
        assert!(
            cmp.column_loop_misses > cmp.ccm_misses,
            "CCM should reduce cache misses: {} vs {}",
            cmp.ccm_misses,
            cmp.column_loop_misses
        );
        // Streaming touches each 64-byte line once per visit, so the scalar
        // column-loop order should miss several times more often.
        assert!(cmp.improvement() > 2.0, "improvement = {:.2}", cmp.improvement());
    }

    #[test]
    fn figure7_wide_blocks_narrow_the_gap() {
        let m = generate::power_law_rows::<f32>(512, 4096, 60_000, 0.2, 5);
        let d = 64;
        let scalar_blocks = simulate_figure7_cache_misses(&m, d, 1, jitspmm_emu::CacheConfig::L1D);
        let simd_blocks = simulate_figure7_cache_misses(&m, d, 16, jitspmm_emu::CacheConfig::L1D);
        // Processing 16 columns per pass already restores most of the
        // spatial locality, mirroring the paper's observation that the
        // benefit comes from sequential line-sized accesses.
        assert!(simd_blocks.column_loop_misses <= scalar_blocks.column_loop_misses);
        assert_eq!(simd_blocks.ccm_misses, scalar_blocks.ccm_misses);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let zero = ProfileCounts::default();
        let nonzero = ProfileCounts { instructions: 10, ..Default::default() };
        assert_eq!(nonzero.instruction_ratio(&zero), 0.0);
    }
}
