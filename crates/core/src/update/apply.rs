//! The update engine: turn a validated [`DeltaBatch`] into the next
//! generation — shard-local merge + recompile on the incremental path, a
//! full re-plan when the delta has skewed the shard balance too far.

use super::delta::split_by_shard;
use super::{Generation, MutableSpmm};
use crate::engine::JitSpmm;
use crate::error::JitSpmmError;
use crate::shard::{choose_strategy, nnz_imbalance_of_specs, plan_shards, ShardPlan, ShardSpec};
use jitspmm_sparse::{CsrMatrix, DeltaBatch, Scalar};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard-nnz imbalance (heaviest over average) above which an update stops
/// patching shards in place and re-cuts the whole matrix. The planner
/// targets ~1.10 and tolerates 1.25 before switching strategies; letting
/// drift run to 1.5x keeps updates cheap while bounding how unbalanced the
/// overlapped shard launches can become before a re-plan pays for itself.
pub(crate) const REPLAN_THRESHOLD: f64 = 1.5;

/// What one [`MutableSpmm::apply`] did: which path it took, how much it
/// rebuilt, and what it reused. The differential and stability test suites
/// read these; servers log them.
#[derive(Debug, Clone, Copy)]
pub struct UpdateReport {
    /// The revision the engine is at after this apply (unchanged for an
    /// empty delta).
    pub revision: u64,
    /// Distinct matrix rows the delta touched.
    pub touched_rows: usize,
    /// Shards the delta landed in (0 for an empty delta).
    pub touched_shards: usize,
    /// Shards recompiled: the touched count on the incremental path, every
    /// shard of the new plan after a re-plan.
    pub rebuilt_shards: usize,
    /// Shards whose compiled cores were adopted pointer-identically (0
    /// after a re-plan).
    pub reused_shards: usize,
    /// Whether drift past the re-plan threshold forced a full re-cut.
    pub replanned: bool,
    /// The new generation's achieved shard-nnz imbalance.
    pub nnz_imbalance: f64,
    /// Wall-clock time of the whole apply: split, merge, (re-)plan,
    /// compile, swap.
    pub elapsed: Duration,
}

impl<T: Scalar> MutableSpmm<T> {
    /// The locked core of [`MutableSpmm::apply`]: the caller holds the
    /// generation write lock, so no launch is in flight and the vector can
    /// grow. Every fallible step happens before the push — on error the
    /// previous generation keeps serving untouched.
    pub(super) fn apply_locked(
        &self,
        generations: &mut Vec<Arc<Generation<T>>>,
        delta: &DeltaBatch<T>,
    ) -> Result<UpdateReport, JitSpmmError> {
        let started = Instant::now();
        delta
            .validate(self.nrows, self.ncols)
            .map_err(|e| JitSpmmError::InvalidConfig(format!("delta batch: {e}")))?;
        let current = Arc::clone(generations.last().expect("always one generation"));
        if delta.is_empty() {
            return Ok(UpdateReport {
                revision: current.revision,
                touched_rows: 0,
                touched_shards: 0,
                rebuilt_shards: 0,
                reused_shards: current.plan.len(),
                replanned: false,
                nnz_imbalance: current.plan.nnz_imbalance(),
                elapsed: started.elapsed(),
            });
        }
        let revision = current.revision + 1;
        let touched_rows = delta.touched_rows().len();
        let locals = split_by_shard(&current.plan, delta);
        let touched_shards = locals.iter().filter(|l| l.is_some()).count();

        // Rebuild specs shard by shard: untouched shards clone their spec
        // matrix (sharing the previous generation's non-zero storage —
        // only the O(rows) row-pointer vector is copied), touched shards
        // merge their rebased slice of the delta into fresh storage and
        // get their strategy re-judged against the merged local sparsity.
        let mut specs: Vec<ShardSpec<T>> = Vec::with_capacity(locals.len());
        for (spec, local) in current.plan.shards().iter().zip(&locals) {
            let built = match local {
                None => ShardSpec {
                    rows: spec.rows,
                    matrix: spec.matrix.clone(),
                    strategy: spec.strategy,
                },
                Some(local) => {
                    let merged = spec.matrix.apply_delta(local).map_err(|e| {
                        JitSpmmError::InvalidConfig(format!("shard delta merge: {e}"))
                    })?;
                    let strategy = choose_strategy(&merged, current.plan.lanes());
                    ShardSpec { rows: spec.rows, matrix: merged, strategy }
                }
            };
            specs.push(built);
        }

        let drifted = nnz_imbalance_of_specs(&specs);
        let generation = if drifted > REPLAN_THRESHOLD {
            // Drift exceeded the threshold: re-cut the whole merged matrix
            // at the originally requested shard count and compile fresh
            // (no donors — the cut points moved, so no shard is guaranteed
            // content-identical). The merged matrix itself is transient:
            // the plan's share_rows views keep its storage alive.
            let merged = concat_specs(&specs, self.ncols);
            let plan = plan_shards(&merged, self.shard_request, current.plan.lanes())?;
            Generation::compile(
                plan,
                revision,
                self.d,
                self.pool.clone(),
                &self.options,
                &[],
                Some(&current.engine),
            )?
        } else {
            // Incremental path: keep the cut points, adopt every untouched
            // shard's compiled core from the current generation, recompile
            // only the touched shards (probing the kernel cache first).
            let plan = ShardPlan::from_parts(specs, self.ncols, current.plan.lanes());
            let donors: Vec<Option<&JitSpmm<'_, T>>> = locals
                .iter()
                .zip(current.engine.engines())
                .map(|(local, engine)| local.is_none().then_some(engine))
                .collect();
            Generation::compile(
                plan,
                revision,
                self.d,
                self.pool.clone(),
                &self.options,
                &donors,
                Some(&current.engine),
            )?
        };
        let replanned = drifted > REPLAN_THRESHOLD;
        let report = UpdateReport {
            revision,
            touched_rows,
            touched_shards,
            rebuilt_shards: if replanned { generation.plan.len() } else { touched_shards },
            reused_shards: if replanned { 0 } else { generation.plan.len() - touched_shards },
            replanned,
            nnz_imbalance: generation.plan.nnz_imbalance(),
            elapsed: Duration::ZERO, // stamped below, after the push
        };
        generations.push(generation);
        Ok(UpdateReport { elapsed: started.elapsed(), ..report })
    }
}

/// Concatenate contiguous shard sub-matrices back into one owned full
/// matrix: cumulative row pointers, concatenated column/value arrays. The
/// inverse of planning's extract step; used by the re-plan path and
/// [`MutableSpmm::merged_matrix`].
///
/// # Panics
///
/// The specs come from a valid plan (contiguous, sorted, per-row sorted
/// columns), so reconstruction cannot fail; a failure here is an internal
/// invariant violation.
pub(super) fn concat_specs<T: Scalar>(specs: &[ShardSpec<T>], ncols: usize) -> CsrMatrix<T> {
    let nrows = specs.last().map_or(0, |s| s.rows.end);
    let nnz: usize = specs.iter().map(ShardSpec::nnz).sum();
    let mut row_ptr: Vec<u64> = Vec::with_capacity(nrows + 1);
    let mut cols: Vec<u32> = Vec::with_capacity(nnz);
    let mut vals: Vec<T> = Vec::with_capacity(nnz);
    row_ptr.push(0);
    for spec in specs {
        let base = *row_ptr.last().expect("row_ptr starts non-empty");
        row_ptr.extend(spec.matrix.row_ptr()[1..].iter().map(|&p| base + p));
        cols.extend_from_slice(spec.matrix.col_indices());
        vals.extend_from_slice(spec.matrix.values());
    }
    CsrMatrix::from_raw_parts(nrows, ncols, row_ptr, cols, vals)
        .expect("concatenating a valid plan's shards always reconstructs a valid CSR")
}
