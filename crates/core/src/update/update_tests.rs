//! Unit tests for the incremental-update subsystem: generation protocol,
//! shard reuse, re-plan drift, and bit-identity of the incremental path
//! against from-scratch compilation. The cross-crate differential family
//! (serving paths included) lives in `tests/tests/update_differential.rs`.

use super::*;
use crate::shard::plan_shards;
use jitspmm_sparse::generate;

fn square_rmat(scale: u32, nnz: usize, seed: u64) -> CsrMatrix<f32> {
    generate::rmat::<f32>(scale, nnz, generate::RmatConfig::GRAPH500, seed)
}

#[test]
fn incremental_apply_is_bit_identical_to_from_scratch() {
    let pool = WorkerPool::new(2);
    let a = square_rmat(9, 8_000, 5);
    let engine = MutableSpmm::compile(&a, 4, 1, 8, pool.clone()).unwrap();
    let mut delta = DeltaBatch::new();
    delta.upsert(3, 100, 1.25).upsert(200, 7, -2.0).delete(3, 100).upsert(3, 100, 4.5);
    for r in 0..20 {
        delta.upsert(r * 11, (r * 37) % a.ncols(), r as f32 + 0.5);
    }
    let report = engine.apply(&delta).unwrap();
    assert_eq!(report.revision, 1);
    assert_eq!(engine.revision(), 1);
    assert!(!report.replanned);
    assert_eq!(report.rebuilt_shards + report.reused_shards, engine.shards());

    let merged = a.apply_delta(&delta).unwrap();
    assert_eq!(engine.merged_matrix(), merged);
    assert_eq!(engine.nnz(), merged.nnz());
    let plan = plan_shards(&merged, 4, 1).unwrap();
    let fresh = ShardedSpmm::compile(&plan, 8, pool.clone()).unwrap();
    let x = DenseMatrix::random(a.ncols(), 8, 3);
    let (y_inc, _) = pool.scope(|s| engine.execute(s, &x)).unwrap();
    let (y_ref, _) = pool.scope(|s| fresh.execute(s, &x)).unwrap();
    assert_eq!(y_inc.max_abs_diff(&y_ref), 0.0, "incremental path must be bit-identical");
}

#[test]
fn untouched_shards_keep_their_cores_pointer_identically() {
    let pool = WorkerPool::new(2);
    let a = square_rmat(9, 10_000, 11);
    let engine = MutableSpmm::compile(&a, 4, 1, 8, pool.clone()).unwrap();
    let before = engine.core_ids();
    // Touch only row 0 — the first shard.
    let mut delta = DeltaBatch::new();
    delta.upsert(0, 1, 9.0);
    let report = engine.apply(&delta).unwrap();
    assert_eq!(report.touched_shards, 1);
    assert_eq!(report.rebuilt_shards, 1);
    assert_eq!(report.reused_shards, engine.shards() - 1);
    let after = engine.core_ids();
    assert_eq!(before.len(), after.len());
    assert_ne!(before[0], after[0], "the touched shard recompiles");
    assert_eq!(&before[1..], &after[1..], "untouched shards adopt pointer-identically");
    assert_eq!(engine.generations_retained(), 2);
}

#[test]
fn heavy_skew_forces_a_replan() {
    let pool = WorkerPool::new(2);
    let a = generate::uniform::<f32>(200, 200, 2_000, 3);
    let engine = MutableSpmm::compile(&a, 4, 1, 8, pool.clone()).unwrap();
    // Pile ~3000 inserts into the first shard's rows: its nnz dwarfs the
    // others and the imbalance blows through the 1.5x re-plan threshold.
    let mut delta = DeltaBatch::new();
    for r in 0..20 {
        for c in 0..150 {
            delta.upsert(r, c, 1.0);
        }
    }
    let report = engine.apply(&delta).unwrap();
    assert!(report.replanned, "imbalance {} should force a re-plan", report.nnz_imbalance);
    assert_eq!(report.reused_shards, 0);
    assert!(report.nnz_imbalance <= 1.5, "the re-cut restores balance");
    // Still bit-identical to from-scratch on the merged matrix.
    let merged = a.apply_delta(&delta).unwrap();
    let plan = plan_shards(&merged, 4, 1).unwrap();
    let fresh = ShardedSpmm::compile(&plan, 8, pool.clone()).unwrap();
    let x = DenseMatrix::random(200, 8, 7);
    let (y_inc, _) = pool.scope(|s| engine.execute(s, &x)).unwrap();
    let (y_ref, _) = pool.scope(|s| fresh.execute(s, &x)).unwrap();
    assert_eq!(y_inc.max_abs_diff(&y_ref), 0.0);
}

#[test]
fn empty_delta_is_a_no_op() {
    let pool = WorkerPool::new(1);
    let a = generate::uniform::<f32>(100, 100, 1_000, 1);
    let engine = MutableSpmm::compile(&a, 2, 1, 4, pool).unwrap();
    let report = engine.apply(&DeltaBatch::new()).unwrap();
    assert_eq!(report.revision, 0);
    assert_eq!(report.rebuilt_shards, 0);
    assert_eq!(engine.revision(), 0);
    assert_eq!(engine.generations_retained(), 1);
}

#[test]
fn out_of_bounds_ops_are_rejected_and_the_engine_keeps_serving() {
    let pool = WorkerPool::new(1);
    let a = generate::uniform::<f32>(64, 64, 500, 2);
    let engine = MutableSpmm::compile(&a, 2, 1, 4, pool.clone()).unwrap();
    let mut delta = DeltaBatch::new();
    delta.upsert(64, 0, 1.0); // row == nrows: out of bounds
    assert!(matches!(engine.apply(&delta), Err(JitSpmmError::InvalidConfig(_))));
    assert_eq!(engine.revision(), 0);
    let x = DenseMatrix::random(64, 4, 5);
    let (y, _) = pool.scope(|s| engine.execute(s, &x)).unwrap();
    assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
}

#[test]
fn open_streams_pin_their_revision_and_defer_applies() {
    let pool = WorkerPool::new(2);
    let a = generate::uniform::<f32>(128, 128, 1_500, 4);
    let engine = MutableSpmm::compile(&a, 2, 1, 4, pool.clone()).unwrap();
    let mut delta = DeltaBatch::new();
    delta.upsert(0, 3, 2.0);
    let inputs: Vec<DenseMatrix<f32>> =
        (0..3).map(|seed| DenseMatrix::random(128, 4, seed)).collect();
    pool.scope(|scope| {
        let mut stream = engine.batch_stream(scope, 2).unwrap();
        // The stream holds the generation read guard: a non-blocking apply
        // must report contention instead of swapping mid-stream.
        assert!(engine.try_apply(&delta).is_none());
        let mut outputs = Vec::new();
        for x in &inputs {
            if let Some((y, _)) = stream.push(x).unwrap() {
                outputs.push(y);
            }
        }
        let (rest, _) = stream.finish();
        outputs.extend(rest.into_iter().map(|(y, _)| y));
        for (x, y) in inputs.iter().zip(&outputs) {
            assert!(y.approx_eq(&a.spmm_reference(x), 1e-4), "pre-update matrix served");
        }
    });
    // Guard released: the same apply now lands.
    let report = engine.try_apply(&delta).expect("lock free after finish").unwrap();
    assert_eq!(report.revision, 1);
    let merged = a.apply_delta(&delta).unwrap();
    let (y, _) = pool.scope(|s| engine.execute(s, &inputs[0])).unwrap();
    assert!(y.approx_eq(&merged.spmm_reference(&inputs[0]), 1e-4));
}

#[test]
fn repeated_updates_compose_and_execute_batch_matches() {
    let pool = WorkerPool::new(2);
    let a = square_rmat(8, 4_000, 9);
    let engine = MutableSpmm::compile(&a, 3, 1, 8, pool.clone()).unwrap();
    let mut current = a.clone();
    for round in 0..3u64 {
        let mut delta = DeltaBatch::new();
        for k in 0..10usize {
            let r = (k * 17 + round as usize * 31) % current.nrows();
            let c = (k * 13 + round as usize * 7) % current.ncols();
            if k % 3 == 0 {
                delta.delete(r, c);
            } else {
                delta.upsert(r, c, (k as f32) - 1.5);
            }
        }
        let report = engine.apply(&delta).unwrap();
        assert_eq!(report.revision, round + 1);
        current = current.apply_delta(&delta).unwrap();
    }
    assert_eq!(engine.merged_matrix(), current);
    let inputs: Vec<DenseMatrix<f32>> =
        (0..4).map(|seed| DenseMatrix::random(current.ncols(), 8, seed)).collect();
    let plan = plan_shards(&current, 3, 1).unwrap();
    let fresh = ShardedSpmm::compile(&plan, 8, pool.clone()).unwrap();
    let (ys_inc, _) = pool.scope(|s| engine.execute_batch(s, &inputs)).unwrap();
    let (ys_ref, _) = pool.scope(|s| fresh.execute_batch(s, &inputs)).unwrap();
    for (yi, yr) in ys_inc.iter().zip(&ys_ref) {
        assert_eq!(yi.max_abs_diff(yr), 0.0);
    }
}
