//! Routing a global [`DeltaBatch`] onto a [`ShardPlan`]: every op lands in
//! exactly one shard's contiguous row range and is rebased into that
//! shard's local row numbering, so each touched shard can merge its slice
//! of the delta independently with
//! [`CsrMatrix::apply_delta`](jitspmm_sparse::CsrMatrix::apply_delta) —
//! and the per-shard merges concatenate to the whole-matrix merge (the
//! range-composability the sparse layer guarantees).

use crate::shard::ShardPlan;
use jitspmm_sparse::{DeltaBatch, DeltaOp, Scalar};

/// Split `delta` into per-shard batches with rows rebased to each shard's
/// local numbering (`row - rows.start`). Slot `k` is `None` when the delta
/// does not touch shard `k` — the signal the apply layer uses to keep that
/// shard's compiled core. Ops keep their batch order within each shard, so
/// last-op-wins semantics survive the split.
///
/// Every op must already be validated against the full matrix dimensions;
/// rows beyond the plan's last shard would panic the indexing below.
pub(crate) fn split_by_shard<T: Scalar>(
    plan: &ShardPlan<T>,
    delta: &DeltaBatch<T>,
) -> Vec<Option<DeltaBatch<T>>> {
    let shards = plan.shards();
    let mut locals: Vec<Option<DeltaBatch<T>>> = vec![None; shards.len()];
    for op in delta.ops() {
        // Shards are contiguous and sorted; the op's row lies in the first
        // shard whose range ends beyond it.
        let k = shards.partition_point(|s| s.rows.end <= op.row());
        let start = shards[k].rows.start;
        let local = locals[k].get_or_insert_with(DeltaBatch::new);
        local.push(match *op {
            DeltaOp::Upsert { row, col, value } => DeltaOp::Upsert { row: row - start, col, value },
            DeltaOp::Delete { row, col } => DeltaOp::Delete { row: row - start, col },
        });
    }
    locals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::plan_shards;
    use jitspmm_sparse::generate;

    #[test]
    fn ops_route_to_their_shard_and_rebase() {
        let m = generate::uniform::<f32>(100, 50, 1_000, 3);
        let plan = plan_shards(&m, 4, 1).unwrap();
        let mut delta = DeltaBatch::new();
        // One op in the first shard, two in the last (order preserved).
        let last = plan.shards().last().unwrap().rows;
        delta.upsert(0, 1, 1.0);
        delta.delete(last.start, 2);
        delta.upsert(last.end - 1, 3, 2.0);
        let locals = split_by_shard(&plan, &delta);
        assert_eq!(locals.iter().filter(|l| l.is_some()).count(), 2);
        let first = locals.first().unwrap().as_ref().unwrap();
        assert_eq!(first.ops(), &[DeltaOp::Upsert { row: 0, col: 1, value: 1.0 }]);
        let tail = locals.last().unwrap().as_ref().unwrap();
        assert_eq!(
            tail.ops(),
            &[
                DeltaOp::Delete { row: 0, col: 2 },
                DeltaOp::Upsert { row: last.len() - 1, col: 3, value: 2.0 },
            ]
        );
    }

    #[test]
    fn untouched_shards_stay_none() {
        let m = generate::uniform::<f32>(80, 80, 600, 9);
        let plan = plan_shards(&m, 8, 1).unwrap();
        let mut delta = DeltaBatch::<f32>::new();
        delta.delete(0, 0);
        let locals = split_by_shard(&plan, &delta);
        assert!(locals[0].is_some());
        assert!(locals[1..].iter().all(Option::is_none));
        assert!(split_by_shard(&plan, &DeltaBatch::new()).iter().all(Option::is_none));
    }
}
