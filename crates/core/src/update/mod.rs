//! Live incremental matrix updates: apply a [`DeltaBatch`] of edge
//! mutations to a compiled sharded engine, rebuilding **only the shards
//! the delta touches** and hot-swapping the result between launches.
//!
//! The paper's whole premise is that compiling SpMM code *per matrix* is
//! worth it because one matrix serves many multiplies. Dynamic graphs
//! stress exactly that premise: every edge batch changes the matrix, and a
//! naive engine would re-plan, re-extract and re-compile all K shards per
//! batch. [`MutableSpmm`] keeps the premise intact by making the unit of
//! recompilation the *shard*, not the matrix:
//!
//! * the delta is routed onto the current [`ShardPlan`]'s row ranges
//!   (`delta` submodule) — each op lands in exactly one shard;
//! * touched shards re-materialize via
//!   [`CsrMatrix::apply_delta`](jitspmm_sparse::CsrMatrix::apply_delta) on
//!   their own sub-matrix and recompile (consulting the shared kernel
//!   cache); **untouched shards keep their compiled cores
//!   pointer-identically** ([`crate::JitSpmm`]'s adopt path) and their
//!   spec matrices share the previous generation's non-zero storage;
//! * the rebuilt engine becomes a new *generation* that swaps in between
//!   launches — in-flight work finishes on the old cores, everything
//!   admitted afterwards sees the new matrix;
//! * when the accumulated deltas skew the shard balance past the re-plan
//!   threshold (1.5x shard-nnz imbalance), the update degrades gracefully
//!   to a full re-plan + recompile, reported via
//!   [`UpdateReport::replanned`].
//!
//! Because every partitioning layer in this crate is row-granular, a
//! merged matrix multiplied through *any* generation — incremental or
//! re-planned — is **bit-identical** to a from-scratch engine compiled
//! against the merged matrix; the differential test suite pins this.
//!
//! # The generation protocol
//!
//! A [`MutableSpmm`] owns an append-only vector of generations behind an
//! [`RwLock`]. Every execute path — [`MutableSpmm::execute`],
//! [`MutableSpmm::execute_batch`], and each open [`MutableStream`] —
//! holds a **read** guard for the full duration of its launches;
//! [`MutableSpmm::apply`] takes the **write** lock to append the next
//! generation. Two consequences:
//!
//! * a generation never launches concurrently with its successor, so an
//!   adopted kernel's embedded row-claim counter is only ever driven by
//!   one generation's launch lock at a time;
//! * old generations are **retained for the engine's lifetime** — adopted
//!   kernels embed the base addresses of the generation they were
//!   compiled against, and serving must never unmap them. The retained
//!   cost per update is the *touched* shards' materialized non-zeros plus
//!   O(rows) of row pointers per generation; untouched non-zero storage
//!   is shared, not copied.
//!
//! [`crate::serve::SpmmServer`] registers a mutable engine behind one
//! logical id ([`crate::serve::SpmmServer::add_mutable`]), and
//! [`crate::serve::ControlHandle::apply_update`] applies a delta to a
//! **live serving session** from outside: the session drains the engine's
//! in-flight lane, swaps, and admits subsequent requests against the new
//! matrix — all mid-stream, with per-engine revisions observable through
//! [`crate::serve::ControlHandle::engine_revision`].

mod apply;
mod delta;

pub use apply::UpdateReport;

use crate::engine::{ExecutionReport, JitSpmm, KernelTier, TierAction};
use crate::error::JitSpmmError;
use crate::runtime::{PoolScope, PooledMatrix, WorkerPool};
use crate::schedule::Strategy;
use crate::shard::{plan_shards, ShardOptions, ShardPlan, ShardReport, ShardedSpmm, ShardedStream};
use jitspmm_sparse::{CsrMatrix, DeltaBatch, DenseMatrix, Scalar};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, TryLockError};

/// One compiled snapshot of the evolving matrix: the shard plan it was cut
/// from and the sharded engine compiled (or partially adopted) against it.
///
/// `engine` borrows `plan`'s heap allocation through a raw-pointer
/// promotion to `'static`; it is declared first so it drops before the
/// plan it references. In practice generations are never dropped while
/// their [`MutableSpmm`] lives — the generations vector is append-only,
/// because older generations' kernels embed their plan's array addresses
/// and may still be referenced by adopted cores.
struct Generation<T: Scalar> {
    engine: ShardedSpmm<'static, T>,
    plan: Arc<ShardPlan<T>>,
    revision: u64,
}

impl<T: Scalar> Generation<T> {
    /// Compile the engine for `plan`, adopting donor cores where given, and
    /// seal both into a generation at `revision`.
    fn compile(
        plan: ShardPlan<T>,
        revision: u64,
        d: usize,
        pool: WorkerPool,
        options: &ShardOptions,
        donors: &[Option<&JitSpmm<'_, T>>],
        output_pool: Option<&ShardedSpmm<'_, T>>,
    ) -> Result<Arc<Generation<T>>, JitSpmmError> {
        let plan = Arc::new(plan);
        // SAFETY: the promoted reference points into `plan`'s heap
        // allocation, which the returned generation owns; the engine (the
        // only holder of the promoted lifetime) is dropped before the Arc.
        let plan_ref: &'static ShardPlan<T> = unsafe { &*Arc::as_ptr(&plan) };
        let engine = match output_pool {
            Some(previous) => {
                let fresh: Vec<Option<&JitSpmm<'_, T>>> =
                    if donors.is_empty() { vec![None; plan.len()] } else { donors.to_vec() };
                ShardedSpmm::compile_with_reuse(
                    plan_ref,
                    d,
                    pool,
                    options,
                    &fresh,
                    previous.output_pool(),
                )?
            }
            None => ShardedSpmm::compile_with(plan_ref, d, pool, options.clone())?,
        };
        Ok(Arc::new(Generation { engine, plan, revision }))
    }
}

/// A sharded SpMM engine over an **evolving** sparse matrix: compile once,
/// execute many, and [`MutableSpmm::apply`] edge-level [`DeltaBatch`]es in
/// between — rebuilding only the shards each delta touches while untouched
/// shards keep their compiled kernels pointer-identically. See the
/// [module docs](crate::update) for the generation protocol and the
/// bit-identity guarantee.
///
/// ```
/// use jitspmm::update::MutableSpmm;
/// use jitspmm::WorkerPool;
/// use jitspmm_sparse::{generate, DeltaBatch, DenseMatrix};
///
/// # fn main() -> Result<(), jitspmm::JitSpmmError> {
/// let pool = WorkerPool::new(2);
/// let a = generate::uniform::<f32>(400, 400, 6_000, 1);
/// let engine = MutableSpmm::compile(&a, 4, 1, 8, pool.clone())?;
/// let x = DenseMatrix::random(400, 8, 3);
/// let (y0, _) = pool.scope(|s| engine.execute(s, &x))?;
/// assert!(y0.approx_eq(&a.spmm_reference(&x), 1e-4));
///
/// // Mutate a few edges and apply: only the touched shard recompiles.
/// let mut delta = DeltaBatch::new();
/// delta.upsert(0, 7, 2.5).delete(1, 0);
/// let report = engine.apply(&delta)?;
/// assert!(report.rebuilt_shards <= 1);
/// let merged = a.apply_delta(&delta).unwrap();
/// let (y1, _) = pool.scope(|s| engine.execute(s, &x))?;
/// assert!(y1.approx_eq(&merged.spmm_reference(&x), 1e-4));
/// # Ok(())
/// # }
/// ```
pub struct MutableSpmm<T: Scalar> {
    /// Append-only: `generations.last()` is current; older entries are
    /// retained because adopted kernels embed their array addresses.
    generations: RwLock<Vec<Arc<Generation<T>>>>,
    pool: WorkerPool,
    d: usize,
    options: ShardOptions,
    /// The shard count originally requested — a full re-plan re-cuts to it.
    shard_request: usize,
    nrows: usize,
    ncols: usize,
}

impl<T: Scalar> std::fmt::Debug for MutableSpmm<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutableSpmm")
            .field("revision", &self.revision())
            .field("shards", &self.shards())
            .field("d", &self.d)
            .field("generations", &self.generations_retained())
            .finish()
    }
}

impl<T: Scalar> MutableSpmm<T> {
    /// Plan `shards` nnz-balanced row shards of `matrix` (at `lanes` worker
    /// lanes per shard) and compile the initial generation for `d` dense
    /// columns on `pool` — [`crate::shard::plan_shards`] followed by
    /// [`ShardedSpmm::compile`], with the plan owned internally so the
    /// engine can replace it on later updates.
    ///
    /// # Errors
    ///
    /// As [`crate::shard::plan_shards`] and [`ShardedSpmm::compile`].
    pub fn compile(
        matrix: &CsrMatrix<T>,
        shards: usize,
        lanes: usize,
        d: usize,
        pool: WorkerPool,
    ) -> Result<MutableSpmm<T>, JitSpmmError> {
        MutableSpmm::compile_with(matrix, shards, lanes, d, pool, ShardOptions::new())
    }

    /// [`MutableSpmm::compile`] with the full [`ShardOptions`] set —
    /// tiering, the persistent kernel cache (updates probe it per rebuilt
    /// shard and refresh untouched shards' entries), NUMA placement.
    ///
    /// # Errors
    ///
    /// As [`MutableSpmm::compile`].
    pub fn compile_with(
        matrix: &CsrMatrix<T>,
        shards: usize,
        lanes: usize,
        d: usize,
        pool: WorkerPool,
        options: ShardOptions,
    ) -> Result<MutableSpmm<T>, JitSpmmError> {
        let plan = plan_shards(matrix, shards, lanes)?;
        let generation = Generation::compile(plan, 0, d, pool.clone(), &options, &[], None)?;
        Ok(MutableSpmm {
            generations: RwLock::new(vec![generation]),
            pool,
            d,
            options,
            shard_request: shards,
            nrows: matrix.nrows(),
            ncols: matrix.ncols(),
        })
    }

    /// Take the read side of the generation lock, ignoring poison: the
    /// generations vector is only mutated by [`MutableSpmm::apply`], whose
    /// push happens after every fallible step, so a poisoned lock still
    /// guards a consistent (merely possibly stale) vector.
    fn read(&self) -> RwLockReadGuard<'_, Vec<Arc<Generation<T>>>> {
        self.generations.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current generation, promoted to the caller's `'env` borrow of
    /// `self`.
    ///
    /// SAFETY contract (internal): the returned reference outlives `guard`
    /// but not `self` — sound because generation Arcs are append-only and
    /// never dropped while `self` lives, so the pointee is valid for all of
    /// `'env` even after the guard is released. Callers that *launch*
    /// through the returned engine must additionally hold `guard` for the
    /// launch's duration to keep the no-concurrent-generations invariant.
    fn current<'env>(
        &'env self,
        guard: &RwLockReadGuard<'_, Vec<Arc<Generation<T>>>>,
    ) -> &'env Generation<T> {
        let generation = guard.last().expect("a MutableSpmm always holds a generation");
        // SAFETY: see the method docs — append-only Arcs live as long as
        // `self`, which outlives `'env`.
        unsafe { &*Arc::as_ptr(generation) }
    }

    /// Run `f` against the current generation's engine without pinning the
    /// generation lock for `f`'s duration (an `Arc` clone keeps the
    /// generation alive instead). For inspection and tier bookkeeping only
    /// — **never for launches**, which must hold the read guard.
    fn with_current<R>(&self, f: impl FnOnce(&Generation<T>) -> R) -> R {
        let generation = Arc::clone(self.read().last().expect("always one generation"));
        f(&generation)
    }

    /// Compute `Y = A * X` through the current generation — semantics,
    /// errors and report exactly as [`ShardedSpmm::execute`]. The
    /// generation read guard is held for the call's duration, so a
    /// concurrent [`MutableSpmm::apply`] waits for the launch (and vice
    /// versa: this call briefly waits out an in-progress swap).
    ///
    /// # Errors
    ///
    /// As [`ShardedSpmm::execute`].
    pub fn execute<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        x: &'env DenseMatrix<T>,
    ) -> Result<(PooledMatrix<T>, ShardReport), JitSpmmError> {
        let guard = self.read();
        let generation = self.current(&guard);
        generation.engine.execute(scope, x)
    }

    /// Compute `Y = A * X_i` for a whole batch through the current
    /// generation — semantics, errors and report exactly as
    /// [`ShardedSpmm::execute_batch`]. The generation read guard is held
    /// for the batch's duration: a delta applied concurrently lands after
    /// the batch, never inside it.
    ///
    /// # Errors
    ///
    /// As [`ShardedSpmm::execute_batch`].
    pub fn execute_batch<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        inputs: &'env [DenseMatrix<T>],
    ) -> Result<(Vec<PooledMatrix<T>>, ShardReport), JitSpmmError> {
        let guard = self.read();
        let generation = self.current(&guard);
        generation.engine.execute_batch(scope, inputs)
    }

    /// Open a [`MutableStream`] — the incremental pipelined form of
    /// [`MutableSpmm::execute_batch`], wrapping a
    /// [`crate::shard::ShardedStream`] over the current generation. The
    /// stream holds the generation read guard until finished or dropped,
    /// so every input pushed through one stream sees **one** matrix
    /// revision; deltas applied while it is open take effect for streams
    /// opened afterwards.
    ///
    /// # Errors
    ///
    /// As [`ShardedSpmm::batch_stream`].
    pub fn batch_stream<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        depth: usize,
    ) -> Result<MutableStream<'scope, 'env, T>, JitSpmmError> {
        let guard = self.read();
        let generation = self.current(&guard);
        let stream = generation.engine.batch_stream(scope, depth)?;
        Ok(MutableStream { stream, _hold: guard })
    }

    /// Apply an edge-delta batch, compiling the next generation: touched
    /// shards re-materialize and recompile (consulting the kernel cache),
    /// untouched shards carry their compiled cores over pointer-identically,
    /// and the swap waits for in-flight launches (the write lock) so no
    /// launch ever spans two revisions. When the delta skews the shard
    /// balance past the re-plan threshold the whole matrix is re-cut and
    /// recompiled instead ([`UpdateReport::replanned`]).
    ///
    /// An empty batch is a no-op: no generation is built and the revision
    /// does not advance.
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::InvalidConfig`] if any op falls outside the matrix
    /// dimensions (dimensions never change — dynamic graphs mutate edges,
    /// not the vertex set), or a codegen error from rebuilding a shard. On
    /// error the engine keeps serving the previous generation unchanged.
    pub fn apply(&self, delta: &DeltaBatch<T>) -> Result<UpdateReport, JitSpmmError> {
        let mut generations = self.generations.write().unwrap_or_else(PoisonError::into_inner);
        self.apply_locked(&mut generations, delta)
    }

    /// Non-blocking [`MutableSpmm::apply`]: `None` if the generation lock
    /// is held (launches in flight, or a user-held stream) — the serving
    /// loop requeues and retries after recycling the engine's lane, so a
    /// busy engine can never deadlock the session against its own stream.
    pub(crate) fn try_apply(
        &self,
        delta: &DeltaBatch<T>,
    ) -> Option<Result<UpdateReport, JitSpmmError>> {
        match self.generations.try_write() {
            Ok(mut generations) => Some(self.apply_locked(&mut generations, delta)),
            Err(TryLockError::Poisoned(poisoned)) => {
                Some(self.apply_locked(&mut poisoned.into_inner(), delta))
            }
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// The current matrix revision: 0 at compile, +1 per non-empty applied
    /// delta (re-planned or not).
    pub fn revision(&self) -> u64 {
        self.read().last().expect("always one generation").revision
    }

    /// Number of generations retained (initial compile included). Grows by
    /// one per applied non-empty delta — see the
    /// [module docs](crate::update) for why old generations are kept.
    pub fn generations_retained(&self) -> usize {
        self.read().len()
    }

    /// Number of shards in the current generation's plan.
    pub fn shards(&self) -> usize {
        self.with_current(|g| g.plan.len())
    }

    /// Non-zeros of the current merged matrix.
    pub fn nnz(&self) -> usize {
        self.with_current(|g| g.plan.nnz())
    }

    /// The current plan's achieved nnz imbalance (see
    /// [`ShardPlan::nnz_imbalance`]).
    pub fn nnz_imbalance(&self) -> f64 {
        self.with_current(|g| g.plan.nnz_imbalance())
    }

    /// Rows of the matrix (fixed for the engine's lifetime).
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the matrix (fixed for the engine's lifetime).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The number of dense columns every kernel expects.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The worker pool every generation executes on.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The slowest-progressing tier across the current generation's shard
    /// engines (see [`ShardedSpmm::tier`]).
    pub fn tier(&self) -> KernelTier {
        self.with_current(|g| g.engine.tier())
    }

    /// Total hot-swap promotions across the current generation's engines.
    pub fn promotions(&self) -> usize {
        self.with_current(|g| g.engine.promotions())
    }

    /// Stable identities of the current generation's compiled cores, one
    /// per shard in row order ([`JitSpmm::core_id`]). Diagnostic: two
    /// snapshots straddling an [`MutableSpmm::apply`] agree exactly on the
    /// shards the delta did not touch — the pointer-identity guarantee the
    /// update test suite pins.
    pub fn core_ids(&self) -> Vec<usize> {
        self.with_current(|g| g.engine.engines().iter().map(JitSpmm::core_id).collect())
    }

    /// Materialize the current logical matrix as one owned [`CsrMatrix`] —
    /// the concatenation of the current generation's shard sub-matrices.
    /// O(nnz); meant for oracles, checkpoints and tests, not the serving
    /// path.
    pub fn merged_matrix(&self) -> CsrMatrix<T> {
        self.with_current(|g| apply::concat_specs(g.plan.shards(), self.ncols))
    }

    /// Validate a dense input against the fixed `ncols x d` shape — the
    /// serving router's pre-admission check, answerable without touching
    /// the generation lock.
    pub(crate) fn check_input_shape(&self, x: &DenseMatrix<T>) -> Result<(), JitSpmmError> {
        if x.nrows() != self.ncols || x.ncols() != self.d {
            return Err(JitSpmmError::ShapeMismatch(format!(
                "dense input is {}x{} but the mutable sharded kernel expects {}x{}",
                x.nrows(),
                x.ncols(),
                self.ncols,
                self.d
            )));
        }
        Ok(())
    }

    /// Grow the retained full-height output bound of the current
    /// generation's pool (shared across generations by the update path).
    pub(crate) fn reserve_outputs(&self, outstanding: usize) {
        self.with_current(|g| g.engine.reserve_outputs(outstanding));
    }

    /// The heaviest current shard's strategy, for merged serving reports.
    pub(crate) fn dominant_strategy(&self) -> Strategy {
        self.with_current(|g| g.engine.dominant_strategy())
    }

    /// Poll every current shard engine's tier state machine, returning the
    /// shard indices that need work (see [`JitSpmm::tier_poll`]); the
    /// serving session turns these into background recompile jobs.
    pub(crate) fn tier_actions(&self) -> Vec<(usize, TierAction)> {
        self.with_current(|g| {
            g.engine
                .engines()
                .iter()
                .enumerate()
                .map(|(shard, engine)| (shard, engine.tier_poll()))
                .filter(|(_, action)| *action != TierAction::Idle)
                .collect()
        })
    }

    /// Run the profile-guided recompile for one shard of the current
    /// generation (a stale index from before a swap is skipped; the shard
    /// will be re-polled). Codegen runs outside the generation lock.
    pub(crate) fn tier_recompile_shard(&self, shard: usize) {
        self.with_current(|g| {
            if let Some(engine) = g.engine.engines().get(shard) {
                engine.tier_recompile();
            }
        });
    }

    /// Try to hot-swap one shard's ready promoted kernel in (stale indices
    /// are skipped). Returns whether a swap happened.
    pub(crate) fn tier_try_install_shard(&self, shard: usize) -> bool {
        self.with_current(|g| {
            g.engine.engines().get(shard).is_some_and(|engine| engine.tier_try_install())
        })
    }
}

/// A pipelined batch stream over a [`MutableSpmm`], created by
/// [`MutableSpmm::batch_stream`]: a [`ShardedStream`] pinned to one matrix
/// revision. The stream holds the engine's generation read guard — deltas
/// applied while it is open wait (or, in the serving loop, requeue) until
/// it finishes or drops, and every result it produces reflects the
/// revision current at open time.
pub struct MutableStream<'scope, 'env, T: Scalar> {
    // Declared before the guard so in-flight launches join before the
    // generation read lock is released.
    stream: ShardedStream<'scope, 'env, T>,
    _hold: RwLockReadGuard<'env, Vec<Arc<Generation<T>>>>,
}

impl<'scope, 'env, T: Scalar> MutableStream<'scope, 'env, T> {
    /// The per-shard pipeline depth (see [`ShardedStream::depth`]).
    pub fn depth(&self) -> usize {
        self.stream.depth()
    }

    /// Inputs currently in flight (see [`ShardedStream::in_flight`]).
    pub fn in_flight(&self) -> usize {
        self.stream.in_flight()
    }

    /// Fan the next input out to every shard pipeline (see
    /// [`ShardedStream::push`]).
    ///
    /// # Errors
    ///
    /// As [`ShardedStream::push`].
    pub fn push(
        &mut self,
        x: &'env DenseMatrix<T>,
    ) -> Result<Option<(PooledMatrix<T>, ExecutionReport)>, JitSpmmError> {
        self.stream.push(x)
    }

    /// Drain the pipelines and aggregate the [`ShardReport`] (see
    /// [`ShardedStream::finish`]); the generation read guard releases once
    /// the drain completes.
    ///
    /// # Panics
    ///
    /// As [`ShardedStream::finish`].
    pub fn finish(self) -> (Vec<(PooledMatrix<T>, ExecutionReport)>, ShardReport) {
        let MutableStream { stream, _hold } = self;
        stream.finish()
    }

    /// See [`ShardedStream::push_shared_validated`] — the serving router's
    /// by-value push.
    pub(crate) fn push_shared_validated(
        &mut self,
        x: Arc<DenseMatrix<T>>,
    ) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        self.stream.push_shared_validated(x)
    }

    /// See [`ShardedStream::complete_next`] — the serving control plane's
    /// one-at-a-time drain.
    pub(crate) fn complete_next(&mut self) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        self.stream.complete_next()
    }
}

impl<T: Scalar> std::fmt::Debug for MutableStream<'_, '_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutableStream").field("stream", &self.stream).finish()
    }
}

#[cfg(test)]
mod update_tests;
