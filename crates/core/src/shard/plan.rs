//! The shard planner: split one CSR matrix into contiguous row shards
//! balanced by non-zero count, and pick a workload-division strategy per
//! shard to match its local sparsity.

use crate::error::JitSpmmError;
use crate::schedule::{
    nnz_imbalance_of, partition_nnz_split, partition_row_split, RowRange, Strategy,
};
use jitspmm_sparse::{CsrMatrix, Scalar};

/// Row-split imbalance above which a shard is considered *skewed* and gets
/// the dynamic claim-loop strategy instead of static row ranges. At or below
/// it, static row-split already balances the shard's non-zeros well enough
/// that the claim loop's `lock xadd` traffic is pure overhead.
const SKEW_THRESHOLD: f64 = 1.25;

/// One planned shard: a contiguous row range of the full matrix, the
/// extracted sub-CSR a [`crate::JitSpmm`] engine will be compiled against,
/// and the workload-division strategy the planner chose for it.
#[derive(Debug)]
pub struct ShardSpec<T: Scalar> {
    /// The shard's rows, in full-matrix row numbering.
    pub rows: RowRange,
    /// The shard's sub-matrix: rows `rows.start..rows.end` of the full
    /// matrix with row pointers rebased to zero, columns unchanged. Row `r`
    /// of this matrix is row `rows.start + r` of the full matrix, with the
    /// same non-zeros in the same order — so a kernel compiled against it
    /// produces bit-identical rows.
    ///
    /// A **zero-copy view** ([`CsrMatrix::share_rows`]): its
    /// `col_indices`/`values` alias the parent matrix's buffers, and only
    /// the rebased `row_ptr` is materialized.
    pub matrix: CsrMatrix<T>,
    /// The strategy the planner chose: static row-split for shards whose
    /// rows are evenly loaded, the dynamic claim loop for skewed ones.
    pub strategy: Strategy,
}

impl<T: Scalar> ShardSpec<T> {
    /// Number of non-zeros in this shard.
    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }
}

/// A sharding plan for one sparse matrix, produced by [`plan_shards`]: K
/// contiguous row shards balanced by non-zero count, each carrying its
/// extracted sub-matrix and per-shard strategy. The plan owns the shard
/// matrices; a [`crate::shard::ShardedSpmm`] borrows it and compiles one
/// engine per shard.
#[derive(Debug)]
pub struct ShardPlan<T: Scalar> {
    shards: Vec<ShardSpec<T>>,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    lanes: usize,
    imbalance: f64,
}

impl<T: Scalar> ShardPlan<T> {
    /// The planned shards, in row order.
    pub fn shards(&self) -> &[ShardSpec<T>] {
        &self.shards
    }

    /// Number of shards in the plan. May be less than requested: the shard
    /// count is clamped to the row count, and cut boundaries that would
    /// produce zero-row shards are merged away.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// A plan always has at least one shard.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Rows of the full matrix.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns of the full matrix (every shard shares them).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Non-zeros of the full matrix.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The per-shard lane count the plan was made for (the strategy
    /// heuristic judges skew at this lane count, and
    /// [`crate::shard::ShardedSpmm`] caps each shard engine to it).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The achieved balance: heaviest shard's non-zeros over the average
    /// (1.0 is perfect). Computed with
    /// [`nnz_imbalance_of`](crate::schedule::nnz_imbalance_of), the same
    /// metric the workload-division layer reports.
    pub fn nnz_imbalance(&self) -> f64 {
        self.imbalance
    }

    /// Assemble a plan from already-built shard specs — the
    /// incremental-update path ([`crate::update`]), which surgically
    /// replaces the touched shards of an existing plan while keeping the
    /// untouched specs (and their cut points) verbatim. The specs must be
    /// contiguous in row order starting at row 0; aggregate counts and the
    /// imbalance are recomputed from the specs.
    pub(crate) fn from_parts(
        shards: Vec<ShardSpec<T>>,
        ncols: usize,
        lanes: usize,
    ) -> ShardPlan<T> {
        debug_assert!(!shards.is_empty());
        debug_assert!(shards.first().is_none_or(|s| s.rows.start == 0));
        debug_assert!(shards.windows(2).all(|w| w[0].rows.end == w[1].rows.start));
        let nrows = shards.last().map_or(0, |s| s.rows.end);
        let nnz: usize = shards.iter().map(ShardSpec::nnz).sum();
        let imbalance = nnz_imbalance_of_specs(&shards);
        ShardPlan { shards, nrows, ncols, nnz, lanes: lanes.max(1), imbalance }
    }
}

/// Heaviest shard's non-zeros over the average — the same metric
/// [`nnz_imbalance_of`] computes from ranges, evaluated directly on built
/// specs (used by [`ShardPlan::from_parts`] and the update layer's replan
/// drift check).
pub(crate) fn nnz_imbalance_of_specs<T: Scalar>(shards: &[ShardSpec<T>]) -> f64 {
    let total: usize = shards.iter().map(ShardSpec::nnz).sum();
    if total == 0 || shards.is_empty() {
        return 1.0;
    }
    let heaviest = shards.iter().map(ShardSpec::nnz).max().unwrap_or(0) as f64;
    heaviest / (total as f64 / shards.len() as f64)
}

/// Plan `shards` contiguous row shards of `matrix`, balanced by non-zero
/// count, for shard engines running `lanes` worker lanes each (`lanes` also
/// feeds the per-shard strategy heuristic; `0` is treated as 1).
///
/// The cut is a greedy prefix-sum split over the row-pointer array — the
/// `t`-th boundary lands on the row whose non-zero prefix is closest to
/// `t * nnz / shards` — so every shard receives approximately the same
/// number of non-zeros whatever the row-length distribution. The shard
/// count is clamped to the row count, and boundaries that would create
/// zero-row shards collapse (the plan reports how many shards survived via
/// [`ShardPlan::len`]). Each shard then gets a strategy matched to its
/// *local* sparsity: near-uniform shards take static row-split, shards
/// whose static split would exceed a 1.25x non-zero imbalance take the
/// dynamic claim loop.
///
/// Shard sub-matrices are **zero-copy views** of the parent
/// ([`CsrMatrix::share_rows`]): each shard's `col_indices`/`values` alias
/// the parent's shared buffers — the plan keeps those buffers alive via
/// reference counts, without the caller's `&matrix` borrow — and only the
/// rebased `row_ptr` (one `u64` per shard row) is materialized. Planning is
/// therefore O(rows) extra memory instead of doubling resident non-zero
/// data, and the shard arrays' base addresses the engines embed in
/// generated code point straight into the parent's (node-placeable) pages.
///
/// # Errors
///
/// [`JitSpmmError::InvalidConfig`] if `shards` is zero, and
/// [`JitSpmmError::EmptySparseMatrix`] if the matrix has no rows — there is
/// nothing to split, and a shard engine compiled against a zero-row matrix
/// could never execute.
pub fn plan_shards<T: Scalar>(
    matrix: &CsrMatrix<T>,
    shards: usize,
    lanes: usize,
) -> Result<ShardPlan<T>, JitSpmmError> {
    if shards == 0 {
        return Err(JitSpmmError::InvalidConfig(
            "a shard plan needs at least one shard".to_string(),
        ));
    }
    if matrix.nrows() == 0 {
        return Err(JitSpmmError::EmptySparseMatrix);
    }
    let lanes = lanes.max(1);
    let k = shards.min(matrix.nrows());
    // Greedy prefix-sum cut: `partition_nnz_split` places boundary t at the
    // first row whose prefix reaches t*nnz/k; nudge each boundary back one
    // row when the previous prefix is strictly closer to the target, which
    // halves the worst-case overshoot a heavy boundary row causes.
    let base = partition_nnz_split(matrix, k);
    let row_ptr = matrix.row_ptr();
    let total = matrix.nnz() as u64;
    let mut boundaries = vec![0usize];
    for (t, range) in base.ranges.iter().enumerate().skip(1) {
        let target = total * t as u64 / k as u64;
        let mut row = range.start;
        if row > 0 && row_ptr[row] - target > target - row_ptr[row - 1] {
            row -= 1;
        }
        let floor = *boundaries.last().expect("boundaries start non-empty");
        boundaries.push(row.max(floor));
    }
    boundaries.push(matrix.nrows());
    let ranges: Vec<RowRange> = boundaries
        .windows(2)
        .map(|w| RowRange { start: w[0], end: w[1] })
        .filter(|r| !r.is_empty())
        .collect();
    let imbalance = nnz_imbalance_of(&ranges, matrix);
    let shards = ranges
        .into_iter()
        .map(|rows| {
            let sub = extract(matrix, rows);
            let strategy = choose_strategy(&sub, lanes);
            ShardSpec { rows, matrix: sub, strategy }
        })
        .collect();
    Ok(ShardPlan {
        shards,
        nrows: matrix.nrows(),
        ncols: matrix.ncols(),
        nnz: matrix.nnz(),
        lanes,
        imbalance,
    })
}

/// Extract rows `rows.start..rows.end` of `matrix` as a zero-copy view with
/// rebased row pointers ([`CsrMatrix::share_rows`]). Column indices and
/// values alias the parent's buffers verbatim, in order, so per-row
/// arithmetic against the extracted matrix is bit-identical to the full one.
fn extract<T: Scalar>(matrix: &CsrMatrix<T>, rows: RowRange) -> CsrMatrix<T> {
    matrix.share_rows(rows.start, rows.end)
}

/// The per-shard strategy heuristic: judge how far a static row-split at
/// `lanes` would be from non-zero balance *inside this shard*. Dense or
/// uniform shards stay static (no claim-loop traffic); skewed shards — a
/// hub row next to near-empty rows — take the dynamic claim loop, which
/// rebalances at run time. Crate-visible so the update layer re-judges a
/// merged shard's local sparsity when rebuilding it.
pub(crate) fn choose_strategy<T: Scalar>(shard: &CsrMatrix<T>, lanes: usize) -> Strategy {
    if lanes <= 1 {
        // One lane has nothing to balance; the claim loop would only cost.
        return Strategy::RowSplitStatic;
    }
    let imbalance = partition_row_split(shard, lanes).nnz_imbalance(shard);
    if imbalance > SKEW_THRESHOLD {
        Strategy::row_split_dynamic_default()
    } else {
        Strategy::RowSplitStatic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitspmm_sparse::generate;

    #[test]
    fn plan_balances_nonzeros_on_power_law_matrices() {
        let m = generate::rmat::<f32>(13, 200_000, generate::RmatConfig::GRAPH500, 7);
        for k in [2usize, 4, 8] {
            let plan = plan_shards(&m, k, 2).unwrap();
            assert_eq!(plan.len(), k);
            assert_eq!(plan.shards().iter().map(ShardSpec::nnz).sum::<usize>(), m.nnz());
            assert!(
                plan.nnz_imbalance() <= 1.10,
                "k = {k}: imbalance {} exceeds the 1.10 planning target",
                plan.nnz_imbalance()
            );
        }
    }

    #[test]
    fn shards_are_contiguous_and_cover_all_rows() {
        let m = generate::uniform::<f32>(500, 300, 6_000, 3);
        let plan = plan_shards(&m, 4, 2).unwrap();
        assert_eq!(plan.shards()[0].rows.start, 0);
        assert_eq!(plan.shards().last().unwrap().rows.end, m.nrows());
        for pair in plan.shards().windows(2) {
            assert_eq!(pair[0].rows.end, pair[1].rows.start);
        }
        for shard in plan.shards() {
            assert_eq!(shard.matrix.nrows(), shard.rows.len());
            assert_eq!(shard.matrix.ncols(), m.ncols());
        }
    }

    #[test]
    fn extracted_shards_preserve_rows_bit_for_bit() {
        let m = generate::rmat::<f32>(8, 3_000, generate::RmatConfig::WEB, 5);
        let plan = plan_shards(&m, 3, 2).unwrap();
        for shard in plan.shards() {
            for local in 0..shard.matrix.nrows() {
                let full_row = shard.rows.start + local;
                assert_eq!(shard.matrix.row_cols(local), m.row_cols(full_row));
                assert_eq!(shard.matrix.row_values(local), m.row_values(full_row));
            }
        }
    }

    #[test]
    fn shard_count_is_clamped_and_empty_ranges_collapse() {
        // 5 rows, 16 requested shards: at most 5 survive, none empty.
        let m = generate::banded::<f32>(5, 1, 0);
        let plan = plan_shards(&m, 16, 1).unwrap();
        assert!(plan.len() <= 5);
        assert!(plan.shards().iter().all(|s| !s.rows.is_empty()));
        let covered: usize = plan.shards().iter().map(|s| s.rows.len()).sum();
        assert_eq!(covered, 5);
        // All non-zeros in one row: the cuts collapse around it instead of
        // producing zero-row shards.
        let hub = CsrMatrix::<f32>::from_triplets(8, 8, &[(0, 1, 1.0), (0, 3, 2.0)]).unwrap();
        let plan = plan_shards(&hub, 4, 1).unwrap();
        assert!(plan.shards().iter().all(|s| !s.rows.is_empty()));
        assert_eq!(plan.shards().iter().map(|s| s.rows.len()).sum::<usize>(), 8);
    }

    #[test]
    fn planner_rejects_degenerate_requests() {
        let m = generate::uniform::<f32>(10, 10, 50, 1);
        assert!(matches!(plan_shards(&m, 0, 1).unwrap_err(), JitSpmmError::InvalidConfig(_)));
        let empty = CsrMatrix::<f32>::zeros(0, 10);
        assert!(matches!(plan_shards(&empty, 2, 1).unwrap_err(), JitSpmmError::EmptySparseMatrix));
    }

    #[test]
    fn strategy_heuristic_matches_local_sparsity() {
        // A uniform band: every row equally loaded, static everywhere.
        let banded = generate::banded::<f32>(400, 2, 0);
        let plan = plan_shards(&banded, 2, 4).unwrap();
        assert!(plan.shards().iter().all(|s| s.strategy == Strategy::RowSplitStatic));
        // One hub row among empties: the static split is skewed, go dynamic.
        let mut triplets: Vec<(usize, usize, f32)> = (0..200).map(|c| (0usize, c, 1.0)).collect();
        triplets.push((199, 0, 1.0));
        let skewed = CsrMatrix::<f32>::from_triplets(200, 200, &triplets).unwrap();
        let plan = plan_shards(&skewed, 1, 4).unwrap();
        assert_eq!(plan.len(), 1);
        assert!(plan.shards()[0].strategy.is_dynamic());
        // At one lane there is nothing to balance: always static.
        let plan = plan_shards(&skewed, 1, 1).unwrap();
        assert_eq!(plan.shards()[0].strategy, Strategy::RowSplitStatic);
    }

    #[test]
    fn shard_plans_hold_no_copied_nnz_arrays() {
        // The zero-copy guarantee this module documents: every shard's
        // col_indices/values alias the parent's shared buffers at exactly
        // the parent's element addresses — no nnz data was copied.
        let m = generate::rmat::<f32>(10, 20_000, generate::RmatConfig::GRAPH500, 11);
        let plan = plan_shards(&m, 4, 2).unwrap();
        for shard in plan.shards() {
            assert!(shard.matrix.shares_storage_with(&m));
            let lo = m.row_ptr()[shard.rows.start] as usize;
            assert_eq!(shard.matrix.col_indices().as_ptr(), m.col_indices()[lo..].as_ptr());
            assert_eq!(shard.matrix.values().as_ptr(), m.values()[lo..].as_ptr());
        }
    }

    #[test]
    fn plan_keeps_shared_buffers_alive_without_the_parent_borrow() {
        // The plan's reference counts — not the caller's `&matrix` borrow —
        // keep the nnz buffers alive: the parent can be dropped while the
        // plan (and the engines compiled against its shard views) lives on.
        let m = generate::uniform::<f32>(300, 200, 4_000, 9);
        let expected: Vec<f32> = m.values().to_vec();
        let plan = plan_shards(&m, 3, 2).unwrap();
        drop(m);
        let collected: Vec<f32> =
            plan.shards().iter().flat_map(|s| s.matrix.values().iter().copied()).collect();
        assert_eq!(collected, expected);
    }

    #[test]
    fn zero_nnz_matrices_plan_into_one_empty_shard() {
        let m = CsrMatrix::<f32>::zeros(12, 6);
        let plan = plan_shards(&m, 4, 2).unwrap();
        assert_eq!(plan.nnz(), 0);
        assert_eq!(plan.nnz_imbalance(), 1.0);
        assert_eq!(plan.shards().iter().map(|s| s.rows.len()).sum::<usize>(), 12);
    }
}
