//! Aggregated sharded-execution statistics: per-shard [`BatchReport`]s
//! through the batch layer's reservoir, a merged critical-path view, and
//! the plan's achieved non-zero balance.

use crate::engine::{BatchReport, ExecutionReport, KernelTier};
use std::time::Duration;

/// Aggregated timing for one sharded run, returned by
/// [`crate::shard::ShardedSpmm::execute`],
/// [`crate::shard::ShardedSpmm::execute_batch`] and
/// [`crate::shard::ShardedStream::finish`].
///
/// Per-shard statistics reuse the batch layer's [`BatchReport`] — the same
/// bounded-reservoir kernel/dispatch p50/p99 — indexed by shard, so a run
/// can tell *which* shard is the straggler. `merged` aggregates the
/// per-input critical path across shards (an input is done when its slowest
/// shard is), which is what a caller of the sharded engine actually waits
/// for; `nnz_imbalance` restates the plan's achieved balance so a skewed
/// plan and a slow shard can be told apart.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Number of shards that executed.
    pub shards: usize,
    /// The plan's achieved non-zero balance (heaviest shard over average;
    /// 1.0 is perfect). A high tail in one shard's report together with an
    /// imbalance near 1.0 points at the hardware, not the plan.
    pub nnz_imbalance: f64,
    /// Per-input timing merged across shards: `kernel` is the slowest
    /// shard's critical path, `elapsed` spans submission to the last
    /// shard's join.
    pub merged: BatchReport,
    /// One [`BatchReport`] per shard, in row order.
    pub per_shard: Vec<BatchReport>,
}

impl ShardReport {
    /// Number of inputs executed (each input runs on every shard once).
    pub fn inputs(&self) -> usize {
        self.merged.inputs
    }

    /// Wall-clock time from the first submission to the last join.
    pub fn elapsed(&self) -> Duration {
        self.merged.elapsed
    }

    /// Inputs completed per second, with the same degenerate-denominator
    /// guards as [`BatchReport::throughput`].
    pub fn throughput(&self) -> f64 {
        self.merged.throughput()
    }

    /// The batch statistics of one shard, if the index is valid.
    pub fn shard(&self, index: usize) -> Option<&BatchReport> {
        self.per_shard.get(index)
    }
}

/// Merge per-shard launch reports for **one input** into its critical-path
/// view: the input is complete when its slowest shard is, so `elapsed` and
/// `kernel` take the maxima, `threads` sums the lanes the shards occupied,
/// and `strategy` is the slowest (critical) shard's — the one that governs
/// the input's latency. `reports` must be non-empty.
pub(crate) fn merge_input_reports(reports: &[ExecutionReport]) -> ExecutionReport {
    let critical = reports
        .iter()
        .max_by_key(|r| r.kernel)
        .expect("a sharded launch involves at least one shard");
    let elapsed = reports.iter().map(|r| r.elapsed).max().unwrap_or_default();
    let kernel = critical.kernel;
    ExecutionReport {
        elapsed,
        kernel,
        dispatch: elapsed.saturating_sub(kernel),
        // The input's handoff is not over until the slowest shard's worker
        // has picked its job up.
        wake: reports.iter().map(|r| r.wake).max().unwrap_or_default(),
        threads: reports.iter().map(|r| r.threads).sum(),
        strategy: critical.strategy,
    }
}

/// Build the single-launch [`BatchReport`] [`ShardReport`] uses for a
/// one-shot [`crate::shard::ShardedSpmm::execute`]: one input, so every
/// percentile *is* the measurement. Tier labels default to
/// [`KernelTier::Fixed`]; the sharded engine stamps the real ones.
pub(crate) fn single_launch_report(report: &ExecutionReport, depth: usize) -> BatchReport {
    BatchReport {
        inputs: 1,
        elapsed: report.elapsed,
        depth,
        threads: report.threads,
        strategy: report.strategy,
        tier: KernelTier::Fixed,
        promotions: 0,
        kernel_total: report.kernel,
        kernel_p50: report.kernel,
        kernel_p99: report.kernel,
        dispatch_p50: report.dispatch,
        dispatch_p99: report.dispatch,
        wake_p50: report.wake,
        wake_p99: report.wake,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Strategy;

    fn exec(
        kernel_ms: u64,
        elapsed_ms: u64,
        threads: usize,
        strategy: Strategy,
    ) -> ExecutionReport {
        let kernel = Duration::from_millis(kernel_ms);
        let elapsed = Duration::from_millis(elapsed_ms);
        ExecutionReport {
            elapsed,
            kernel,
            dispatch: elapsed.saturating_sub(kernel),
            wake: Duration::from_millis(kernel_ms.min(1)),
            threads,
            strategy,
        }
    }

    #[test]
    fn merged_report_takes_the_critical_path() {
        let merged = merge_input_reports(&[
            exec(3, 5, 1, Strategy::RowSplitStatic),
            exec(9, 10, 2, Strategy::row_split_dynamic_default()),
            exec(1, 12, 1, Strategy::RowSplitStatic),
        ]);
        assert_eq!(merged.kernel, Duration::from_millis(9));
        assert_eq!(merged.elapsed, Duration::from_millis(12));
        assert_eq!(merged.dispatch, Duration::from_millis(3));
        assert_eq!(merged.threads, 4);
        // The slowest *kernel* names the critical shard, whatever finished
        // last overall.
        assert!(merged.strategy.is_dynamic());
    }

    #[test]
    fn single_launch_report_percentiles_equal_the_measurement() {
        let r = exec(4, 6, 2, Strategy::RowSplitStatic);
        let b = single_launch_report(&r, 1);
        assert_eq!(b.inputs, 1);
        assert_eq!(b.kernel_p50, r.kernel);
        assert_eq!(b.kernel_p99, r.kernel);
        assert_eq!(b.dispatch_p50, r.dispatch);
        assert_eq!(b.kernel_total, r.kernel);
    }
}
