//! The [`ShardedSpmm`] engine: one JIT-compiled [`JitSpmm`] per shard of a
//! [`ShardPlan`], executing as overlapped lane-capped launches on a shared
//! [`WorkerPool`], with shard outputs stitched into full-height results.

use crate::cache::KernelCache;
use crate::engine::{ExecutionHandle, JitSpmm, JitSpmmBuilder, KernelTier, TierPolicy};
use crate::error::JitSpmmError;
use crate::runtime::dispatch::BufferPool;
use crate::runtime::{JobSpec, NumaTopology, PoolScope, PooledMatrix, WorkerPool};
use crate::schedule::Strategy;
use crate::shard::plan::ShardPlan;
use crate::shard::report::{merge_input_reports, single_launch_report, ShardReport};
use crate::shard::stream::ShardedStream;
use jitspmm_sparse::{DenseMatrix, Scalar};
use std::sync::Arc;
use std::time::Instant;

/// Cross-cutting options for compiling a sharded engine
/// ([`ShardedSpmm::compile_with`]): tiering, the persistent kernel cache,
/// and explicit NUMA placement.
#[derive(Debug, Clone, Default)]
pub struct ShardOptions {
    /// Adaptive tiering policy; every shard engine promotes independently.
    pub tier: Option<TierPolicy>,
    /// Persistent kernel cache shared by every shard engine: per-shard
    /// kernels (and per-shard promotion outcomes) are keyed by each shard's
    /// own matrix fingerprint, so a restart warm-starts all K shards.
    pub kernel_cache: Option<Arc<KernelCache>>,
    /// Pin every shard engine's soft NUMA hint to this node, overriding the
    /// automatic contiguous spread across detected nodes. For servers that
    /// place sharded engines by hand.
    pub numa_node: Option<usize>,
}

impl ShardOptions {
    /// Default options: no tiering, no cache, automatic NUMA spread.
    pub fn new() -> ShardOptions {
        ShardOptions::default()
    }

    /// Enable adaptive tiering under `policy`.
    pub fn tiered(mut self, policy: TierPolicy) -> ShardOptions {
        self.tier = Some(policy);
        self
    }

    /// Persist and reload per-shard kernels through `cache`.
    pub fn kernel_cache(mut self, cache: Arc<KernelCache>) -> ShardOptions {
        self.kernel_cache = Some(cache);
        self
    }

    /// Pin every shard engine to NUMA node `node`.
    pub fn numa_node(mut self, node: usize) -> ShardOptions {
        self.numa_node = Some(node);
        self
    }
}

/// A sharded SpMM engine: K independently compiled [`JitSpmm`] engines —
/// one per row shard of a [`ShardPlan`] — sharing one [`WorkerPool`].
///
/// A single engine is bounded by one launch pipeline and one partition of
/// one CSR; a huge matrix sharded into K nnz-balanced row ranges gets K
/// kernels that compile independently (each specialized to its shard's
/// local sparsity, with its own workload-division strategy) and launch as
/// **overlapped, lane-capped jobs on disjoint worker subsets**, the same
/// overlap discipline the serving router uses across heterogeneous engines.
/// Shard kernels write directly into their row range of one full-height
/// pooled output ([`ShardedSpmm::execute`]) or produce per-shard pooled
/// outputs that are stitched by one contiguous copy per shard
/// ([`ShardedSpmm::execute_batch`]); either way steady-state execution
/// performs no per-call buffer allocation.
///
/// ```
/// use jitspmm::shard::{plan_shards, ShardedSpmm};
/// use jitspmm::WorkerPool;
/// use jitspmm_sparse::{generate, DenseMatrix};
///
/// # fn main() -> Result<(), jitspmm::JitSpmmError> {
/// let pool = WorkerPool::new(2);
/// let a = generate::rmat::<f32>(10, 20_000, generate::RmatConfig::GRAPH500, 1);
/// // Two nnz-balanced shards, one worker lane each.
/// let plan = plan_shards(&a, 2, 1)?;
/// let sharded = ShardedSpmm::compile(&plan, 8, pool.clone())?;
/// let x = DenseMatrix::random(a.ncols(), 8, 3);
/// let (y, report) = pool.scope(|scope| sharded.execute(scope, &x))?;
/// assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
/// assert_eq!(report.shards, 2);
/// assert!(report.nnz_imbalance >= 1.0);
/// # Ok(())
/// # }
/// ```
pub struct ShardedSpmm<'a, T: Scalar> {
    plan: &'a ShardPlan<T>,
    /// One engine per shard, in row order.
    engines: Vec<JitSpmm<'a, T>>,
    pool: WorkerPool,
    d: usize,
    /// Recycles full-height outputs, exactly like a single engine's pool.
    output_pool: Arc<BufferPool<T>>,
}

impl<T: Scalar> std::fmt::Debug for ShardedSpmm<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSpmm")
            .field("shards", &self.engines.len())
            .field("d", &self.d)
            .field("pool_workers", &self.pool.size())
            .field("nnz_imbalance", &self.plan.nnz_imbalance())
            .finish()
    }
}

impl<'a, T: Scalar> ShardedSpmm<'a, T> {
    /// Compile one engine per shard of `plan` for `d` dense columns, all
    /// executing on `pool`. Each shard engine uses the plan's per-shard
    /// strategy and is lane-capped to [`ShardPlan::lanes`] workers, so the
    /// K shard launches of one execute overlap on disjoint subsets of the
    /// shared pool.
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::EmptyDenseMatrix`] if `d` is zero, or a codegen
    /// error if any shard kernel fails to compile.
    pub fn compile(
        plan: &'a ShardPlan<T>,
        d: usize,
        pool: WorkerPool,
    ) -> Result<ShardedSpmm<'a, T>, JitSpmmError> {
        ShardedSpmm::compile_with(plan, d, pool, ShardOptions::new())
    }

    /// [`ShardedSpmm::compile`] with adaptive tiering: every shard engine
    /// starts on a cheap scalar tier-0 kernel and promotes independently
    /// under `policy` (see [`crate::engine::tier`]) — shards promote *per
    /// shard*, so a straggler shard's recompile never holds back the others.
    ///
    /// # Errors
    ///
    /// As [`ShardedSpmm::compile`].
    pub fn compile_tiered(
        plan: &'a ShardPlan<T>,
        d: usize,
        pool: WorkerPool,
        policy: TierPolicy,
    ) -> Result<ShardedSpmm<'a, T>, JitSpmmError> {
        ShardedSpmm::compile_with(plan, d, pool, ShardOptions::new().tiered(policy))
    }

    /// [`ShardedSpmm::compile`] with the full option set ([`ShardOptions`]):
    /// tiering, a shared persistent kernel cache (each shard's kernel is
    /// keyed by its own matrix fingerprint, so a restarted process
    /// warm-starts all K shards without codegen), and explicit NUMA
    /// placement.
    ///
    /// # Errors
    ///
    /// As [`ShardedSpmm::compile`].
    pub fn compile_with(
        plan: &'a ShardPlan<T>,
        d: usize,
        pool: WorkerPool,
        options: ShardOptions,
    ) -> Result<ShardedSpmm<'a, T>, JitSpmmError> {
        // On a multi-node host, spread shards contiguously across NUMA nodes
        // (shard k of K prefers node k*N/K): shards are row-contiguous, so
        // contiguous assignment keeps each node's workers walking one
        // locality-coherent slice of the matrix. A soft hint only — claiming
        // stays work-conserving — and absent entirely on single-node hosts.
        // An explicit `ShardOptions::numa_node` overrides the spread.
        let topology = NumaTopology::detect();
        let nodes = topology.is_multi_node().then(|| topology.num_nodes());
        let shard_count = plan.shards().len();
        let engines: Vec<JitSpmm<'a, T>> = plan
            .shards()
            .iter()
            .enumerate()
            .map(|(k, spec)| {
                let mut builder = JitSpmmBuilder::new()
                    .pool(pool.clone())
                    .threads(plan.lanes())
                    .strategy(spec.strategy);
                if let Some(policy) = options.tier {
                    builder = builder.tiered(policy);
                }
                if let Some(cache) = &options.kernel_cache {
                    builder = builder.kernel_cache_in(Arc::clone(cache));
                }
                if let Some(node) = options.numa_node {
                    builder = builder.numa_node(node);
                } else if let Some(n) = nodes {
                    builder = builder.numa_node(k * n / shard_count.max(1));
                }
                builder.build(&spec.matrix, d)
            })
            .collect::<Result<_, _>>()?;
        // The one-pool invariant (the disjoint-lane overlap only holds
        // within one pool) is true by construction here — every builder was
        // handed a clone of `pool` — so it is asserted, not returned as an
        // error. The boundary where foreign pools can actually arrive is
        // [`crate::serve::SpmmServer::add_sharded`], which does the real
        // [`WorkerPool::same_pool`] check.
        debug_assert!(engines.iter().all(|e| e.pool().same_pool(&pool)));
        Ok(ShardedSpmm { plan, engines, pool, d, output_pool: Arc::new(BufferPool::new()) })
    }

    /// [`ShardedSpmm::compile_with`] for the incremental-update path
    /// ([`crate::update`]): shard `k` with `donors[k] == Some(engine)` is
    /// **adopted** — its compiled core is shared pointer-identically from
    /// the donor ([`JitSpmm::adopt`]) instead of recompiled, and the shared
    /// kernel cache entry (when one is configured) is probed so live shards
    /// register as hits and keep their mtime fresh against LRU eviction.
    /// Shards with `donors[k] == None` compile fresh exactly as
    /// [`ShardedSpmm::compile_with`] would, consulting the cache per shard.
    ///
    /// `output_pool` carries the previous generation's full-height buffer
    /// pool across the swap, so a live server keeps recycling its outputs
    /// through an update instead of re-allocating.
    ///
    /// The caller owns the adoption contract: each donor's matrix must be
    /// content-identical to the corresponding spec's, and the donor's data
    /// must outlive the new engine (see [`JitSpmm::adopt`]).
    ///
    /// # Errors
    ///
    /// As [`ShardedSpmm::compile_with`], for the freshly compiled shards.
    pub(crate) fn compile_with_reuse(
        plan: &'a ShardPlan<T>,
        d: usize,
        pool: WorkerPool,
        options: &ShardOptions,
        donors: &[Option<&JitSpmm<'_, T>>],
        output_pool: Arc<BufferPool<T>>,
    ) -> Result<ShardedSpmm<'a, T>, JitSpmmError> {
        debug_assert_eq!(donors.len(), plan.shards().len());
        let topology = NumaTopology::detect();
        let nodes = topology.is_multi_node().then(|| topology.num_nodes());
        let shard_count = plan.shards().len();
        let engines: Vec<JitSpmm<'a, T>> = plan
            .shards()
            .iter()
            .zip(donors)
            .enumerate()
            .map(|(k, (spec, donor))| {
                if let Some(donor) = donor {
                    let engine = JitSpmm::adopt(donor, &spec.matrix);
                    engine.touch_cache_entry();
                    return Ok(engine);
                }
                let mut builder = JitSpmmBuilder::new()
                    .pool(pool.clone())
                    .threads(plan.lanes())
                    .strategy(spec.strategy);
                if let Some(policy) = options.tier {
                    builder = builder.tiered(policy);
                }
                if let Some(cache) = &options.kernel_cache {
                    builder = builder.kernel_cache_in(Arc::clone(cache));
                }
                if let Some(node) = options.numa_node {
                    builder = builder.numa_node(node);
                } else if let Some(n) = nodes {
                    builder = builder.numa_node(k * n / shard_count.max(1));
                }
                builder.build(&spec.matrix, d)
            })
            .collect::<Result<_, _>>()?;
        debug_assert!(engines.iter().all(|e| e.pool().same_pool(&pool)));
        Ok(ShardedSpmm { plan, engines, pool, d, output_pool })
    }

    /// Hand the full-height output pool to a successor generation (see
    /// [`ShardedSpmm::compile_with_reuse`]).
    pub(crate) fn output_pool(&self) -> Arc<BufferPool<T>> {
        Arc::clone(&self.output_pool)
    }

    /// The plan this engine was compiled from.
    pub fn plan(&self) -> &'a ShardPlan<T> {
        self.plan
    }

    /// The per-shard engines, in row order.
    pub fn engines(&self) -> &[JitSpmm<'a, T>] {
        &self.engines
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.engines.len()
    }

    /// The number of dense columns every shard kernel expects.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The worker pool every shard executes on.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The slowest-progressing tier across the shard engines: `Tier0` while
    /// any shard still runs its starter kernel, `Promoted` once every shard
    /// has hot-swapped, `Fixed` for a non-tiered compile. Shards promote
    /// independently, so this is the honest aggregate for merged reports.
    pub fn tier(&self) -> KernelTier {
        if self.engines.iter().any(|e| e.tier() == KernelTier::Tier0) {
            KernelTier::Tier0
        } else if self.engines.iter().any(|e| e.tier() == KernelTier::Promoted) {
            KernelTier::Promoted
        } else {
            KernelTier::Fixed
        }
    }

    /// Total hot-swap promotions across the shard engines.
    pub fn promotions(&self) -> usize {
        self.engines.iter().map(JitSpmm::promotions).sum()
    }

    /// Re-pin every shard engine's soft NUMA placement hint to `node` (see
    /// [`JitSpmm::place_on_node`]); `None` clears the hints and with them
    /// the first-touch output placement.
    pub fn place_on_node(&mut self, node: Option<usize>) {
        for engine in &mut self.engines {
            engine.place_on_node(node);
        }
    }

    /// Compute `Y = A * X` by launching every shard as an overlapped,
    /// lane-capped asynchronous job: shard `k`'s kernel writes rows
    /// `rows_k` of the full matrix **directly into its row range** of one
    /// pooled full-height output (the stitch is free — a shard's rows are
    /// contiguous in the output), and the call returns once the slowest
    /// shard has joined. Steady-state repeated execution recycles the
    /// output buffer, allocating nothing.
    ///
    /// The launches are anchored to `scope` exactly like
    /// [`JitSpmm::execute_async`]; concurrent sharded executes from other
    /// threads serialize per shard by acquiring the shard launch locks in
    /// row order (ordered acquisition, so blocking cannot deadlock).
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::ShapeMismatch`] if `x` is not `A.ncols() x d`, and
    /// [`JitSpmmError::LaunchInProgress`] if the calling thread already
    /// holds a launch of one of the shard engines.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic of the run after joining the shard
    /// launches still in flight; the engines stay usable afterwards.
    pub fn execute<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        x: &'env DenseMatrix<T>,
    ) -> Result<(PooledMatrix<T>, ShardReport), JitSpmmError> {
        self.check_input_shape(x)?;
        let started = Instant::now();
        let mut y = self.acquire_output();
        let y_ptr = y.as_mut_ptr();
        let mut handles: Vec<ExecutionHandle<'scope, T>> = Vec::with_capacity(self.engines.len());
        for (spec, engine) in self.plan.shards().iter().zip(&self.engines) {
            // SAFETY (pointer arithmetic): the full output is
            // `plan.nrows() x d` and every shard's `rows` range lies inside
            // `0..plan.nrows()`, so `start * d` is in bounds.
            let shard_y = unsafe { y_ptr.add(spec.rows.start * self.d) };
            // SAFETY (launch contract): `x` is borrowed for 'env and `y` is
            // held across the joins below — every handle is waited (or
            // dropped, which joins) before this frame returns, so both
            // pointees outlive every launch; shards write pairwise disjoint
            // row ranges, so no two launches alias; shapes were validated
            // above against the full matrix, which every shard inherits its
            // column count and `d` from.
            let handle = unsafe { engine.execute_async_raw(scope, x.as_ptr(), shard_y) };
            match handle {
                Ok(handle) => handles.push(handle),
                // Dropping the handles joins the shards already in flight
                // before the error surfaces; the pooled output recycles.
                Err(e) => return Err(e),
            }
        }
        let reports: Vec<_> = handles.into_iter().map(ExecutionHandle::wait_report).collect();
        let elapsed = started.elapsed();
        let mut merged = single_launch_report(&merge_input_reports(&reports), 1);
        merged.elapsed = elapsed;
        merged.tier = self.tier();
        merged.promotions = self.promotions();
        let report = ShardReport {
            shards: self.engines.len(),
            nnz_imbalance: self.plan.nnz_imbalance(),
            merged,
            per_shard: reports
                .iter()
                .zip(&self.engines)
                .map(|(r, engine)| {
                    let mut shard = single_launch_report(r, 1);
                    shard.tier = engine.tier();
                    shard.promotions = engine.promotions();
                    shard
                })
                .collect(),
        };
        Ok((y, report))
    }

    /// Compute `Y = A * X_i` for every input in `inputs`, pipelining the
    /// batch through all shards at once: each shard runs its own
    /// [`crate::BatchStream`] (per-slot payloads, spare kernels, pooled
    /// shard outputs), the streams advance in lockstep, and each completed
    /// input's shard outputs are stitched — one contiguous row-range copy
    /// per shard — into a full-height pooled output. Outputs return in
    /// input order with a [`ShardReport`] aggregating per-shard and merged
    /// critical-path timing.
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::ShapeMismatch`] (naming the offending input index)
    /// if any input is not `A.ncols() x d` — nothing is launched in that
    /// case — and [`JitSpmmError::LaunchInProgress`] if the calling thread
    /// already holds a launch of one of the shard engines.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic of the batch after joining the
    /// launches still in flight; the engines stay usable afterwards.
    pub fn execute_batch<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        inputs: &'env [DenseMatrix<T>],
    ) -> Result<(Vec<PooledMatrix<T>>, ShardReport), JitSpmmError> {
        for (index, x) in inputs.iter().enumerate() {
            self.check_input_shape(x).map_err(|e| match e {
                JitSpmmError::ShapeMismatch(msg) => {
                    JitSpmmError::ShapeMismatch(format!("batch input {index}: {msg}"))
                }
                other => other,
            })?;
        }
        // Auto depth, as `JitSpmm::execute_batch`: pipeline where overlap is
        // available, degrade to the sequential fast path where it is not.
        let depth = if inputs.len() <= 1 { 1 } else { 0 };
        let mut stream = self.batch_stream(scope, depth)?;
        // The caller holds every full-height output at once; shard-local
        // outputs recycle within the pipeline and need no reserve.
        self.output_pool.reserve(inputs.len());
        let mut outputs = Vec::with_capacity(inputs.len());
        for x in inputs {
            if let Some((y, _)) = stream.push_validated(x) {
                outputs.push(y);
            }
        }
        let (rest, report) = stream.finish();
        outputs.extend(rest.into_iter().map(|(y, _)| y));
        Ok((outputs, report))
    }

    /// Open a [`ShardedStream`]: the incremental form of
    /// [`ShardedSpmm::execute_batch`] for unbounded input streams. `depth`
    /// is the per-shard pipeline depth with the same auto semantics as
    /// [`JitSpmm::batch_stream`] (`0` = default depth, sequential fast path
    /// on hosts with nothing to overlap); every shard stream shares it, so
    /// the pipelines advance in lockstep. The stream holds every shard
    /// engine's launch lock until it is finished or dropped.
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::LaunchInProgress`] if the calling thread already
    /// holds a launch of one of the shard engines, or a codegen error from
    /// compiling spare slot kernels.
    pub fn batch_stream<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        depth: usize,
    ) -> Result<ShardedStream<'scope, 'env, T>, JitSpmmError> {
        let mut streams = Vec::with_capacity(self.engines.len());
        for engine in &self.engines {
            // A failure midway drops the streams opened so far, releasing
            // their shard engines.
            streams.push(engine.batch_stream(scope, depth)?);
        }
        // Every shard keeps up to depth outputs in flight plus one being
        // stitched; let its pool retain that many so steady-state batches
        // recycle every shard buffer.
        let effective = streams.first().map(|s| s.depth()).unwrap_or(1);
        for engine in &self.engines {
            engine.reserve_outputs(effective + 1);
        }
        Ok(ShardedStream::new(self, streams))
    }

    /// Validate that `x` matches the compiled input shape (`A.ncols() x d`
    /// of the **full** matrix; every shard shares both).
    pub(crate) fn check_input_shape(&self, x: &DenseMatrix<T>) -> Result<(), JitSpmmError> {
        if x.nrows() != self.plan.ncols() || x.ncols() != self.d {
            return Err(JitSpmmError::ShapeMismatch(format!(
                "dense input is {}x{} but the sharded kernel expects {}x{}",
                x.nrows(),
                x.ncols(),
                self.plan.ncols(),
                self.d
            )));
        }
        Ok(())
    }

    /// A full-height (`plan.nrows() x d`) output borrowed from the sharded
    /// engine's own buffer pool. Freshly allocated buffers get first-touch
    /// NUMA placement (see [`ShardedSpmm::place_output_rows`]); recycled
    /// buffers keep the placement their first touch established.
    pub(crate) fn acquire_output(&self) -> PooledMatrix<T> {
        let (matrix, fresh) = self.output_pool.acquire_tracked(self.plan.nrows(), self.d);
        let mut y = PooledMatrix::new(matrix, Arc::clone(&self.output_pool));
        if fresh {
            self.place_output_rows(&mut y);
        }
        y
    }

    /// First-touch placement of a freshly allocated full-height output: each
    /// shard's row range is zero-written by a pool job preferring that
    /// shard's node, so the backing pages fault in on the memory node whose
    /// workers will write (and whose CSR slice feeds) those rows. Runs only
    /// when the shard engines carry node hints — i.e. on multi-node hosts —
    /// and only once per buffer. Best-effort by design: claiming stays
    /// work-conserving, so under load a range may be touched from another
    /// node; that costs remote-access latency on those pages, never
    /// correctness.
    fn place_output_rows(&self, y: &mut PooledMatrix<T>) {
        if self.engines.iter().all(|e| e.numa_node().is_none()) {
            return;
        }
        let base = y.as_mut_ptr() as usize;
        let d = self.d;
        let handles: Vec<_> = self
            .plan
            .shards()
            .iter()
            .zip(&self.engines)
            .map(|(spec, engine)| {
                let rows = spec.rows;
                let touch = move |_lane: usize| {
                    // SAFETY: `base` points at the start of the full
                    // `nrows x d` output, which the caller holds (mutably
                    // borrowed) across the joins below; shard row ranges lie
                    // inside `0..nrows` and are pairwise disjoint, so no two
                    // touch jobs alias.
                    let slice = unsafe {
                        std::slice::from_raw_parts_mut(
                            (base as *mut T).add(rows.start * d),
                            rows.len() * d,
                        )
                    };
                    slice.fill(T::ZERO);
                };
                self.pool.submit(JobSpec::new(1).prefer_node(engine.numa_node()), touch)
            })
            .collect();
        for handle in handles {
            handle.wait();
        }
    }

    /// Grow the retained full-height output bound, as
    /// [`JitSpmm`]'s internal reserve does — the serving router calls this
    /// so repeated serving rounds recycle all their outputs.
    pub(crate) fn reserve_outputs(&self, outstanding: usize) {
        self.output_pool.reserve(outstanding);
    }

    /// The strategy of the heaviest shard (by non-zeros) — the plan-level
    /// stand-in recorded in merged batch reports, where a single strategy
    /// cannot describe K heterogeneous shards.
    pub(crate) fn dominant_strategy(&self) -> Strategy {
        self.plan
            .shards()
            .iter()
            .max_by_key(|s| s.nnz())
            .map(|s| s.strategy)
            .unwrap_or(Strategy::RowSplitStatic)
    }
}
