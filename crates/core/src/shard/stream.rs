//! The pipelined sharded stream: one [`BatchStream`] per shard engine,
//! driven in lockstep, with completed shard outputs stitched into
//! full-height pooled results.

use crate::engine::BatchStats;
use crate::engine::{BatchStream, ExecutionReport};
use crate::error::JitSpmmError;
use crate::runtime::PooledMatrix;
use crate::shard::engine::ShardedSpmm;
use crate::shard::report::{merge_input_reports, ShardReport};
use jitspmm_sparse::{DenseMatrix, Scalar};
use std::sync::Arc;
use std::time::Instant;

/// A pipelined stream of sharded SpMM executions, created by
/// [`ShardedSpmm::batch_stream`] (or driven for you by
/// [`ShardedSpmm::execute_batch`]).
///
/// Every pushed input is fanned out to **all** shard pipelines; because the
/// per-shard [`BatchStream`]s share one depth and receive the same push
/// sequence, they complete in lockstep — when the pipelines are full, a
/// push hands back the oldest input's K shard outputs at once, which are
/// stitched (one contiguous row-range copy per shard) into a full-height
/// output borrowed from the sharded engine's buffer pool. Results come back
/// in submission order, exactly like a single-engine [`BatchStream`].
///
/// The stream holds every shard engine's launch lock until it is finished
/// or dropped; dropping it mid-batch joins the in-flight shard launches and
/// discards their outputs.
pub struct ShardedStream<'scope, 'env, T: Scalar> {
    sharded: &'env ShardedSpmm<'env, T>,
    /// One pipeline per shard, in row order.
    streams: Vec<BatchStream<'scope, 'env, T>>,
    /// Per-input merged (critical-path) statistics, through the batch
    /// layer's bounded reservoir.
    merged: BatchStats,
    first_submit: Option<Instant>,
}

impl<'scope, 'env, T: Scalar> ShardedStream<'scope, 'env, T> {
    pub(crate) fn new(
        sharded: &'env ShardedSpmm<'env, T>,
        streams: Vec<BatchStream<'scope, 'env, T>>,
    ) -> ShardedStream<'scope, 'env, T> {
        ShardedStream { sharded, streams, merged: BatchStats::default(), first_submit: None }
    }

    /// The per-shard pipeline depth (every shard stream shares it).
    pub fn depth(&self) -> usize {
        self.streams[0].depth()
    }

    /// Number of inputs currently in flight across the shard pipelines.
    pub fn in_flight(&self) -> usize {
        self.streams[0].in_flight()
    }

    /// Fan the next input out to every shard pipeline. If the pipelines are
    /// at depth, the oldest input's shard outputs are collected first and
    /// its stitched full-height result returned; otherwise `None`, without
    /// blocking.
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::ShapeMismatch`] — before anything is submitted — if
    /// `x` is not `A.ncols() x d`; the pipelines are unaffected.
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic from a completed shard launch (the stream
    /// is then dropped by unwinding, which joins the remaining launches and
    /// releases every shard engine).
    pub fn push(
        &mut self,
        x: &'env DenseMatrix<T>,
    ) -> Result<Option<(PooledMatrix<T>, ExecutionReport)>, JitSpmmError> {
        self.sharded.check_input_shape(x)?;
        Ok(self.push_validated(x))
    }

    /// [`ShardedStream::push`] for pre-validated borrowed inputs
    /// ([`ShardedSpmm::execute_batch`] hoists the shape checks).
    pub(crate) fn push_validated(
        &mut self,
        x: &'env DenseMatrix<T>,
    ) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        self.first_submit.get_or_insert_with(Instant::now);
        let pieces: Vec<_> = self.streams.iter_mut().map(|s| s.push_validated(x)).collect();
        self.collect(pieces)
    }

    /// [`ShardedStream::push`] for an input handed over by shared handle:
    /// every shard pipeline keeps one `Arc` clone alive until its own
    /// launch has been joined, so cross-thread producers (the serving
    /// router) need no `'env` borrows. Validation is the caller's job.
    pub(crate) fn push_shared_validated(
        &mut self,
        x: Arc<DenseMatrix<T>>,
    ) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        self.first_submit.get_or_insert_with(Instant::now);
        let pieces: Vec<_> =
            self.streams.iter_mut().map(|s| s.push_shared_validated(Arc::clone(&x))).collect();
        self.collect(pieces)
    }

    /// Stitch one input's completed shard pieces into a full-height pooled
    /// output and record its merged report. The shard pipelines move in
    /// lockstep (same depth, same push sequence), so either every stream
    /// completed its oldest input or none did.
    fn collect(
        &mut self,
        pieces: Vec<Option<(PooledMatrix<T>, ExecutionReport)>>,
    ) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        if pieces.iter().all(Option::is_none) {
            return None;
        }
        let pieces: Vec<(PooledMatrix<T>, ExecutionReport)> = pieces
            .into_iter()
            .map(|p| p.expect("lockstep shard pipelines complete together"))
            .collect();
        let (full, report) = self.stitch(pieces);
        self.merged.record(&report);
        Some((full, report))
    }

    /// Copy each shard piece into its row range of a fresh pooled
    /// full-height output (one contiguous `memcpy` per shard — a shard's
    /// rows are contiguous in both buffers) and merge the per-shard
    /// reports. Dropping the pieces recycles the shard buffers.
    fn stitch(
        &self,
        pieces: Vec<(PooledMatrix<T>, ExecutionReport)>,
    ) -> (PooledMatrix<T>, ExecutionReport) {
        let d = self.sharded.d();
        let mut full = self.sharded.acquire_output();
        let out = full.as_mut_slice();
        let mut reports = Vec::with_capacity(pieces.len());
        for (spec, (piece, report)) in self.sharded.plan().shards().iter().zip(pieces) {
            out[spec.rows.start * d..spec.rows.end * d].copy_from_slice(piece.as_slice());
            reports.push(report);
        }
        (full, merge_input_reports(&reports))
    }

    /// Join the oldest in-flight input across the lockstep shard pipelines,
    /// if any, and stitch its full-height result — the one-at-a-time drain
    /// the serving control plane uses. A panic from one shard's join
    /// unwinds with every pipeline's bookkeeping already restored, but the
    /// completed sibling pieces of that input are discarded with the
    /// unwind; the serving layer treats a sharded-lane panic as poisoning
    /// the lane.
    pub(crate) fn complete_next(&mut self) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        if self.in_flight() == 0 {
            return None;
        }
        let pieces: Vec<_> = self
            .streams
            .iter_mut()
            .map(|s| s.complete_next().expect("lockstep shard pipelines complete together"))
            .collect();
        let (full, report) = self.stitch(pieces);
        self.merged.record(&report);
        Some((full, report))
    }

    /// Drain every shard pipeline, stitch the remaining inputs (oldest
    /// first) and aggregate the [`ShardReport`]. The returned results are
    /// the ones not already handed out by [`ShardedStream::push`], in
    /// submission order.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic among the remaining launches, after
    /// all of them have been joined.
    pub fn finish(mut self) -> (Vec<(PooledMatrix<T>, ExecutionReport)>, ShardReport) {
        let streams = std::mem::take(&mut self.streams);
        let mut per_shard = Vec::with_capacity(streams.len());
        let mut rests: Vec<std::vec::IntoIter<(PooledMatrix<T>, ExecutionReport)>> = Vec::new();
        for stream in streams {
            let (rest, report) = stream.finish();
            rests.push(rest.into_iter());
            per_shard.push(report);
        }
        let mut results = Vec::new();
        loop {
            let pieces: Vec<_> = rests.iter_mut().map(Iterator::next).collect();
            if pieces.iter().all(Option::is_none) {
                break;
            }
            let pieces: Vec<_> = pieces
                .into_iter()
                .map(|p| p.expect("lockstep shard pipelines drain together"))
                .collect();
            let (full, report) = self.stitch(pieces);
            self.merged.record(&report);
            results.push((full, report));
        }
        let elapsed = self.first_submit.map(|t| t.elapsed()).unwrap_or_default();
        let depth = per_shard.first().map(|r| r.depth).unwrap_or(1);
        let threads = per_shard.iter().map(|r| r.threads).sum();
        let mut merged = std::mem::take(&mut self.merged).report(
            elapsed,
            depth,
            threads,
            self.sharded.dominant_strategy(),
        );
        merged.tier = self.sharded.tier();
        merged.promotions = self.sharded.promotions();
        let report = ShardReport {
            shards: per_shard.len(),
            nnz_imbalance: self.sharded.plan().nnz_imbalance(),
            merged,
            per_shard,
        };
        (results, report)
    }
}

impl<T: Scalar> std::fmt::Debug for ShardedStream<'_, '_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStream")
            .field("shards", &self.streams.len())
            .field("completed", &self.merged.count)
            .finish()
    }
}
