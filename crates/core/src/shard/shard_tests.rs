//! Unit tests for the sharded execution subsystem (split out of the layer
//! files to keep them readable). The cross-crate differential family lives
//! in `tests/tests/differential.rs`.

use crate::engine::JitSpmmBuilder;
use crate::error::JitSpmmError;
use crate::runtime::WorkerPool;
use crate::shard::{plan_shards, ShardedSpmm};
use jitspmm_asm::CpuFeatures;
use jitspmm_sparse::{generate, CsrMatrix, DenseMatrix};

fn host_ok() -> bool {
    let f = CpuFeatures::detect();
    f.avx && f.has_fma()
}

#[test]
fn sharded_execute_is_bit_identical_to_unsharded() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::rmat::<f32>(10, 15_000, generate::RmatConfig::GRAPH500, 11);
    let x = DenseMatrix::random(a.ncols(), 8, 4);
    let pool = WorkerPool::new(2);
    let unsharded = JitSpmmBuilder::new().pool(pool.clone()).threads(2).build(&a, 8).unwrap();
    let (expected, _) = unsharded.execute(&x).unwrap();
    for k in [1usize, 3, 5] {
        let plan = plan_shards(&a, k, 1).unwrap();
        let sharded = ShardedSpmm::compile(&plan, 8, pool.clone()).unwrap();
        let (y, report) = pool.scope(|scope| sharded.execute(scope, &x)).unwrap();
        assert_eq!(*y, *expected, "k = {k}: sharded execute must be bit-identical to unsharded");
        assert_eq!(report.shards, plan.len());
        assert_eq!(report.per_shard.len(), plan.len());
        assert_eq!(report.inputs(), 1);
        assert!(report.nnz_imbalance >= 1.0);
    }
}

#[test]
fn sharded_batch_matches_per_input_execute() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(300, 260, 5_000, 6);
    let pool = WorkerPool::new(2);
    let plan = plan_shards(&a, 3, 1).unwrap();
    let sharded = ShardedSpmm::compile(&plan, 4, pool.clone()).unwrap();
    let inputs: Vec<DenseMatrix<f32>> =
        (0..6).map(|i| DenseMatrix::random(a.ncols(), 4, 40 + i)).collect();
    let singles: Vec<DenseMatrix<f32>> = inputs
        .iter()
        .map(|x| pool.scope(|scope| sharded.execute(scope, x)).unwrap().0.into_dense())
        .collect();
    let (outputs, report) = pool.scope(|scope| sharded.execute_batch(scope, &inputs)).unwrap();
    assert_eq!(outputs.len(), inputs.len());
    assert_eq!(report.inputs(), inputs.len());
    for (i, y) in outputs.iter().enumerate() {
        assert_eq!(**y, singles[i], "batched input {i} differs from single execute");
        assert!(y.approx_eq(&a.spmm_reference(&inputs[i]), 1e-4));
    }
    // An explicit depth-2 stream exercises the real pipeline everywhere.
    pool.scope(|scope| {
        let mut stream = sharded.batch_stream(scope, 2).unwrap();
        let mut streamed = Vec::new();
        for x in &inputs {
            if let Some((y, _)) = stream.push(x).unwrap() {
                streamed.push(y);
            }
        }
        let (rest, report) = stream.finish();
        streamed.extend(rest.into_iter().map(|(y, _)| y));
        assert_eq!(report.inputs(), inputs.len());
        for (i, y) in streamed.iter().enumerate() {
            assert_eq!(**y, singles[i], "pipelined input {i} differs from single execute");
        }
    });
}

#[test]
fn sharded_engine_validates_shapes_and_reports_errors() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(100, 80, 1_000, 2);
    let pool = WorkerPool::new(1);
    let plan = plan_shards(&a, 2, 1).unwrap();
    let sharded = ShardedSpmm::compile(&plan, 8, pool.clone()).unwrap();
    // Wrong input shape: rejected before any launch.
    let bad = DenseMatrix::<f32>::zeros(80, 4);
    let err = pool.scope(|scope| sharded.execute(scope, &bad)).unwrap_err();
    assert!(matches!(err, JitSpmmError::ShapeMismatch(_)));
    // A bad input anywhere in a batch rejects the whole batch, named.
    let good = DenseMatrix::random(80, 8, 1);
    let mixed = [good.clone(), bad.clone()];
    let err = pool.scope(|scope| sharded.execute_batch(scope, &mixed)).unwrap_err();
    match err {
        JitSpmmError::ShapeMismatch(msg) => assert!(msg.contains("batch input 1"), "{msg}"),
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    // d = 0 cannot compile.
    assert!(matches!(
        ShardedSpmm::compile(&plan, 0, pool.clone()).unwrap_err(),
        JitSpmmError::EmptyDenseMatrix
    ));
    // And the engine still executes fine after the rejections.
    let (y, _) = pool.scope(|scope| sharded.execute(scope, &good)).unwrap();
    assert!(y.approx_eq(&a.spmm_reference(&good), 1e-4));
}

#[test]
fn zero_nnz_shards_execute_and_write_zero_rows() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    // All non-zeros in the first row: the plan keeps a zero-nnz tail shard
    // covering the remaining rows, whose kernel must still overwrite its
    // output rows (the buffer pool recycles without zeroing).
    let triplets: Vec<(usize, usize, f32)> = (0..30).map(|c| (0usize, c, 1.0 + c as f32)).collect();
    let a = CsrMatrix::<f32>::from_triplets(64, 30, &triplets).unwrap();
    let pool = WorkerPool::new(2);
    let plan = plan_shards(&a, 4, 1).unwrap();
    assert!(plan.shards().iter().any(|s| s.nnz() == 0), "expected a zero-nnz shard");
    let sharded = ShardedSpmm::compile(&plan, 8, pool.clone()).unwrap();
    let x = DenseMatrix::random(30, 8, 9);
    // Execute twice so the second run reuses a dirty recycled buffer.
    for _ in 0..2 {
        let (y, _) = pool.scope(|scope| sharded.execute(scope, &x)).unwrap();
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
        for r in 1..64 {
            assert!(y.row(r).iter().all(|&v| v == 0.0), "row {r} must be zeroed");
        }
    }
}

#[test]
fn sharded_outputs_recycle_in_steady_state() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let a = generate::uniform::<f32>(128, 128, 2_000, 3);
    let pool = WorkerPool::new(2);
    let plan = plan_shards(&a, 2, 1).unwrap();
    let sharded = ShardedSpmm::compile(&plan, 4, pool.clone()).unwrap();
    let x = DenseMatrix::random(128, 4, 5);
    let first_ptr = {
        let (y, _) = pool.scope(|scope| sharded.execute(scope, &x)).unwrap();
        y.as_ptr()
    };
    let (y, _) = pool.scope(|scope| sharded.execute(scope, &x)).unwrap();
    assert_eq!(y.as_ptr(), first_ptr, "steady-state execute must recycle the full output");
}
