//! Sharded execution: split one huge matrix into K nnz-balanced row
//! shards, compile an independent JIT engine per shard, and execute them as
//! overlapped lane-capped launches on one shared [`crate::WorkerPool`].
//!
//! The paper's engines win by specializing generated code to one matrix —
//! but a single engine is still bounded by one launch pipeline and one
//! partition of one CSR. Sharding applies the same specialization *per
//! shard*: each contiguous row range becomes its own sub-matrix, its own
//! compiled kernel, and its own workload-division strategy chosen to match
//! the shard's local sparsity (dense shards take static row-split, skewed
//! shards the dynamic claim loop — the paper's §IV.B trade-off, decided
//! locally instead of once per matrix). At run time the K shard launches
//! overlap on disjoint, lane-capped worker subsets, exactly the way the
//! serving router overlaps heterogeneous engines.
//!
//! The layers, bottom-up:
//!
//! * [`plan_shards`] (`plan`) cuts the CSR into K contiguous row ranges
//!   balanced by non-zero count (greedy prefix-sum cut over the row-pointer
//!   array) and reports the achieved imbalance through the same
//!   [`crate::Partition::nnz_imbalance`] metric the scheduler uses; the
//!   resulting [`ShardPlan`] owns the extracted sub-matrices.
//! * [`ShardedSpmm`] (`engine`) compiles one [`crate::JitSpmm`] per shard
//!   on a shared pool (validated via [`crate::WorkerPool::same_pool`]).
//!   [`ShardedSpmm::execute`] launches every shard asynchronously, each
//!   kernel writing **directly into its row range** of one pooled
//!   full-height output; [`ShardedSpmm::execute_batch`] pipelines a batch
//!   through per-shard [`crate::BatchStream`]s and stitches completed
//!   inputs with one contiguous row-range copy per shard. Neither allocates
//!   in steady state.
//! * [`ShardedStream`] (`stream`) is the incremental batch form, also
//!   driven by the serving router.
//! * [`ShardReport`] (`report`) aggregates per-shard kernel/dispatch
//!   timing through the batch layer's bounded reservoir, a merged
//!   critical-path view, and the plan's achieved nnz balance.
//!
//! A sharded engine registers with the serving router behind **one logical
//! engine id** ([`crate::serve::SpmmServer::add_sharded`]), so mixed-stream
//! routing, submission-order collection and [`crate::serve::ServerReport`]
//! aggregation work unchanged.

mod engine;
mod plan;
mod report;
mod stream;

#[cfg(test)]
mod shard_tests;

pub use engine::{ShardOptions, ShardedSpmm};
pub(crate) use plan::{choose_strategy, nnz_imbalance_of_specs};
pub use plan::{plan_shards, ShardPlan, ShardSpec};
pub use report::ShardReport;
pub use stream::ShardedStream;
