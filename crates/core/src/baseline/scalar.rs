//! Single-thread scalar AOT baselines (the Table II comparison).
//!
//! The paper compiles the sequential C implementation of Algorithm 1 with
//! three different compilers (gcc, clang, icc) and compares them against the
//! single-thread scalar JIT kernel. Those binaries are unavailable here, so
//! three Rust variants of the same algorithm stand in for them; all three are
//! compiled ahead of time by `rustc` and share the defining limitation the
//! paper attributes to AOT code: the inner column loop runs over a `d` that
//! is only known at run time, so the accumulator lives in memory (or is
//! re-materialized per column) rather than being pinned across the whole row
//! the way the JIT kernel pins it in registers.

use jitspmm_sparse::{CsrMatrix, DenseMatrix, Scalar};

/// Literal transcription of Algorithm 1: three nested loops
/// (`row`, `column`, `non-zero`), all index-based with bounds checks.
/// Stands in for the `gcc -O3` binary.
///
/// # Panics
///
/// Panics if the shapes of `a`, `x` and `y` are inconsistent.
pub fn spmm_scalar_naive<T: Scalar>(a: &CsrMatrix<T>, x: &DenseMatrix<T>, y: &mut DenseMatrix<T>) {
    check_shapes(a, x, y);
    let d = x.ncols();
    let row_ptr = a.row_ptr();
    let col_indices = a.col_indices();
    let vals = a.values();
    for i in 0..a.nrows() {
        for j in 0..d {
            let mut ret = T::ZERO;
            for idx in row_ptr[i] as usize..row_ptr[i + 1] as usize {
                let k = col_indices[idx] as usize;
                ret += vals[idx] * x.get(k, j);
            }
            y.set(i, j, ret);
        }
    }
}

/// The same computation phrased with iterators over row slices (the idiom an
/// optimizing compiler handles best). Stands in for the `clang -O3` binary.
///
/// # Panics
///
/// Panics if the shapes of `a`, `x` and `y` are inconsistent.
pub fn spmm_scalar_iterator<T: Scalar>(
    a: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
    y: &mut DenseMatrix<T>,
) {
    check_shapes(a, x, y);
    let d = x.ncols();
    for i in 0..a.nrows() {
        let out = y.row_mut(i);
        out.iter_mut().for_each(|v| *v = T::ZERO);
        for (&k, &aval) in a.row_cols(i).iter().zip(a.row_values(i)) {
            let xrow = x.row(k as usize);
            for j in 0..d {
                out[j] += aval * xrow[j];
            }
        }
    }
}

/// The naive loop nest with bounds checks elided through unchecked accesses,
/// approximating what a heavily optimizing C compiler emits. Stands in for
/// the `icc -O3` binary.
///
/// # Panics
///
/// Panics if the shapes of `a`, `x` and `y` are inconsistent.
pub fn spmm_scalar_unchecked<T: Scalar>(
    a: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
    y: &mut DenseMatrix<T>,
) {
    check_shapes(a, x, y);
    let d = x.ncols();
    let row_ptr = a.row_ptr();
    let col_indices = a.col_indices();
    let vals = a.values();
    let xs = x.as_slice();
    let ys = y.as_mut_slice();
    for i in 0..a.nrows() {
        let (start, end) = (row_ptr[i] as usize, row_ptr[i + 1] as usize);
        for j in 0..d {
            let mut ret = T::ZERO;
            for idx in start..end {
                // SAFETY: `idx` lies inside the row's non-zero range, the CSR
                // invariants guarantee `col_indices[idx] < a.ncols()`, and
                // `j < d == x.ncols()`, so all accesses are in bounds.
                unsafe {
                    let k = *col_indices.get_unchecked(idx) as usize;
                    ret += *vals.get_unchecked(idx) * *xs.get_unchecked(k * d + j);
                }
            }
            // SAFETY: `i < nrows` and `j < d`.
            unsafe {
                *ys.get_unchecked_mut(i * d + j) = ret;
            }
        }
    }
}

/// Run the naive scalar baseline over a batch of inputs, returning one
/// output per input (in order).
///
/// This is the per-input trust anchor the batched differential tests compare
/// [`crate::JitSpmm::execute_batch`] against: deliberately the plainest
/// possible loop — no pipeline, no threading — so a batching bug on the JIT
/// side cannot be mirrored here.
///
/// # Panics
///
/// Panics if any input's shape is inconsistent with `a`.
pub fn spmm_scalar_batch<T: Scalar>(
    a: &CsrMatrix<T>,
    inputs: &[DenseMatrix<T>],
) -> Vec<DenseMatrix<T>> {
    inputs
        .iter()
        .map(|x| {
            let mut y = DenseMatrix::zeros(a.nrows(), x.ncols());
            spmm_scalar_naive(a, x, &mut y);
            y
        })
        .collect()
}

/// Serve a mixed multi-engine request stream with the naive scalar loop:
/// `requests` pairs an index into `matrices` with a dense input, and the
/// result is one output per request, in request order.
///
/// This is the like-for-like trust anchor for the serving router
/// ([`crate::serve::SpmmServer`]): the same mixed stream, executed serially
/// by the plainest possible code — no routing, no pipelining, no threading —
/// so a routing bug (a request landing on the wrong engine, outputs swapped
/// across engines) cannot be mirrored here.
///
/// # Panics
///
/// Panics if a request names a matrix index out of range or an input's
/// shape is inconsistent with its matrix — baseline inputs are
/// harness-controlled, unlike the server's validated user requests.
pub fn spmm_scalar_serve_mixed<T: Scalar>(
    matrices: &[&CsrMatrix<T>],
    requests: &[(usize, DenseMatrix<T>)],
) -> Vec<DenseMatrix<T>> {
    requests
        .iter()
        .map(|(engine, x)| {
            let a = matrices[*engine];
            let mut y = DenseMatrix::zeros(a.nrows(), x.ncols());
            spmm_scalar_naive(a, x, &mut y);
            y
        })
        .collect()
}

fn check_shapes<T: Scalar>(a: &CsrMatrix<T>, x: &DenseMatrix<T>, y: &DenseMatrix<T>) {
    assert_eq!(x.nrows(), a.ncols(), "dense input rows must equal sparse columns");
    assert_eq!(y.nrows(), a.nrows(), "dense output rows must equal sparse rows");
    assert_eq!(y.ncols(), x.ncols(), "input and output column counts must match");
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitspmm_sparse::generate;

    #[test]
    fn all_variants_match_reference() {
        let a = generate::rmat::<f32>(8, 3_000, generate::RmatConfig::GRAPH500, 7);
        let x = DenseMatrix::random(a.ncols(), 8, 3);
        let expected = a.spmm_reference(&x);
        for f in
            [spmm_scalar_naive::<f32>, spmm_scalar_iterator::<f32>, spmm_scalar_unchecked::<f32>]
        {
            let mut y = DenseMatrix::zeros(a.nrows(), 8);
            f(&a, &x, &mut y);
            assert!(y.approx_eq(&expected, 1e-4));
        }
    }

    #[test]
    fn variants_agree_with_each_other_on_f64() {
        let a = generate::uniform::<f64>(100, 80, 900, 4);
        let x = DenseMatrix::random(80, 5, 6);
        let mut y1 = DenseMatrix::zeros(100, 5);
        let mut y2 = DenseMatrix::zeros(100, 5);
        let mut y3 = DenseMatrix::zeros(100, 5);
        spmm_scalar_naive(&a, &x, &mut y1);
        spmm_scalar_iterator(&a, &x, &mut y2);
        spmm_scalar_unchecked(&a, &x, &mut y3);
        assert!(y1.approx_eq(&y2, 1e-12));
        assert!(y1.approx_eq(&y3, 1e-12));
    }

    #[test]
    fn output_is_overwritten_not_accumulated() {
        let a = CsrMatrix::<f32>::identity(3);
        let x = DenseMatrix::filled(3, 2, 2.0);
        let mut y = DenseMatrix::filled(3, 2, 99.0);
        spmm_scalar_iterator(&a, &x, &mut y);
        // Identity * x = x: the old 99.0 fill must be fully overwritten.
        assert!(y.approx_eq(&x, 1e-6));
        assert_eq!(y.get(0, 0), 2.0);
        let mut y = DenseMatrix::filled(3, 2, 99.0);
        spmm_scalar_naive(&a, &x, &mut y);
        assert_eq!(y.get(2, 1), 2.0);
    }

    #[test]
    fn batch_entry_point_matches_per_input_calls() {
        let a = generate::uniform::<f32>(60, 50, 400, 9);
        let inputs: Vec<DenseMatrix<f32>> =
            (0..4).map(|seed| DenseMatrix::random(50, 3, seed)).collect();
        let batch = spmm_scalar_batch(&a, &inputs);
        assert_eq!(batch.len(), 4);
        for (x, y) in inputs.iter().zip(&batch) {
            let mut expected = DenseMatrix::zeros(60, 3);
            spmm_scalar_naive(&a, x, &mut expected);
            assert_eq!(*y, expected);
        }
        assert!(spmm_scalar_batch(&a, &[]).is_empty());
    }

    #[test]
    fn serve_mixed_anchor_matches_per_request_calls() {
        let a = generate::uniform::<f32>(40, 30, 200, 1);
        let b = generate::uniform::<f32>(25, 35, 150, 2);
        let requests: Vec<(usize, DenseMatrix<f32>)> = (0..6)
            .map(|i| {
                let engine = i % 2;
                let ncols = if engine == 0 { 30 } else { 35 };
                (engine, DenseMatrix::random(ncols, 3, 10 + i as u64))
            })
            .collect();
        let outputs = spmm_scalar_serve_mixed(&[&a, &b], &requests);
        assert_eq!(outputs.len(), requests.len());
        for ((engine, x), y) in requests.iter().zip(&outputs) {
            let m = if *engine == 0 { &a } else { &b };
            let mut expected = DenseMatrix::zeros(m.nrows(), 3);
            spmm_scalar_naive(m, x, &mut expected);
            assert_eq!(*y, expected);
        }
        assert!(spmm_scalar_serve_mixed::<f32>(&[&a, &b], &[]).is_empty());
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = CsrMatrix::<f32>::identity(3);
        let x = DenseMatrix::<f32>::zeros(4, 2);
        let mut y = DenseMatrix::<f32>::zeros(3, 2);
        spmm_scalar_naive(&a, &x, &mut y);
    }
}
