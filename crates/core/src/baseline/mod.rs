//! Ahead-of-time (AOT) compiled baseline kernels.
//!
//! The paper compares JITSPMM against two families of AOT baselines:
//!
//! 1. **Auto-vectorization** — C++ implementations of the three workload
//!    division strategies (derived from Merrill & Garland) compiled by Intel
//!    `icc -O3 -mavx512f`. Here, [`vectorized`] provides safe-Rust
//!    implementations of the same structure, compiled ahead of time by
//!    `rustc`, whose inner loops auto-vectorize but — crucially — must treat
//!    the column count `d` as a runtime value, reproducing the structural
//!    handicap the paper identifies.
//! 2. **Intel MKL** — the closed-source `mkl_sparse_spmm` routine. Here,
//!    [`mkl_like`] provides a hand-optimized AOT kernel using explicit
//!    AVX-512/AVX2 intrinsics with 16-wide column tiling and dynamic row
//!    scheduling, playing the role of the "well-tuned vendor library".
//!
//! The single-thread scalar variants in [`scalar`] stand in for the
//! `gcc`/`clang`/`icc` compiled binaries of Table II.

pub mod mkl_like;
pub mod scalar;
pub mod vectorized;

use jitspmm_sparse::{CsrMatrix, DenseMatrix, Scalar};

/// Identifies one of the AOT baseline implementations; used by the benchmark
/// harnesses to iterate over them uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// Single-thread scalar, naive indexed loops (`gcc` stand-in).
    ScalarNaive,
    /// Single-thread scalar, iterator style (`clang` stand-in).
    ScalarIterator,
    /// Single-thread scalar, bounds checks elided (`icc` stand-in).
    ScalarUnchecked,
    /// Multi-threaded auto-vectorized Rust (the Figure 9 baseline).
    Vectorized,
    /// Hand-optimized intrinsics kernel (the Figure 10 baseline).
    MklLike,
}

impl Baseline {
    /// Display name used in benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::ScalarNaive => "scalar-naive",
            Baseline::ScalarIterator => "scalar-iterator",
            Baseline::ScalarUnchecked => "scalar-unchecked",
            Baseline::Vectorized => "auto-vectorized",
            Baseline::MklLike => "mkl-like",
        }
    }

    /// The single-thread scalar baselines of Table II, in the paper's column
    /// order (gcc, clang, icc).
    pub fn table2_set() -> [Baseline; 3] {
        [Baseline::ScalarNaive, Baseline::ScalarIterator, Baseline::ScalarUnchecked]
    }
}

impl std::fmt::Display for Baseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Run a single-thread scalar baseline by name.
///
/// # Panics
///
/// Panics if `baseline` is not one of the scalar variants, or on shape
/// mismatch.
pub fn run_scalar_baseline<T: Scalar>(
    baseline: Baseline,
    a: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
    y: &mut DenseMatrix<T>,
) {
    match baseline {
        Baseline::ScalarNaive => scalar::spmm_scalar_naive(a, x, y),
        Baseline::ScalarIterator => scalar::spmm_scalar_iterator(a, x, y),
        Baseline::ScalarUnchecked => scalar::spmm_scalar_unchecked(a, x, y),
        other => panic!("{other} is not a single-thread scalar baseline"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let all = [
            Baseline::ScalarNaive,
            Baseline::ScalarIterator,
            Baseline::ScalarUnchecked,
            Baseline::Vectorized,
            Baseline::MklLike,
        ];
        let names: std::collections::HashSet<_> = all.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), all.len());
        assert_eq!(Baseline::table2_set().len(), 3);
    }

    #[test]
    fn run_scalar_baseline_dispatch() {
        let a = CsrMatrix::<f32>::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0)]).unwrap();
        let x = DenseMatrix::filled(2, 4, 1.0);
        let expected = a.spmm_reference(&x);
        for b in Baseline::table2_set() {
            let mut y = DenseMatrix::zeros(2, 4);
            run_scalar_baseline(b, &a, &x, &mut y);
            assert!(y.approx_eq(&expected, 1e-6), "{b}");
        }
    }

    #[test]
    #[should_panic]
    fn run_scalar_baseline_rejects_parallel_kind() {
        let a = CsrMatrix::<f32>::identity(2);
        let x = DenseMatrix::filled(2, 2, 1.0);
        let mut y = DenseMatrix::zeros(2, 2);
        run_scalar_baseline(Baseline::MklLike, &a, &x, &mut y);
    }
}
