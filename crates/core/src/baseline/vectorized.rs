//! Multi-threaded auto-vectorized AOT baseline (the Figure 9 comparison).
//!
//! The paper's first parallel baseline is the Merrill & Garland SpMM code,
//! extended to the three workload-division strategies and compiled with
//! `icc -O3 -mavx512f` so the compiler auto-vectorizes the inner column
//! loop. The equivalent here is plain safe Rust whose inner loops `rustc`
//! auto-vectorizes. Like any AOT kernel it cannot know `d` at compile time,
//! so every non-zero iteration re-walks the output row through memory — the
//! exact overhead coarse-grain column merging removes in the JIT kernel.

use crate::runtime::{JobSpec, WorkerPool};
use crate::schedule::{partition, DynamicCounter, Strategy};
use jitspmm_sparse::{CsrMatrix, DenseMatrix, Scalar};

/// Multi-threaded SpMM with the given workload-division strategy, compiled
/// ahead of time (the auto-vectorization baseline). Runs on the process-wide
/// [`WorkerPool::global`] pool, so benchmark comparisons against the JIT
/// engine pay identical dispatch costs.
///
/// # Panics
///
/// Panics on shape mismatch between `a`, `x` and `y`.
pub fn spmm_vectorized<T: Scalar>(
    a: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
    y: &mut DenseMatrix<T>,
    strategy: Strategy,
    threads: usize,
) {
    spmm_vectorized_on(WorkerPool::global(), a, x, y, strategy, threads);
}

/// [`spmm_vectorized`] on an explicit worker pool.
///
/// # Panics
///
/// Panics on shape mismatch between `a`, `x` and `y`.
pub fn spmm_vectorized_on<T: Scalar>(
    pool: &WorkerPool,
    a: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
    y: &mut DenseMatrix<T>,
    strategy: Strategy,
    threads: usize,
) {
    assert_eq!(x.nrows(), a.ncols(), "dense input rows must equal sparse columns");
    assert_eq!(y.nrows(), a.nrows(), "dense output rows must equal sparse rows");
    assert_eq!(y.ncols(), x.ncols(), "input and output column counts must match");
    let threads = pool.lanes_for(threads);
    let d = x.ncols();
    let y_addr = y.as_mut_ptr() as usize;

    match strategy {
        Strategy::RowSplitDynamic { batch } => {
            let counter = DynamicCounter::new();
            let nrows = a.nrows();
            // Cap the job to its own lane count so a concurrently running
            // engine (or another baseline) keeps its share of the pool.
            pool.run_spec(JobSpec::new(threads).max_lanes(threads), &|_lane| loop {
                let start = counter.claim(batch as u64) as usize;
                if start >= nrows {
                    break;
                }
                let end = (start + batch).min(nrows);
                // SAFETY: claimed row batches are disjoint, so the row
                // slices written by different lanes never overlap.
                unsafe { process_rows(a, x, y_addr as *mut T, d, start, end) };
            });
        }
        _ => {
            let part = partition(a, strategy, threads);
            let ranges = &part.ranges;
            pool.run_spec(JobSpec::new(ranges.len()).max_lanes(threads), &|index| {
                let range = ranges[index];
                if range.is_empty() {
                    return;
                }
                // SAFETY: static ranges are disjoint by construction.
                unsafe { process_rows(a, x, y_addr as *mut T, d, range.start, range.end) };
            });
        }
    }
}

/// Run the auto-vectorized baseline over a batch of inputs on the
/// process-wide pool, returning one output per input (in order).
///
/// The AOT counterpart of [`crate::JitSpmm::execute_batch`], so benchmark
/// and differential comparisons of batched serving stay like-for-like. An
/// AOT kernel has no pipeline state to keep in flight; the batch is a plain
/// loop over [`spmm_vectorized`].
///
/// # Panics
///
/// Panics on shape mismatch between `a` and any input.
pub fn spmm_vectorized_batch<T: Scalar>(
    a: &CsrMatrix<T>,
    inputs: &[DenseMatrix<T>],
    strategy: Strategy,
    threads: usize,
) -> Vec<DenseMatrix<T>> {
    spmm_vectorized_batch_on(WorkerPool::global(), a, inputs, strategy, threads)
}

/// [`spmm_vectorized_batch`] on an explicit worker pool.
///
/// # Panics
///
/// Panics on shape mismatch between `a` and any input.
pub fn spmm_vectorized_batch_on<T: Scalar>(
    pool: &WorkerPool,
    a: &CsrMatrix<T>,
    inputs: &[DenseMatrix<T>],
    strategy: Strategy,
    threads: usize,
) -> Vec<DenseMatrix<T>> {
    inputs
        .iter()
        .map(|x| {
            let mut y = DenseMatrix::zeros(a.nrows(), x.ncols());
            spmm_vectorized_on(pool, a, x, &mut y, strategy, threads);
            y
        })
        .collect()
}

/// Compute rows `[start, end)` of the output.
///
/// # Safety
///
/// `y` must point to an `a.nrows() x d` row-major buffer, and no other thread
/// may concurrently access rows `[start, end)` of it.
unsafe fn process_rows<T: Scalar>(
    a: &CsrMatrix<T>,
    x: &DenseMatrix<T>,
    y: *mut T,
    d: usize,
    start: usize,
    end: usize,
) {
    for i in start..end {
        let out = std::slice::from_raw_parts_mut(y.add(i * d), d);
        out.iter_mut().for_each(|v| *v = T::ZERO);
        for (&k, &aval) in a.row_cols(i).iter().zip(a.row_values(i)) {
            let xrow = x.row(k as usize);
            // This loop is what the AOT compiler auto-vectorizes; `d` is a
            // runtime value, so the accumulator traffic goes through `out`
            // in memory on every non-zero.
            for j in 0..d {
                out[j] += aval * xrow[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitspmm_sparse::generate;

    #[test]
    fn matches_reference_for_all_strategies() {
        let a = generate::rmat::<f32>(9, 8_000, generate::RmatConfig::GRAPH500, 21);
        let x = DenseMatrix::random(a.ncols(), 16, 5);
        let expected = a.spmm_reference(&x);
        for strategy in [
            Strategy::RowSplitStatic,
            Strategy::row_split_dynamic_default(),
            Strategy::NnzSplit,
            Strategy::MergeSplit,
        ] {
            let mut y = DenseMatrix::zeros(a.nrows(), 16);
            spmm_vectorized(&a, &x, &mut y, strategy, 4);
            assert!(y.approx_eq(&expected, 1e-4), "strategy {strategy}");
        }
    }

    #[test]
    fn single_thread_and_many_threads_agree() {
        let a = generate::uniform::<f64>(200, 200, 3_000, 2);
        let x = DenseMatrix::random(200, 7, 8);
        let mut y1 = DenseMatrix::zeros(200, 7);
        let mut y2 = DenseMatrix::zeros(200, 7);
        spmm_vectorized(&a, &x, &mut y1, Strategy::NnzSplit, 1);
        spmm_vectorized(&a, &x, &mut y2, Strategy::NnzSplit, 7);
        assert!(y1.approx_eq(&y2, 1e-12));
    }

    #[test]
    fn dynamic_batching_covers_every_row() {
        let a = generate::regular::<f32>(97, 50, 2, 10, 3);
        let x = DenseMatrix::random(50, 3, 1);
        let expected = a.spmm_reference(&x);
        // A batch size that does not divide the row count exercises the tail.
        let mut y = DenseMatrix::zeros(97, 3);
        spmm_vectorized(&a, &x, &mut y, Strategy::RowSplitDynamic { batch: 16 }, 3);
        assert!(y.approx_eq(&expected, 1e-4));
    }

    #[test]
    fn batch_entry_point_matches_per_input_calls() {
        let a = generate::uniform::<f32>(80, 70, 700, 13);
        let inputs: Vec<DenseMatrix<f32>> =
            (0..3).map(|seed| DenseMatrix::random(70, 5, 20 + seed)).collect();
        let batch = spmm_vectorized_batch(&a, &inputs, Strategy::NnzSplit, 2);
        assert_eq!(batch.len(), 3);
        for (x, y) in inputs.iter().zip(&batch) {
            assert!(y.approx_eq(&a.spmm_reference(x), 1e-4));
        }
    }

    #[test]
    fn zero_threads_means_all_threads() {
        let a = generate::uniform::<f32>(64, 64, 500, 11);
        let x = DenseMatrix::random(64, 4, 2);
        let mut y = DenseMatrix::zeros(64, 4);
        spmm_vectorized(&a, &x, &mut y, Strategy::MergeSplit, 0);
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-4));
    }
}
