//! Hand-optimized AOT intrinsics baseline (the Figure 10 comparison).
//!
//! Intel MKL's `mkl_sparse_spmm` is closed source; this module provides the
//! strongest AOT kernel we can construct in its place: explicit AVX-512 (or
//! AVX2) intrinsics, register-resident accumulators over 16-wide column
//! tiles, dynamic row scheduling, and no bounds checks in the hot loop. Like
//! MKL — and unlike the JIT kernel — it is compiled ahead of time, so its
//! column-tile loop and remainder handling are driven by runtime values of
//! `d`, and a row whose `d` exceeds one tile makes additional passes over the
//! row's non-zeros with the associated re-loads of `col_indices`/`vals`.

use crate::runtime::{JobSpec, WorkerPool};
use crate::schedule::DynamicCounter;
use jitspmm_sparse::{CsrMatrix, DenseMatrix};

/// Row batch claimed per atomic increment by the dynamic scheduler.
const BATCH: usize = 64;

/// Multi-threaded, hand-vectorized f32 SpMM (the MKL stand-in).
///
/// Picks AVX-512, then AVX2+FMA, then a scalar fallback at run time. Runs on
/// the process-wide [`WorkerPool::global`] pool, so benchmark comparisons
/// against the JIT engine pay identical dispatch costs.
///
/// # Panics
///
/// Panics on shape mismatch between `a`, `x` and `y`.
pub fn spmm_mkl_like_f32(
    a: &CsrMatrix<f32>,
    x: &DenseMatrix<f32>,
    y: &mut DenseMatrix<f32>,
    threads: usize,
) {
    spmm_mkl_like_f32_on(WorkerPool::global(), a, x, y, threads);
}

/// [`spmm_mkl_like_f32`] on an explicit worker pool.
///
/// # Panics
///
/// Panics on shape mismatch between `a`, `x` and `y`.
pub fn spmm_mkl_like_f32_on(
    pool: &WorkerPool,
    a: &CsrMatrix<f32>,
    x: &DenseMatrix<f32>,
    y: &mut DenseMatrix<f32>,
    threads: usize,
) {
    assert_eq!(x.nrows(), a.ncols(), "dense input rows must equal sparse columns");
    assert_eq!(y.nrows(), a.nrows(), "dense output rows must equal sparse rows");
    assert_eq!(y.ncols(), x.ncols(), "input and output column counts must match");
    let threads = pool.lanes_for(threads);
    let d = x.ncols();
    let y_addr = y.as_mut_ptr() as usize;
    let nrows = a.nrows();
    let counter = DynamicCounter::new();
    let use_avx512 = std::arch::is_x86_feature_detected!("avx512f");
    let use_avx2 =
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma");

    // Cap the job to its own lane count so a concurrently running engine
    // (or another baseline) keeps its share of the pool.
    pool.run_spec(JobSpec::new(threads).max_lanes(threads), &|_lane| loop {
        let start = counter.claim(BATCH as u64) as usize;
        if start >= nrows {
            break;
        }
        let end = (start + BATCH).min(nrows);
        // SAFETY: dynamically claimed row batches are disjoint and the
        // target feature paths are only taken when detected.
        unsafe {
            if use_avx512 {
                rows_avx512_f32(a, x, y_addr as *mut f32, d, start, end);
            } else if use_avx2 {
                rows_avx2_f32(a, x, y_addr as *mut f32, d, start, end);
            } else {
                rows_scalar_f32(a, x, y_addr as *mut f32, d, start, end);
            }
        }
    });
}

/// Run the MKL stand-in over a batch of f32 inputs, returning one output per
/// input (in order) — the AOT vendor-library counterpart of
/// [`crate::JitSpmm::execute_batch`] for like-for-like batched comparisons.
///
/// # Panics
///
/// Panics on shape mismatch between `a` and any input.
pub fn spmm_mkl_like_f32_batch(
    a: &CsrMatrix<f32>,
    inputs: &[DenseMatrix<f32>],
    threads: usize,
) -> Vec<DenseMatrix<f32>> {
    spmm_mkl_like_f32_batch_on(WorkerPool::global(), a, inputs, threads)
}

/// [`spmm_mkl_like_f32_batch`] on an explicit worker pool.
///
/// # Panics
///
/// Panics on shape mismatch between `a` and any input.
pub fn spmm_mkl_like_f32_batch_on(
    pool: &WorkerPool,
    a: &CsrMatrix<f32>,
    inputs: &[DenseMatrix<f32>],
    threads: usize,
) -> Vec<DenseMatrix<f32>> {
    inputs
        .iter()
        .map(|x| {
            let mut y = DenseMatrix::zeros(a.nrows(), x.ncols());
            spmm_mkl_like_f32_on(pool, a, x, &mut y, threads);
            y
        })
        .collect()
}

/// Multi-threaded, hand-vectorized f64 SpMM (MKL stand-in, double precision).
///
/// # Panics
///
/// Panics on shape mismatch between `a`, `x` and `y`.
pub fn spmm_mkl_like_f64(
    a: &CsrMatrix<f64>,
    x: &DenseMatrix<f64>,
    y: &mut DenseMatrix<f64>,
    threads: usize,
) {
    spmm_mkl_like_f64_on(WorkerPool::global(), a, x, y, threads);
}

/// [`spmm_mkl_like_f64`] on an explicit worker pool.
///
/// # Panics
///
/// Panics on shape mismatch between `a`, `x` and `y`.
pub fn spmm_mkl_like_f64_on(
    pool: &WorkerPool,
    a: &CsrMatrix<f64>,
    x: &DenseMatrix<f64>,
    y: &mut DenseMatrix<f64>,
    threads: usize,
) {
    assert_eq!(x.nrows(), a.ncols(), "dense input rows must equal sparse columns");
    assert_eq!(y.nrows(), a.nrows(), "dense output rows must equal sparse rows");
    assert_eq!(y.ncols(), x.ncols(), "input and output column counts must match");
    let threads = pool.lanes_for(threads);
    let d = x.ncols();
    let y_addr = y.as_mut_ptr() as usize;
    let nrows = a.nrows();
    let counter = DynamicCounter::new();
    let use_avx512 = std::arch::is_x86_feature_detected!("avx512f");

    // Cap the job to its own lane count so a concurrently running engine
    // (or another baseline) keeps its share of the pool.
    pool.run_spec(JobSpec::new(threads).max_lanes(threads), &|_lane| loop {
        let start = counter.claim(BATCH as u64) as usize;
        if start >= nrows {
            break;
        }
        let end = (start + BATCH).min(nrows);
        // SAFETY: as in the f32 case.
        unsafe {
            if use_avx512 {
                rows_avx512_f64(a, x, y_addr as *mut f64, d, start, end);
            } else {
                rows_scalar_f64(a, x, y_addr as *mut f64, d, start, end);
            }
        }
    });
}

/// AVX-512 f32 path: 16-wide column tiles with a register accumulator per
/// tile.
///
/// # Safety
///
/// Requires AVX-512F; `y` must point to an `a.nrows() x d` buffer and rows
/// `[start, end)` must not be concurrently accessed.
#[target_feature(enable = "avx512f")]
unsafe fn rows_avx512_f32(
    a: &CsrMatrix<f32>,
    x: &DenseMatrix<f32>,
    y: *mut f32,
    d: usize,
    start: usize,
    end: usize,
) {
    use std::arch::x86_64::*;
    let xs = x.as_ptr();
    for i in start..end {
        let out = y.add(i * d);
        let cols = a.row_cols(i);
        let vals = a.row_values(i);
        let mut j = 0usize;
        while j + 16 <= d {
            let mut acc = _mm512_setzero_ps();
            for (&k, &aval) in cols.iter().zip(vals) {
                let xrow = xs.add(k as usize * d + j);
                acc = _mm512_fmadd_ps(_mm512_set1_ps(aval), _mm512_loadu_ps(xrow), acc);
            }
            _mm512_storeu_ps(out.add(j), acc);
            j += 16;
        }
        while j < d {
            let mut acc = 0.0f32;
            for (&k, &aval) in cols.iter().zip(vals) {
                acc += aval * *xs.add(k as usize * d + j);
            }
            *out.add(j) = acc;
            j += 1;
        }
    }
}

/// AVX2+FMA f32 path: 8-wide column tiles.
///
/// # Safety
///
/// Requires AVX2 and FMA; same aliasing requirements as the AVX-512 path.
#[target_feature(enable = "avx2,fma")]
unsafe fn rows_avx2_f32(
    a: &CsrMatrix<f32>,
    x: &DenseMatrix<f32>,
    y: *mut f32,
    d: usize,
    start: usize,
    end: usize,
) {
    use std::arch::x86_64::*;
    let xs = x.as_ptr();
    for i in start..end {
        let out = y.add(i * d);
        let cols = a.row_cols(i);
        let vals = a.row_values(i);
        let mut j = 0usize;
        while j + 8 <= d {
            let mut acc = _mm256_setzero_ps();
            for (&k, &aval) in cols.iter().zip(vals) {
                let xrow = xs.add(k as usize * d + j);
                acc = _mm256_fmadd_ps(_mm256_set1_ps(aval), _mm256_loadu_ps(xrow), acc);
            }
            _mm256_storeu_ps(out.add(j), acc);
            j += 8;
        }
        while j < d {
            let mut acc = 0.0f32;
            for (&k, &aval) in cols.iter().zip(vals) {
                acc += aval * *xs.add(k as usize * d + j);
            }
            *out.add(j) = acc;
            j += 1;
        }
    }
}

/// Scalar fallback (no SIMD requirements).
///
/// # Safety
///
/// `y` must point to an `a.nrows() x d` buffer and rows `[start, end)` must
/// not be concurrently accessed.
unsafe fn rows_scalar_f32(
    a: &CsrMatrix<f32>,
    x: &DenseMatrix<f32>,
    y: *mut f32,
    d: usize,
    start: usize,
    end: usize,
) {
    let xs = x.as_ptr();
    for i in start..end {
        let out = std::slice::from_raw_parts_mut(y.add(i * d), d);
        out.iter_mut().for_each(|v| *v = 0.0);
        for (&k, &aval) in a.row_cols(i).iter().zip(a.row_values(i)) {
            let xrow = std::slice::from_raw_parts(xs.add(k as usize * d), d);
            for j in 0..d {
                out[j] += aval * xrow[j];
            }
        }
    }
}

/// AVX-512 f64 path: 8-wide column tiles.
///
/// # Safety
///
/// Requires AVX-512F; same aliasing requirements as the f32 path.
#[target_feature(enable = "avx512f")]
unsafe fn rows_avx512_f64(
    a: &CsrMatrix<f64>,
    x: &DenseMatrix<f64>,
    y: *mut f64,
    d: usize,
    start: usize,
    end: usize,
) {
    use std::arch::x86_64::*;
    let xs = x.as_ptr();
    for i in start..end {
        let out = y.add(i * d);
        let cols = a.row_cols(i);
        let vals = a.row_values(i);
        let mut j = 0usize;
        while j + 8 <= d {
            let mut acc = _mm512_setzero_pd();
            for (&k, &aval) in cols.iter().zip(vals) {
                let xrow = xs.add(k as usize * d + j);
                acc = _mm512_fmadd_pd(_mm512_set1_pd(aval), _mm512_loadu_pd(xrow), acc);
            }
            _mm512_storeu_pd(out.add(j), acc);
            j += 8;
        }
        while j < d {
            let mut acc = 0.0f64;
            for (&k, &aval) in cols.iter().zip(vals) {
                acc += aval * *xs.add(k as usize * d + j);
            }
            *out.add(j) = acc;
            j += 1;
        }
    }
}

/// Scalar f64 fallback.
///
/// # Safety
///
/// `y` must point to an `a.nrows() x d` buffer and rows `[start, end)` must
/// not be concurrently accessed.
unsafe fn rows_scalar_f64(
    a: &CsrMatrix<f64>,
    x: &DenseMatrix<f64>,
    y: *mut f64,
    d: usize,
    start: usize,
    end: usize,
) {
    let xs = x.as_ptr();
    for i in start..end {
        let out = std::slice::from_raw_parts_mut(y.add(i * d), d);
        out.iter_mut().for_each(|v| *v = 0.0);
        for (&k, &aval) in a.row_cols(i).iter().zip(a.row_values(i)) {
            let xrow = std::slice::from_raw_parts(xs.add(k as usize * d), d);
            for j in 0..d {
                out[j] += aval * xrow[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitspmm_sparse::generate;

    #[test]
    fn f32_matches_reference() {
        let a = generate::rmat::<f32>(9, 7_000, generate::RmatConfig::GRAPH500, 17);
        for d in [8usize, 16, 19, 32] {
            let x = DenseMatrix::random(a.ncols(), d, 3);
            let expected = a.spmm_reference(&x);
            let mut y = DenseMatrix::zeros(a.nrows(), d);
            spmm_mkl_like_f32(&a, &x, &mut y, 4);
            assert!(y.approx_eq(&expected, 1e-4), "d = {d}");
        }
    }

    #[test]
    fn f32_batch_entry_point_matches_per_input_calls() {
        let a = generate::uniform::<f32>(90, 80, 800, 23);
        let inputs: Vec<DenseMatrix<f32>> =
            (0..3).map(|seed| DenseMatrix::random(80, 6, 30 + seed)).collect();
        let batch = spmm_mkl_like_f32_batch(&a, &inputs, 2);
        assert_eq!(batch.len(), 3);
        for (x, y) in inputs.iter().zip(&batch) {
            assert!(y.approx_eq(&a.spmm_reference(x), 1e-4));
        }
    }

    #[test]
    fn f64_matches_reference() {
        let a = generate::uniform::<f64>(150, 150, 2_000, 5);
        for d in [4usize, 8, 11] {
            let x = DenseMatrix::random(150, d, 9);
            let expected = a.spmm_reference(&x);
            let mut y = DenseMatrix::zeros(150, d);
            spmm_mkl_like_f64(&a, &x, &mut y, 3);
            assert!(y.approx_eq(&expected, 1e-10), "d = {d}");
        }
    }

    #[test]
    fn thread_counts_agree() {
        let a = generate::uniform::<f32>(300, 300, 4_000, 12);
        let x = DenseMatrix::random(300, 16, 4);
        let mut y1 = DenseMatrix::zeros(300, 16);
        let mut y8 = DenseMatrix::zeros(300, 16);
        spmm_mkl_like_f32(&a, &x, &mut y1, 1);
        spmm_mkl_like_f32(&a, &x, &mut y8, 8);
        assert!(y1.approx_eq(&y8, 1e-6));
    }

    #[test]
    fn scalar_fallback_matches_reference() {
        // Exercise the fallback path directly (even on AVX hosts).
        let a = generate::uniform::<f32>(64, 64, 600, 2);
        let x = DenseMatrix::random(64, 5, 7);
        let mut y = DenseMatrix::zeros(64, 5);
        unsafe { rows_scalar_f32(&a, &x, y.as_mut_ptr(), 5, 0, 64) };
        assert!(y.approx_eq(&a.spmm_reference(&x), 1e-5));
    }
}
