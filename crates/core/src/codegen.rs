//! JIT code generation for SpMM kernels (§IV of the paper).
//!
//! The generator emits one of two function shapes:
//!
//! * a **static-range kernel** `fn(row_start, row_end, x, y)` used by the
//!   static row-split, nnz-split and merge-split strategies (the host
//!   computes each thread's row range and every thread calls the same
//!   function), and
//! * a **dynamic-dispatch kernel** `fn(x, y)` which embeds the address of a
//!   shared `NEXT` counter and claims batches of rows with `lock xadd`
//!   exactly as in Listing 1 of the paper.
//!
//! Both wrap the same per-row body: with coarse-grain column merging (CCM)
//! enabled the body keeps the whole output row in SIMD registers according
//! to a [`CcmPlan`] and unrolls the column dimension completely (Listing 2);
//! with CCM disabled (the ablation configuration) the body loops over column
//! blocks at run time like an AOT kernel would.
//!
//! ## Register assignment
//!
//! | register | role |
//! |---|---|
//! | `rdi` | current row |
//! | `rsi` | row range end |
//! | `rbx` | `row_ptr` base (embedded immediate) |
//! | `rcx` | `col_indices` base (embedded immediate) |
//! | `rdx` | `values` base (embedded immediate) |
//! | `r8`  | dense input `X` base (argument) |
//! | `r9`  | dense output `Y` base (argument) |
//! | `r10` | current position in the non-zero arrays |
//! | `r11` | end position of the current row |
//! | `r12` | byte offset of the dense row selected by the current non-zero |
//! | `r13` | byte offset of the output row |
//! | `r14`, `r15` | dynamic dispatch: `NEXT` address and row count |
//! | `rax`, `rbp` | scratch for the non-CCM column loop |
//!
//! `zmm31` (AVX-512) or `ymm15`/`xmm15` (narrower tiers) holds the broadcast
//! non-zero value, mirroring §IV.D.1.

use crate::error::JitSpmmError;
use crate::tiling::{CcmPlan, Segment, SegmentWidth};
use jitspmm_asm::{Assembler, Cond, CpuFeatures, Gpr, IsaLevel, Mem, Scale, VecReg, VecWidth, Xmm};
use jitspmm_sparse::{CsrMatrix, Scalar, ScalarKind};

/// Options controlling kernel generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelOptions {
    /// Target ISA tier.
    pub isa: IsaLevel,
    /// Whether coarse-grain column merging is applied (true in the paper;
    /// false only for the ablation study).
    pub ccm: bool,
    /// Host CPU features (used to pick `vxorps` vs `vpxord` and to validate
    /// FMA availability).
    pub features: CpuFeatures,
    /// Record a textual listing of the emitted instructions (debugging /
    /// profiling aid; slows code generation down).
    pub listing: bool,
}

impl KernelOptions {
    /// Options targeting the best ISA the host supports, with CCM enabled.
    pub fn native() -> KernelOptions {
        let features = CpuFeatures::detect();
        KernelOptions { isa: features.best_isa(), ccm: true, features, listing: false }
    }

    /// Same as [`KernelOptions::native`] but capped at `isa`.
    pub fn with_isa(isa: IsaLevel) -> KernelOptions {
        KernelOptions { isa, ..KernelOptions::native() }
    }
}

/// Everything the generator needs to know about the sparse matrix, with the
/// array base addresses that get embedded into the instruction stream.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MatrixBinding {
    pub row_ptr: *const u64,
    pub col_indices: *const u32,
    pub values: *const u8,
    pub nrows: usize,
}

impl MatrixBinding {
    pub(crate) fn of<T: Scalar>(matrix: &CsrMatrix<T>) -> MatrixBinding {
        MatrixBinding {
            row_ptr: matrix.row_ptr().as_ptr(),
            col_indices: matrix.col_indices().as_ptr(),
            values: matrix.values().as_ptr() as *const u8,
            nrows: matrix.nrows(),
        }
    }
}

/// Which process-specific address a relocation slot holds.
///
/// Generated kernels embed raw pointers as `mov r64, imm64` immediates; every
/// such site is recorded so the persistent kernel cache can zero the slots
/// before storing (making the on-disk image address-independent) and patch
/// them with this process's addresses when loading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RelocSym {
    /// Base of the CSR `row_ptr` array.
    RowPtr,
    /// Base of the CSR `col_indices` array.
    ColIndices,
    /// Base of the CSR `values` array.
    Values,
    /// Address of the dynamic-dispatch claim counter.
    NextCounter,
}

/// A relocation site: which symbol, and the byte offset of its 8-byte
/// little-endian immediate slot within the finalized code.
pub(crate) type KernelReloc = (RelocSym, usize);

/// The generated machine code plus the information the engine needs to wrap
/// it.
#[derive(Debug)]
pub(crate) struct GeneratedCode {
    /// Finalized machine code.
    pub code: Vec<u8>,
    /// Instruction listing, if requested.
    pub listing: Option<Vec<(usize, String)>>,
    /// The CCM plan used (also present for non-CCM kernels, where it only
    /// describes the vector width).
    pub plan: CcmPlan,
    /// Embedded-pointer slots (see [`RelocSym`]). Everything else in the code
    /// depends only on the kernel configuration and the matrix shape, never
    /// on where its arrays happen to live.
    pub relocs: Vec<KernelReloc>,
}

// Fixed register roles (see module docs).
const CUR: Gpr = Gpr::Rdi;
const END: Gpr = Gpr::Rsi;
const ROWPTR: Gpr = Gpr::Rbx;
const COLIDX: Gpr = Gpr::Rcx;
const VALS: Gpr = Gpr::Rdx;
const XBASE: Gpr = Gpr::R8;
const YBASE: Gpr = Gpr::R9;
const IDX: Gpr = Gpr::R10;
const IDX_END: Gpr = Gpr::R11;
const XOFF: Gpr = Gpr::R12;
const YOFF: Gpr = Gpr::R13;
const NEXT_ADDR: Gpr = Gpr::R14;
const NROWS: Gpr = Gpr::R15;
const COL_CURSOR: Gpr = Gpr::Rbp;
const SCRATCH: Gpr = Gpr::Rax;

const CALLEE_SAVED: [Gpr; 6] = [Gpr::Rbx, Gpr::Rbp, Gpr::R12, Gpr::R13, Gpr::R14, Gpr::R15];

/// Validate that `options` can be executed and generate code on this host.
pub(crate) fn validate_options(options: &KernelOptions) -> Result<(), JitSpmmError> {
    if !options.features.supports(options.isa) {
        return Err(JitSpmmError::UnsupportedIsa {
            requested: options.isa,
            supported: options.features.best_isa(),
        });
    }
    // Every tier's generated code relies on VEX/EVEX scalar moves and FMA.
    if !options.features.avx {
        return Err(JitSpmmError::InvalidConfig(
            "the JIT kernels require at least AVX (VEX-encoded scalar arithmetic)".into(),
        ));
    }
    if !options.features.has_fma() {
        return Err(JitSpmmError::InvalidConfig(
            "the JIT kernels require FMA support (all paper testbeds provide it)".into(),
        ));
    }
    if options.isa == IsaLevel::Avx512 && !options.features.avx512vl {
        return Err(JitSpmmError::InvalidConfig(
            "the AVX-512 tier needs AVX-512VL for the YMM/XMM tail segments".into(),
        ));
    }
    Ok(())
}

/// Generate a static-range kernel `fn(row_start, row_end, x, y)`.
pub(crate) fn generate_static_kernel(
    binding: MatrixBinding,
    d: usize,
    kind: ScalarKind,
    options: &KernelOptions,
) -> Result<GeneratedCode, JitSpmmError> {
    validate_options(options)?;
    let plan = CcmPlan::new(d, options.isa, kind);
    let mut asm = new_assembler(options);
    emit_prologue(&mut asm);
    // System V argument order: rdi = row_start, rsi = row_end, rdx = x, rcx = y.
    asm.mov_rr64(XBASE, Gpr::Rdx);
    asm.mov_rr64(YBASE, Gpr::Rcx);
    let mut relocs = Vec::with_capacity(3);
    emit_matrix_bases(&mut asm, &binding, &mut relocs);
    emit_row_range_loop(&mut asm, &plan, d, kind, options)?;
    emit_epilogue(&mut asm);
    finish(asm, plan, relocs)
}

/// Generate a dynamic-dispatch kernel `fn(x, y)` claiming `batch` rows at a
/// time from the counter at `next_addr` (Listing 1).
pub(crate) fn generate_dynamic_kernel(
    binding: MatrixBinding,
    d: usize,
    kind: ScalarKind,
    batch: usize,
    next_addr: *const u8,
    options: &KernelOptions,
) -> Result<GeneratedCode, JitSpmmError> {
    validate_options(options)?;
    if batch == 0 {
        return Err(JitSpmmError::InvalidConfig("dynamic batch size must be non-zero".into()));
    }
    let plan = CcmPlan::new(d, options.isa, kind);
    let mut asm = new_assembler(options);
    emit_prologue(&mut asm);
    // Arguments: rdi = x, rsi = y.
    asm.mov_rr64(XBASE, Gpr::Rdi);
    asm.mov_rr64(YBASE, Gpr::Rsi);
    let mut relocs = Vec::with_capacity(4);
    emit_matrix_bases(&mut asm, &binding, &mut relocs);
    asm.mov_ri64(NEXT_ADDR, next_addr as i64);
    relocs.push((RelocSym::NextCounter, asm.len() - 8));
    asm.mov_ri64(NROWS, binding.nrows as i64);

    let claim = asm.new_label();
    let done = asm.new_label();
    asm.bind(claim)?;
    // rsi <- batch; lock xadd [NEXT], rsi  => rsi = previously next row.
    asm.mov_ri64(END, batch as i64);
    asm.lock_xadd_mr64(Mem::base(NEXT_ADDR), END);
    asm.cmp_rr64(END, NROWS);
    asm.jcc(Cond::Ge, done);
    asm.mov_rr64(CUR, END);
    asm.add_ri64(END, batch as i32);
    // Clamp the batch end to the row count.
    asm.cmp_rr64(END, NROWS);
    let clamped = asm.new_label();
    asm.jcc(Cond::Le, clamped);
    asm.mov_rr64(END, NROWS);
    asm.bind(clamped)?;
    emit_row_range_loop(&mut asm, &plan, d, kind, options)?;
    asm.jmp(claim);
    asm.bind(done)?;
    emit_epilogue(&mut asm);
    finish(asm, plan, relocs)
}

fn new_assembler(options: &KernelOptions) -> Assembler {
    if options.listing {
        Assembler::with_listing()
    } else {
        Assembler::new()
    }
}

fn finish(
    asm: Assembler,
    plan: CcmPlan,
    relocs: Vec<KernelReloc>,
) -> Result<GeneratedCode, JitSpmmError> {
    let listing = asm.listing().map(|l| l.to_vec());
    // `finalize` patches rel32 label fixups in place without moving bytes,
    // so the reloc offsets recorded during emission stay valid.
    let code = asm.finalize()?;
    Ok(GeneratedCode { code, listing, plan, relocs })
}

fn emit_prologue(asm: &mut Assembler) {
    for reg in CALLEE_SAVED {
        asm.push_r64(reg);
    }
}

fn emit_epilogue(asm: &mut Assembler) {
    for reg in CALLEE_SAVED.iter().rev() {
        asm.pop_r64(*reg);
    }
    asm.ret();
}

fn emit_matrix_bases(asm: &mut Assembler, binding: &MatrixBinding, relocs: &mut Vec<KernelReloc>) {
    // `mov_ri64` encodes REX.W + opcode + imm64, so the immediate is always
    // the last 8 bytes emitted.
    asm.mov_ri64(ROWPTR, binding.row_ptr as i64);
    relocs.push((RelocSym::RowPtr, asm.len() - 8));
    asm.mov_ri64(COLIDX, binding.col_indices as i64);
    relocs.push((RelocSym::ColIndices, asm.len() - 8));
    asm.mov_ri64(VALS, binding.values as i64);
    relocs.push((RelocSym::Values, asm.len() - 8));
}

/// Emit the loop over rows `[CUR, END)`, leaving `CUR == END` afterwards.
fn emit_row_range_loop(
    asm: &mut Assembler,
    plan: &CcmPlan,
    d: usize,
    kind: ScalarKind,
    options: &KernelOptions,
) -> Result<(), JitSpmmError> {
    let row_head = asm.new_label();
    let rows_done = asm.new_label();
    asm.bind(row_head)?;
    asm.cmp_rr64(CUR, END);
    asm.jcc(Cond::Ge, rows_done);

    // Row bookkeeping: non-zero range and output-row byte offset.
    asm.mov_rm64(IDX, Mem::base(ROWPTR).index(CUR, Scale::S8));
    asm.mov_rm64(IDX_END, Mem::base(ROWPTR).index(CUR, Scale::S8).disp(8));
    let row_bytes = (d * kind.bytes()) as i32;
    asm.imul_rri64(YOFF, CUR, row_bytes);

    if options.ccm {
        emit_ccm_row_body(asm, plan, d, kind, options)?;
    } else {
        emit_column_loop_row_body(asm, d, kind, options)?;
    }

    asm.inc_r64(CUR);
    asm.jmp(row_head);
    asm.bind(rows_done)?;
    Ok(())
}

/// CCM row body (Listing 2 generalised): one pass over the row's non-zeros
/// per column tile, with every column of the tile resident in registers.
fn emit_ccm_row_body(
    asm: &mut Assembler,
    plan: &CcmPlan,
    d: usize,
    kind: ScalarKind,
    options: &KernelOptions,
) -> Result<(), JitSpmmError> {
    let row_bytes = (d * kind.bytes()) as i32;
    for (tile_idx, tile) in plan.tiles.iter().enumerate() {
        // Re-read the row start when making another pass over the non-zeros.
        if tile_idx > 0 {
            asm.mov_rm64(IDX, Mem::base(ROWPTR).index(CUR, Scale::S8));
        }
        for seg in &tile.segments {
            emit_zero_accumulator(asm, seg, options);
        }

        let nnz_head = asm.new_label();
        let nnz_done = asm.new_label();
        asm.bind(nnz_head)?;
        asm.cmp_rr64(IDX, IDX_END);
        asm.jcc(Cond::Ge, nnz_done);

        // k = col_indices[idx]; XOFF = k * row_bytes.
        asm.mov_rm32(XOFF, Mem::base(COLIDX).index(IDX, Scale::S4));
        asm.imul_rri64(XOFF, XOFF, row_bytes);
        emit_broadcast(asm, plan, kind);
        for seg in &tile.segments {
            let src = Mem::base(XBASE).index(XOFF, Scale::S1).disp(seg.byte_offset(kind) as i32);
            emit_fmadd(asm, plan, seg, src, kind);
        }
        asm.inc_r64(IDX);
        asm.jmp(nnz_head);
        asm.bind(nnz_done)?;

        for seg in &tile.segments {
            let dst = Mem::base(YBASE).index(YOFF, Scale::S1).disp(seg.byte_offset(kind) as i32);
            emit_store(asm, seg, dst, kind);
        }
    }
    Ok(())
}

/// Non-CCM row body: a run-time loop over column blocks of the widest vector
/// width, followed by a scalar remainder loop. This is the structure an AOT
/// kernel is forced into when `d` is unknown at compile time, emitted here
/// only for the ablation experiment.
fn emit_column_loop_row_body(
    asm: &mut Assembler,
    d: usize,
    kind: ScalarKind,
    options: &KernelOptions,
) -> Result<(), JitSpmmError> {
    let row_bytes = (d * kind.bytes()) as i32;
    let vec_lanes = match kind {
        ScalarKind::F32 => options.isa.max_f32_lanes(),
        ScalarKind::F64 => options.isa.max_f64_lanes(),
    };
    let vec_bytes = (vec_lanes * kind.bytes()) as i32;
    let acc_width = match options.isa {
        IsaLevel::Avx512 => SegmentWidth::Zmm,
        IsaLevel::Avx2 => SegmentWidth::Ymm,
        IsaLevel::Sse128 => SegmentWidth::Xmm,
        IsaLevel::Scalar => SegmentWidth::Scalar,
    };
    let plan_like = CcmPlan::new(d.max(1), options.isa, kind);
    let acc = Segment { col_offset: 0, lanes: vec_lanes, width: acc_width, reg: 0 };
    let scalar_acc = Segment { col_offset: 0, lanes: 1, width: SegmentWidth::Scalar, reg: 0 };

    // COL_CURSOR (rbp) walks the row in byte units.
    asm.xor_rr64(COL_CURSOR, COL_CURSOR);

    // --- vector part ----------------------------------------------------
    if vec_lanes > 1 {
        let col_head = asm.new_label();
        let col_done = asm.new_label();
        asm.bind(col_head)?;
        asm.lea(SCRATCH, Mem::base(COL_CURSOR).disp(vec_bytes));
        asm.cmp_ri64(SCRATCH, row_bytes);
        asm.jcc(Cond::G, col_done);

        emit_zero_accumulator(asm, &acc, options);
        asm.mov_rm64(IDX, Mem::base(ROWPTR).index(CUR, Scale::S8));
        let nnz_head = asm.new_label();
        let nnz_done = asm.new_label();
        asm.bind(nnz_head)?;
        asm.cmp_rr64(IDX, IDX_END);
        asm.jcc(Cond::Ge, nnz_done);
        asm.mov_rm32(XOFF, Mem::base(COLIDX).index(IDX, Scale::S4));
        asm.imul_rri64(XOFF, XOFF, row_bytes);
        asm.add_rr64(XOFF, COL_CURSOR);
        emit_broadcast(asm, &plan_like, kind);
        emit_fmadd(asm, &plan_like, &acc, Mem::base(XBASE).index(XOFF, Scale::S1), kind);
        asm.inc_r64(IDX);
        asm.jmp(nnz_head);
        asm.bind(nnz_done)?;

        asm.lea(SCRATCH, Mem::base(YOFF).index(COL_CURSOR, Scale::S1));
        emit_store(asm, &acc, Mem::base(YBASE).index(SCRATCH, Scale::S1), kind);
        asm.add_ri64(COL_CURSOR, vec_bytes);
        asm.jmp(col_head);
        asm.bind(col_done)?;
    }

    // --- scalar remainder -------------------------------------------------
    let rem_head = asm.new_label();
    let rem_done = asm.new_label();
    asm.bind(rem_head)?;
    asm.cmp_ri64(COL_CURSOR, row_bytes);
    asm.jcc(Cond::Ge, rem_done);

    emit_zero_accumulator(asm, &scalar_acc, options);
    asm.mov_rm64(IDX, Mem::base(ROWPTR).index(CUR, Scale::S8));
    let nnz_head = asm.new_label();
    let nnz_done = asm.new_label();
    asm.bind(nnz_head)?;
    asm.cmp_rr64(IDX, IDX_END);
    asm.jcc(Cond::Ge, nnz_done);
    asm.mov_rm32(XOFF, Mem::base(COLIDX).index(IDX, Scale::S4));
    asm.imul_rri64(XOFF, XOFF, row_bytes);
    asm.add_rr64(XOFF, COL_CURSOR);
    emit_broadcast(asm, &plan_like, kind);
    emit_fmadd(asm, &plan_like, &scalar_acc, Mem::base(XBASE).index(XOFF, Scale::S1), kind);
    asm.inc_r64(IDX);
    asm.jmp(nnz_head);
    asm.bind(nnz_done)?;

    asm.lea(SCRATCH, Mem::base(YOFF).index(COL_CURSOR, Scale::S1));
    emit_store(asm, &scalar_acc, Mem::base(YBASE).index(SCRATCH, Scale::S1), kind);
    asm.add_ri64(COL_CURSOR, kind.bytes() as i32);
    asm.jmp(rem_head);
    asm.bind(rem_done)?;
    Ok(())
}

/// Zero one accumulator register with `vxorps`/`vpxord` (§IV.D.2 prefers the
/// XOR idiom over a move because it leaves MXCSR untouched).
fn emit_zero_accumulator(asm: &mut Assembler, seg: &Segment, options: &KernelOptions) {
    let reg = VecReg::with_width(seg.reg, seg.width.vec_width());
    if seg.width == SegmentWidth::Zmm && !options.features.avx512dq {
        asm.vpxord(reg, reg, reg);
    } else {
        asm.vxorps(reg, reg, reg);
    }
}

/// Broadcast the current non-zero `values[IDX]` into the reserved broadcast
/// register.
fn emit_broadcast(asm: &mut Assembler, plan: &CcmPlan, kind: ScalarKind) {
    let widest = widest_width(plan);
    let src = match kind {
        ScalarKind::F32 => Mem::base(VALS).index(IDX, Scale::S4),
        ScalarKind::F64 => Mem::base(VALS).index(IDX, Scale::S8),
    };
    match (widest, kind) {
        (SegmentWidth::Scalar, ScalarKind::F32) => {
            asm.vmovss_load(Xmm::new(plan.broadcast_reg), src)
        }
        (SegmentWidth::Scalar, ScalarKind::F64) => {
            asm.vmovsd_load(Xmm::new(plan.broadcast_reg), src)
        }
        (w, ScalarKind::F32) => {
            asm.vbroadcastss(VecReg::with_width(plan.broadcast_reg, w.vec_width()), src)
        }
        (SegmentWidth::Xmm, ScalarKind::F64) => {
            // A 128-bit f64 broadcast has no dedicated instruction at the
            // VEX level; loading the scalar and using the scalar FMA on both
            // lanes is not equivalent, so broadcast via the 256-bit form's
            // low half is avoided — instead use movddup semantics emulated
            // by a 256-bit broadcast into the same register id.
            asm.vbroadcastsd(VecReg::ymm(plan.broadcast_reg), src)
        }
        (w, ScalarKind::F64) => {
            asm.vbroadcastsd(VecReg::with_width(plan.broadcast_reg, w.vec_width()), src)
        }
    }
}

/// The widest segment width used anywhere in the plan (the broadcast register
/// must be at least that wide).
fn widest_width(plan: &CcmPlan) -> SegmentWidth {
    let mut widest = SegmentWidth::Scalar;
    for seg in plan.tiles.iter().flat_map(|t| &t.segments) {
        widest = match (widest, seg.width) {
            (SegmentWidth::Zmm, _) | (_, SegmentWidth::Zmm) => SegmentWidth::Zmm,
            (SegmentWidth::Ymm, _) | (_, SegmentWidth::Ymm) => SegmentWidth::Ymm,
            (SegmentWidth::Xmm, _) | (_, SegmentWidth::Xmm) => SegmentWidth::Xmm,
            _ => SegmentWidth::Scalar,
        };
    }
    widest
}

/// `acc += broadcast * X[k][segment columns]`.
fn emit_fmadd(asm: &mut Assembler, plan: &CcmPlan, seg: &Segment, src: Mem, kind: ScalarKind) {
    let bcast_width = match seg.width {
        SegmentWidth::Scalar => VecWidth::X128,
        w => w.vec_width(),
    };
    let bcast = VecReg::with_width(plan.broadcast_reg, bcast_width);
    match (seg.width, kind) {
        (SegmentWidth::Scalar, ScalarKind::F32) => {
            asm.vfmadd231ss_m(Xmm::new(seg.reg), Xmm::new(plan.broadcast_reg), src)
        }
        (SegmentWidth::Scalar, ScalarKind::F64) => {
            asm.vfmadd231sd_m(Xmm::new(seg.reg), Xmm::new(plan.broadcast_reg), src)
        }
        (w, ScalarKind::F32) => {
            asm.vfmadd231ps_m(VecReg::with_width(seg.reg, w.vec_width()), bcast, src)
        }
        (w, ScalarKind::F64) => {
            asm.vfmadd231pd_m(VecReg::with_width(seg.reg, w.vec_width()), bcast, src)
        }
    }
}

/// Store one accumulator segment back to the output row.
fn emit_store(asm: &mut Assembler, seg: &Segment, dst: Mem, kind: ScalarKind) {
    match (seg.width, kind) {
        (SegmentWidth::Scalar, ScalarKind::F32) => asm.vmovss_store(dst, Xmm::new(seg.reg)),
        (SegmentWidth::Scalar, ScalarKind::F64) => asm.vmovsd_store(dst, Xmm::new(seg.reg)),
        (w, ScalarKind::F32) => asm.vmovups_store(dst, VecReg::with_width(seg.reg, w.vec_width())),
        (w, ScalarKind::F64) => asm.vmovupd_store(dst, VecReg::with_width(seg.reg, w.vec_width())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32_binding() -> (CsrMatrix<f32>, MatrixBinding) {
        let m = CsrMatrix::<f32>::from_triplets(
            4,
            4,
            &[(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0), (3, 3, 4.0)],
        )
        .unwrap();
        let b = MatrixBinding::of(&m);
        (m, b)
    }

    fn native_or_skip() -> Option<KernelOptions> {
        let opts = KernelOptions::native();
        if validate_options(&opts).is_err() {
            eprintln!("skipping codegen test: host lacks AVX/FMA");
            return None;
        }
        Some(opts)
    }

    #[test]
    fn validate_rejects_unsupported_isa() {
        let mut opts = KernelOptions::native();
        opts.features = CpuFeatures::none();
        opts.isa = IsaLevel::Avx512;
        assert!(matches!(
            validate_options(&opts),
            Err(JitSpmmError::UnsupportedIsa { .. }) | Err(JitSpmmError::InvalidConfig(_))
        ));
    }

    #[test]
    fn static_kernel_emits_code() {
        let Some(opts) = native_or_skip() else { return };
        let (_m, binding) = f32_binding();
        let gen = generate_static_kernel(binding, 16, ScalarKind::F32, &opts).unwrap();
        assert!(!gen.code.is_empty());
        assert_eq!(gen.plan.d, 16);
    }

    #[test]
    fn listing_mentions_key_instructions() {
        let Some(mut opts) = native_or_skip() else { return };
        opts.listing = true;
        let (_m, binding) = f32_binding();
        let gen = generate_static_kernel(binding, 45, ScalarKind::F32, &opts).unwrap();
        let listing = gen.listing.expect("listing requested");
        let text: String = listing.iter().map(|(_, s)| s.as_str()).collect::<Vec<_>>().join("\n");
        // The structure of Listing 2 must be visible in the emitted stream.
        assert!(text.contains("vbroadcastss"), "missing broadcast:\n{text}");
        assert!(text.contains("vfmadd231ps"), "missing packed FMA:\n{text}");
        if opts.isa == IsaLevel::Avx512 {
            assert!(text.contains("vfmadd231ss"), "d = 45 needs a scalar tail:\n{text}");
            assert!(text.contains("zmm31"), "broadcast register must be zmm31:\n{text}");
        }
        assert!(text.contains("vmovups"), "missing vector store:\n{text}");
    }

    #[test]
    fn dynamic_kernel_embeds_claim_loop() {
        let Some(mut opts) = native_or_skip() else { return };
        opts.listing = true;
        let (_m, binding) = f32_binding();
        let counter = 0u64;
        let gen = generate_dynamic_kernel(
            binding,
            16,
            ScalarKind::F32,
            128,
            &counter as *const u64 as *const u8,
            &opts,
        )
        .unwrap();
        let text: String =
            gen.listing.unwrap().iter().map(|(_, s)| s.as_str()).collect::<Vec<_>>().join("\n");
        assert!(text.contains("lock xadd"), "Listing 1 requires lock xadd:\n{text}");
    }

    #[test]
    fn dynamic_kernel_rejects_zero_batch() {
        let Some(opts) = native_or_skip() else { return };
        let (_m, binding) = f32_binding();
        let counter = 0u64;
        let err = generate_dynamic_kernel(
            binding,
            16,
            ScalarKind::F32,
            0,
            &counter as *const u64 as *const u8,
            &opts,
        )
        .unwrap_err();
        assert!(matches!(err, JitSpmmError::InvalidConfig(_)));
    }

    #[test]
    fn non_ccm_kernel_emits_code_for_ragged_d() {
        let Some(mut opts) = native_or_skip() else { return };
        opts.ccm = false;
        let (_m, binding) = f32_binding();
        for d in [1usize, 7, 16, 45] {
            let gen = generate_static_kernel(binding, d, ScalarKind::F32, &opts).unwrap();
            assert!(!gen.code.is_empty(), "d = {d}");
        }
    }

    #[test]
    fn ccm_kernel_is_larger_for_wider_d() {
        let Some(opts) = native_or_skip() else { return };
        let (_m, binding) = f32_binding();
        let small = generate_static_kernel(binding, 8, ScalarKind::F32, &opts).unwrap();
        let large = generate_static_kernel(binding, 256, ScalarKind::F32, &opts).unwrap();
        assert!(large.code.len() > small.code.len());
    }
}
