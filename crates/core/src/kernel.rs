//! Compiled kernel wrapper: executable code plus metadata.

use crate::schedule::Strategy;
use jitspmm_asm::{AsmError, ExecutableBuffer, IsaLevel};
use jitspmm_sparse::ScalarKind;
use std::marker::PhantomData;
use std::time::Duration;

/// The call shape of a compiled kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// `fn(row_start, row_end, x, y)` — used by all static partitions.
    StaticRange,
    /// `fn(x, y)` — dynamic row dispatching with an embedded `NEXT` counter.
    DynamicDispatch,
}

/// Metadata describing a compiled kernel, reported by
/// [`crate::JitSpmm::meta`] and used by the Table IV harness.
#[derive(Debug, Clone)]
pub struct KernelMeta {
    /// Number of dense columns the kernel was specialized for.
    pub d: usize,
    /// Element kind.
    pub kind: ScalarKind,
    /// ISA tier of the generated code.
    pub isa: IsaLevel,
    /// Whether coarse-grain column merging was applied.
    pub ccm: bool,
    /// Workload-division strategy the kernel was built for.
    pub strategy: Strategy,
    /// Size of the generated machine code in bytes.
    pub code_bytes: usize,
    /// Wall-clock time spent generating and materializing the code.
    pub codegen_time: Duration,
    /// Human-readable register-allocation summary (e.g.
    /// `16(zmm0)+16(zmm1)+8(ymm2)+4(xmm3)+1(xmm4)`).
    pub register_plan: String,
    /// Number of passes over each row's non-zero list (1 unless `d` exceeds
    /// the register file).
    pub nnz_passes: usize,
}

/// A compiled, executable SpMM kernel.
///
/// The type parameter ties the kernel to the element type it was generated
/// for, preventing an `f32` kernel from being invoked with `f64` buffers.
pub struct CompiledKernel<T> {
    buf: ExecutableBuffer,
    kernel_kind: KernelKind,
    listing: Option<Vec<(usize, String)>>,
    _marker: PhantomData<fn(*const T)>,
}

impl<T> std::fmt::Debug for CompiledKernel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledKernel")
            .field("kind", &self.kernel_kind)
            .field("code_bytes", &self.buf.code_len())
            .finish()
    }
}

impl<T> CompiledKernel<T> {
    /// Wrap finalized machine code in executable memory.
    pub(crate) fn new(
        code: &[u8],
        kernel_kind: KernelKind,
        listing: Option<Vec<(usize, String)>>,
    ) -> Result<CompiledKernel<T>, AsmError> {
        Ok(CompiledKernel {
            buf: ExecutableBuffer::from_code(code)?,
            kernel_kind,
            listing,
            _marker: PhantomData,
        })
    }

    /// Wrap an already-materialized executable buffer (a cache-loaded kernel
    /// image that was patched and sealed). No listing is available on this
    /// path: listings are a codegen-time artifact, and engines that request
    /// one bypass the cache.
    pub(crate) fn from_buffer(buf: ExecutableBuffer, kernel_kind: KernelKind) -> CompiledKernel<T> {
        CompiledKernel { buf, kernel_kind, listing: None, _marker: PhantomData }
    }

    /// The call shape of this kernel.
    pub fn kind(&self) -> KernelKind {
        self.kernel_kind
    }

    /// The generated machine code (for inspection, disassembly or emulation).
    pub fn code(&self) -> &[u8] {
        self.buf.code()
    }

    /// The instruction listing, when the engine was built with listing
    /// enabled.
    pub fn listing(&self) -> Option<&[(usize, String)]> {
        self.listing.as_deref()
    }

    /// Invoke a static-range kernel on rows `[start, end)`.
    ///
    /// # Safety
    ///
    /// The kernel embeds raw pointers to the CSR arrays it was compiled
    /// against; those arrays must still be alive and unchanged. `x` must
    /// point to at least `ncols * d` elements and `y` to at least
    /// `nrows * d` writable elements of the correct type, and `start <= end
    /// <= nrows`.
    pub(crate) unsafe fn call_static(&self, start: u64, end: u64, x: *const T, y: *mut T) {
        debug_assert_eq!(self.kernel_kind, KernelKind::StaticRange);
        let f: extern "C" fn(u64, u64, *const T, *mut T) = std::mem::transmute(self.buf.entry());
        f(start, end, x, y);
    }

    /// Invoke a dynamic-dispatch kernel (it loops until the shared counter
    /// runs past the row count).
    ///
    /// # Safety
    ///
    /// Same requirements as [`CompiledKernel::call_static`]; additionally the
    /// embedded `NEXT` counter must still be alive.
    pub(crate) unsafe fn call_dynamic(&self, x: *const T, y: *mut T) {
        debug_assert_eq!(self.kernel_kind, KernelKind::DynamicDispatch);
        let f: extern "C" fn(*const T, *mut T) = std::mem::transmute(self.buf.entry());
        f(x, y);
    }
}
