//! NUMA topology detection and thread pinning — no external dependencies.
//!
//! The shard engine splits large matrices across per-shard engines; on a
//! multi-socket host the wins evaporate if a shard's JIT kernel runs on one
//! node while its CSR arrays and output rows live on another. This module
//! gives the pool just enough placement machinery to keep them together:
//!
//! * [`NumaTopology::detect`] parses `/sys/devices/system/node/node*/cpulist`
//!   once per process. Hosts without that sysfs tree (non-Linux, containers
//!   with masked sysfs, single-node machines) fall back to one node holding
//!   every CPU — on such hosts the pool skips pinning entirely and behaves
//!   exactly as before.
//! * `pin_current_thread` restricts the calling thread to a CPU set via a
//!   raw `sched_setaffinity` syscall (Linux x86_64; a no-op elsewhere).
//!   Pinning is best-effort: a failed syscall only costs locality, never
//!   correctness.
//!
//! Placement policy lives with the callers: the pool pins worker `i` to node
//! `i % nodes` (only when there is more than one node), and the shard engine
//! tags each shard's jobs with a preferred node so its lanes, first-touched
//! output rows, and borrowed CSR slices stay resident together.

use std::path::Path;
use std::sync::OnceLock;

/// One NUMA node: its sysfs id and the CPUs it owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaNode {
    /// Node id as named by sysfs (`nodeN`).
    pub id: usize,
    /// CPU numbers local to this node, sorted ascending.
    pub cpus: Vec<usize>,
}

/// The host's NUMA layout. Obtain via [`NumaTopology::detect`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaTopology {
    nodes: Vec<NumaNode>,
}

impl NumaTopology {
    /// The process-wide topology, probed once and cached.
    pub fn detect() -> &'static NumaTopology {
        static TOPOLOGY: OnceLock<NumaTopology> = OnceLock::new();
        TOPOLOGY.get_or_init(|| {
            NumaTopology::from_sysfs(Path::new("/sys/devices/system/node"))
                .unwrap_or_else(NumaTopology::single_node)
        })
    }

    /// All nodes, sorted by id. Never empty.
    pub fn nodes(&self) -> &[NumaNode] {
        &self.nodes
    }

    /// Number of nodes (>= 1).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Whether placement can matter at all on this host.
    pub fn is_multi_node(&self) -> bool {
        self.nodes.len() > 1
    }

    /// Parse a sysfs node directory. `None` when the tree is absent or holds
    /// no usable `node*/cpulist` entries, in which case the caller falls
    /// back to [`NumaTopology::single_node`].
    fn from_sysfs(root: &Path) -> Option<NumaTopology> {
        let entries = std::fs::read_dir(root).ok()?;
        let mut nodes = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(id) = name.strip_prefix("node").and_then(|s| s.parse::<usize>().ok()) else {
                continue;
            };
            let Ok(cpulist) = std::fs::read_to_string(entry.path().join("cpulist")) else {
                continue;
            };
            let cpus = parse_cpulist(&cpulist);
            if !cpus.is_empty() {
                nodes.push(NumaNode { id, cpus });
            }
        }
        if nodes.is_empty() {
            return None;
        }
        nodes.sort_by_key(|node| node.id);
        Some(NumaTopology { nodes })
    }

    /// Fallback topology: one node owning every CPU the pool would use.
    fn single_node() -> NumaTopology {
        let cpus = (0..std::thread::available_parallelism().map_or(1, usize::from)).collect();
        NumaTopology { nodes: vec![NumaNode { id: 0, cpus }] }
    }
}

/// Parse the kernel's cpulist format: comma-separated entries that are
/// either a bare CPU number (`7`) or an inclusive range (`0-3`). Malformed
/// entries are skipped — a partial CPU set still beats no pinning.
fn parse_cpulist(list: &str) -> Vec<usize> {
    let mut cpus = Vec::new();
    for entry in list.trim().split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = entry.split_once('-') {
            if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                cpus.extend(lo..=hi);
            }
        } else if let Ok(cpu) = entry.parse::<usize>() {
            cpus.push(cpu);
        }
    }
    cpus.sort_unstable();
    cpus.dedup();
    cpus
}

/// Restrict the calling thread to `cpus` via `sched_setaffinity(0, ...)`.
/// Best-effort: failures (and CPUs >= 1024) are ignored — an unpinned
/// worker still computes correct results, it just loses locality. No-op on
/// non-Linux-x86_64 targets and for an empty CPU set.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub(crate) fn pin_current_thread(cpus: &[usize]) {
    const SYS_SCHED_SETAFFINITY: i64 = 203;
    // 1024-bit mask, the kernel's conventional cpu_set_t size.
    let mut mask = [0u64; 16];
    let mut any = false;
    for &cpu in cpus {
        if cpu < mask.len() * 64 {
            mask[cpu / 64] |= 1 << (cpu % 64);
            any = true;
        }
    }
    if !any {
        return;
    }
    let ret: i64;
    // SAFETY: x86_64 Linux syscall ABI; sched_setaffinity(pid=0 → calling
    // thread, size in bytes, pointer to the mask). The mask outlives the
    // call; rcx/r11 are clobbered by `syscall`.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_SCHED_SETAFFINITY => ret,
            in("rdi") 0u64,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
    }
    let _ = ret; // best-effort: a failed pin only loses locality
}

/// Non-Linux / non-x86_64 stub: pinning is unavailable, correctness is
/// unaffected.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
pub(crate) fn pin_current_thread(_cpus: &[usize]) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpulist_parses_ranges_singles_and_junk() {
        assert_eq!(parse_cpulist("0-3,8-11\n"), vec![0, 1, 2, 3, 8, 9, 10, 11]);
        assert_eq!(parse_cpulist("7"), vec![7]);
        assert_eq!(parse_cpulist(" 2 , 0 - 1 "), vec![0, 1, 2]);
        assert_eq!(parse_cpulist("3,1-2,2-3"), vec![1, 2, 3]);
        assert_eq!(parse_cpulist(""), Vec::<usize>::new());
        assert_eq!(parse_cpulist("x,4,-,5-"), vec![4]);
    }

    #[test]
    fn detect_always_yields_at_least_one_node_with_cpus() {
        let topology = NumaTopology::detect();
        assert!(!topology.nodes().is_empty());
        for node in topology.nodes() {
            assert!(!node.cpus.is_empty());
        }
        assert_eq!(topology.is_multi_node(), topology.num_nodes() > 1);
    }

    #[test]
    fn sysfs_parse_reads_node_directories() {
        let root = std::env::temp_dir().join(format!("jitspmm-numa-test-{}", std::process::id()));
        let make = |name: &str, cpulist: &str| {
            let dir = root.join(name);
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("cpulist"), cpulist).unwrap();
        };
        make("node1", "4-7");
        make("node0", "0-3");
        std::fs::create_dir_all(root.join("possible")).unwrap(); // non-node entry: ignored

        let topology = NumaTopology::from_sysfs(&root).unwrap();
        assert_eq!(topology.num_nodes(), 2);
        assert_eq!(topology.nodes()[0], NumaNode { id: 0, cpus: vec![0, 1, 2, 3] });
        assert_eq!(topology.nodes()[1], NumaNode { id: 1, cpus: vec![4, 5, 6, 7] });

        std::fs::remove_dir_all(&root).unwrap();
        assert!(NumaTopology::from_sysfs(&root).is_none());
    }

    #[test]
    fn pinning_to_all_cpus_is_harmless() {
        // Pin to the full set of the first node — a superset of wherever we
        // already run on single-node hosts, so this must never break the
        // thread. Purely exercises the syscall path.
        let node = &NumaTopology::detect().nodes()[0];
        pin_current_thread(&node.cpus);
        pin_current_thread(&[]);
    }
}
