//! [`WakeSlot`]: the pool's park/wake primitive — a futex word on Linux,
//! a mutex + condvar everywhere else.
//!
//! # Why not just the condvar
//!
//! The worker pool's per-launch handoff (submit → wake a worker → worker
//! claims) and completion handoff (last participant → wake the waiter) both
//! went through `std::sync::Condvar`. A condvar wake takes the associated
//! mutex on the waiter's way out and round-trips through the parking-lot
//! machinery; on small engines that latency dominates the dispatch tail
//! (`BENCH_serve_mixed.json` showed dispatch p99 at 3-8x kernel p50). A raw
//! futex word needs no mutex to *wait* — the kernel compares the word and
//! sleeps atomically — so the completion wait in
//! `WorkerPool::help_and_wait` becomes entirely lock-free, and wake-ups are
//! one `FUTEX_WAKE` syscall with no mutex handoff.
//!
//! # The epoch protocol
//!
//! A [`WakeSlot`] holds a 32-bit *epoch* counter. The coordination contract
//! (the same one condvars have, made explicit):
//!
//! 1. A waiter reads [`WakeSlot::epoch`] **while holding the mutex that
//!    guards the predicate** (or, for lock-free predicates like a `done`
//!    flag, before re-checking the predicate), re-checks the predicate, and
//!    if it must block calls [`WakeSlot::wait`] with that epoch — which
//!    returns immediately if the epoch has moved on.
//! 2. A waker makes the predicate true, calls [`WakeSlot::bump`] while the
//!    predicate's guard is still held (so the bump cannot slip between a
//!    waiter's predicate check and its `wait`), then calls
//!    [`WakeSlot::wake_one`]/[`WakeSlot::wake_all`] — after dropping the
//!    guard, if it likes.
//!
//! [`WakeSlot::wait`] may return spuriously; callers always loop around
//! their predicate, exactly as with a condvar.
//!
//! # Platform gating
//!
//! The futex implementation is behind
//! `#[cfg(all(feature = "futex", target_os = "linux", target_arch =
//! "x86_64"))]` — a raw `syscall` instruction, no new dependencies. The
//! `futex` feature is on by default; building with
//! `--no-default-features` (or on any other platform) selects the condvar
//! fallback, which implements the identical epoch protocol. Which one is
//! active is visible via [`WakeSlot::FUTEX_BACKED`], so benches can label
//! their numbers.

use std::sync::atomic::{AtomicU32, Ordering};

/// Futex-word implementation: the epoch *is* the futex word.
#[cfg(all(feature = "futex", target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::{AtomicU32, Ordering};

    const SYS_FUTEX: i64 = 202;
    /// `FUTEX_WAIT | FUTEX_PRIVATE_FLAG` — private: all waiters share this
    /// process, sparing the kernel the cross-process hash lookup.
    const FUTEX_WAIT_PRIVATE: u64 = 128;
    /// `FUTEX_WAKE | FUTEX_PRIVATE_FLAG`.
    const FUTEX_WAKE_PRIVATE: u64 = 1 | 128;

    pub(super) const FUTEX_BACKED: bool = true;

    pub(super) struct Imp {
        epoch: AtomicU32,
    }

    impl Imp {
        pub(super) fn new() -> Imp {
            Imp { epoch: AtomicU32::new(0) }
        }

        pub(super) fn epoch(&self) -> u32 {
            self.epoch.load(Ordering::Acquire)
        }

        pub(super) fn bump(&self) {
            self.epoch.fetch_add(1, Ordering::Release);
        }

        pub(super) fn wait(&self, epoch: u32) {
            if self.epoch.load(Ordering::Acquire) != epoch {
                return;
            }
            // FUTEX_WAIT re-checks `word == epoch` inside the kernel before
            // sleeping, atomically with respect to FUTEX_WAKE — a bump
            // between our load above and the syscall makes it return
            // immediately (EAGAIN). Errors (EINTR included) surface as a
            // spurious return; callers loop on their predicate.
            unsafe { futex(&self.epoch, FUTEX_WAIT_PRIVATE, epoch as u64) };
        }

        pub(super) fn wake_one(&self) {
            unsafe { futex(&self.epoch, FUTEX_WAKE_PRIVATE, 1) };
        }

        pub(super) fn wake_all(&self) {
            unsafe { futex(&self.epoch, FUTEX_WAKE_PRIVATE, i32::MAX as u64) };
        }
    }

    /// Raw `futex(word, op, val, NULL, ...)` syscall. The last two futex
    /// arguments (`uaddr2`, `val3`) are ignored by WAIT/WAKE and left unset.
    ///
    /// # Safety
    ///
    /// `word` must outlive the call (guaranteed: it's a reference). The
    /// syscall itself cannot corrupt process state for WAIT/WAKE ops.
    unsafe fn futex(word: &AtomicU32, op: u64, val: u64) -> i64 {
        let ret: i64;
        // SAFETY: x86_64 Linux syscall ABI — args in rdi/rsi/rdx/r10, number
        // in rax, return in rax; rcx and r11 are clobbered by `syscall`.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_FUTEX => ret,
                in("rdi") word.as_ptr(),
                in("rsi") op,
                in("rdx") val,
                in("r10") 0u64, // timeout = NULL: wait indefinitely
                out("rcx") _,
                out("r11") _,
                options(nostack),
            );
        }
        ret
    }
}

/// Condvar fallback: same epoch protocol, portable everywhere. The internal
/// mutex protects only the park/notify race (a waker takes it briefly before
/// notifying, so a waiter that saw a stale epoch is already parked).
#[cfg(not(all(feature = "futex", target_os = "linux", target_arch = "x86_64")))]
mod imp {
    use super::{AtomicU32, Ordering};
    use std::sync::{Condvar, Mutex};

    pub(super) const FUTEX_BACKED: bool = false;

    pub(super) struct Imp {
        epoch: AtomicU32,
        lock: Mutex<()>,
        cv: Condvar,
    }

    impl Imp {
        pub(super) fn new() -> Imp {
            Imp { epoch: AtomicU32::new(0), lock: Mutex::new(()), cv: Condvar::new() }
        }

        pub(super) fn epoch(&self) -> u32 {
            self.epoch.load(Ordering::Acquire)
        }

        pub(super) fn bump(&self) {
            self.epoch.fetch_add(1, Ordering::Release);
        }

        pub(super) fn wait(&self, epoch: u32) {
            let mut guard = self.lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            while self.epoch.load(Ordering::Acquire) == epoch {
                guard = self.cv.wait(guard).unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }

        pub(super) fn wake_one(&self) {
            // Lock-then-notify: a waiter between its epoch check and its
            // park holds the lock, so by the time we acquire it the waiter
            // is parked (and gets the notify) or not yet locked (and will
            // see the bumped epoch).
            drop(self.lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner()));
            self.cv.notify_one();
        }

        pub(super) fn wake_all(&self) {
            drop(self.lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner()));
            self.cv.notify_all();
        }
    }
}

/// An epoch-counted park/wake slot: futex-backed on Linux x86_64 (with the
/// default `futex` feature), condvar-backed elsewhere. See the
/// [module docs](self) for the protocol.
pub struct WakeSlot {
    imp: imp::Imp,
}

impl WakeSlot {
    /// Whether this build's slots are futex-backed (`false` = condvar
    /// fallback). Benches record this next to their wake latencies.
    pub const FUTEX_BACKED: bool = imp::FUTEX_BACKED;

    /// A fresh slot at epoch zero.
    pub fn new() -> WakeSlot {
        WakeSlot { imp: imp::Imp::new() }
    }

    /// The current epoch. Read it under the mutex that guards the waited-on
    /// predicate (or before re-checking a lock-free predicate), then pass it
    /// to [`WakeSlot::wait`].
    pub fn epoch(&self) -> u32 {
        self.imp.epoch()
    }

    /// Block until the epoch moves past `epoch` — or spuriously; callers
    /// loop around their predicate. Returns immediately if the epoch has
    /// already moved.
    pub fn wait(&self, epoch: u32) {
        self.imp.wait(epoch);
    }

    /// Advance the epoch. Call while the predicate's guard is still held so
    /// the bump cannot fall between a waiter's predicate check and its
    /// `wait`.
    pub fn bump(&self) {
        self.imp.bump();
    }

    /// Wake one waiter (callable after the guard is dropped).
    pub fn wake_one(&self) {
        self.imp.wake_one();
    }

    /// Wake every waiter (callable after the guard is dropped).
    pub fn wake_all(&self) {
        self.imp.wake_all();
    }
}

impl Default for WakeSlot {
    fn default() -> WakeSlot {
        WakeSlot::new()
    }
}

impl std::fmt::Debug for WakeSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WakeSlot")
            .field("epoch", &self.epoch())
            .field("futex", &WakeSlot::FUTEX_BACKED)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn wait_returns_immediately_on_stale_epoch() {
        let slot = WakeSlot::new();
        let epoch = slot.epoch();
        slot.bump();
        let start = Instant::now();
        slot.wait(epoch); // epoch already moved: must not block
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_ne!(slot.epoch(), epoch);
    }

    #[test]
    fn bump_then_wake_releases_a_parked_waiter() {
        let slot = Arc::new(WakeSlot::new());
        let released = Arc::new(AtomicBool::new(false));
        let waiter = {
            let slot = Arc::clone(&slot);
            let released = Arc::clone(&released);
            std::thread::spawn(move || {
                // Condvar discipline: loop on the predicate (here: "epoch
                // has moved past the one we captured").
                let epoch = slot.epoch();
                while slot.epoch() == epoch {
                    slot.wait(epoch);
                }
                released.store(true, Ordering::SeqCst);
            })
        };
        // Give the waiter a chance to park, then wake it.
        std::thread::sleep(Duration::from_millis(20));
        slot.bump();
        slot.wake_all();
        waiter.join().unwrap();
        assert!(released.load(Ordering::SeqCst));
    }

    #[test]
    fn wake_one_chains_across_many_waiters() {
        let slot = Arc::new(WakeSlot::new());
        let woken = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let slot = Arc::clone(&slot);
                let woken = Arc::clone(&woken);
                std::thread::spawn(move || {
                    let epoch = slot.epoch();
                    while slot.epoch() == epoch {
                        slot.wait(epoch);
                    }
                    woken.fetch_add(1, Ordering::SeqCst);
                    // Notify-one chain: each released waiter wakes the next.
                    slot.wake_one();
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        slot.bump();
        slot.wake_one();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(woken.load(Ordering::SeqCst), 4);
    }
}
