//! The persistent worker pool: threads are spawned once, park on a condvar,
//! and are woken per job by an epoch bump.
//!
//! # Why not `std::thread::scope` per call?
//!
//! JITSPMM's premise is compile-once/run-many: code generation is amortized,
//! so steady-state `execute()` latency *is* the product. Spawning and joining
//! OS threads costs tens of microseconds — more than the SpMM kernel itself
//! on small and mid-sized matrices. The pool replaces that with a condvar
//! wake of already-running, parked threads: submission publishes a job
//! descriptor (an erased `fn(task_index)` plus a task count), bumps an epoch,
//! and wakes the workers; each worker claims task indices from a shared
//! atomic counter (the same `lock xadd` discipline the paper's dynamic
//! row-split uses, applied one level up), runs them, and checks in. The
//! submitting thread participates in the claim loop too, so a pool of `N`
//! workers executes a job with up to `N + 1` lanes and a zero-worker pool
//! degenerates to inline execution.
//!
//! One job runs at a time per pool (submission is serialized by a mutex);
//! engines sharing a pool therefore interleave executions instead of
//! oversubscribing the machine.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

thread_local! {
    /// Whether the current thread is executing a pool task. A task that
    /// re-enters `WorkerPool::run` (directly, or through an engine or
    /// baseline) falls back to inline execution. The flag is deliberately
    /// per-thread rather than per-pool: same-pool re-entry would deadlock on
    /// the job mutexes, and a cross-pool submission chain can cycle back to
    /// the originating pool through another pool's workers — a cycle no
    /// per-pool bookkeeping can see from a single thread. Running any nested
    /// job inline trades its parallelism for guaranteed deadlock freedom.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard marking the current thread as executing pool tasks.
struct TaskScope {
    previous: bool,
}

impl TaskScope {
    fn enter() -> TaskScope {
        TaskScope { previous: IN_POOL_TASK.replace(true) }
    }
}

impl Drop for TaskScope {
    fn drop(&mut self) {
        IN_POOL_TASK.set(self.previous);
    }
}

/// Lock a mutex, ignoring poisoning (a panicked task must not wedge the
/// pool for every other engine sharing it). Shared by the runtime and the
/// engine for every launch-path mutex.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The type every job is erased to: `call(data, task_index)`.
type ErasedTask = unsafe fn(*const (), usize);

/// Job slot shared between the submitter and the workers. All fields are
/// published under [`Shared::state`]'s mutex before the epoch bump that
/// makes workers read them.
struct JobState {
    /// Generation counter; a bump signals a new job.
    epoch: u64,
    /// Tells workers to exit their loop (set once, on pool drop).
    shutdown: bool,
    /// Number of task indices in the current job.
    tasks: usize,
    /// Erased pointer to the job closure (valid only while the submitting
    /// `run` call is blocked, which is exactly when workers may use it).
    data: usize,
    /// The monomorphized trampoline that re-types `data` (an [`ErasedTask`]).
    call: usize,
    /// Remaining worker participation slots for the current job. A job with
    /// fewer tasks than the pool has workers only needs that many workers;
    /// the rest go straight back to sleep without joining the job.
    participants: usize,
    /// Participating workers that have not yet checked in for the current
    /// job (equals the initial `participants`; the submitter waits for it
    /// to reach zero).
    active: usize,
}

struct Shared {
    state: Mutex<JobState>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The submitter parks here until every worker has checked in.
    done_cv: Condvar,
    /// Task-index claim counter (reset per job).
    next: AtomicUsize,
    /// Maximum per-participant busy time of the current job, in nanoseconds.
    busy_ns: AtomicU64,
    /// Payload of the first task panic of the current job, re-raised by the
    /// submitter once the job has fully completed.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Shared {
    /// Record a task panic (first payload wins).
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = lock(&self.panic_payload);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

struct PoolInner {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes jobs: one at a time per pool.
    submit: Mutex<()>,
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A persistent pool of parked worker threads.
///
/// Cloning is cheap (an `Arc` bump) and yields a handle to the same pool;
/// the threads exit when the last handle is dropped. Engines built through
/// [`crate::JitSpmmBuilder`] share the process-wide [`WorkerPool::global`]
/// pool unless one is supplied explicitly, so any number of engines can
/// coexist without multiplying threads.
///
/// # Example
///
/// ```
/// use jitspmm::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = WorkerPool::new(2);
/// let hits = AtomicUsize::new(0);
/// pool.run(16, &|_task| {
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 16);
/// ```
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.size()).finish()
    }
}

impl WorkerPool {
    /// Spawn a pool with `workers` threads (`0` = one per hardware thread;
    /// for a pool that spawns no threads at all, see [`WorkerPool::inline`]).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = if workers == 0 { default_parallelism() } else { workers };
        WorkerPool::with_exact_workers(workers)
    }

    /// A pool of zero threads: every job runs inline on the submitting
    /// thread. Useful for tests (no threads are ever spawned) and for
    /// comparing against true parallelism.
    pub fn inline() -> WorkerPool {
        WorkerPool::with_exact_workers(0)
    }

    fn with_exact_workers(workers: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(JobState {
                epoch: 0,
                shutdown: false,
                tasks: 0,
                data: 0,
                call: 0,
                participants: 0,
                active: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            busy_ns: AtomicU64::new(0),
            panic_payload: Mutex::new(None),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("jitspmm-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool { inner: Arc::new(PoolInner { shared, handles, submit: Mutex::new(()) }) }
    }

    /// The process-wide default pool (one worker per hardware thread),
    /// created on first use and kept alive for the process lifetime.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(0))
    }

    /// Number of worker threads in the pool (the submitting thread
    /// participates in every job on top of these).
    pub fn size(&self) -> usize {
        self.inner.handles.len()
    }

    /// Resolve a requested lane count against this pool: `0` means one lane
    /// per pool worker (minimum one, so inline pools still get a lane).
    /// Shared by the engine and the AOT baselines so both sides of the
    /// paper's comparisons resolve parallelism identically.
    pub fn lanes_for(&self, requested: usize) -> usize {
        if requested > 0 {
            requested
        } else {
            self.size().max(1)
        }
    }

    /// Run one job: `task` is invoked exactly once for every index in
    /// `0..tasks`, distributed over the pool's workers plus the calling
    /// thread, which blocks until the job is complete. Returns the maximum
    /// per-participant busy time — the job's critical-path execution time,
    /// excluding wake-up and join overhead.
    ///
    /// Jobs are serialized: concurrent `run` calls from different threads
    /// queue on an internal mutex, so a shared pool never oversubscribes.
    /// Re-entrant calls — a task invoking `run` on *any* pool (directly, or
    /// through an engine or baseline) — execute the nested job inline on the
    /// calling thread instead of risking deadlock on the job mutexes; a
    /// nested job therefore runs single-lane even when targeting a
    /// different, idle pool.
    ///
    /// # Panics
    ///
    /// If any task panics, every remaining task still runs (the pool must
    /// never be wedged by a bad job) and the first panic payload is
    /// re-raised here after the job completes.
    pub fn run<F: Fn(usize) + Sync>(&self, tasks: usize, task: &F) -> Duration {
        if tasks == 0 {
            return Duration::ZERO;
        }
        // Re-types the erased data pointer back to `&F`. Sound because the
        // pointer is only dereferenced between job publication and the final
        // check-in, and `run` does not return before the latter.
        unsafe fn trampoline<F: Fn(usize)>(data: *const (), index: usize) {
            (*(data as *const F))(index);
        }

        let inner = &self.inner;
        if IN_POOL_TASK.get() {
            // Re-entrant submission from inside a pool task (this pool or
            // any other — see IN_POOL_TASK): run nested work inline on this
            // thread rather than risk a job-mutex deadlock cycle.
            let start = Instant::now();
            for index in 0..tasks {
                task(index);
            }
            return start.elapsed();
        }

        // One job at a time per pool: the submit lock serializes every run,
        // including the inline fast path below, so a shared pool never
        // oversubscribes the machine.
        let _job_guard = lock(&inner.submit);
        if inner.handles.is_empty() || tasks == 1 {
            // Zero-worker pool, or a single-task job: the submitting thread
            // runs the work inline. For one task this is strictly faster
            // than a worker handoff (no wake-up, no cross-thread latency),
            // which matters for single-lane engines on small matrices.
            let _scope = TaskScope::enter();
            let start = Instant::now();
            for index in 0..tasks {
                task(index);
            }
            return start.elapsed();
        }

        // The submitter participates too, so `tasks` worker lanes already
        // give the job `tasks + 1` claimants; more workers would only wake,
        // claim nothing, and delay the join.
        let participants = inner.handles.len().min(tasks);
        let shared = &inner.shared;
        {
            let mut state = lock(&shared.state);
            state.tasks = tasks;
            state.data = task as *const F as usize;
            state.call = trampoline::<F> as ErasedTask as usize;
            state.participants = participants;
            state.active = participants;
            shared.next.store(0, Ordering::SeqCst);
            shared.busy_ns.store(0, Ordering::Relaxed);
            state.epoch += 1;
            shared.work_cv.notify_all();
        }

        // Participate in the claim loop alongside the workers.
        {
            let _scope = TaskScope::enter();
            let start = Instant::now();
            loop {
                let index = shared.next.fetch_add(1, Ordering::Relaxed);
                if index >= tasks {
                    break;
                }
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(index))) {
                    shared.record_panic(payload);
                }
            }
            shared.busy_ns.fetch_max(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }

        // Wait for every worker to check in; only then may the borrow of
        // `task` end.
        {
            let mut state = lock(&shared.state);
            while state.active > 0 {
                state = shared
                    .done_cv
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
        if let Some(payload) = lock(&shared.panic_payload).take() {
            resume_unwind(payload);
        }
        Duration::from_nanos(shared.busy_ns.load(Ordering::Relaxed))
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let (tasks, data, call) = {
            let mut state = lock(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    if state.participants > 0 {
                        // Claim one of the job's participation slots.
                        state.participants -= 1;
                        break;
                    }
                    // The job has all the workers it needs; skip it and go
                    // back to sleep without touching the check-in count.
                    seen_epoch = state.epoch;
                }
                state = shared
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            seen_epoch = state.epoch;
            (state.tasks, state.data, state.call)
        };
        // SAFETY: `call` was produced from an `ErasedTask` by the submitter
        // of epoch `seen_epoch`, which is still blocked in `run` until this
        // thread checks in below, keeping `data` alive.
        let call: ErasedTask = unsafe { std::mem::transmute::<usize, ErasedTask>(call) };
        {
            let _scope = TaskScope::enter();
            let start = Instant::now();
            loop {
                let index = shared.next.fetch_add(1, Ordering::Relaxed);
                if index >= tasks {
                    break;
                }
                // SAFETY: as above; disjoint indices make concurrent calls
                // safe.
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| unsafe { call(data as *const (), index) }));
                if let Err(payload) = outcome {
                    shared.record_panic(payload);
                }
            }
            shared.busy_ns.fetch_max(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        let mut state = lock(&shared.state);
        state.active -= 1;
        if state.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(3);
        let flags: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run(100, &|i| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.run(0, &|_| panic!("must not run")), Duration::ZERO);
    }

    #[test]
    fn inline_pool_runs_on_caller() {
        let pool = WorkerPool::inline();
        assert_eq!(pool.size(), 0);
        let caller = std::thread::current().id();
        pool.run(4, &|_| assert_eq!(std::thread::current().id(), caller));
    }

    #[test]
    fn jobs_reuse_the_same_threads() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(8, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 50 * 8);
        assert_eq!(pool.size(), 2);
    }

    #[test]
    fn concurrent_submitters_serialize_correctly() {
        let pool = WorkerPool::new(4);
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..20 {
                        pool.run(16, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 20 * 16);
    }

    #[test]
    fn panicking_task_propagates_without_wedging() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("boom in task 3");
                }
            });
        }));
        // The original payload must survive, not a generic pool message.
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "boom in task 3");
        // The pool must still work afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(8, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn reentrant_run_from_a_task_executes_inline() {
        let pool = WorkerPool::new(2);
        let outer = AtomicUsize::new(0);
        let inner_hits = AtomicUsize::new(0);
        pool.run(4, &|_| {
            outer.fetch_add(1, Ordering::Relaxed);
            // A task submitting to its own pool must not deadlock; the
            // nested job runs inline on this thread.
            pool.run(3, &|_| {
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 4);
        assert_eq!(inner_hits.load(Ordering::Relaxed), 4 * 3);
    }

    #[test]
    fn busy_time_reflects_work() {
        let pool = WorkerPool::new(2);
        let busy = pool.run(2, &|_| std::thread::sleep(Duration::from_millis(5)));
        assert!(busy >= Duration::from_millis(5));
    }

    #[test]
    fn clones_share_the_pool_and_drop_cleanly() {
        let pool = WorkerPool::new(1);
        let clone = pool.clone();
        drop(pool);
        let hits = AtomicUsize::new(0);
        clone.run(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }
}
