//! The persistent worker pool: threads are spawned once, park on a
//! [`WakeSlot`] (a futex word on Linux, a condvar elsewhere — see
//! [`super::wake`]), and serve jobs from a FIFO queue with per-job lane
//! capping, a notify-one wake chain, NUMA-aware worker pinning and deferred
//! (asynchronous) submission.
//!
//! # Why not `std::thread::scope` per call?
//!
//! JITSPMM's premise is compile-once/run-many: code generation is amortized,
//! so steady-state `execute()` latency *is* the product. Spawning and joining
//! OS threads costs tens of microseconds — more than the SpMM kernel itself
//! on small and mid-sized matrices. The pool replaces that with parked,
//! already-running threads: submission publishes a job descriptor (an erased
//! `fn(task_index)` plus a task count) into a queue and wakes one worker;
//! each participating worker claims task indices from the job's atomic
//! counter (the same `lock xadd` discipline the paper's dynamic row-split
//! uses, applied one level up) and checks in when the indices run out.
//!
//! # Jobs pipeline instead of serializing
//!
//! Any number of jobs may be in flight at once. Each worker serves one job
//! at a time, so the machine is never oversubscribed, but a worker that
//! finishes its share of one job flows directly into the next queued job
//! without re-parking. [`JobSpec::max_lanes`] caps how many workers one job
//! may occupy, so two capped jobs run on disjoint worker subsets and
//! genuinely overlap rather than thrashing the whole pool.
//!
//! # Wake cost is bounded by the lanes a job uses
//!
//! Submission wakes exactly one worker ([`WakeSlot::wake_one`]). A worker
//! that claims a lane and observes that more lane slots (of its job or a
//! queued successor) are still unclaimed wakes one more — a notify-one
//! chain. A job that needs `k` lanes therefore causes O(k) wake-ups, where
//! the previous `notify_all` design briefly woke every parked worker in the
//! pool regardless of job size. The first participant to reach a deferred
//! job also records the enqueue→first-claim *wake latency* on the job
//! (`JobCore::wake_ns`), which the engine surfaces as
//! [`crate::ExecutionReport::wake`].
//!
//! # NUMA placement
//!
//! On multi-node hosts ([`NumaTopology::is_multi_node`]) worker `i` is
//! pinned to node `i % nodes`. A job may carry a soft node preference
//! ([`JobSpec::prefer_node`]): a claiming worker scans the queue for the
//! first job that prefers its node (or has no preference) and only falls
//! back to a mismatched job when nothing else is claimable — locality
//! steering that never idles a worker while work exists. On single-node
//! hosts nothing is pinned and claiming degenerates to the exact FIFO
//! front-of-queue behaviour it always had.
//!
//! # Blocking and deferred submission
//!
//! [`WorkerPool::run`] (and [`WorkerPool::run_spec`]) submit a job and block
//! until it completes, participating in the task claim loop alongside the
//! workers. [`WorkerPool::submit`] instead returns a [`JobHandle`]
//! immediately; the job runs in the background and [`JobHandle::wait`] joins
//! it — with the waiting thread stealing that job's remaining tasks, so a
//! submitter that turns around and waits loses nothing over the blocking
//! path. Tasks that borrow local state run deferred inside
//! [`WorkerPool::scope`], which joins every job submitted through it before
//! returning.
//!
//! # Deferred submission never relies on a destructor
//!
//! `mem::forget` is safe, so memory safety may not depend on a handle's
//! `Drop` running (the pre-1.0 `thread::JoinGuard` lesson). Deferred
//! submission is therefore structured so that leaking a handle leaks
//! allocations instead of dangling pointers: [`WorkerPool::submit`] *owns*
//! its task (`'static` bound) — a leaked [`JobHandle`] leaks the closure and
//! its share of the job descriptor, which workers may then dereference
//! indefinitely — and [`PoolScope::submit`] accepts borrowed tasks because
//! the scope holds its own share of every in-flight job's descriptor and
//! joins all of its jobs inside [`WorkerPool::scope`]'s own stack frame,
//! which no handle-leaking can skip, before any borrow handed to it can end.

use super::numa::{pin_current_thread, NumaTopology};
use super::wake::WakeSlot;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

thread_local! {
    /// Whether the current thread is executing a pool task. A task that
    /// re-enters `WorkerPool::run` (directly, or through an engine or
    /// baseline) falls back to inline execution. The flag is deliberately
    /// per-thread rather than per-pool: same-pool re-entry would deadlock on
    /// the job bookkeeping, and a cross-pool submission chain can cycle back
    /// to the originating pool through another pool's workers — a cycle no
    /// per-pool bookkeeping can see from a single thread. Running any nested
    /// job inline trades its parallelism for guaranteed deadlock freedom.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard marking the current thread as executing pool tasks.
struct TaskScope {
    previous: bool,
}

impl TaskScope {
    fn enter() -> TaskScope {
        TaskScope { previous: IN_POOL_TASK.replace(true) }
    }
}

impl Drop for TaskScope {
    fn drop(&mut self) {
        IN_POOL_TASK.set(self.previous);
    }
}

/// Lock a mutex, ignoring poisoning (a panicked task must not wedge the
/// pool for every other engine sharing it). Shared by the runtime and the
/// engine for every launch-path mutex.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The type every job is erased to: `call(data, task_index)`.
pub(crate) type ErasedTask = unsafe fn(*const (), usize);

/// Re-types the erased data pointer back to `&F`. Sound because the pointer
/// is only dereferenced while the job is live, and submission keeps `F`
/// alive that long: [`WorkerPool::submit`] owns it (leaked along with a
/// leaked handle), and [`PoolScope::submit`] borrows it for at least the
/// scope, which joins every job before returning.
unsafe fn trampoline<F: Fn(usize)>(data: *const (), index: usize) {
    (*(data as *const F))(index);
}

/// Run all `tasks` indices inline on the current thread (the fallback when
/// there is nothing to defer to), collecting the first panic payload instead
/// of unwinding so callers can defer it to `wait` like the threaded path.
///
/// # Safety
///
/// `call(data, index)` must be sound for every `index in 0..tasks`.
unsafe fn run_inline(
    tasks: usize,
    data: *const (),
    call: ErasedTask,
) -> (Duration, Option<Box<dyn std::any::Any + Send>>) {
    let _scope = TaskScope::enter();
    let start = Instant::now();
    let mut panic = None;
    for index in 0..tasks {
        // SAFETY: forwarded from the caller's contract.
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| unsafe { call(data, index) })) {
            panic.get_or_insert(payload);
        }
    }
    (start.elapsed(), panic)
}

/// Describes one job: how many task indices it has and how many worker
/// lanes it may occupy.
///
/// The task function is invoked exactly once for every index in `0..tasks`,
/// distributed over at most `max_lanes` pool workers (plus the submitting
/// thread, which steals tasks whenever it blocks in [`WorkerPool::run`] or
/// [`JobHandle::wait`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Number of task indices (`0..tasks`) to execute.
    pub tasks: usize,
    /// Maximum number of pool workers this job may occupy; `0` means
    /// uncapped (up to one worker per task). Capping lets concurrent jobs
    /// run on disjoint worker subsets instead of contending for the whole
    /// pool.
    pub max_lanes: usize,
    /// Soft NUMA placement preference: workers pinned to this node claim
    /// the job first. `None` (the default) means any worker. See
    /// [`JobSpec::prefer_node`].
    pub node: Option<usize>,
}

impl JobSpec {
    /// A job with `tasks` indices, no lane cap and no node preference.
    pub fn new(tasks: usize) -> JobSpec {
        JobSpec { tasks, max_lanes: 0, node: None }
    }

    /// Cap the job to at most `max_lanes` pool workers (`0` = uncapped).
    pub fn max_lanes(mut self, max_lanes: usize) -> JobSpec {
        self.max_lanes = max_lanes;
        self
    }

    /// Prefer workers pinned to NUMA node `node` (`None` = no preference).
    ///
    /// This is a *soft* preference: matching workers claim the job ahead of
    /// queue order, but a worker with nothing matching to do still takes
    /// mismatched jobs — locality never costs throughput. On single-node
    /// hosts (where workers are unpinned) the preference is ignored.
    pub fn prefer_node(mut self, node: Option<usize>) -> JobSpec {
        self.node = node;
        self
    }
}

/// Per-job state shared between the submitter and the workers.
///
/// Lives on the submitter's stack for the blocking [`WorkerPool::run`] path
/// (zero allocation) and in a reference-counted allocation for deferred
/// submission (shared by the [`JobHandle`], or by a [`ScopedJobHandle`] and
/// its [`PoolScope`]). The queue holds raw pointers to it; validity is
/// guaranteed because a submitter's share is only released after the job is
/// joined (all participants checked in, descriptor unreachable from the
/// queue) — leaking a handle leaks its share instead of freeing it, and a
/// scope keeps one until the job completes.
///
/// `next` and `busy_ns` are genuinely concurrent; the bookkeeping fields
/// (`lanes_left`, `active`, `queued`, `done`) are only mutated under the
/// pool's state mutex and are atomics merely so the shared reference stays
/// aliasable.
struct JobCore {
    /// Number of task indices in the job.
    tasks: usize,
    /// Erased pointer to the job closure.
    data: usize,
    /// The monomorphized trampoline that re-types `data` (an [`ErasedTask`]).
    call: usize,
    /// Task-index claim counter.
    next: AtomicUsize,
    /// Worker participation slots still unclaimed (the lane cap, pre-clamped
    /// to the task and worker counts).
    lanes_left: AtomicUsize,
    /// Participants (workers and waiters) that have claimed tasks and not
    /// yet checked in.
    active: AtomicUsize,
    /// Whether the job is still reachable from the queue.
    queued: AtomicBool,
    /// Set once the job is complete: unreachable from the queue and every
    /// participant has checked in. Written under the state mutex with
    /// `Release`; [`JobHandle::is_done`] reads it lock-free with `Acquire`.
    done: AtomicBool,
    /// Maximum per-participant busy time, in nanoseconds.
    busy_ns: AtomicU64,
    /// Soft NUMA node preference carried from the [`JobSpec`].
    node: Option<usize>,
    /// When the job was created (immediately before it was enqueued).
    enqueued: Instant,
    /// Enqueue→first-participant latency in nanoseconds — the wake/handoff
    /// cost of this launch. `u64::MAX` until the first participant records
    /// it ([`JobCore::wake`] maps that sentinel to zero, covering inline
    /// jobs which have no handoff at all).
    wake_ns: AtomicU64,
    /// Payload of the first task panic, re-raised by [`JobHandle::wait`] (or
    /// the blocking `run`) once the job has fully completed.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl JobCore {
    fn new(
        tasks: usize,
        worker_lanes: usize,
        data: usize,
        call: usize,
        node: Option<usize>,
    ) -> JobCore {
        JobCore {
            tasks,
            data,
            call,
            next: AtomicUsize::new(0),
            lanes_left: AtomicUsize::new(worker_lanes),
            active: AtomicUsize::new(0),
            queued: AtomicBool::new(true),
            done: AtomicBool::new(false),
            busy_ns: AtomicU64::new(0),
            node,
            enqueued: Instant::now(),
            wake_ns: AtomicU64::new(u64::MAX),
            panic: Mutex::new(None),
        }
    }

    /// A descriptor for a job that already ran inline to completion: `done`
    /// from the start, never queued, with the busy time and any panic
    /// recorded. Scoped inline submission registers one of these so an
    /// unwaited panic still surfaces at scope exit, exactly like on the
    /// threaded path.
    fn completed_inline(
        tasks: usize,
        busy: Duration,
        panic: Option<Box<dyn std::any::Any + Send>>,
    ) -> JobCore {
        JobCore {
            tasks,
            data: 0,
            call: 0,
            next: AtomicUsize::new(tasks),
            lanes_left: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            queued: AtomicBool::new(false),
            done: AtomicBool::new(true),
            busy_ns: AtomicU64::new(busy.as_nanos() as u64),
            node: None,
            enqueued: Instant::now(),
            wake_ns: AtomicU64::new(u64::MAX),
            panic: Mutex::new(panic),
        }
    }

    /// Record a task panic (first payload wins).
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = lock(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed))
    }

    /// Enqueue→first-participant handoff latency; zero when the job ran
    /// inline (no handoff happened) or has not been claimed yet.
    fn wake(&self) -> Duration {
        match self.wake_ns.load(Ordering::Relaxed) {
            u64::MAX => Duration::ZERO,
            ns => Duration::from_nanos(ns),
        }
    }
}

/// A queue entry. Raw pointers are not `Send`, but the queue discipline
/// (jobs outlive their presence in the queue and their participants) makes
/// handing them between threads sound.
struct JobPtr(*const JobCore);

// SAFETY: see JobPtr — the pointee is kept alive until the job is done by
// the submitting stack frame or by a handle's/scope's reference-counted
// share (leaked, not freed, if the handle is leaked), and `done` is only set
// once the pointer is unreachable from both the queue and every worker.
unsafe impl Send for JobPtr {}

struct QueueState {
    /// Tells workers to exit their loop (set once, on pool drop) after the
    /// queue has drained.
    shutdown: bool,
    /// Jobs waiting for (more) workers, front first. A job leaves the queue
    /// when its last lane slot is claimed or when it is observed exhausted.
    queue: VecDeque<JobPtr>,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Workers park here between jobs; bumped (under the state mutex) by
    /// every enqueue, wake-chain link and shutdown.
    work: WakeSlot,
    /// Waiters park here until their job's `done` flag is set; bumped (under
    /// the state mutex) whenever any job completes. The done-wait itself is
    /// lock-free: `done` is an atomic and [`WakeSlot::wait`] needs no mutex.
    done: WakeSlot,
}

impl Shared {
    /// Mark `job` done if it is complete: unreachable from the queue and no
    /// participant outstanding. Must be called with the state mutex held.
    fn finish_if_complete(&self, job: &JobCore) {
        if !job.queued.load(Ordering::Relaxed)
            && job.active.load(Ordering::Relaxed) == 0
            && !job.done.load(Ordering::Relaxed)
        {
            job.done.store(true, Ordering::Release);
            self.done.bump();
            self.done.wake_all();
        }
    }

    /// Retire exhausted jobs and claim one lane of the first job that still
    /// needs workers, preferring jobs whose [`JobSpec::prefer_node`] matches
    /// the claimer's `node`. Must be called with the state mutex held
    /// (`state`). Continues the notify-one wake chain if claimable lanes
    /// remain after this claim.
    ///
    /// The preference is soft: with no match anywhere in the queue the
    /// claimer takes the frontmost mismatched job — a worker never idles
    /// while work exists. With `node == None` (unpinned claimer, i.e. every
    /// single-node host) every job matches and this is exactly the old
    /// front-of-queue FIFO claim.
    fn claim_lane(&self, state: &mut QueueState, node: Option<usize>) -> Option<JobPtr> {
        let mut index = 0;
        let mut fallback = None;
        while index < state.queue.len() {
            // SAFETY: queued jobs are kept alive by their submitter.
            let job = unsafe { &*state.queue[index].0 };
            if job.next.load(Ordering::Relaxed) >= job.tasks {
                // Every task index is already claimed; retire the job
                // instead of pointlessly joining it. (Removal at `index`
                // cannot shift `fallback`, which is always < `index`.)
                state.queue.remove(index);
                job.queued.store(false, Ordering::Relaxed);
                self.finish_if_complete(job);
                continue;
            }
            let matches = match (node, job.node) {
                (Some(have), Some(want)) => have == want,
                // Unpinned claimer or unpreferenced job: anything goes.
                _ => true,
            };
            if matches {
                return Some(self.claim_at(state, index));
            }
            if fallback.is_none() {
                fallback = Some(index);
            }
            index += 1;
        }
        fallback.map(|index| self.claim_at(state, index))
    }

    /// Claim one lane of the job at queue position `index`. Must be called
    /// with the state mutex held; the entry must not be exhausted.
    fn claim_at(&self, state: &mut QueueState, index: usize) -> JobPtr {
        let ptr = JobPtr(state.queue[index].0);
        // SAFETY: queued jobs are kept alive by their submitter.
        let job = unsafe { &*ptr.0 };
        let lanes = job.lanes_left.load(Ordering::Relaxed);
        debug_assert!(lanes > 0, "queued jobs always have unclaimed lanes");
        job.lanes_left.store(lanes - 1, Ordering::Relaxed);
        job.active.fetch_add(1, Ordering::Relaxed);
        if lanes == 1 {
            // Last lane slot: the job has all the workers it may use.
            state.queue.remove(index);
            job.queued.store(false, Ordering::Relaxed);
        }
        if !state.queue.is_empty() {
            // More lane slots are claimable (this job's remainder, or a
            // queued successor): wake one more worker. This chain bounds
            // wake-ups by the lanes actually used instead of the pool
            // size.
            self.work.bump();
            self.work.wake_one();
        }
        ptr
    }

    /// Run `job`'s claim loop on the current thread and check in. The caller
    /// must have registered this participant (incremented `active`) under
    /// the state mutex.
    ///
    /// # Safety
    ///
    /// `job` must point to a live [`JobCore`] whose registration precedes
    /// this call; the pointee must stay alive until the check-in below
    /// (guaranteed by the active-participant accounting itself).
    unsafe fn participate(&self, job: *const JobCore) {
        let core = unsafe { &*job };
        // First participant records the enqueue→claim handoff latency (for a
        // blocking `run_spec` the submitter itself often wins this race, so
        // the recorded wake is honestly ~zero there; deferred launches are
        // first reached by a woken worker and record the true handoff).
        let since_enqueue = core.enqueued.elapsed().as_nanos() as u64;
        let _ = core.wake_ns.compare_exchange(
            u64::MAX,
            since_enqueue.min(u64::MAX - 1),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        // SAFETY: `call` was produced from an `ErasedTask` by the submitter.
        let call = unsafe { std::mem::transmute::<usize, ErasedTask>(core.call) };
        {
            let _scope = TaskScope::enter();
            let start = Instant::now();
            loop {
                let index = core.next.fetch_add(1, Ordering::Relaxed);
                if index >= core.tasks {
                    break;
                }
                // SAFETY: disjoint indices make concurrent calls safe; the
                // data pointer is alive as long as the job is (see JobPtr).
                let outcome = catch_unwind(AssertUnwindSafe(|| unsafe {
                    call(core.data as *const (), index)
                }));
                if let Err(payload) = outcome {
                    core.record_panic(payload);
                }
            }
            core.busy_ns.fetch_max(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        let state = lock(&self.state);
        core.active.fetch_sub(1, Ordering::Relaxed);
        self.finish_if_complete(core);
        drop(state);
        // `core` must not be touched past this point: once `done` is
        // observable the submitter may release the job's storage.
    }
}

struct PoolInner {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
            // Shutdown is the one event every worker must see; queued jobs
            // (only possible through leaked handles) are drained first.
            self.shared.work.bump();
        }
        self.shared.work.wake_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A persistent pool of parked worker threads.
///
/// Cloning is cheap (an `Arc` bump) and yields a handle to the same pool;
/// the threads exit when the last handle is dropped. Engines built through
/// [`crate::JitSpmmBuilder`] share the process-wide [`WorkerPool::global`]
/// pool unless one is supplied explicitly, so any number of engines can
/// coexist without multiplying threads.
///
/// # Example
///
/// ```
/// use jitspmm::{JobSpec, WorkerPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new(2);
/// let hits = AtomicUsize::new(0);
/// // Blocking submission:
/// pool.run(16, &|_task| {
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 16);
/// // Deferred submission of an owned task: the job runs in the background,
/// // capped to one worker lane, until the handle joins it.
/// let shared = Arc::new(AtomicUsize::new(0));
/// let handle = pool.submit(JobSpec::new(16).max_lanes(1), {
///     let shared = Arc::clone(&shared);
///     move |_task| {
///         shared.fetch_add(1, Ordering::Relaxed);
///     }
/// });
/// handle.wait();
/// assert_eq!(shared.load(Ordering::Relaxed), 16);
/// // Deferred submission of *borrowed* tasks goes through a scope, which
/// // joins every job it submitted before returning.
/// let task = |_task| {
///     hits.fetch_add(1, Ordering::Relaxed);
/// };
/// pool.scope(|scope| {
///     scope.submit(JobSpec::new(16), &task);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 32);
/// ```
#[derive(Clone)]
pub struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.size()).finish()
    }
}

impl WorkerPool {
    /// Spawn a pool with `workers` threads (`0` = one per hardware thread;
    /// for a pool that spawns no threads at all, see [`WorkerPool::inline`]).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = if workers == 0 { default_parallelism() } else { workers };
        WorkerPool::with_exact_workers(workers)
    }

    /// A pool of zero threads: every job runs inline on the submitting
    /// thread. Useful for tests (no threads are ever spawned) and for
    /// comparing against true parallelism.
    pub fn inline() -> WorkerPool {
        WorkerPool::with_exact_workers(0)
    }

    fn with_exact_workers(workers: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { shutdown: false, queue: VecDeque::new() }),
            work: WakeSlot::new(),
            done: WakeSlot::new(),
        });
        // Only pin on genuinely multi-node hosts: single-node pinning buys
        // nothing and would fight the OS scheduler (and test runners).
        let topology = NumaTopology::detect();
        let placement = topology.is_multi_node().then(|| topology.nodes());
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let home = placement.map(|nodes| nodes[i % nodes.len()].clone());
                std::thread::Builder::new()
                    .name(format!("jitspmm-worker-{i}"))
                    .spawn(move || {
                        let node = home.map(|node| {
                            pin_current_thread(&node.cpus);
                            node.id
                        });
                        worker_loop(&shared, node)
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkerPool { inner: Arc::new(PoolInner { shared, handles }) }
    }

    /// The process-wide default pool (one worker per hardware thread),
    /// created on first use and kept alive for the process lifetime.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(0))
    }

    /// Number of worker threads in the pool (the submitting thread
    /// participates in every job it waits on, on top of these).
    pub fn size(&self) -> usize {
        self.inner.handles.len()
    }

    /// Whether `self` and `other` are handles to the *same* underlying pool
    /// — the same worker threads and job queue — as opposed to two distinct
    /// pools that merely have the same size. The serving router uses this to
    /// verify that every engine it owns really shares one pool (clones of
    /// one [`WorkerPool`] compare equal; independently constructed pools do
    /// not).
    pub fn same_pool(&self, other: &WorkerPool) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Resolve a requested lane count against this pool: `0` means one lane
    /// per pool worker (minimum one, so inline pools still get a lane).
    /// Shared by the engine and the AOT baselines so both sides of the
    /// paper's comparisons resolve parallelism identically.
    pub fn lanes_for(&self, requested: usize) -> usize {
        if requested > 0 {
            requested
        } else {
            self.size().max(1)
        }
    }

    /// Run one job: `task` is invoked exactly once for every index in
    /// `0..tasks`, distributed over the pool's workers plus the calling
    /// thread, which blocks until the job is complete. Returns the maximum
    /// per-participant busy time — the job's critical-path execution time,
    /// excluding wake-up and join overhead.
    ///
    /// Concurrent jobs pipeline through the pool's queue: each worker serves
    /// one job at a time (never oversubscribing the machine) and flows into
    /// the next queued job without re-parking. Re-entrant calls — a task
    /// invoking `run` on *any* pool (directly, or through an engine or
    /// baseline) — execute the nested job inline on the calling thread
    /// instead of risking deadlock on the job bookkeeping; a nested job
    /// therefore runs single-lane even when targeting a different, idle
    /// pool.
    ///
    /// # Panics
    ///
    /// If any task panics, every remaining task still runs (the pool must
    /// never be wedged by a bad job) and the first panic payload is
    /// re-raised here after the job completes.
    pub fn run<F: Fn(usize) + Sync>(&self, tasks: usize, task: &F) -> Duration {
        self.run_spec(JobSpec::new(tasks), task)
    }

    /// [`WorkerPool::run`] with an explicit [`JobSpec`], so the job's worker
    /// occupancy can be capped (`max_lanes`) independently of its task
    /// count.
    ///
    /// # Panics
    ///
    /// As for [`WorkerPool::run`].
    pub fn run_spec<F: Fn(usize) + Sync>(&self, spec: JobSpec, task: &F) -> Duration {
        self.run_spec_timed(spec, task).0
    }

    /// [`WorkerPool::run_spec`], additionally returning the job's *wake*
    /// latency (enqueue → first participant claiming a task) as the second
    /// tuple element. Zero on the inline fast paths, where no handoff
    /// happens at all; on the queued path it is whatever the race between
    /// the woken workers and the helping submitter produced — i.e. the
    /// handoff cost a caller actually experienced.
    ///
    /// # Panics
    ///
    /// As for [`WorkerPool::run`].
    pub fn run_spec_timed<F: Fn(usize) + Sync>(
        &self,
        spec: JobSpec,
        task: &F,
    ) -> (Duration, Duration) {
        if spec.tasks == 0 {
            return (Duration::ZERO, Duration::ZERO);
        }
        if IN_POOL_TASK.get() || self.inner.handles.is_empty() || spec.tasks == 1 {
            // Inline fast paths: re-entrant submission (deadlock freedom),
            // zero-worker pools, and single-task jobs — for one task,
            // running on the submitting thread is strictly faster than a
            // worker handoff (no wake-up, no cross-thread latency), which
            // matters for single-lane engines on small matrices.
            let _scope = TaskScope::enter();
            let start = Instant::now();
            for index in 0..spec.tasks {
                task(index);
            }
            return (start.elapsed(), Duration::ZERO);
        }
        let core = JobCore::new(
            spec.tasks,
            self.worker_lanes(&spec),
            task as *const F as usize,
            trampoline::<F> as ErasedTask as usize,
            spec.node,
        );
        self.enqueue(&core);
        // Participate and block; `core` lives on this stack frame, which
        // `help_and_wait` does not leave until the job is done.
        let busy = self.help_and_wait(&core);
        if let Some(payload) = lock(&core.panic).take() {
            resume_unwind(payload);
        }
        (busy, core.wake())
    }

    /// Submit a job for deferred execution and return immediately.
    ///
    /// The job starts running on the pool's workers in the background
    /// (capped to [`JobSpec::max_lanes`] of them); [`JobHandle::wait`] joins
    /// it, with the waiting thread stealing remaining task indices so that
    /// submit-then-wait is never slower than the blocking [`WorkerPool::run`].
    /// Dropping the handle without waiting also joins the job, so the task
    /// and its captures are normally released promptly — but safety does not
    /// depend on that: the handle *owns* `task` (hence the `'static` bound),
    /// so leaking it (e.g. via [`std::mem::forget`]) merely leaks the
    /// closure and the job descriptor while the job still runs to
    /// completion. For tasks that borrow local state, see
    /// [`WorkerPool::scope`].
    ///
    /// On a zero-worker pool, or when called from inside a pool task, the
    /// job runs inline to completion before this returns (there is no one to
    /// defer to), and any task panic is deferred to [`JobHandle::wait`] just
    /// like on the threaded path.
    pub fn submit<F>(&self, spec: JobSpec, task: F) -> JobHandle<'_>
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        // The closure is owned through `Box::into_raw`/`from_raw` rather
        // than held as a `Box` field: workers receive a raw pointer to it,
        // and moving a `Box` (into the handle, then with every move of the
        // handle) would invalidate pointers derived from it under the
        // aliasing rules. A raw pointer moves without retagging; the drop
        // path reconstructs the box after the join, and a leaked handle
        // leaks the allocation (still valid) instead of freeing it.
        let task: *mut F = Box::into_raw(Box::new(task));
        // SAFETY: `task` is a fresh heap allocation, released only by the
        // handle's drop after the job is joined.
        let mut handle = unsafe { self.submit_raw(spec, task as *const (), trampoline::<F>) };
        handle.payload = Some(task as *mut (dyn std::any::Any + Send + Sync));
        handle
    }

    /// Type-erased deferred submission backing [`WorkerPool::submit`].
    ///
    /// # Safety
    ///
    /// `call(data, index)` must be sound for every `index in 0..spec.tasks`,
    /// including concurrently from multiple threads with distinct indices,
    /// and `data` must stay valid until the job completes — even if the
    /// returned handle is leaked, in which case it is never freed at all.
    unsafe fn submit_raw(&self, spec: JobSpec, data: *const (), call: ErasedTask) -> JobHandle<'_> {
        if spec.tasks == 0 {
            return JobHandle::completed(self, Duration::ZERO, None);
        }
        if IN_POOL_TASK.get() || self.inner.handles.is_empty() {
            // Nothing to defer to: run inline now, deferring any panic to
            // `wait` for parity with the threaded path.
            let (busy, panic) = unsafe { run_inline(spec.tasks, data, call) };
            return JobHandle::completed(self, busy, panic);
        }
        let core = Arc::new(JobCore::new(
            spec.tasks,
            self.worker_lanes(&spec),
            data as usize,
            call as usize,
            spec.node,
        ));
        self.enqueue(&core);
        JobHandle { pool: self, join: DeferredJoin::queued(core), payload: None }
    }

    /// Create a scope for deferred submission of *borrowed* tasks.
    ///
    /// Inside `f`, [`PoolScope::submit`] defers jobs whose tasks may borrow
    /// anything that outlives the `scope` call (the `'env` data), and
    /// engines launch overlapping kernels with
    /// [`crate::JitSpmm::execute_async`]. When `f` returns, `scope` joins
    /// every job submitted through it — including jobs whose handles were
    /// dropped or leaked — before returning, inside its own stack frame.
    /// That join is what makes borrowed tasks sound: no `'env` borrow can
    /// end before `scope` itself returns, and no amount of handle-leaking
    /// inside `f` can skip a join performed outside `f`. (This is the same
    /// discipline as [`std::thread::scope`].)
    ///
    /// If any scoped job panicked and its panic was not re-raised by a
    /// [`ScopedJobHandle::wait`], the scope re-raises the first such payload
    /// after all jobs have been joined; a panic in `f` itself takes
    /// precedence.
    ///
    /// # Example
    ///
    /// ```
    /// use jitspmm::{JobSpec, WorkerPool};
    /// use std::sync::atomic::{AtomicUsize, Ordering};
    ///
    /// let pool = WorkerPool::new(2);
    /// let hits = AtomicUsize::new(0); // borrowed by the tasks below
    /// let task = |_task| {
    ///     hits.fetch_add(1, Ordering::Relaxed);
    /// };
    /// pool.scope(|scope| {
    ///     let a = scope.submit(JobSpec::new(8).max_lanes(1), &task);
    ///     let b = scope.submit(JobSpec::new(8).max_lanes(1), &task);
    ///     a.wait();
    ///     // `b` is dropped without wait(): the scope joins it on exit.
    ///     drop(b);
    /// });
    /// assert_eq!(hits.load(Ordering::Relaxed), 16);
    /// ```
    pub fn scope<'env, R>(
        &'env self,
        f: impl for<'scope> FnOnce(&'scope PoolScope<'scope, 'env>) -> R,
    ) -> R {
        let scope = PoolScope {
            pool: self,
            jobs: Mutex::new(ScopeJobs::default()),
            scope: PhantomData,
            env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Join everything — also on the unwind path, so borrowed task state
        // is never reachable from workers once the scope call ends.
        let unwaited_panic = scope.join_all();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = unwaited_panic {
                    resume_unwind(payload);
                }
                value
            }
        }
    }

    /// Worker participation slots for a job: at most one per task, per pool
    /// worker, and per `max_lanes` (when capped).
    fn worker_lanes(&self, spec: &JobSpec) -> usize {
        let cap = if spec.max_lanes == 0 { usize::MAX } else { spec.max_lanes };
        spec.tasks.min(self.inner.handles.len()).min(cap)
    }

    /// Publish a job to the queue and start the wake chain. The epoch bump
    /// happens under the state mutex (so a worker that just checked the
    /// queue cannot park past it); the syscall-bearing wake happens after
    /// the mutex is dropped.
    fn enqueue(&self, core: &JobCore) {
        let shared = &self.inner.shared;
        let mut state = lock(&shared.state);
        state.queue.push_back(JobPtr(core as *const JobCore));
        shared.work.bump();
        drop(state);
        shared.work.wake_one();
    }

    /// Steal `core`'s remaining tasks on the calling thread, then block
    /// until every participant has checked in and the job is done.
    fn help_and_wait(&self, core: &JobCore) -> Duration {
        let shared = &self.inner.shared;
        {
            let state = lock(&shared.state);
            core.active.fetch_add(1, Ordering::Relaxed);
            drop(state);
        }
        // SAFETY: `core` is alive (it borrows into this call) and the
        // participant was registered above.
        unsafe { shared.participate(core as *const JobCore) };
        {
            let mut state = lock(&shared.state);
            if core.queued.load(Ordering::Relaxed) {
                // Our claim loop exhausted the task counter, but unclaimed
                // lane slots keep the job queued; retire it so completion
                // does not depend on another worker scanning the queue.
                let ptr = core as *const JobCore;
                state.queue.retain(|job| job.0 != ptr);
                core.queued.store(false, Ordering::Relaxed);
                shared.finish_if_complete(core);
            }
        }
        // Lock-free done-wait: `done` is written (Release) and the slot
        // bumped under the state mutex by the finisher, so reading the epoch
        // *before* re-checking `done` closes the race — a finish between the
        // two makes `wait` return immediately.
        loop {
            let epoch = shared.done.epoch();
            if core.done.load(Ordering::Acquire) {
                break;
            }
            shared.done.wait(epoch);
        }
        core.busy()
    }
}

/// The join protocol shared by [`JobHandle`] and [`ScopedJobHandle`]: a
/// share of the job's descriptor (or the recorded result of a job that
/// completed inline at submission) plus the check/join/panic-collection
/// logic — kept in one place so the two deferred-join paths cannot diverge.
///
/// The descriptor is reference-counted: the queue's and workers' raw
/// pointers into it stay valid because a submitter's share (this one, or the
/// owning scope's) is only released after the job is done — and leaking a
/// handle leaks its share, so the pointee can never be freed early.
struct DeferredJoin {
    /// `None` when the job completed inline at submission (zero tasks,
    /// zero-worker pool, or re-entrant submission).
    core: Option<Arc<JobCore>>,
    inline_busy: Duration,
    inline_panic: Option<Box<dyn std::any::Any + Send>>,
}

impl DeferredJoin {
    fn completed(busy: Duration, panic: Option<Box<dyn std::any::Any + Send>>) -> DeferredJoin {
        DeferredJoin { core: None, inline_busy: busy, inline_panic: panic }
    }

    fn queued(core: Arc<JobCore>) -> DeferredJoin {
        DeferredJoin { core: Some(core), inline_busy: Duration::ZERO, inline_panic: None }
    }

    /// Whether the job has completed (lock-free).
    fn is_done(&self) -> bool {
        self.core.as_ref().is_none_or(|core| core.done.load(Ordering::Acquire))
    }

    /// Ensure the job is complete, stealing its remaining tasks on the
    /// calling thread; idempotent. Returns the critical-path busy time.
    fn join(&mut self, pool: &WorkerPool) -> Duration {
        match &self.core {
            None => self.inline_busy,
            Some(core) => {
                if core.done.load(Ordering::Acquire) {
                    core.busy()
                } else {
                    pool.help_and_wait(core)
                }
            }
        }
    }

    /// The job's enqueue→first-participant wake latency (zero for jobs that
    /// completed inline; meaningful after `join`).
    fn wake(&self) -> Duration {
        self.core.as_ref().map_or(Duration::ZERO, |core| core.wake())
    }

    /// Take the job's first task panic, if any (meaningful after `join`).
    fn take_panic(&mut self) -> Option<Box<dyn std::any::Any + Send>> {
        match &self.core {
            Some(core) => lock(&core.panic).take(),
            None => self.inline_panic.take(),
        }
    }

    /// Join, then re-raise the job's first task panic, if any: the body of
    /// both handles' `wait`.
    fn wait(&mut self, pool: &WorkerPool) -> Duration {
        let busy = self.join(pool);
        if let Some(payload) = self.take_panic() {
            resume_unwind(payload);
        }
        busy
    }
}

/// A deferred job submitted with [`WorkerPool::submit`].
///
/// The job runs in the background on the pool's workers; [`JobHandle::wait`]
/// joins it (stealing remaining tasks on the calling thread) and re-raises
/// the first task panic, if any. Dropping the handle without waiting also
/// joins the job, releasing the owned task closure promptly. Leaking the
/// handle (e.g. [`std::mem::forget`]) is safe but wasteful: the job still
/// runs to completion (pool shutdown drains the queue first), while the
/// closure and the job descriptor — owned by the handle — are leaked rather
/// than freed, so workers never dereference freed memory.
pub struct JobHandle<'a> {
    pool: &'a WorkerPool,
    /// Join state; `join.core` holds this submission's share of the job
    /// descriptor, released after the join in drop and leaked with a leaked
    /// handle — the workers' pointers into it can never dangle.
    join: DeferredJoin,
    /// The owned task closure the queued job's `data` pointer targets,
    /// held through `Box::into_raw` because a `Box` field would be
    /// invalidated by handle moves while workers dereference the pointer;
    /// freed in drop after the join, leaked with a leaked handle.
    payload: Option<*mut (dyn std::any::Any + Send + Sync)>,
}

// SAFETY: `payload` (the only non-auto-`Send` field) is a uniquely-owned
// heap allocation that was bounded `Send + Sync + 'static` at submission and
// is freed at most once (in `Drop`, after the join), so the handle may move
// to and be shared with any thread just like when it was a `Box` field.
unsafe impl Send for JobHandle<'_> {}
// SAFETY: as above; `&self` access (`is_done`) only reads an atomic.
unsafe impl Sync for JobHandle<'_> {}

impl<'a> JobHandle<'a> {
    fn completed(
        pool: &'a WorkerPool,
        busy: Duration,
        panic: Option<Box<dyn std::any::Any + Send>>,
    ) -> JobHandle<'a> {
        JobHandle { pool, join: DeferredJoin::completed(busy, panic), payload: None }
    }

    /// Whether the job has completed (lock-free; `true` means [`wait`]
    /// will not block).
    ///
    /// [`wait`]: JobHandle::wait
    pub fn is_done(&self) -> bool {
        self.join.is_done()
    }

    /// Join the job, stealing its remaining tasks on the calling thread, and
    /// return its critical-path busy time (the maximum over participants).
    ///
    /// # Panics
    ///
    /// Re-raises the first task panic after the job has fully completed
    /// (dropping the handle instead discards the payload).
    pub fn wait(mut self) -> Duration {
        self.join.wait(self.pool)
    }
}

impl Drop for JobHandle<'_> {
    fn drop(&mut self) {
        // An unwaited handle still joins, so the task closure and the job
        // descriptor are never released while workers can reach them.
        // Panics are swallowed here; `wait` re-raises them.
        self.join.join(self.pool);
        if let Some(payload) = self.payload.take() {
            // SAFETY: produced by `Box::into_raw` in `submit`; the job is
            // joined, so no worker can reach the closure.
            drop(unsafe { Box::from_raw(payload) });
        }
    }
}

impl std::fmt::Debug for JobHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("done", &self.is_done()).finish()
    }
}

/// A scope for deferred submission of borrowed tasks, created by
/// [`WorkerPool::scope`].
///
/// The scope owns every job descriptor submitted through it and
/// [`WorkerPool::scope`] joins all of its jobs before returning, so tasks
/// may borrow anything that lives at least as long as the `scope` call (the
/// `'env` data) — even when their [`ScopedJobHandle`]s are dropped or
/// leaked. The two lifetimes mirror [`std::thread::scope`]: `'scope` is the
/// period the scope's jobs may run in (invariant, so it cannot be shrunk to
/// exclude the join), `'env` the environment they may borrow from.
pub struct PoolScope<'scope, 'env: 'scope> {
    pool: &'scope WorkerPool,
    /// The scope's shares of its job descriptors (plus any panic harvested
    /// from an already-reclaimed job). Scope ownership — rather than handle
    /// ownership — is what lets [`WorkerPool::scope`] join jobs whose
    /// handles were dropped or leaked; descriptors of completed jobs whose
    /// handle is gone are reclaimed eagerly on the next submission, so a
    /// long-lived scope (a server's request loop) does not grow without
    /// bound.
    jobs: Mutex<ScopeJobs>,
    /// Invariance over `'scope` (the [`std::thread::scope`] trick).
    scope: PhantomData<&'scope mut &'scope ()>,
    /// Invariance over `'env`.
    env: PhantomData<&'env mut &'env ()>,
}

/// The [`PoolScope`] job registry: live descriptor shares plus the first
/// panic harvested from a reclaimed (completed, unwaited) job, preserved for
/// the scope-exit re-raise.
#[derive(Default)]
struct ScopeJobs {
    jobs: Vec<Arc<JobCore>>,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl<'scope, 'env> PoolScope<'scope, 'env> {
    /// The pool this scope submits to.
    pub fn pool(&self) -> &'scope WorkerPool {
        self.pool
    }

    /// Submit a job for deferred execution, as [`WorkerPool::submit`], but
    /// with a task that may borrow the scope's environment: the scope joins
    /// the job before any `'env` borrow can end, so no `'static` bound (and
    /// no ownership transfer) is needed.
    ///
    /// The returned handle need not be waited, or even kept: an unwaited
    /// job is joined by the scope on exit, where its first task panic, if
    /// any, is re-raised.
    ///
    /// On a zero-worker pool, or when called from inside a pool task, the
    /// job runs inline to completion before this returns, deferring panics
    /// to [`ScopedJobHandle::wait`] (or the scope exit).
    pub fn submit<F>(&'scope self, spec: JobSpec, task: &'env F) -> ScopedJobHandle<'scope>
    where
        F: Fn(usize) + Sync,
    {
        // SAFETY: `task` lives for 'env, and every scoped job is joined
        // inside `WorkerPool::scope`, before any 'env borrow can end.
        unsafe { self.submit_erased(spec, task as *const F as *const (), trampoline::<F>) }
    }

    /// Type-erased scoped submission, for callers (the engine) whose task
    /// payload is something other than a closure borrow.
    ///
    /// # Safety
    ///
    /// `call(data, index)` must be sound for every `index in 0..spec.tasks`,
    /// including concurrently from multiple threads with distinct indices,
    /// and `data` must stay valid until the job completes — which happens at
    /// the latest inside [`WorkerPool::scope`], before it returns.
    pub(crate) unsafe fn submit_erased(
        &self,
        spec: JobSpec,
        data: *const (),
        call: ErasedTask,
    ) -> ScopedJobHandle<'scope> {
        if spec.tasks == 0 {
            return ScopedJobHandle::completed(self.pool, Duration::ZERO, None);
        }
        if IN_POOL_TASK.get() || self.pool.inner.handles.is_empty() {
            // Nothing to defer to: run inline now (see submit_raw) — but
            // still register a completed descriptor with the scope, so an
            // unwaited panic surfaces at scope exit exactly as it would
            // have on the threaded path.
            let (busy, panic) = unsafe { run_inline(spec.tasks, data, call) };
            let core = JobCore::completed_inline(spec.tasks, busy, panic);
            return self.adopt(core);
        }
        let core = JobCore::new(
            spec.tasks,
            self.pool.worker_lanes(&spec),
            data as usize,
            call as usize,
            spec.node,
        );
        let handle = self.adopt(core);
        // The scope's share of the descriptor (registered in `adopt` before
        // workers can see the job, so an exiting scope can never miss it)
        // keeps the queue's pointer valid until `join_all` has joined it.
        self.pool.enqueue(handle.join.core.as_ref().expect("adopt always sets a core"));
        handle
    }

    /// Register a job descriptor with the scope and hand back a handle
    /// sharing it. Descriptors of finished jobs are reclaimed here, so a
    /// scope that submits indefinitely holds live descriptors only for jobs
    /// still in flight (plus any whose handle is still around — or leaked).
    fn adopt(&self, core: JobCore) -> ScopedJobHandle<'scope> {
        let core = Arc::new(core);
        let mut state = lock(&self.jobs);
        let ScopeJobs { jobs, panic } = &mut *state;
        jobs.retain(|job| {
            if !job.done.load(Ordering::Acquire) || Arc::strong_count(job) > 1 {
                // Still in flight, or an outstanding handle may yet claim
                // the result (`wait` must see its own job's panic, not have
                // the sweep steal it).
                return true;
            }
            // Completed and its handle is gone: release the scope's share,
            // harvesting an unclaimed panic so the scope-exit re-raise
            // still sees it.
            if panic.is_none() {
                *panic = lock(&job.panic).take();
            }
            false
        });
        jobs.push(Arc::clone(&core));
        drop(state);
        ScopedJobHandle { pool: self.pool, join: DeferredJoin::queued(core), _scope: PhantomData }
    }

    /// Join every job still registered with this scope and return the first
    /// panic payload no `wait` claimed (including panics harvested from
    /// already-reclaimed jobs).
    fn join_all(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let state = std::mem::take(&mut *lock(&self.jobs));
        let mut first_panic = state.panic;
        for core in &state.jobs {
            if !core.done.load(Ordering::Acquire) {
                self.pool.help_and_wait(core);
            }
            if first_panic.is_none() {
                first_panic = lock(&core.panic).take();
            }
        }
        first_panic
    }
}

impl std::fmt::Debug for PoolScope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolScope").field("jobs", &lock(&self.jobs).jobs.len()).finish()
    }
}

/// A deferred job submitted through a [`PoolScope`].
///
/// [`ScopedJobHandle::wait`] joins the job (stealing remaining tasks on the
/// calling thread) and re-raises its first task panic. Unlike [`JobHandle`],
/// dropping this handle does nothing: the job keeps running in the
/// background and the scope joins it on exit — which is also why leaking the
/// handle is harmless.
pub struct ScopedJobHandle<'scope> {
    pool: &'scope WorkerPool,
    /// Join state; `join.core` is this handle's share of the job descriptor
    /// (the scope holds its own until the job completes).
    join: DeferredJoin,
    /// The handle belongs to the scope it was submitted through.
    _scope: PhantomData<&'scope ()>,
}

impl<'scope> ScopedJobHandle<'scope> {
    fn completed(
        pool: &'scope WorkerPool,
        busy: Duration,
        panic: Option<Box<dyn std::any::Any + Send>>,
    ) -> ScopedJobHandle<'scope> {
        ScopedJobHandle { pool, join: DeferredJoin::completed(busy, panic), _scope: PhantomData }
    }

    /// Whether the job has completed (lock-free; `true` means [`wait`]
    /// will not block).
    ///
    /// [`wait`]: ScopedJobHandle::wait
    pub fn is_done(&self) -> bool {
        self.join.is_done()
    }

    /// Join the job, stealing its remaining tasks on the calling thread, and
    /// return its critical-path busy time (the maximum over participants).
    ///
    /// # Panics
    ///
    /// Re-raises the first task panic after the job has fully completed. (If
    /// the handle is dropped without waiting instead, the scope re-raises
    /// the panic on exit.)
    pub fn wait(mut self) -> Duration {
        self.join.wait(self.pool)
    }

    /// Join and discard any panic payload: the engine's abandoned-launch
    /// drop path, which must not poison the scope exit.
    pub(crate) fn join_quiet(&mut self) -> Duration {
        let busy = self.join.join(self.pool);
        drop(self.join.take_panic());
        busy
    }

    /// Join the job and return its critical-path busy time, handing the
    /// first task panic back as a value instead of unwinding: the batch
    /// pipeline's completion path, which must restore its own bookkeeping
    /// (free the launch slot) before deciding to unwind.
    pub(crate) fn try_wait(&mut self) -> Result<Duration, Box<dyn std::any::Any + Send>> {
        let busy = self.join.join(self.pool);
        match self.join.take_panic() {
            None => Ok(busy),
            Some(payload) => Err(payload),
        }
    }

    /// The launch's wake (enqueue→first-claim handoff) latency; zero for
    /// jobs that ran inline. Meaningful once the job is done — the engine
    /// reads it after [`ScopedJobHandle::try_wait`] for
    /// [`crate::ExecutionReport::wake`].
    pub(crate) fn wake(&self) -> Duration {
        self.join.wake()
    }
}

impl std::fmt::Debug for ScopedJobHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScopedJobHandle").field("done", &self.is_done()).finish()
    }
}

fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn worker_loop(shared: &Shared, node: Option<usize>) {
    loop {
        let job = {
            let mut state = lock(&shared.state);
            loop {
                if let Some(job) = shared.claim_lane(&mut state, node) {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                // Read the epoch while still holding the mutex: any enqueue
                // or wake-chain bump after we drop it changes the epoch and
                // makes `wait` return immediately — no lost wake-ups.
                let epoch = shared.work.epoch();
                drop(state);
                shared.work.wait(epoch);
                state = lock(&shared.state);
            }
        };
        // SAFETY: the lane was claimed (participant registered) under the
        // state mutex, which keeps the job alive until the check-in inside.
        unsafe { shared.participate(job.0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(3);
        let flags: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run(100, &|i| {
            flags[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(flags.iter().all(|f| f.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.run(0, &|_| panic!("must not run")), Duration::ZERO);
    }

    #[test]
    fn inline_pool_runs_on_caller() {
        let pool = WorkerPool::inline();
        assert_eq!(pool.size(), 0);
        let caller = std::thread::current().id();
        pool.run(4, &|_| assert_eq!(std::thread::current().id(), caller));
    }

    #[test]
    fn jobs_reuse_the_same_threads() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(8, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 50 * 8);
        assert_eq!(pool.size(), 2);
    }

    #[test]
    fn concurrent_submitters_pipeline_correctly() {
        let pool = WorkerPool::new(4);
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..20 {
                        pool.run(16, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 20 * 16);
    }

    #[test]
    fn panicking_task_propagates_without_wedging() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("boom in task 3");
                }
            });
        }));
        // The original payload must survive, not a generic pool message.
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "boom in task 3");
        // The pool must still work afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(8, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn reentrant_run_from_a_task_executes_inline() {
        let pool = WorkerPool::new(2);
        let outer = AtomicUsize::new(0);
        let inner_hits = AtomicUsize::new(0);
        pool.run(4, &|_| {
            outer.fetch_add(1, Ordering::Relaxed);
            // A task submitting to its own pool must not deadlock; the
            // nested job runs inline on this thread.
            pool.run(3, &|_| {
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 4);
        assert_eq!(inner_hits.load(Ordering::Relaxed), 4 * 3);
    }

    #[test]
    fn busy_time_reflects_work() {
        let pool = WorkerPool::new(2);
        let busy = pool.run(2, &|_| std::thread::sleep(Duration::from_millis(5)));
        assert!(busy >= Duration::from_millis(5));
    }

    #[test]
    fn clones_share_the_pool_and_drop_cleanly() {
        let pool = WorkerPool::new(1);
        let clone = pool.clone();
        drop(pool);
        let hits = AtomicUsize::new(0);
        clone.run(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn submit_defers_and_wait_joins() {
        let pool = WorkerPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let handle = pool.submit(JobSpec::new(64), {
            let hits = Arc::clone(&hits);
            move |_i| {
                hits.fetch_add(1, Ordering::Relaxed);
            }
        });
        handle.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn submitted_job_completes_without_wait() {
        let pool = WorkerPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        drop(pool.submit(JobSpec::new(32), {
            let hits = Arc::clone(&hits);
            move |_i| {
                hits.fetch_add(1, Ordering::Relaxed);
            }
        }));
        // Drop joins: every task ran before the handle was released.
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn leaked_handle_still_completes_the_job() {
        // `mem::forget` on a handle is safe: the job must still run every
        // task (pool shutdown drains the queue) and nothing may dangle —
        // the handle-owned closure and descriptor are leaked, not freed.
        let pool = WorkerPool::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        let handle = pool.submit(JobSpec::new(64), {
            let hits = Arc::clone(&hits);
            move |_i| {
                hits.fetch_add(1, Ordering::Relaxed);
            }
        });
        std::mem::forget(handle);
        // Dropping the pool joins the workers, which drain the queue first.
        drop(pool);
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn lane_cap_limits_worker_occupancy() {
        let pool = WorkerPool::new(4);
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let task = |_i: usize| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(1));
            concurrent.fetch_sub(1, Ordering::SeqCst);
        };
        pool.scope(|scope| {
            // A cap of 1 worker plus the waiting submitter: at most two
            // tasks may ever run concurrently, however the claims interleave.
            scope.submit(JobSpec::new(12).max_lanes(1), &task).wait();
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {} > cap", peak.load(Ordering::SeqCst));
    }

    #[test]
    fn capped_jobs_overlap_on_disjoint_lanes() {
        let pool = WorkerPool::new(2);
        let a = AtomicUsize::new(0);
        let b = AtomicUsize::new(0);
        let task_a = |_i: usize| {
            a.fetch_add(1, Ordering::Relaxed);
        };
        let task_b = |_i: usize| {
            b.fetch_add(1, Ordering::Relaxed);
        };
        pool.scope(|scope| {
            let ha = scope.submit(JobSpec::new(50).max_lanes(1), &task_a);
            let hb = scope.submit(JobSpec::new(50).max_lanes(1), &task_b);
            ha.wait();
            hb.wait();
        });
        assert_eq!(a.load(Ordering::Relaxed), 50);
        assert_eq!(b.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn scope_joins_dropped_and_leaked_handles() {
        // The soundness contract of scoped submission: the scope's exit —
        // not any handle destructor — is what guarantees borrowed task
        // state outlives the job. Drop one handle and leak another; both
        // jobs must be complete by the time `scope` returns.
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        let task = |_i: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        pool.scope(|scope| {
            drop(scope.submit(JobSpec::new(32), &task));
            std::mem::forget(scope.submit(JobSpec::new(32).max_lanes(1), &task));
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        // The pool is still healthy afterwards.
        pool.run(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 68);
    }

    #[test]
    fn scope_reclaims_completed_job_descriptors() {
        // A long-lived scope (a server's request loop) must not accumulate
        // one descriptor per submission forever: completed jobs are swept on
        // the next submit, leaving only the in-flight tail registered.
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        let task = |_i: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        pool.scope(|scope| {
            for _ in 0..100 {
                scope.submit(JobSpec::new(4), &task).wait();
            }
            assert!(lock(&scope.jobs).jobs.len() <= 2, "scope accumulated completed descriptors");
        });
        assert_eq!(hits.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn sweep_never_steals_an_outstanding_handles_panic() {
        let pool = WorkerPool::new(2);
        let boom = |_i: usize| panic!("claimed by wait");
        let idle = |_i: usize| {};
        pool.scope(|scope| {
            let handle = scope.submit(JobSpec::new(1), &boom);
            // Let the job finish in the background, then submit again: the
            // sweep must leave the finished job's panic in place, because
            // its outstanding handle is about to claim it.
            while !handle.is_done() {
                std::thread::yield_now();
            }
            scope.submit(JobSpec::new(1), &idle).wait();
            let result = catch_unwind(AssertUnwindSafe(|| handle.wait()));
            let payload = result.unwrap_err();
            let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(message, "claimed by wait", "wait must re-raise its own job's panic");
        });
        // The panic was claimed; the scope exit has nothing to re-raise.
    }

    #[test]
    fn scope_returns_the_closure_value() {
        let pool = WorkerPool::new(1);
        let sum = AtomicUsize::new(0);
        let task = |i: usize| {
            sum.fetch_add(i, Ordering::Relaxed);
        };
        let busy = pool.scope(|scope| scope.submit(JobSpec::new(10), &task).wait());
        assert_eq!(sum.load(Ordering::Relaxed), 45);
        let _ = busy; // Duration escapes the scope; handles cannot.
    }

    #[test]
    fn scoped_unwaited_panic_surfaces_at_scope_exit() {
        let pool = WorkerPool::new(2);
        let task = |i: usize| {
            if i == 3 {
                panic!("scoped boom");
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                // Dropped without wait: the panic has nowhere to go but the
                // scope exit.
                drop(scope.submit(JobSpec::new(8), &task));
            });
        }));
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "scoped boom");
        // The pool survives.
        let hits = AtomicUsize::new(0);
        pool.run(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn scoped_unwaited_panic_surfaces_at_scope_exit_on_inline_pools_too() {
        // Parity check for the inline fallback: a scoped job that ran
        // inline (zero-worker pool) and panicked must still surface at
        // scope exit when its handle was dropped without wait().
        let pool = WorkerPool::inline();
        let task = |_i: usize| panic!("inline scoped boom");
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                drop(scope.submit(JobSpec::new(2), &task));
            });
        }));
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "inline scoped boom");
    }

    #[test]
    fn scope_on_inline_pool_runs_synchronously() {
        let pool = WorkerPool::inline();
        let hits = AtomicUsize::new(0);
        let task = |_i: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        pool.scope(|scope| {
            let handle = scope.submit(JobSpec::new(8), &task);
            assert!(handle.is_done());
            assert_eq!(hits.load(Ordering::Relaxed), 8);
            handle.wait();
        });
    }

    #[test]
    fn submit_on_inline_pool_runs_synchronously() {
        let pool = WorkerPool::inline();
        let hits = Arc::new(AtomicUsize::new(0));
        let handle = pool.submit(JobSpec::new(8), {
            let hits = Arc::clone(&hits);
            move |_i| {
                hits.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(handle.is_done());
        assert_eq!(hits.load(Ordering::Relaxed), 8);
        handle.wait();
    }

    #[test]
    fn submitted_panic_is_deferred_to_wait() {
        let pool = WorkerPool::new(2);
        let task = |i: usize| {
            if i == 5 {
                panic!("deferred boom");
            }
        };
        let handle = pool.submit(JobSpec::new(8), task);
        let result = catch_unwind(AssertUnwindSafe(|| handle.wait()));
        let payload = result.unwrap_err();
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "deferred boom");
        // Dropping a panicked handle must stay silent and the pool usable.
        drop(pool.submit(JobSpec::new(8), task));
        let ok = AtomicUsize::new(0);
        pool.run(4, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn is_done_eventually_true_without_wait() {
        let pool = WorkerPool::new(1);
        let handle = pool.submit(JobSpec::new(4), |_i| {});
        let deadline = Instant::now() + Duration::from_secs(10);
        while !handle.is_done() {
            assert!(Instant::now() < deadline, "job never completed in the background");
            std::thread::yield_now();
        }
        // wait() on an already-done job must not block (is_done promised so).
        handle.wait();
    }

    #[test]
    fn claim_prefers_matching_node_but_stays_work_conserving() {
        // Exercises the queue-scan policy directly (no threads): a pinned
        // claimer takes the first job preferring its node, an unpinned
        // claimer takes the queue front, and a claimer whose node matches
        // nothing falls back to the frontmost mismatch instead of idling.
        let shared = Shared {
            state: Mutex::new(QueueState { shutdown: false, queue: VecDeque::new() }),
            work: WakeSlot::new(),
            done: WakeSlot::new(),
        };
        // Dummy task: claim_lane only does bookkeeping, never calls it.
        fn noop(_data: *const (), _index: usize) {}
        let make = |node| JobCore::new(4, 4, 0, noop as unsafe fn(*const (), usize) as usize, node);
        let on_one = make(Some(1));
        let on_zero = make(Some(0));
        let anywhere = make(None);
        {
            let mut state = lock(&shared.state);
            for job in [&on_one, &on_zero, &anywhere] {
                state.queue.push_back(JobPtr(job as *const JobCore));
            }
            // Node-0 claimer: skips the node-1 job, takes the node-0 job.
            let claimed = shared.claim_lane(&mut state, Some(0)).unwrap();
            assert!(std::ptr::eq(claimed.0, &on_zero));
            // Node-2 claimer: nothing prefers node 2, `anywhere` matches.
            let claimed = shared.claim_lane(&mut state, Some(2)).unwrap();
            assert!(std::ptr::eq(claimed.0, &anywhere));
            // Unpinned claimer: plain FIFO front.
            let claimed = shared.claim_lane(&mut state, None).unwrap();
            assert!(std::ptr::eq(claimed.0, &on_one));
            // Exhaust everything except the node-1 job: a node-0 claimer
            // now finds only mismatched work — work conservation takes it
            // anyway, and the exhausted jobs retire from mid-queue.
            on_zero.next.store(4, Ordering::Relaxed);
            anywhere.next.store(4, Ordering::Relaxed);
            let claimed = shared.claim_lane(&mut state, Some(0)).unwrap();
            assert!(std::ptr::eq(claimed.0, &on_one));
            assert!(!on_zero.queued.load(Ordering::Relaxed));
            assert!(!anywhere.queued.load(Ordering::Relaxed));
        }
        // Undo the fake claims so nothing asserts in drop paths.
        for job in [&on_one, &on_zero, &anywhere] {
            job.active.store(0, Ordering::Relaxed);
        }
    }

    #[test]
    fn jobs_with_node_preferences_still_all_complete() {
        // End-to-end: on a (likely single-node) host the preference is
        // inert, but every task must still run exactly once regardless of
        // what the preference says.
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        let task = |_i: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        pool.scope(|scope| {
            for node in [None, Some(0), Some(1), Some(99)] {
                scope.submit(JobSpec::new(16).prefer_node(node), &task);
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4 * 16);
    }

    #[test]
    fn deferred_jobs_record_wake_latency() {
        let pool = WorkerPool::new(2);
        pool.scope(|scope| {
            let mut handle = scope.submit(JobSpec::new(8), &|_i: usize| {});
            let _ = handle.join_quiet();
            // A queued job must have its handoff recorded by the first
            // participant — the sentinel never survives a completed job.
            let core = handle.join.core.as_ref().expect("threaded submission has a core");
            assert_ne!(core.wake_ns.load(Ordering::Relaxed), u64::MAX);
        });
    }

    #[test]
    fn inline_jobs_report_zero_wake() {
        let pool = WorkerPool::inline();
        let (busy, wake) = pool.run_spec_timed(JobSpec::new(4), &|_i| {});
        assert!(busy >= Duration::ZERO);
        assert_eq!(wake, Duration::ZERO);
        pool.scope(|scope| {
            let mut handle = scope.submit(JobSpec::new(4), &|_i: usize| {});
            let _ = handle.join_quiet();
            assert_eq!(handle.wake(), Duration::ZERO);
        });
    }

    #[test]
    fn many_rapid_submits_never_lose_a_wakeup() {
        // Notify-one chains are only correct if every parked worker that is
        // needed eventually wakes; hammer the queue with small jobs.
        let pool = WorkerPool::new(4);
        let hits = AtomicUsize::new(0);
        let task = |_i: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        pool.scope(|scope| {
            for _ in 0..1_000 {
                scope.submit(JobSpec::new(4), &task).wait();
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4_000);
    }
}
