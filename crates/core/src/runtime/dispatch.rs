//! Job descriptors bridging the engine to the worker pool, and the pooled
//! output buffers that make repeated [`crate::JitSpmm::execute`] calls
//! allocation-free.

use crate::kernel::{CompiledKernel, KernelKind};
use crate::runtime::pool::{lock, ErasedTask};
use crate::runtime::{JobSpec, WorkerPool};
use crate::schedule::RowRange;
use jitspmm_sparse::{DenseMatrix, Scalar};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The erased payload of a kernel launch: everything one pool task needs to
/// invoke the compiled code, as raw pointers.
///
/// The blocking paths capture the same state in a closure on the stack; the
/// asynchronous path ([`crate::JitSpmm::execute_async`]) cannot, because the
/// submitting call returns while workers are still executing. Instead the
/// engine boxes a `KernelJob` inside the returned execution handle — a
/// concrete type, so the handle is not generic over a closure. The box is
/// released only after the handle's drop has joined the job (leaked, never
/// freed, if the handle is leaked), and the borrows behind the pointers —
/// kernel, partition, input and output buffers — live for the
/// [`crate::PoolScope`] the launch is anchored to, which joins the job
/// before returning; so nothing the workers dereference can be freed early.
pub(crate) struct KernelJob<T: Scalar> {
    kernel: *const CompiledKernel<T>,
    /// Static partition ranges (`ptr`, `len`); unused for dynamic dispatch.
    ranges: *const RowRange,
    nranges: usize,
    x: *const T,
    y: *mut T,
}

// SAFETY: a KernelJob is only ever shared between pool participants running
// disjoint task indices of one launch; the aliasing rules for the pointers
// inside are exactly the (unsafe) launch contract its constructor callers
// already uphold. The pointers themselves are plain addresses.
unsafe impl<T: Scalar> Sync for KernelJob<T> {}
// SAFETY: as above — ownership of the addresses may move between threads.
unsafe impl<T: Scalar> Send for KernelJob<T> {}

impl<T: Scalar> KernelJob<T> {
    /// Capture a launch of `kernel` over `ranges` (static) or the embedded
    /// claim loop (dynamic; `ranges` empty). Pointers, not borrows: the
    /// caller is responsible for keeping the pointees alive until the job
    /// completes (see [`crate::engine::ExecutionHandle`]).
    pub(crate) fn new(
        kernel: &CompiledKernel<T>,
        ranges: &[RowRange],
        x: *const T,
        y: *mut T,
    ) -> KernelJob<T> {
        KernelJob { kernel, ranges: ranges.as_ptr(), nranges: ranges.len(), x, y }
    }

    /// The [`JobSpec`] for this launch: one task per range for static
    /// kernels, `lanes` identical claim-loop tasks for dynamic ones — in
    /// both cases capped to `lanes` pool workers so concurrent engines can
    /// overlap on disjoint worker subsets.
    pub(crate) fn spec(&self, kind: KernelKind, lanes: usize) -> JobSpec {
        match kind {
            KernelKind::StaticRange => JobSpec::new(self.nranges).max_lanes(lanes),
            KernelKind::DynamicDispatch => JobSpec::new(lanes).max_lanes(lanes),
        }
    }

    /// Run task `index`.
    ///
    /// # Safety
    ///
    /// Same contract as [`CompiledKernel::call_static`] /
    /// [`CompiledKernel::call_dynamic`]: every pointer must be live, shapes
    /// must match the compiled kernel, ranges must be pairwise disjoint and
    /// the dynamic counter reset since the last launch.
    pub(crate) unsafe fn run(&self, index: usize) {
        // Chaos-test hook (test builds only): may panic or sleep here, the
        // point where a crash in generated code would surface.
        #[cfg(any(test, feature = "fault-injection"))]
        crate::serve::fault::kernel_entry();
        let kernel = unsafe { &*self.kernel };
        match kernel.kind() {
            KernelKind::StaticRange => {
                let range = unsafe { *self.ranges.add(index) };
                if range.is_empty() {
                    return;
                }
                // SAFETY: forwarded; disjoint ranges mean no two tasks write
                // the same output rows.
                unsafe { kernel.call_static(range.start as u64, range.end as u64, self.x, self.y) };
            }
            KernelKind::DynamicDispatch => {
                // SAFETY: forwarded; the shared counter hands out disjoint
                // row batches.
                unsafe { kernel.call_dynamic(self.x, self.y) };
            }
        }
    }

    /// The [`ErasedTask`] trampoline for scoped erased submission.
    pub(crate) unsafe fn call(data: *const (), index: usize) {
        unsafe { (*(data as *const KernelJob<T>)).run(index) };
    }

    /// The trampoline as the erased function-pointer type.
    pub(crate) fn erased() -> ErasedTask {
        KernelJob::<T>::call
    }

    /// An inert job used to initialize a [`LaunchPayload`] slot before its
    /// first [`LaunchPayload::store`]; never submitted, never run.
    fn placeholder() -> KernelJob<T> {
        KernelJob {
            kernel: std::ptr::null(),
            ranges: std::ptr::null(),
            nranges: 0,
            x: std::ptr::null(),
            y: std::ptr::null_mut(),
        }
    }
}

/// A reusable heap slot for one batch-pipeline lane's [`KernelJob`] payload.
///
/// [`crate::JitSpmm::execute_async`] boxes a fresh payload per launch; a
/// batch pipeline pushes an unbounded stream of launches through a handful
/// of slots, so each slot allocates its payload once and rewrites it in
/// place between launches — steady-state batch submission performs no
/// per-launch boxing. Slots are owned by the stream that created them, so
/// payload reuse is **per engine, per slot**: a multi-engine server (one
/// [`crate::BatchStream`] per engine, see [`crate::serve`]) never rewrites
/// one engine's payload with another engine's launch. The allocation is owned through a raw pointer (the
/// runtime-wide idiom for worker-visible payloads): moving the owner never
/// retags the pointer workers derived from it, dropping the owner frees the
/// slot — sound because the batch stream joins every launch before its
/// slots drop — and leaking the owner leaks the slot rather than dangling
/// it.
pub(crate) struct LaunchPayload<T: Scalar> {
    ptr: *mut KernelJob<T>,
}

impl<T: Scalar> LaunchPayload<T> {
    pub(crate) fn new() -> LaunchPayload<T> {
        LaunchPayload { ptr: Box::into_raw(Box::new(KernelJob::placeholder())) }
    }

    /// Overwrite the slot with `job`, returning the erased data pointer to
    /// submit alongside [`KernelJob::erased`].
    ///
    /// # Safety
    ///
    /// No in-flight job may still reference the slot: the previous launch
    /// submitted from it, if any, must have been joined.
    pub(crate) unsafe fn store(&mut self, job: KernelJob<T>) -> *const () {
        // SAFETY: `ptr` is the live allocation made in `new`; exclusivity is
        // forwarded from the caller's contract.
        unsafe { self.ptr.write(job) };
        self.ptr as *const ()
    }
}

impl<T: Scalar> Drop for LaunchPayload<T> {
    fn drop(&mut self) {
        // SAFETY: produced by `Box::into_raw` in `new`; the owning stream
        // joins all launches before dropping its slots, so no worker can
        // still reach the payload.
        drop(unsafe { Box::from_raw(self.ptr) });
    }
}

/// Dispatch a static-range kernel over the pool: one task per partition
/// range, each invoking `fn(row_start, row_end, x, y)` on the compiled code,
/// capped to `lanes` workers. Returns the job's critical-path (max
/// per-participant) kernel time and its wake (enqueue→first-claim handoff)
/// latency — zero when the job ran inline.
///
/// # Safety
///
/// Same contract as [`CompiledKernel::call_static`] for every range: the CSR
/// arrays the kernel embeds must be alive, `x`/`y` must match the compiled
/// shapes, and the ranges must be pairwise disjoint.
pub(crate) unsafe fn run_static<T: Scalar>(
    pool: &WorkerPool,
    kernel: &CompiledKernel<T>,
    ranges: &[RowRange],
    lanes: usize,
    x: *const T,
    y: *mut T,
    node: Option<usize>,
) -> (Duration, Duration) {
    let job = KernelJob::new(kernel, ranges, x, y);
    pool.run_spec_timed(job.spec(KernelKind::StaticRange, lanes).prefer_node(node), &|index| {
        // SAFETY: forwarded from the caller's contract.
        unsafe { job.run(index) };
    })
}

/// Dispatch a dynamic-dispatch kernel over the pool: `lanes` identical tasks
/// each running the kernel's embedded `lock xadd` claim loop until the rows
/// are exhausted. Returns the job's critical-path kernel time and wake
/// latency, as [`run_static`].
///
/// # Safety
///
/// Same contract as [`CompiledKernel::call_dynamic`]; additionally the
/// engine's dynamic counter must have been reset since the last launch.
pub(crate) unsafe fn run_dynamic<T: Scalar>(
    pool: &WorkerPool,
    kernel: &CompiledKernel<T>,
    lanes: usize,
    x: *const T,
    y: *mut T,
    node: Option<usize>,
) -> (Duration, Duration) {
    let job = KernelJob::new(kernel, &[], x, y);
    pool.run_spec_timed(job.spec(KernelKind::DynamicDispatch, lanes).prefer_node(node), &|index| {
        // SAFETY: forwarded from the caller's contract.
        unsafe { job.run(index) };
    })
}

/// How many spare output buffers an engine keeps by default. Engines produce
/// one output shape only, so a small stack covers every realistic pattern of
/// outstanding results; batched execution raises the bound to its batch size
/// (see [`BufferPool::reserve`]).
const MAX_POOLED_BUFFERS: usize = 8;

/// Hard ceiling on retained spare buffers, whatever batch sizes have been
/// seen — a bound on idle memory, not on batch size (larger batches simply
/// allocate the excess fresh each time).
const MAX_RESERVED_BUFFERS: usize = 256;

/// Hard ceiling on the *bytes* retained as spares. A raised buffer count
/// (see [`BufferPool::reserve`]) persists for the engine's lifetime — it is
/// a cache sized for the largest batch served — so for engines with large
/// outputs the count bound alone could pin hundreds of megabytes; the byte
/// bound keeps idle memory proportionate regardless of output shape.
const MAX_RESERVED_BYTES: usize = 64 << 20;

/// A recycling pool of output buffers, one per engine.
///
/// The JIT kernels overwrite every element of the output (each row's
/// accumulator segments are stored unconditionally, including for empty
/// rows), so recycled buffers are handed back *without* re-zeroing — reuse
/// costs neither an allocation nor a memset.
#[derive(Debug)]
pub(crate) struct BufferPool<T> {
    free: Mutex<Vec<Vec<T>>>,
    /// Spare buffers retained on release (atomic so `reserve` needs no lock).
    capacity: AtomicUsize,
}

impl<T: Scalar> BufferPool<T> {
    pub(crate) fn new() -> BufferPool<T> {
        BufferPool { free: Mutex::new(Vec::new()), capacity: AtomicUsize::new(MAX_POOLED_BUFFERS) }
    }

    /// Grow the retained-spares bound to `outstanding` (a serving loop that
    /// holds a whole batch of outputs at once would otherwise re-allocate
    /// `batch - MAX_POOLED_BUFFERS` buffers on every batch). The raised
    /// bound persists — it is a cache sized for the largest batch this
    /// engine serves — but never exceeds [`MAX_RESERVED_BUFFERS`] buffers,
    /// and `release` additionally caps retained spares at
    /// [`MAX_RESERVED_BYTES`] so large-output engines cannot pin unbounded
    /// idle memory.
    pub(crate) fn reserve(&self, outstanding: usize) {
        let target = outstanding.min(MAX_RESERVED_BUFFERS);
        self.capacity.fetch_max(target, Ordering::Relaxed);
    }

    /// A `rows x cols` matrix, recycled when possible. The contents are
    /// unspecified (stale values from a previous execution); the caller must
    /// overwrite every element before exposing them.
    pub(crate) fn acquire(&self, rows: usize, cols: usize) -> DenseMatrix<T> {
        self.acquire_tracked(rows, cols).0
    }

    /// As [`BufferPool::acquire`], additionally reporting whether the buffer
    /// was freshly allocated (`true`) rather than recycled. A fresh zeroed
    /// allocation's pages typically come from the allocator unmapped (zero
    /// pages, faulted in on first write), so the caller can still decide
    /// *which thread* first touches — and thereby NUMA-places — each row
    /// range; a recycled buffer keeps whatever placement its first touch
    /// established.
    pub(crate) fn acquire_tracked(&self, rows: usize, cols: usize) -> (DenseMatrix<T>, bool) {
        let len = rows * cols;
        let mut free = lock(&self.free);
        while let Some(buffer) = free.pop() {
            if buffer.len() == len {
                return (DenseMatrix::from_vec(rows, cols, buffer), false);
            }
            // Shape changed (possible only if the pool is shared across
            // engines in the future); discard mismatched buffers.
        }
        drop(free);
        (DenseMatrix::from_vec(rows, cols, vec![T::ZERO; len]), true)
    }

    fn release(&self, buffer: Vec<T>) {
        let bytes = buffer.len() * std::mem::size_of::<T>();
        // The default spare count is always allowed; beyond it, retained
        // spares must also fit the byte budget.
        let by_bytes =
            MAX_RESERVED_BYTES.checked_div(bytes).map_or(usize::MAX, |n| n.max(MAX_POOLED_BUFFERS));
        let cap = self.capacity.load(Ordering::Relaxed).min(by_bytes);
        let mut free = lock(&self.free);
        if free.len() < cap {
            free.push(buffer);
        }
    }

    #[cfg(test)]
    pub(crate) fn spare_buffers(&self) -> usize {
        lock(&self.free).len()
    }
}

/// An output matrix borrowed from an engine's buffer pool.
///
/// Dereferences to [`DenseMatrix`], so it can be read, compared and passed
/// anywhere a `&DenseMatrix` is expected. Dropping it returns the underlying
/// buffer to the engine for reuse, which is what makes repeated
/// [`crate::JitSpmm::execute`] calls allocation-free in steady state; call
/// [`PooledMatrix::into_dense`] to detach the buffer and keep it instead.
pub struct PooledMatrix<T: Scalar> {
    matrix: Option<DenseMatrix<T>>,
    pool: Arc<BufferPool<T>>,
}

impl<T: Scalar> PooledMatrix<T> {
    pub(crate) fn new(matrix: DenseMatrix<T>, pool: Arc<BufferPool<T>>) -> PooledMatrix<T> {
        PooledMatrix { matrix: Some(matrix), pool }
    }

    /// Detach the matrix from the pool, keeping the buffer indefinitely.
    pub fn into_dense(mut self) -> DenseMatrix<T> {
        self.matrix.take().expect("matrix present until drop")
    }
}

impl<T: Scalar> Deref for PooledMatrix<T> {
    type Target = DenseMatrix<T>;

    fn deref(&self) -> &DenseMatrix<T> {
        self.matrix.as_ref().expect("matrix present until drop")
    }
}

impl<T: Scalar> DerefMut for PooledMatrix<T> {
    fn deref_mut(&mut self) -> &mut DenseMatrix<T> {
        self.matrix.as_mut().expect("matrix present until drop")
    }
}

impl<T: Scalar> Drop for PooledMatrix<T> {
    fn drop(&mut self) {
        if let Some(matrix) = self.matrix.take() {
            self.pool.release(matrix.into_vec());
        }
    }
}

impl<T: Scalar> std::fmt::Debug for PooledMatrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.deref().fmt(f)
    }
}

impl<T: Scalar> Clone for PooledMatrix<T> {
    fn clone(&self) -> PooledMatrix<T> {
        PooledMatrix { matrix: self.matrix.clone(), pool: Arc::clone(&self.pool) }
    }
}

impl<T: Scalar> PartialEq for PooledMatrix<T> {
    fn eq(&self, other: &PooledMatrix<T>) -> bool {
        self.deref() == other.deref()
    }
}

impl<T: Scalar> PartialEq<DenseMatrix<T>> for PooledMatrix<T> {
    fn eq(&self, other: &DenseMatrix<T>) -> bool {
        self.deref() == other
    }
}

impl<T: Scalar> PartialEq<PooledMatrix<T>> for DenseMatrix<T> {
    fn eq(&self, other: &PooledMatrix<T>) -> bool {
        self == other.deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled() {
        let pool = Arc::new(BufferPool::<f32>::new());
        let first = pool.acquire(4, 4);
        let first_ptr = first.as_ptr();
        drop(PooledMatrix::new(first, Arc::clone(&pool)));
        assert_eq!(pool.spare_buffers(), 1);
        let second = pool.acquire(4, 4);
        assert_eq!(second.as_ptr(), first_ptr, "drop must return the buffer for reuse");
        assert_eq!(pool.spare_buffers(), 0);
    }

    #[test]
    fn mismatched_shapes_are_not_reused() {
        let pool = Arc::new(BufferPool::<f32>::new());
        drop(PooledMatrix::new(pool.acquire(2, 2), Arc::clone(&pool)));
        let bigger = pool.acquire(8, 8);
        assert_eq!(bigger.as_slice().len(), 64);
    }

    #[test]
    fn into_dense_detaches_from_the_pool() {
        let pool = Arc::new(BufferPool::<f32>::new());
        let pooled = PooledMatrix::new(pool.acquire(3, 3), Arc::clone(&pool));
        let dense = pooled.into_dense();
        assert_eq!(dense.nrows(), 3);
        assert_eq!(pool.spare_buffers(), 0, "detached buffers never return");
    }

    #[test]
    fn pool_size_is_bounded() {
        let pool = Arc::new(BufferPool::<f32>::new());
        let held: Vec<PooledMatrix<f32>> =
            (0..20).map(|_| PooledMatrix::new(pool.acquire(2, 2), Arc::clone(&pool))).collect();
        drop(held);
        assert!(pool.spare_buffers() <= MAX_POOLED_BUFFERS);
    }

    #[test]
    fn reserve_grows_the_retained_spare_bound() {
        let pool = Arc::new(BufferPool::<f32>::new());
        pool.reserve(20);
        let held: Vec<PooledMatrix<f32>> =
            (0..20).map(|_| PooledMatrix::new(pool.acquire(2, 2), Arc::clone(&pool))).collect();
        drop(held);
        assert_eq!(pool.spare_buffers(), 20, "reserved spares must all be retained");
        // Never shrinks, and stays clamped at the hard ceiling.
        pool.reserve(4);
        assert_eq!(pool.capacity.load(Ordering::Relaxed), 20);
        pool.reserve(usize::MAX);
        assert_eq!(pool.capacity.load(Ordering::Relaxed), MAX_RESERVED_BUFFERS);
    }

    #[test]
    fn release_caps_retained_spares_by_bytes() {
        // A raised buffer-count bound must not pin unbounded idle memory for
        // large outputs: past the default spare count, retained spares also
        // fit MAX_RESERVED_BYTES.
        let pool = Arc::new(BufferPool::<f32>::new());
        pool.reserve(MAX_RESERVED_BUFFERS);
        // 8 MiB per buffer: the byte budget admits 8, which is also the
        // always-allowed default count.
        let elems = (8 << 20) / std::mem::size_of::<f32>();
        let rows = elems / 4;
        let held: Vec<PooledMatrix<f32>> =
            (0..12).map(|_| PooledMatrix::new(pool.acquire(rows, 4), Arc::clone(&pool))).collect();
        drop(held);
        assert_eq!(pool.spare_buffers(), MAX_POOLED_BUFFERS);
    }

    #[test]
    fn pooled_matrix_comparisons() {
        let pool = Arc::new(BufferPool::<f32>::new());
        let a = PooledMatrix::new(pool.acquire(2, 2), Arc::clone(&pool));
        let b = a.clone();
        assert_eq!(a, b);
        let dense = a.clone().into_dense();
        assert_eq!(a, dense);
        assert_eq!(dense, b);
    }
}
