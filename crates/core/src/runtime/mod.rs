//! The persistent execution runtime: worker pool, job dispatch and output
//! buffer recycling.
//!
//! JITSPMM's compile-once/run-many design (§II of the paper) makes
//! steady-state `execute()` latency the product. Before this module existed,
//! every [`crate::JitSpmm::execute_into`] call spawned and joined fresh OS
//! threads through `std::thread::scope`, and every [`crate::JitSpmm::execute`]
//! allocated and zeroed a new output matrix — fixed overhead that dwarfs the
//! kernel itself on small and mid-sized matrices. The runtime replaces both:
//!
//! * [`WorkerPool`] ([`pool`]) keeps a set of parked threads alive for the
//!   process (or per pool handle) and feeds them from a FIFO job queue;
//!   workers claim work items from each job's atomic counter, mirroring the
//!   paper's `lock xadd` dynamic row dispatch one level up. Submission wakes
//!   exactly one worker, and workers that claim a lane wake the next — a
//!   notify-one chain that bounds wake cost by the lanes a job actually
//!   uses, not the pool size.
//! * Jobs can be submitted **deferred**: [`WorkerPool::submit`] takes an
//!   owned (`'static`) task and returns a [`JobHandle`] immediately while
//!   the job runs in the background; [`JobHandle::wait`] joins it with the
//!   waiting thread stealing remaining tasks. Borrowed tasks submit through
//!   [`WorkerPool::scope`] ([`PoolScope::submit`], returning a
//!   [`ScopedJobHandle`]), which joins every scoped job before returning —
//!   so deferred execution never depends on a handle destructor running for
//!   memory safety (`mem::forget` is safe; a leaked handle leaks
//!   allocations, never dangles). [`JobSpec::max_lanes`] caps how many
//!   workers one job occupies, so concurrent jobs — e.g. two engines
//!   executing at once through [`crate::JitSpmm::execute_async`] inside a
//!   scope — run on disjoint worker subsets and genuinely overlap instead
//!   of thrashing the whole pool.
//! * `dispatch` converts a compiled kernel plus its schedule (static
//!   [`crate::RowRange`]s or the dynamic counter loop) into pool jobs and
//!   measures the kernel's critical-path time separately from dispatch
//!   overhead (see [`crate::ExecutionReport`]).
//! * [`PooledMatrix`] recycles output buffers through the engine, so
//!   repeated `execute()` calls perform no allocation — and, because the
//!   generated kernels overwrite every output element (empty rows included),
//!   no memset either.
//!
//! # Batched serving
//!
//! [`crate::JitSpmm::execute_batch`] and [`crate::BatchStream`] build the
//! serving loop on top of these pieces: a stream of dense inputs is
//! pipelined through the job queue with up to `depth` launches in flight,
//! each launch submitting a reusable per-slot payload (no per-launch boxing)
//! and recycling double-buffered [`PooledMatrix`] outputs. Workers flow from
//! one input's job straight into the next without re-parking — the queue, not
//! the submitting thread, keeps them fed. Dynamic-dispatch engines give each
//! in-flight slot its own claim counter (a spare compiled kernel, cached on
//! the engine); static-range kernels are stateless and shared. On hosts
//! where nothing can run concurrently with the submitter (one hardware
//! thread, or a zero-worker pool), the stream executes inputs directly on
//! the calling thread instead — bit-identical results without queue
//! round trips. Per-input timing is aggregated into a
//! [`crate::BatchReport`] with p50/p99 kernel and dispatch times.
//!
//! The AOT baselines ([`crate::baseline`]) run on the same pool, keeping the
//! paper's JIT-vs-AOT comparisons apples-to-apples: both sides pay the same
//! dispatch cost.

pub mod numa;
pub mod pool;
pub mod wake;

pub(crate) mod dispatch;

pub use dispatch::PooledMatrix;
pub use numa::{NumaNode, NumaTopology};
pub use pool::{JobHandle, JobSpec, PoolScope, ScopedJobHandle, WorkerPool};
pub use wake::WakeSlot;
