//! The persistent execution runtime: worker pool, job dispatch and output
//! buffer recycling.
//!
//! JITSPMM's compile-once/run-many design (§II of the paper) makes
//! steady-state `execute()` latency the product. Before this module existed,
//! every [`crate::JitSpmm::execute_into`] call spawned and joined fresh OS
//! threads through `std::thread::scope`, and every [`crate::JitSpmm::execute`]
//! allocated and zeroed a new output matrix — fixed overhead that dwarfs the
//! kernel itself on small and mid-sized matrices. The runtime replaces both:
//!
//! * [`WorkerPool`] ([`pool`]) keeps a set of parked threads alive for the
//!   process (or per pool handle) and wakes them per job through an
//!   epoch/condvar barrier; workers claim work items from an atomic counter,
//!   mirroring the paper's `lock xadd` dynamic row dispatch one level up.
//! * [`dispatch`] converts a compiled kernel plus its schedule (static
//!   [`crate::RowRange`]s or the dynamic counter loop) into pool jobs and
//!   measures the kernel's critical-path time separately from dispatch
//!   overhead (see [`crate::ExecutionReport`]).
//! * [`PooledMatrix`] recycles output buffers through the engine, so
//!   repeated `execute()` calls perform no allocation — and, because the
//!   generated kernels overwrite every output element (empty rows included),
//!   no memset either.
//!
//! The AOT baselines ([`crate::baseline`]) run on the same pool, keeping the
//! paper's JIT-vs-AOT comparisons apples-to-apples: both sides pay the same
//! dispatch cost.

pub mod pool;

pub(crate) mod dispatch;

pub use dispatch::PooledMatrix;
pub use pool::WorkerPool;
