//! Coarse-grain column merging (CCM) register tiling.
//!
//! Section IV.C/IV.D of the paper: because the number of dense columns `d`
//! is known at JIT time, the accumulator vector `ret[0..d]` for one output
//! row is decomposed into a linear combination of SIMD register widths —
//! e.g. `d = 45` with f32 becomes `16 (zmm0) + 16 (zmm1) + 8 (ymm2) +
//! 4 (xmm3) + 1 (xmm4, scalar)` — so the entire row result lives in
//! registers for the duration of the non-zero loop.
//!
//! This module computes that decomposition for any `d`, ISA tier and element
//! type. When `d` exceeds the available accumulator registers the columns are
//! split into several [`ColumnTile`]s; the code generator then emits one
//! non-zero loop per tile (an extension over the paper, which only evaluates
//! `d ≤ 45`).

use jitspmm_asm::{IsaLevel, VecWidth};
use jitspmm_sparse::ScalarKind;

/// The width class of one accumulator segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentWidth {
    /// A full 512-bit register (16 f32 / 8 f64 lanes).
    Zmm,
    /// A 256-bit register (8 f32 / 4 f64 lanes).
    Ymm,
    /// A 128-bit register (4 f32 / 2 f64 lanes).
    Xmm,
    /// A single scalar lane held in the low element of an XMM register.
    Scalar,
}

impl SegmentWidth {
    /// Number of elements of `kind` this width holds.
    pub const fn lanes(self, kind: ScalarKind) -> usize {
        let bytes = match self {
            SegmentWidth::Zmm => 64,
            SegmentWidth::Ymm => 32,
            SegmentWidth::Xmm => 16,
            SegmentWidth::Scalar => return 1,
        };
        bytes / kind.bytes()
    }

    /// The vector-register width used to address this segment (scalars use
    /// XMM registers).
    pub const fn vec_width(self) -> VecWidth {
        match self {
            SegmentWidth::Zmm => VecWidth::Z512,
            SegmentWidth::Ymm => VecWidth::Y256,
            SegmentWidth::Xmm | SegmentWidth::Scalar => VecWidth::X128,
        }
    }
}

/// One accumulator segment: a register holding `lanes` consecutive columns
/// of the output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First dense column covered by this segment (absolute, not
    /// tile-relative).
    pub col_offset: usize,
    /// Number of columns covered.
    pub lanes: usize,
    /// Width class.
    pub width: SegmentWidth,
    /// The SIMD register id assigned to the accumulator.
    pub reg: u8,
}

impl Segment {
    /// Byte offset of the segment's first column within a row of the dense
    /// matrices.
    pub fn byte_offset(&self, kind: ScalarKind) -> usize {
        self.col_offset * kind.bytes()
    }
}

/// A group of columns whose accumulators fit in the register file
/// simultaneously. The kernel makes one pass over the row's non-zeros per
/// tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnTile {
    /// First dense column of the tile.
    pub col_start: usize,
    /// Number of columns in the tile.
    pub cols: usize,
    /// The register segments covering the tile, in column order.
    pub segments: Vec<Segment>,
}

/// The full CCM register-allocation plan for one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CcmPlan {
    /// Number of dense columns `d`.
    pub d: usize,
    /// ISA tier the plan targets.
    pub isa: IsaLevel,
    /// Element kind.
    pub kind: ScalarKind,
    /// Register id reserved for broadcasting the current non-zero value
    /// (`zmm31` on AVX-512, the highest VEX register otherwise — §IV.D.1).
    pub broadcast_reg: u8,
    /// The column tiles, in order.
    pub tiles: Vec<ColumnTile>,
}

impl CcmPlan {
    /// Compute the CCM plan for `d` columns of `kind` elements at ISA tier
    /// `isa`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`; the engine validates this before planning.
    pub fn new(d: usize, isa: IsaLevel, kind: ScalarKind) -> CcmPlan {
        assert!(d > 0, "cannot plan a kernel for zero dense columns");
        // The highest register is reserved for the broadcast value, exactly
        // as the paper reserves zmm31.
        let reg_count = isa.register_count() as u8;
        let broadcast_reg = reg_count - 1;
        let max_accumulators = (reg_count - 1) as usize;

        let widths = available_widths(isa, kind);
        let mut tiles = Vec::new();
        let mut col = 0usize;
        while col < d {
            let mut segments = Vec::new();
            let mut reg = 0u8;
            while col < d && (reg as usize) < max_accumulators {
                let remaining = d - col;
                let (width, lanes) = pick_width(&widths, remaining, kind);
                segments.push(Segment { col_offset: col, lanes, width, reg });
                col += lanes;
                reg += 1;
            }
            let col_start = segments.first().expect("tile has at least one segment").col_offset;
            tiles.push(ColumnTile { col_start, cols: col - col_start, segments });
        }
        CcmPlan { d, isa, kind, broadcast_reg, tiles }
    }

    /// Total number of accumulator registers used by the widest tile.
    pub fn max_registers_used(&self) -> usize {
        self.tiles.iter().map(|t| t.segments.len()).max().unwrap_or(0)
    }

    /// Number of passes over each row's non-zero list the kernel will make.
    pub fn passes(&self) -> usize {
        self.tiles.len()
    }

    /// Total lanes covered by all segments (must equal `d`).
    pub fn covered_columns(&self) -> usize {
        self.tiles.iter().flat_map(|t| &t.segments).map(|s| s.lanes).sum()
    }

    /// A short human-readable description such as
    /// `16(zmm0)+16(zmm1)+8(ymm2)+4(xmm3)+1(xmm4)`.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        for tile in &self.tiles {
            for seg in &tile.segments {
                let prefix = match seg.width {
                    SegmentWidth::Zmm => "zmm",
                    SegmentWidth::Ymm => "ymm",
                    SegmentWidth::Xmm | SegmentWidth::Scalar => "xmm",
                };
                parts.push(format!("{}({}{})", seg.lanes, prefix, seg.reg));
            }
        }
        parts.join("+")
    }
}

/// The widths usable at an ISA tier, widest first.
fn available_widths(isa: IsaLevel, kind: ScalarKind) -> Vec<SegmentWidth> {
    let mut widths = Vec::new();
    if isa >= IsaLevel::Avx512 {
        widths.push(SegmentWidth::Zmm);
    }
    if isa >= IsaLevel::Avx2 {
        widths.push(SegmentWidth::Ymm);
    }
    if isa >= IsaLevel::Sse128 {
        widths.push(SegmentWidth::Xmm);
    }
    widths.push(SegmentWidth::Scalar);
    // For f64 a 128-bit register holds only two lanes; the selection logic
    // below handles that through `SegmentWidth::lanes`.
    let _ = kind;
    widths
}

/// Choose the widest width not exceeding `remaining` columns.
///
/// Always succeeds: [`available_widths`] ends every tier's list with the
/// 1-lane [`SegmentWidth::Scalar`], and the planner only asks while columns
/// remain (`remaining >= 1`), so a match exists at every tier. There is
/// deliberately *no* silent fallback here — if an ISA tier's width list ever
/// stopped honouring that contract, planning should fail loudly rather than
/// quietly emit scalar code.
fn pick_width(
    widths: &[SegmentWidth],
    remaining: usize,
    kind: ScalarKind,
) -> (SegmentWidth, usize) {
    debug_assert!(remaining > 0, "pick_width requires at least one remaining column");
    widths
        .iter()
        .map(|&w| (w, w.lanes(kind)))
        .find(|&(_, lanes)| lanes <= remaining)
        .expect("available_widths always ends with the 1-lane scalar width")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_d45_f32_avx512() {
        // Figure 8: 16(ZMM0)+16(ZMM1)+8(YMM2)+4(XMM3)+1(XMM4).
        let plan = CcmPlan::new(45, IsaLevel::Avx512, ScalarKind::F32);
        assert_eq!(plan.passes(), 1);
        assert_eq!(plan.broadcast_reg, 31);
        let widths: Vec<_> = plan.tiles[0].segments.iter().map(|s| (s.width, s.lanes)).collect();
        assert_eq!(
            widths,
            vec![
                (SegmentWidth::Zmm, 16),
                (SegmentWidth::Zmm, 16),
                (SegmentWidth::Ymm, 8),
                (SegmentWidth::Xmm, 4),
                (SegmentWidth::Scalar, 1),
            ]
        );
        assert_eq!(plan.describe(), "16(zmm0)+16(zmm1)+8(ymm2)+4(xmm3)+1(xmm4)");
        assert_eq!(plan.covered_columns(), 45);
    }

    #[test]
    fn d16_and_d32_use_whole_zmm_registers() {
        let plan = CcmPlan::new(16, IsaLevel::Avx512, ScalarKind::F32);
        assert_eq!(plan.tiles[0].segments.len(), 1);
        assert_eq!(plan.tiles[0].segments[0].width, SegmentWidth::Zmm);
        let plan = CcmPlan::new(32, IsaLevel::Avx512, ScalarKind::F32);
        assert_eq!(plan.tiles[0].segments.len(), 2);
        assert_eq!(plan.max_registers_used(), 2);
    }

    #[test]
    fn avx2_has_no_zmm_segments_and_reserves_reg15() {
        let plan = CcmPlan::new(32, IsaLevel::Avx2, ScalarKind::F32);
        assert_eq!(plan.broadcast_reg, 15);
        assert!(plan.tiles.iter().flat_map(|t| &t.segments).all(|s| s.width != SegmentWidth::Zmm));
        assert_eq!(plan.tiles[0].segments.len(), 4); // 4 x ymm
        assert_eq!(plan.covered_columns(), 32);
    }

    #[test]
    fn scalar_tier_uses_single_lanes() {
        let plan = CcmPlan::new(8, IsaLevel::Scalar, ScalarKind::F32);
        assert_eq!(plan.tiles[0].segments.len(), 8);
        assert!(plan.tiles[0].segments.iter().all(|s| s.width == SegmentWidth::Scalar));
        assert_eq!(plan.passes(), 1);
    }

    #[test]
    fn f64_lane_counts_halve() {
        let plan = CcmPlan::new(16, IsaLevel::Avx512, ScalarKind::F64);
        // 16 f64 columns = 2 zmm registers.
        assert_eq!(plan.tiles[0].segments.len(), 2);
        assert!(plan.tiles[0].segments.iter().all(|s| s.lanes == 8));
        let plan = CcmPlan::new(45, IsaLevel::Avx512, ScalarKind::F64);
        assert_eq!(plan.covered_columns(), 45);
        assert_eq!(plan.describe(), "8(zmm0)+8(zmm1)+8(zmm2)+8(zmm3)+8(zmm4)+4(ymm5)+1(xmm6)");
    }

    #[test]
    fn very_wide_d_splits_into_tiles() {
        // 31 usable accumulators * 16 lanes = 496 columns per tile on AVX-512.
        let plan = CcmPlan::new(1000, IsaLevel::Avx512, ScalarKind::F32);
        assert!(plan.passes() > 1, "expected multiple tiles, got {}", plan.passes());
        assert_eq!(plan.covered_columns(), 1000);
        assert!(plan.max_registers_used() <= 31);
        // Tiles must be contiguous and non-overlapping.
        let mut expected_start = 0;
        for tile in &plan.tiles {
            assert_eq!(tile.col_start, expected_start);
            expected_start += tile.cols;
        }
        assert_eq!(expected_start, 1000);
    }

    #[test]
    fn scalar_tier_splits_small_d() {
        // 15 usable accumulators at the scalar tier.
        let plan = CcmPlan::new(45, IsaLevel::Scalar, ScalarKind::F32);
        assert_eq!(plan.passes(), 3);
        assert_eq!(plan.covered_columns(), 45);
    }

    #[test]
    fn byte_offsets_scale_with_kind() {
        let plan = CcmPlan::new(45, IsaLevel::Avx512, ScalarKind::F32);
        let segs = &plan.tiles[0].segments;
        assert_eq!(segs[1].byte_offset(ScalarKind::F32), 64);
        assert_eq!(segs[2].byte_offset(ScalarKind::F32), 128);
        assert_eq!(segs[4].byte_offset(ScalarKind::F32), 176);
    }

    #[test]
    #[should_panic]
    fn zero_columns_panics() {
        let _ = CcmPlan::new(0, IsaLevel::Avx512, ScalarKind::F32);
    }

    #[test]
    fn sse128_f64_single_remaining_column_uses_scalar_lane() {
        // The narrowest vector width at the SSE tier holds two f64 lanes, so
        // an odd column count ends with `remaining == 1` and must land on
        // the scalar width — the edge the removed "always made progress"
        // fallback used to paper over.
        let plan = CcmPlan::new(3, IsaLevel::Sse128, ScalarKind::F64);
        let widths: Vec<_> = plan.tiles[0].segments.iter().map(|s| (s.width, s.lanes)).collect();
        assert_eq!(widths, vec![(SegmentWidth::Xmm, 2), (SegmentWidth::Scalar, 1)]);
        assert_eq!(plan.covered_columns(), 3);
        // d = 1 at the same tier goes straight to the scalar lane.
        let plan = CcmPlan::new(1, IsaLevel::Sse128, ScalarKind::F64);
        assert_eq!(plan.tiles[0].segments.len(), 1);
        assert_eq!(plan.tiles[0].segments[0].width, SegmentWidth::Scalar);
    }
}
