//! Error type for the JITSPMM framework.

use jitspmm_asm::{AsmError, IsaLevel};
use std::fmt;

/// Errors produced while compiling or executing a JIT SpMM kernel.
#[derive(Debug)]
pub enum JitSpmmError {
    /// The requested ISA tier is not supported by the host CPU.
    UnsupportedIsa {
        /// The tier that was requested.
        requested: IsaLevel,
        /// The best tier the host supports.
        supported: IsaLevel,
    },
    /// The dense operand shape does not match the kernel this engine
    /// compiled.
    ShapeMismatch(String),
    /// The number of dense columns is zero (nothing to compute).
    EmptyDenseMatrix,
    /// A shard plan was requested for a sparse matrix with no rows — there
    /// is nothing to split (see [`crate::shard::plan_shards`]).
    EmptySparseMatrix,
    /// An asynchronous launch of this engine is still in flight; one engine
    /// runs one launch at a time (its dynamic row-claim counter is shared
    /// state embedded in the generated code). Wait on — or drop — the
    /// outstanding [`crate::engine::ExecutionHandle`] first.
    LaunchInProgress,
    /// A serving request was tagged with an engine id the server does not
    /// have (valid ids are `0..engines`).
    UnknownEngine {
        /// The engine id the request named.
        requested: usize,
        /// How many engines the server owns.
        engines: usize,
    },
    /// A serving request named an engine id that has been retired (or is
    /// draining) via the control plane
    /// ([`crate::serve::SpmmServer::retire_engine`]); retired ids are never
    /// reused.
    EngineRetired {
        /// The retired engine id the request named.
        id: usize,
    },
    /// An error bubbled up from the assembler.
    Asm(AsmError),
    /// The requested configuration cannot be code-generated.
    InvalidConfig(String),
}

impl fmt::Display for JitSpmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitSpmmError::UnsupportedIsa { requested, supported } => {
                write!(f, "requested ISA tier {requested} but the host only supports {supported}")
            }
            JitSpmmError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            JitSpmmError::EmptyDenseMatrix => write!(f, "the dense matrix has zero columns"),
            JitSpmmError::EmptySparseMatrix => {
                write!(f, "the sparse matrix has zero rows: nothing to shard")
            }
            JitSpmmError::LaunchInProgress => {
                write!(f, "an asynchronous launch of this engine is still in flight")
            }
            JitSpmmError::UnknownEngine { requested, engines } => write!(
                f,
                "request routed to engine {requested} but the server only has {engines} \
                 engine(s) (valid ids are 0..{engines})"
            ),
            JitSpmmError::EngineRetired { id } => {
                write!(f, "engine {id} is draining or retired and no longer accepts requests")
            }
            JitSpmmError::Asm(e) => write!(f, "assembler error: {e}"),
            JitSpmmError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for JitSpmmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JitSpmmError::Asm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AsmError> for JitSpmmError {
    fn from(e: AsmError) -> Self {
        JitSpmmError::Asm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e =
            JitSpmmError::UnsupportedIsa { requested: IsaLevel::Avx512, supported: IsaLevel::Avx2 };
        assert!(e.to_string().contains("avx512"));
        assert!(e.to_string().contains("avx2"));
        let e: JitSpmmError = AsmError::EmptyCode.into();
        assert!(e.to_string().contains("assembler"));
    }
}
