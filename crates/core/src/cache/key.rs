//! Cache keys: what makes two compiles interchangeable.
//!
//! A stored kernel image may be reused only when *everything* that influenced
//! code generation matches: the matrix (content fingerprint + shape), the
//! dense width `d`, the element kind, the kernel configuration (ISA, CCM,
//! strategy incl. dynamic batch), the host CPU feature set, and the code
//! generator itself (crate version + [`CODEGEN_REVISION`]). Thread count is
//! deliberately absent — partitions are recomputed per process, and the
//! generated code never depends on them (the dynamic batch, which does shape
//! the code, is part of the strategy).

use crate::codegen::KernelOptions;
use crate::schedule::Strategy;
use jitspmm_asm::{CpuFeatures, IsaLevel};
use jitspmm_sparse::{CsrMatrix, Scalar, ScalarKind};

/// Bump this whenever generated machine code changes for the same
/// configuration (new instruction selection, changed prologue, reordered
/// relocations, ...). Old cache entries are then rejected by key mismatch
/// instead of being executed as stale code.
pub(crate) const CODEGEN_REVISION: u32 = 1;

/// 128-bit content fingerprint of a CSR matrix.
///
/// Two independent multiply-xorshift lanes over the `row_ptr`, `col_indices`
/// and `values` bytes (plus the dimensions). Not cryptographic — a forged
/// collision is possible — but the generated code only embeds the matrix's
/// *shape* (row count) and *addresses*, so even a colliding entry can never
/// make a kernel read out of bounds of the matrix it is launched against;
/// the partition and launch metadata are recomputed from the live matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Fingerprint(pub [u64; 2]);

#[inline]
fn mix(mut h: u64, word: u64, mul: u64) -> u64 {
    h ^= word;
    h = h.wrapping_mul(mul);
    h ^ (h >> 29)
}

/// Feed `bytes` into both lanes, 8 bytes at a time (the tail is zero-padded
/// and length-tagged so `[1]` and `[1, 0]` differ).
fn absorb(lanes: &mut [u64; 2], bytes: &[u8]) {
    const M0: u64 = 0x9E37_79B9_7F4A_7C15;
    const M1: u64 = 0xC2B2_AE3D_27D4_EB4F;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().unwrap());
        lanes[0] = mix(lanes[0], word, M0);
        lanes[1] = mix(lanes[1], word, M1);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        let word = u64::from_le_bytes(tail);
        lanes[0] = mix(lanes[0], word, M0);
        lanes[1] = mix(lanes[1], word, M1);
    }
    lanes[0] = mix(lanes[0], bytes.len() as u64, M0);
    lanes[1] = mix(lanes[1], bytes.len() as u64, M1);
}

impl Fingerprint {
    /// Fingerprint a matrix's content: dimensions, row pointers, column
    /// indices and raw value bytes.
    pub(crate) fn of<T: Scalar>(matrix: &CsrMatrix<T>) -> Fingerprint {
        let mut lanes = [0x6A09_E667_F3BC_C908u64, 0xBB67_AE85_84CA_A73Bu64];
        absorb(
            &mut lanes,
            &[
                (matrix.nrows() as u64).to_le_bytes(),
                (matrix.ncols() as u64).to_le_bytes(),
                (matrix.nnz() as u64).to_le_bytes(),
            ]
            .concat(),
        );
        absorb(&mut lanes, bytes_of_u64(matrix.row_ptr()));
        absorb(&mut lanes, bytes_of_u32(matrix.col_indices()));
        absorb(&mut lanes, bytes_of_scalars(matrix.values()));
        Fingerprint(lanes)
    }
}

fn bytes_of_u64(slice: &[u64]) -> &[u8] {
    // SAFETY: u64 has no padding and any bit pattern is a valid byte view.
    unsafe { std::slice::from_raw_parts(slice.as_ptr() as *const u8, std::mem::size_of_val(slice)) }
}

fn bytes_of_u32(slice: &[u32]) -> &[u8] {
    // SAFETY: as above for u32.
    unsafe { std::slice::from_raw_parts(slice.as_ptr() as *const u8, std::mem::size_of_val(slice)) }
}

fn bytes_of_scalars<T: Scalar>(slice: &[T]) -> &[u8] {
    // SAFETY: scalars are plain IEEE-754 floats — no padding, any bit
    // pattern readable as bytes.
    unsafe { std::slice::from_raw_parts(slice.as_ptr() as *const u8, std::mem::size_of_val(slice)) }
}

/// Everything that identifies one compiled kernel configuration.
///
/// Serialized into a fixed 72-byte little-endian block that is embedded in
/// every cache entry header and compared bytewise on load, so a filename-hash
/// collision degrades to a cache miss, never to executing the wrong kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CacheKey {
    pub fingerprint: Fingerprint,
    pub nrows: u64,
    pub ncols: u64,
    pub nnz: u64,
    pub d: u64,
    pub kind: ScalarKind,
    pub isa: IsaLevel,
    pub ccm: bool,
    pub strategy: Strategy,
    pub features: CpuFeatures,
}

/// Size of [`CacheKey::to_bytes`].
pub(crate) const KEY_BYTES: usize = 72;

pub(crate) fn isa_code(isa: IsaLevel) -> u8 {
    match isa {
        IsaLevel::Scalar => 0,
        IsaLevel::Sse128 => 1,
        IsaLevel::Avx2 => 2,
        IsaLevel::Avx512 => 3,
    }
}

pub(crate) fn isa_from_code(code: u8) -> Option<IsaLevel> {
    match code {
        0 => Some(IsaLevel::Scalar),
        1 => Some(IsaLevel::Sse128),
        2 => Some(IsaLevel::Avx2),
        3 => Some(IsaLevel::Avx512),
        _ => None,
    }
}

pub(crate) fn strategy_code(strategy: Strategy) -> (u8, u64) {
    match strategy {
        Strategy::RowSplitStatic => (0, 0),
        Strategy::RowSplitDynamic { batch } => (1, batch as u64),
        Strategy::NnzSplit => (2, 0),
        Strategy::MergeSplit => (3, 0),
    }
}

pub(crate) fn strategy_from_code(tag: u8, batch: u64) -> Option<Strategy> {
    match tag {
        0 => Some(Strategy::RowSplitStatic),
        1 if batch > 0 => Some(Strategy::RowSplitDynamic { batch: batch as usize }),
        2 => Some(Strategy::NnzSplit),
        3 => Some(Strategy::MergeSplit),
        _ => None,
    }
}

fn feature_bits(f: CpuFeatures) -> u8 {
    (f.avx as u8)
        | (f.avx2 as u8) << 1
        | (f.fma as u8) << 2
        | (f.avx512f as u8) << 3
        | (f.avx512dq as u8) << 4
        | (f.avx512vl as u8) << 5
}

/// Version tag folding in the crate version string and the codegen revision,
/// so artifacts from an older build are rejected by key mismatch.
fn version_tag() -> u64 {
    let mut lanes = [0x510E_527F_ADE6_82D1u64, 0x9B05_688C_2B3E_6C1Fu64];
    absorb(&mut lanes, env!("CARGO_PKG_VERSION").as_bytes());
    absorb(&mut lanes, &CODEGEN_REVISION.to_le_bytes());
    lanes[0] ^ lanes[1].rotate_left(32)
}

impl CacheKey {
    /// Build the key for compiling `matrix` at dense width `d` with
    /// `strategy` under `options`.
    pub(crate) fn for_kernel<T: Scalar>(
        matrix: &CsrMatrix<T>,
        d: usize,
        strategy: Strategy,
        options: &KernelOptions,
    ) -> CacheKey {
        CacheKey {
            fingerprint: Fingerprint::of(matrix),
            nrows: matrix.nrows() as u64,
            ncols: matrix.ncols() as u64,
            nnz: matrix.nnz() as u64,
            d: d as u64,
            kind: T::KIND,
            isa: options.isa,
            ccm: options.ccm,
            strategy,
            features: options.features,
        }
    }

    /// Fixed-width little-endian serialization (embedded in entry headers).
    pub(crate) fn to_bytes(self) -> [u8; KEY_BYTES] {
        let (strat_tag, batch) = strategy_code(self.strategy);
        let mut out = [0u8; KEY_BYTES];
        out[0..8].copy_from_slice(&version_tag().to_le_bytes());
        out[8..16].copy_from_slice(&self.fingerprint.0[0].to_le_bytes());
        out[16..24].copy_from_slice(&self.fingerprint.0[1].to_le_bytes());
        out[24..32].copy_from_slice(&self.nrows.to_le_bytes());
        out[32..40].copy_from_slice(&self.ncols.to_le_bytes());
        out[40..48].copy_from_slice(&self.nnz.to_le_bytes());
        out[48..56].copy_from_slice(&self.d.to_le_bytes());
        out[56..64].copy_from_slice(&batch.to_le_bytes());
        out[64] = match self.kind {
            ScalarKind::F32 => 0,
            ScalarKind::F64 => 1,
        };
        out[65] = isa_code(self.isa);
        out[66] = self.ccm as u8;
        out[67] = strat_tag;
        out[68] = feature_bits(self.features);
        out
    }

    /// 64-bit digest of [`CacheKey::to_bytes`], used for the entry filename.
    pub(crate) fn digest(&self) -> u64 {
        digest_bytes(&self.to_bytes())
    }
}

/// 64-bit digest of an arbitrary byte string (entry checksums).
pub(crate) fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut lanes = [0x1F83_D9AB_FB41_BD6Bu64, 0x5BE0_CD19_137E_2179u64];
    absorb(&mut lanes, bytes);
    lanes[0] ^ lanes[1].rotate_left(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f32> {
        CsrMatrix::from_triplets(4, 5, &[(0, 1, 1.0), (1, 0, 2.0), (3, 4, -0.5)]).unwrap()
    }

    fn key(matrix: &CsrMatrix<f32>) -> CacheKey {
        let options = KernelOptions {
            isa: IsaLevel::Scalar,
            ccm: true,
            features: CpuFeatures::detect(),
            listing: false,
        };
        CacheKey::for_kernel(matrix, 8, Strategy::RowSplitStatic, &options)
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let a = sample();
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&sample()));
        let mutated =
            CsrMatrix::from_triplets(4, 5, &[(0, 1, 1.0), (1, 0, 2.0), (3, 4, 0.5)]).unwrap();
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&mutated));
        let moved =
            CsrMatrix::from_triplets(4, 5, &[(0, 2, 1.0), (1, 0, 2.0), (3, 4, -0.5)]).unwrap();
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&moved));
    }

    #[test]
    fn key_bytes_distinguish_every_field() {
        let a = sample();
        let base = key(&a);
        let mut other = base;
        other.d = 9;
        assert_ne!(base.to_bytes(), other.to_bytes());
        let mut other = base;
        other.strategy = Strategy::RowSplitDynamic { batch: 64 };
        assert_ne!(base.to_bytes(), other.to_bytes());
        let mut other = base;
        other.strategy = Strategy::RowSplitDynamic { batch: 65 };
        let mut third = base;
        third.strategy = Strategy::RowSplitDynamic { batch: 64 };
        assert_ne!(other.to_bytes(), third.to_bytes());
        let mut other = base;
        other.isa = IsaLevel::Avx2;
        assert_ne!(base.to_bytes(), other.to_bytes());
        let mut other = base;
        other.ccm = false;
        assert_ne!(base.to_bytes(), other.to_bytes());
        let mut other = base;
        other.features.avx512vl = !other.features.avx512vl;
        assert_ne!(base.to_bytes(), other.to_bytes());
        let mut other = base;
        other.kind = ScalarKind::F64;
        assert_ne!(base.to_bytes(), other.to_bytes());
    }

    #[test]
    fn digest_matches_bytes() {
        let a = sample();
        assert_eq!(key(&a).digest(), key(&a).digest());
        let mut other = key(&a);
        other.d = 16;
        assert_ne!(key(&a).digest(), other.digest());
    }

    #[test]
    fn tail_length_is_tagged() {
        let mut a = [0u64; 2];
        let mut b = [0u64; 2];
        absorb(&mut a, &[1]);
        absorb(&mut b, &[1, 0]);
        assert_ne!(a, b);
    }
}
