//! Persistent kernel cache: compiled SpMM kernels that survive restarts.
//!
//! JIT specialization (the paper's premise) pays a code-generation cost per
//! process per matrix. This module makes that cost a one-time cost per
//! *machine*: compiled kernels are stored as address-independent images in a
//! cache directory and mapped back into executable memory on the next start,
//! so a restarted server is serving specialized — even promoted-tier — code
//! without recompiling.
//!
//! # On-disk format
//!
//! One file per kernel, named `k-<key digest>.jsk`:
//!
//! ```text
//! offset  size  field
//!      0     8  magic "JSKCACH1"
//!      8    72  cache key (see [`key`]: version tag, matrix fingerprint,
//!               dims/nnz, d, dynamic batch, scalar kind, ISA, CCM,
//!               strategy tag, CPU-feature bits)
//!     80     8  code length in bytes
//!     88     8  checksum of the stored code image
//!     96     8  kernel kind (0 static-range, 1 dynamic-dispatch)
//!    104     8  relocation count
//!    112   16n  relocations: (symbol, code offset) pairs
//!   4096     n  machine code, relocation slots zeroed
//! ```
//!
//! The code image starts at a page boundary so loading is a single private
//! (copy-on-write) `mmap`; the loader patches each relocation slot with this
//! process's addresses (CSR array bases, dynamic counter) and seals the pages
//! read+exec ([`jitspmm_asm::WritableBuffer`]). Because codegen is
//! deterministic, the patched bytes are bit-identical to a fresh compile.
//!
//! Tier promotion outcomes are persisted alongside as tiny `p-<digest>.jsp`
//! records mapping a *requested* tiered configuration to the promoted
//! (strategy, ISA, CCM) it settled on, so a warm start rebuilds the promoted
//! core directly and skips the tier-0 warmup phase entirely.
//!
//! # Integrity
//!
//! Every load revalidates: magic, bytewise key echo (a digest collision in
//! the filename degrades to a miss), file length, relocation bounds, and the
//! code checksum. Any mismatch — truncation, flipped bytes, a stale entry
//! from an older code generator, a different CPU feature set — silently falls
//! back to a fresh compile. A cache can therefore never produce wrong
//! results; the worst failure mode is compiling as if there were no cache.
//!
//! # Cross-process coordination
//!
//! Entries are written via temp-file + atomic rename, so readers never see a
//! half-written file no matter how many processes share the directory. On
//! top of that, writers serialize through an advisory `flock(2)` on a
//! `.lock` file in the directory (taken for the duration of a store and its
//! size-cap sweep), so two processes evicting concurrently cannot interleave
//! their directory scans. The lock is raw-syscall based (no libc
//! dependency), Linux/x86-64 only, and purely advisory: on other platforms,
//! or when acquisition fails, stores proceed unlocked with exactly the
//! rename-based guarantees above.

pub(crate) mod key;

use crate::codegen::{KernelReloc, RelocSym};
use crate::kernel::KernelKind;
use jitspmm_asm::{ExecutableBuffer, WritableBuffer};
use key::{digest_bytes, CacheKey, KEY_BYTES};
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const KERNEL_MAGIC: &[u8; 8] = b"JSKCACH1";
const PROMO_MAGIC: &[u8; 8] = b"JSKPROM1";
/// Code images start here so they can be mapped at a page boundary.
const CODE_OFFSET: u64 = 4096;
const MAX_RELOCS: u64 = 8;

/// Counters describing what a [`KernelCache`] has done since it was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Kernel images served from disk.
    pub hits: u64,
    /// Lookups that found no entry file.
    pub misses: u64,
    /// Entries found but refused (corrupt, truncated, stale version, key
    /// mismatch) — each also falls back to a fresh compile.
    pub rejects: u64,
    /// Kernel images and promotion records written.
    pub stores: u64,
    /// Entries removed to keep the directory under its size cap.
    pub evictions: u64,
}

/// Live addresses to patch into a loaded kernel image's relocation slots.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RelocTargets {
    pub row_ptr: u64,
    pub col_indices: u64,
    pub values: u64,
    /// Dynamic-dispatch claim counter; unused by static kernels.
    pub next_counter: u64,
}

/// A tier-promotion outcome worth persisting: the configuration the engine
/// settled on after profiling, so a restart can skip straight to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PromotionRecord {
    pub strategy: crate::schedule::Strategy,
    pub isa: jitspmm_asm::IsaLevel,
    pub ccm: bool,
}

/// A directory of compiled kernels, shared across engines and processes.
///
/// Open one with [`KernelCache::open`] (or [`KernelCache::with_capacity`] to
/// bound its size) and hand it to engines via
/// [`crate::JitSpmmBuilder::kernel_cache`] /
/// [`crate::JitSpmmBuilder::kernel_cache_in`]. All operations degrade
/// gracefully: an unreadable directory or a corrupt entry makes the engine
/// compile fresh, never fail or mis-execute ([`CacheStats`] records how often
/// that happened).
#[derive(Debug)]
pub struct KernelCache {
    dir: PathBuf,
    cap_bytes: Option<u64>,
    seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    rejects: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
}

impl KernelCache {
    /// Open (creating if needed) the cache directory at `dir`, with no size
    /// cap.
    pub fn open(dir: impl Into<PathBuf>) -> Arc<KernelCache> {
        Self::build(dir.into(), None)
    }

    /// Open the cache with a size cap: whenever a store pushes the directory
    /// past `cap_bytes`, the oldest entries (by modification time) are
    /// evicted until it fits.
    pub fn with_capacity(dir: impl Into<PathBuf>, cap_bytes: u64) -> Arc<KernelCache> {
        Self::build(dir.into(), Some(cap_bytes))
    }

    fn build(dir: PathBuf, cap_bytes: Option<u64>) -> Arc<KernelCache> {
        // Failure to create the directory degrades every lookup to a miss
        // and every store to a no-op; the engine still works.
        let _ = fs::create_dir_all(&dir);
        Arc::new(KernelCache {
            dir,
            cap_bytes,
            seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejects: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the hit/miss/store counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Total size of all cache entries on disk, in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.entries().iter().map(|e| e.size).sum()
    }

    /// Number of entries (kernel images + promotion records) on disk.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Whether the cache directory holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries().is_empty()
    }

    /// Remove every entry. Returns the number of files removed.
    pub fn clear(&self) -> usize {
        let mut removed = 0;
        for entry in self.entries() {
            if fs::remove_file(&entry.path).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    fn kernel_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("k-{:016x}.jsk", key.digest()))
    }

    fn promo_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("p-{:016x}.jsp", key.digest()))
    }

    fn reject(&self) {
        self.rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Load, patch and seal the kernel image for `key`, expecting call shape
    /// `kind`. `None` means miss or rejected entry — compile fresh.
    pub(crate) fn load_kernel(
        &self,
        key: &CacheKey,
        kind: KernelKind,
        targets: &RelocTargets,
    ) -> Option<ExecutableBuffer> {
        let path = self.kernel_path(key);
        let mut file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let loaded = self.try_load(&mut file, key, kind, targets);
        if loaded.is_none() {
            self.reject();
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        loaded
    }

    /// The validating load path; any `None` is a rejection.
    fn try_load(
        &self,
        file: &mut fs::File,
        key: &CacheKey,
        kind: KernelKind,
        targets: &RelocTargets,
    ) -> Option<ExecutableBuffer> {
        let file_len = file.metadata().ok()?.len();
        if file_len < CODE_OFFSET {
            return None;
        }
        let mut header = [0u8; CODE_OFFSET as usize];
        file.read_exact(&mut header).ok()?;
        if &header[0..8] != KERNEL_MAGIC {
            return None;
        }
        // Bytewise key echo: a filename digest collision, a stale codegen
        // revision or a foreign CPU feature set all fail here.
        if header[8..8 + KEY_BYTES] != key.to_bytes() {
            return None;
        }
        let at = 8 + KEY_BYTES;
        let code_len = u64::from_le_bytes(header[at..at + 8].try_into().unwrap());
        let checksum = u64::from_le_bytes(header[at + 8..at + 16].try_into().unwrap());
        let kind_code = u64::from_le_bytes(header[at + 16..at + 24].try_into().unwrap());
        let reloc_count = u64::from_le_bytes(header[at + 24..at + 32].try_into().unwrap());
        let stored_kind = match kind_code {
            0 => KernelKind::StaticRange,
            1 => KernelKind::DynamicDispatch,
            _ => return None,
        };
        if stored_kind != kind || code_len == 0 || reloc_count > MAX_RELOCS {
            return None;
        }
        // Truncation check before mapping: pages wholly past EOF would
        // SIGBUS on access.
        if file_len < CODE_OFFSET + code_len {
            return None;
        }
        let code_len = code_len as usize;
        let mut relocs = Vec::with_capacity(reloc_count as usize);
        for i in 0..reloc_count as usize {
            let base = at + 32 + i * 16;
            let sym = u64::from_le_bytes(header[base..base + 8].try_into().unwrap());
            let offset = u64::from_le_bytes(header[base + 8..base + 16].try_into().unwrap());
            let value = match sym {
                0 => targets.row_ptr,
                1 => targets.col_indices,
                2 => targets.values,
                3 => targets.next_counter,
                _ => return None,
            };
            if (offset as usize).checked_add(8).is_none_or(|end| end > code_len) {
                return None;
            }
            relocs.push((offset as usize, value));
        }
        let mut buf = WritableBuffer::map_file(file, CODE_OFFSET, code_len).ok()?;
        if digest_bytes(buf.code()) != checksum {
            return None;
        }
        for (offset, value) in relocs {
            buf.patch_u64(offset, value).ok()?;
        }
        buf.seal().ok()
    }

    /// Store a freshly compiled kernel image for `key`.
    ///
    /// The relocation slots are zeroed in the stored copy so the image is
    /// address-independent; write failures are silent (the cache just stays
    /// cold for this key).
    pub(crate) fn store_kernel(
        &self,
        key: &CacheKey,
        code: &[u8],
        relocs: &[KernelReloc],
        kind: KernelKind,
    ) {
        if relocs.len() as u64 > MAX_RELOCS {
            return;
        }
        let mut template = code.to_vec();
        for &(_, offset) in relocs {
            let Some(slot) = template.get_mut(offset..offset + 8) else { return };
            slot.fill(0);
        }
        let mut header = vec![0u8; CODE_OFFSET as usize];
        header[0..8].copy_from_slice(KERNEL_MAGIC);
        header[8..8 + KEY_BYTES].copy_from_slice(&key.to_bytes());
        let at = 8 + KEY_BYTES;
        header[at..at + 8].copy_from_slice(&(template.len() as u64).to_le_bytes());
        header[at + 8..at + 16].copy_from_slice(&digest_bytes(&template).to_le_bytes());
        let kind_code: u64 = match kind {
            KernelKind::StaticRange => 0,
            KernelKind::DynamicDispatch => 1,
        };
        header[at + 16..at + 24].copy_from_slice(&kind_code.to_le_bytes());
        header[at + 24..at + 32].copy_from_slice(&(relocs.len() as u64).to_le_bytes());
        for (i, &(sym, offset)) in relocs.iter().enumerate() {
            let base = at + 32 + i * 16;
            let sym_code: u64 = match sym {
                RelocSym::RowPtr => 0,
                RelocSym::ColIndices => 1,
                RelocSym::Values => 2,
                RelocSym::NextCounter => 3,
            };
            header[base..base + 8].copy_from_slice(&sym_code.to_le_bytes());
            header[base + 8..base + 16].copy_from_slice(&(offset as u64).to_le_bytes());
        }
        let _dir_lock = DirLock::acquire(&self.dir);
        if self.write_atomically(&self.kernel_path(key), &[&header, &template]) {
            self.stores.fetch_add(1, Ordering::Relaxed);
            self.enforce_cap();
        }
    }

    /// Look up a persisted promotion outcome for a tiered engine's requested
    /// configuration.
    pub(crate) fn load_promotion(&self, key: &CacheKey) -> Option<PromotionRecord> {
        let mut file = match fs::File::open(self.promo_path(key)) {
            Ok(f) => f,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let loaded = Self::parse_promotion(&mut file, key);
        if loaded.is_none() {
            self.reject();
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        loaded
    }

    fn parse_promotion(file: &mut fs::File, key: &CacheKey) -> Option<PromotionRecord> {
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).ok()?;
        let expected_len = 8 + KEY_BYTES + 8 + 3 + 8;
        if bytes.len() != expected_len || &bytes[0..8] != PROMO_MAGIC {
            return None;
        }
        let (body, tail) = bytes.split_at(expected_len - 8);
        if u64::from_le_bytes(tail.try_into().unwrap()) != digest_bytes(body) {
            return None;
        }
        if body[8..8 + KEY_BYTES] != key.to_bytes() {
            return None;
        }
        let at = 8 + KEY_BYTES;
        let batch = u64::from_le_bytes(body[at..at + 8].try_into().unwrap());
        let strategy = key::strategy_from_code(body[at + 8], batch)?;
        let isa = key::isa_from_code(body[at + 9])?;
        let ccm = body[at + 10] != 0;
        Some(PromotionRecord { strategy, isa, ccm })
    }

    /// Persist a tier-promotion outcome for `key`.
    pub(crate) fn store_promotion(&self, key: &CacheKey, record: &PromotionRecord) {
        let (strat_tag, batch) = key::strategy_code(record.strategy);
        let mut body = Vec::with_capacity(8 + KEY_BYTES + 8 + 3);
        body.extend_from_slice(PROMO_MAGIC);
        body.extend_from_slice(&key.to_bytes());
        body.extend_from_slice(&batch.to_le_bytes());
        body.push(strat_tag);
        body.push(key::isa_code(record.isa));
        body.push(record.ccm as u8);
        let digest = digest_bytes(&body).to_le_bytes();
        let _dir_lock = DirLock::acquire(&self.dir);
        if self.write_atomically(&self.promo_path(key), &[&body, &digest]) {
            self.stores.fetch_add(1, Ordering::Relaxed);
            self.enforce_cap();
        }
    }

    /// Write `parts` to a unique temp file and rename it into place, so
    /// concurrent processes and crashes can never leave a half-written entry
    /// under a real name. Returns false (silently) on any IO error.
    fn write_atomically(&self, path: &Path, parts: &[&[u8]]) -> bool {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!("tmp-{}-{seq}", std::process::id()));
        let write = || -> std::io::Result<()> {
            let mut file = fs::File::create(&tmp)?;
            for part in parts {
                file.write_all(part)?;
            }
            file.sync_all()?;
            fs::rename(&tmp, path)
        };
        let ok = write().is_ok();
        if !ok {
            let _ = fs::remove_file(&tmp);
        }
        ok
    }

    /// All cache entry files currently in the directory (ignores foreign
    /// files and unreadable metadata).
    fn entries(&self) -> Vec<DirEntry> {
        let Ok(read) = fs::read_dir(&self.dir) else { return Vec::new() };
        read.filter_map(|entry| {
            let entry = entry.ok()?;
            let name = entry.file_name();
            let name = name.to_str()?;
            let cached = (name.starts_with("k-") && name.ends_with(".jsk"))
                || (name.starts_with("p-") && name.ends_with(".jsp"))
                || name.starts_with("tmp-");
            if !cached {
                return None;
            }
            let meta = entry.metadata().ok()?;
            Some(DirEntry { path: entry.path(), size: meta.len(), mtime: meta.modified().ok()? })
        })
        .collect()
    }

    /// Evict oldest-modified entries until the directory fits the cap.
    fn enforce_cap(&self) {
        let Some(cap) = self.cap_bytes else { return };
        let mut entries = self.entries();
        let mut total: u64 = entries.iter().map(|e| e.size).sum();
        if total <= cap {
            return;
        }
        entries.sort_by_key(|e| e.mtime);
        for entry in entries {
            if total <= cap {
                break;
            }
            if fs::remove_file(&entry.path).is_ok() {
                total = total.saturating_sub(entry.size);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// One on-disk cache file.
struct DirEntry {
    path: PathBuf,
    size: u64,
    mtime: std::time::SystemTime,
}

/// `flock(2)` operation code: acquire an exclusive lock (blocking).
const LOCK_EX: i64 = 2;
/// `flock(2)` operation code: release the lock.
const LOCK_UN: i64 = 8;

/// Advisory cross-process lock on the cache directory: an exclusive
/// `flock(2)` on a `.lock` file inside it, held across a store's write and
/// cap-enforcement sweep so concurrent processes never interleave their
/// eviction scans. Readers never take it — loads validate entries
/// byte-for-byte regardless — and a failed acquisition (unwritable
/// directory, unsupported platform) degrades to proceeding unlocked, which
/// the atomic-rename write path already makes safe.
struct DirLock {
    /// The open `.lock` file holding `LOCK_EX`; `None` when acquisition
    /// failed or the platform has no lock shim.
    file: Option<fs::File>,
}

impl DirLock {
    /// Block until this process exclusively holds the directory's `.lock`
    /// file (created on first use; [`KernelCache::entries`] ignores it), or
    /// return a no-op guard if the lock cannot be taken.
    fn acquire(dir: &Path) -> DirLock {
        let file = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(dir.join(".lock"))
            .ok()
            .filter(|file| flock_raw(file, LOCK_EX) == 0);
        DirLock { file }
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        if let Some(file) = self.file.take() {
            // Explicit unlock before the descriptor closes; closing would
            // release it too, but only after every duplicate fd is gone.
            let _ = flock_raw(&file, LOCK_UN);
        }
    }
}

/// Raw `flock(2)` on x86-64 Linux — syscall 73 invoked directly, keeping
/// the crate free of a libc dependency. Returns 0 on success, a negative
/// errno on failure.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn flock_raw(file: &fs::File, operation: i64) -> i64 {
    use std::os::fd::AsRawFd;
    const SYS_FLOCK: i64 = 73;
    let fd = i64::from(file.as_raw_fd());
    let ret: i64;
    // SAFETY: `flock` reads no process memory through its arguments; the
    // descriptor is owned by `file`, which outlives the call.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_FLOCK => ret,
            in("rdi") fd,
            in("rsi") operation,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// Portable fallback: report failure, making every [`DirLock`] a no-op.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn flock_raw(_file: &fs::File, _operation: i64) -> i64 {
    -1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::KernelOptions;
    use crate::schedule::Strategy;
    use jitspmm_asm::{Assembler, CpuFeatures, Gpr, IsaLevel};
    use jitspmm_sparse::CsrMatrix;

    /// Self-cleaning unique temp directory.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("jitspmm-cache-test-{tag}-{}-{seq}", std::process::id()));
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample_key(d: usize) -> CacheKey {
        let matrix = CsrMatrix::<f32>::from_triplets(3, 3, &[(0, 0, 1.0), (2, 1, -2.0)]).unwrap();
        let options = KernelOptions {
            isa: IsaLevel::Scalar,
            ccm: true,
            features: CpuFeatures::detect(),
            listing: false,
        };
        CacheKey::for_kernel(&matrix, d, Strategy::RowSplitStatic, &options)
    }

    /// `mov rax, <reloc>; ret` — a runnable stand-in for a kernel, with the
    /// imm64 slot registered as the RowPtr relocation.
    fn toy_code() -> (Vec<u8>, Vec<KernelReloc>) {
        let mut asm = Assembler::new();
        asm.mov_ri64(Gpr::Rax, 0x1111_2222_3333_4444);
        let reloc = (RelocSym::RowPtr, asm.len() - 8);
        asm.ret();
        (asm.finalize().unwrap(), vec![reloc])
    }

    fn targets(row_ptr: u64) -> RelocTargets {
        RelocTargets { row_ptr, col_indices: 0, values: 0, next_counter: 0 }
    }

    #[test]
    fn store_load_round_trip_patches_and_executes() {
        let dir = TempDir::new("roundtrip");
        let cache = KernelCache::open(&dir.0);
        let key = sample_key(8);
        let (code, relocs) = toy_code();
        assert!(cache.load_kernel(&key, KernelKind::StaticRange, &targets(0)).is_none());
        cache.store_kernel(&key, &code, &relocs, KernelKind::StaticRange);
        let buf = cache.load_kernel(&key, KernelKind::StaticRange, &targets(0xDEAD_BEEF)).unwrap();
        let f: extern "C" fn() -> u64 = unsafe { buf.as_fn0() };
        assert_eq!(f(), 0xDEAD_BEEF);
        // Patched image must be bit-identical to what codegen would emit for
        // that address.
        let mut expected = code.clone();
        expected[relocs[0].1..relocs[0].1 + 8].copy_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
        assert_eq!(buf.code(), &expected[..]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));
    }

    #[test]
    fn different_key_or_kind_misses() {
        let dir = TempDir::new("keymiss");
        let cache = KernelCache::open(&dir.0);
        let (code, relocs) = toy_code();
        cache.store_kernel(&sample_key(8), &code, &relocs, KernelKind::StaticRange);
        assert!(cache.load_kernel(&sample_key(16), KernelKind::StaticRange, &targets(1)).is_none());
        assert!(cache
            .load_kernel(&sample_key(8), KernelKind::DynamicDispatch, &targets(1))
            .is_none());
        assert_eq!(cache.stats().rejects, 1); // wrong kind hits the file, fails validation
        assert_eq!(cache.stats().misses, 1); // wrong key has a different filename
    }

    #[test]
    fn truncated_and_corrupt_entries_are_rejected() {
        use std::io::{Seek, SeekFrom, Write};
        let dir = TempDir::new("corrupt");
        let cache = KernelCache::open(&dir.0);
        let key = sample_key(8);
        let (code, relocs) = toy_code();
        cache.store_kernel(&key, &code, &relocs, KernelKind::StaticRange);
        let path = cache.kernel_path(&key);
        let full = fs::read(&path).unwrap();

        // Truncated mid-code.
        fs::write(&path, &full[..full.len() - 4]).unwrap();
        assert!(cache.load_kernel(&key, KernelKind::StaticRange, &targets(1)).is_none());
        // Truncated to header only.
        fs::write(&path, &full[..64]).unwrap();
        assert!(cache.load_kernel(&key, KernelKind::StaticRange, &targets(1)).is_none());
        // Flipped code byte (checksum must catch it).
        fs::write(&path, &full).unwrap();
        let mut f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(CODE_OFFSET + 1)).unwrap();
        f.write_all(&[full[CODE_OFFSET as usize + 1] ^ 0x40]).unwrap();
        drop(f);
        assert!(cache.load_kernel(&key, KernelKind::StaticRange, &targets(1)).is_none());
        // Flipped header byte (key echo must catch it).
        fs::write(&path, &full).unwrap();
        let mut f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(20)).unwrap();
        f.write_all(&[full[20] ^ 0x01]).unwrap();
        drop(f);
        assert!(cache.load_kernel(&key, KernelKind::StaticRange, &targets(1)).is_none());
        assert_eq!(cache.stats().rejects, 4);

        // Restoring the original bytes makes it load again.
        fs::write(&path, &full).unwrap();
        assert!(cache.load_kernel(&key, KernelKind::StaticRange, &targets(1)).is_some());
    }

    #[test]
    fn clear_and_size_accounting() {
        let dir = TempDir::new("clear");
        let cache = KernelCache::open(&dir.0);
        let (code, relocs) = toy_code();
        cache.store_kernel(&sample_key(8), &code, &relocs, KernelKind::StaticRange);
        cache.store_kernel(&sample_key(16), &code, &relocs, KernelKind::StaticRange);
        assert_eq!(cache.len(), 2);
        assert!(cache.size_bytes() >= 2 * (CODE_OFFSET + code.len() as u64));
        assert_eq!(cache.clear(), 2);
        assert!(cache.is_empty());
        assert_eq!(cache.size_bytes(), 0);
        assert!(cache.load_kernel(&sample_key(8), KernelKind::StaticRange, &targets(1)).is_none());
    }

    #[test]
    fn size_cap_evicts_oldest() {
        let dir = TempDir::new("evict");
        // Cap below two entries: storing the second evicts the first.
        let cache = KernelCache::with_capacity(&dir.0, CODE_OFFSET + 1000);
        let (code, relocs) = toy_code();
        let (first, second) = (sample_key(8), sample_key(16));
        cache.store_kernel(&first, &code, &relocs, KernelKind::StaticRange);
        // Ensure a strictly older mtime on the first entry.
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store_kernel(&second, &code, &relocs, KernelKind::StaticRange);
        assert!(cache.stats().evictions >= 1);
        assert!(cache.load_kernel(&second, KernelKind::StaticRange, &targets(1)).is_some());
        assert!(cache.load_kernel(&first, KernelKind::StaticRange, &targets(1)).is_none());
    }

    #[test]
    fn promotion_records_round_trip_and_reject_corruption() {
        let dir = TempDir::new("promo");
        let cache = KernelCache::open(&dir.0);
        let key = sample_key(8);
        assert!(cache.load_promotion(&key).is_none());
        let record = PromotionRecord {
            strategy: Strategy::RowSplitDynamic { batch: 48 },
            isa: IsaLevel::Avx2,
            ccm: true,
        };
        cache.store_promotion(&key, &record);
        assert_eq!(cache.load_promotion(&key), Some(record));
        // A promotion record for one config must not answer another.
        assert!(cache.load_promotion(&sample_key(16)).is_none());
        // Corruption: flip a byte anywhere → checksum rejects.
        let path = cache.promo_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8 + KEY_BYTES] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load_promotion(&key).is_none());
        assert!(cache.stats().rejects >= 1);
    }

    #[test]
    fn stores_take_and_release_the_directory_lock() {
        let dir = TempDir::new("flock");
        let cache = KernelCache::open(&dir.0);
        let (code, relocs) = toy_code();
        cache.store_kernel(&sample_key(8), &code, &relocs, KernelKind::StaticRange);
        // The advisory lock file exists but never counts as a cache entry.
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(dir.0.join(".lock").exists());
        assert_eq!(cache.len(), 1);
        // The lock was released: a second store (a fresh blocking
        // acquisition on the same file) proceeds.
        cache.store_kernel(&sample_key(16), &code, &relocs, KernelKind::StaticRange);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().stores, 2);
    }

    #[test]
    fn concurrent_store_waits_for_a_held_directory_lock() {
        let dir = TempDir::new("flock-wait");
        fs::create_dir_all(&dir.0).unwrap();
        let cache = KernelCache::open(&dir.0);
        let (code, relocs) = toy_code();
        // Hold the lock as if another process were mid-store; a store on a
        // second thread must wait for the release, then complete (on
        // platforms without the lock shim it simply completes).
        let guard = DirLock::acquire(&dir.0);
        std::thread::scope(|scope| {
            let store = scope.spawn(|| {
                cache.store_kernel(&sample_key(8), &code, &relocs, KernelKind::StaticRange);
            });
            std::thread::sleep(std::time::Duration::from_millis(30));
            drop(guard);
            store.join().unwrap();
        });
        assert_eq!(cache.stats().stores, 1);
        assert!(cache.load_kernel(&sample_key(8), KernelKind::StaticRange, &targets(1)).is_some());
    }

    #[test]
    fn unwritable_directory_degrades_to_no_cache() {
        // A path under a file can't be created; every call must still work.
        let dir = TempDir::new("degrade");
        fs::create_dir_all(&dir.0).unwrap();
        let blocker = dir.0.join("blocker");
        fs::write(&blocker, b"x").unwrap();
        let cache = KernelCache::open(blocker.join("sub"));
        let key = sample_key(8);
        let (code, relocs) = toy_code();
        cache.store_kernel(&key, &code, &relocs, KernelKind::StaticRange);
        assert!(cache.load_kernel(&key, KernelKind::StaticRange, &targets(1)).is_none());
        assert_eq!(cache.stats().stores, 0);
        assert_eq!(cache.size_bytes(), 0);
        assert_eq!(cache.clear(), 0);
    }
}
