//! Multi-engine serving: route a mixed request stream across several
//! compiled engines sharing one [`crate::WorkerPool`], under a control
//! plane that keeps the router bounded when overloaded and alive when a
//! kernel faults.
//!
//! The paper's premise is that JIT compilation is amortized across many
//! executions of one kernel; a serving system amortizes it one level up,
//! across many *kernels* sharing one runtime. An [`SpmmServer`] owns N
//! compiled [`crate::JitSpmm`] engines — different matrices, column counts
//! and strategies — and accepts a mixed stream of owned requests, each
//! tagged with the id of the engine that should execute it:
//!
//! * every request is validated (engine id, input shape) **before** any
//!   launch lock or buffer pool is touched, so malformed traffic produces
//!   [`crate::JitSpmmError`]s, never panics or poisoned engines;
//! * each engine's requests flow through its own [`crate::BatchStream`]
//!   pipeline (per-engine launch slots, payloads and spare kernels), fed by
//!   value via [`crate::BatchStream::push_owned`], so cross-thread producers
//!   need no `'env` borrows;
//! * the per-engine lane caps from the runtime keep concurrently in-flight
//!   engines on **disjoint worker subsets** of the shared pool, so a slow
//!   engine cannot starve the others;
//! * results come back in per-engine submission order (and the collecting
//!   entry points return them sorted by global submission order), each
//!   tagged with its engine id and sequence numbers;
//! * a [`ServerReport`] aggregates one per-engine [`crate::BatchReport`]
//!   (kernel/dispatch p50/p99 through the same bounded reservoir the batch
//!   layer uses) plus whole-server throughput and the control plane's
//!   rejected/shed counters.
//!
//! Sharded engines ([`crate::shard::ShardedSpmm`]) register behind one
//! logical engine id via [`SpmmServer::add_sharded`]: the router fans each
//! of their requests across the shard pipelines, stitches the shard outputs
//! into one full-height response, and reports the merged critical-path
//! timing in that engine's [`crate::BatchReport`] slot — routing,
//! submission-order collection and [`ServerReport`] aggregation are
//! unchanged.
//!
//! # The serving control plane
//!
//! Serving differs from batch execution in what it must survive: producers
//! that offer more load than the engines can absorb, requests whose answers
//! stop mattering after a deadline, topology that changes while traffic
//! flows, and generated code that faults. The control plane addresses each:
//!
//! * **Admission control** — the request queue admits under an
//!   [`AdmissionPolicy`]: a queue-depth bound plus an optional cap on
//!   requests outstanding in the whole server, with a choice between
//!   blocking the producer (backpressure) and shedding
//!   ([`crate::serve::SendError::Rejected`] with a typed [`RejectReason`],
//!   without blocking). Producers never block indefinitely on an overloaded
//!   server.
//! * **Priorities and deadlines** — each [`ServerRequest`] carries a
//!   `priority` and an optional absolute deadline;
//!   [`SpmmServer::serve_controlled`] drains arrivals through a
//!   [`ReorderBuffer`] ordered by priority, then earliest deadline, then
//!   arrival, and sheds expired requests right before launch
//!   ([`RejectReason::DeadlinePassed`], counted in
//!   [`ServerReport::shed_deadline`]).
//! * **Dynamic topology** — [`SpmmServer::add_engine`] /
//!   [`SpmmServer::add_sharded`] register engines while sessions are open;
//!   [`SpmmServer::retire_engine`] drains an engine out of service without
//!   disturbing the others; [`ControlHandle::drain`] is a barrier that
//!   stops admission and waits until every admitted request has been
//!   answered.
//! * **Adaptive tiering** — with [`ServeOptions::tiering`], engines built
//!   via [`crate::JitSpmmBuilder::tiered`] start serving on their cheap
//!   tier-0 kernel and the session promotes them mid-stream: the control
//!   loop polls each engine's tier state between sweeps, runs the
//!   profile-guided recompile as a lane-capped background job on the shared
//!   pool (or inline under [`crate::TierPolicy::foreground`]), and
//!   hot-swaps the promoted kernel between batches — outputs stay
//!   bit-identical across the swap and [`ServerReport::promotions`] counts
//!   the swaps (sharded engines promote per shard).
//! * **Fault containment** — under [`SpmmServer::serve_controlled`], a
//!   worker panic (a crash in generated code) becomes a typed
//!   [`ServerResponse::Failed`] for exactly the request that hit it;
//!   unrelated engines keep serving and the server remains usable. The
//!   cfg-gated [`fault`] module injects such crashes for chaos tests.
//!
//! Entry points, lowest-level first:
//!
//! * [`SpmmServer::session`] — open a [`ServerSession`] inside a pool scope
//!   and drive it by hand ([`ServerSession::submit`] /
//!   [`ServerSession::finish`]);
//! * [`SpmmServer::serve_batch`] — serve a pre-collected `Vec` of requests;
//! * [`SpmmServer::serve_stream`] — spawn a producer thread that feeds a
//!   bounded [`RequestQueue`] while the calling thread routes, the
//!   cross-thread configuration a real ingestion path has;
//! * [`SpmmServer::serve_stream_with`] — the response-streaming form: each
//!   completed response is handed to a consumer callback the moment it
//!   exists instead of being collected;
//! * [`SpmmServer::serve_controlled`] — the control-plane loop: admission
//!   policies, priority/deadline scheduling, graceful drain and fault
//!   containment, configured by [`ServeOptions`].

mod control;
mod queue;
mod report;
mod server;

#[cfg(any(test, feature = "fault-injection"))]
pub mod fault;

#[cfg(test)]
mod server_tests;

pub use control::{
    AdmissionPolicy, ControlHandle, EngineStatus, RejectReason, ReorderBuffer, SendError,
};
pub use queue::{RecvTimeout, RequestQueue, RequestSender, ServerRequest};
pub use report::ServerReport;
pub use server::{ServeOptions, ServerResponse, ServerSession, SpmmServer};
