//! Aggregated serving statistics: one [`BatchReport`] per engine plus
//! whole-server throughput and the control plane's shed/reject counters.

use crate::engine::BatchReport;
use std::time::Duration;

/// Aggregated timing for one serving run, returned by
/// [`crate::serve::ServerSession::finish`] (and the collecting entry points
/// built on it).
///
/// Per-engine statistics reuse the batch layer's [`BatchReport`] — the same
/// bounded-reservoir kernel/dispatch p50/p99 a single-engine batch reports —
/// indexed by engine id, so a serving dashboard can tell *which* engine's
/// tail is misbehaving. The whole-server numbers (`requests`, `elapsed`,
/// [`ServerReport::throughput`]) span the mixed stream end to end, and the
/// control-plane counters (`rejected`, `shed_deadline`, `failed`) separate
/// goodput from offered load: `requests` counts **completed** work only.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Total requests completed (a [`crate::serve::ServerResponse`] with an
    /// output), across all engines — the goodput.
    pub requests: usize,
    /// Wall-clock time from the first submission to the last join.
    pub elapsed: Duration,
    /// Requests refused by admission control or the router — queue-full
    /// shedding, draining/retired targets, unknown engine ids — excluding
    /// the deadline sheds counted separately below.
    pub rejected: usize,
    /// Requests shed because their deadline passed before launch.
    pub shed_deadline: usize,
    /// Requests that were launched but failed — a worker panic converted to
    /// a typed [`crate::serve::ServerResponse::Failed`], or a shape
    /// mismatch caught at routing time.
    pub failed: usize,
    /// Kernel hot-swaps applied by adaptive tiering during this run
    /// ([`crate::serve::ServeOptions::tiering`]); sharded engines count one
    /// per promoted shard. The per-engine reports carry the tier each
    /// engine finished the run on.
    pub promotions: usize,
    /// Per-engine batch statistics, indexed by engine id. An engine that
    /// received no requests reports `inputs == 0`.
    pub per_engine: Vec<BatchReport>,
}

impl ServerReport {
    /// Requests completed per second of serving wall-clock time, across all
    /// engines. Guarded exactly like [`BatchReport::throughput`]: an empty
    /// run and a run whose wall clock rounds to zero both report `0.0`
    /// rather than dividing by zero.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 || self.requests == 0 {
            0.0
        } else {
            self.requests as f64 / secs
        }
    }

    /// Everything the producers offered: completed plus rejected, shed and
    /// failed requests.
    pub fn offered(&self) -> usize {
        self.requests + self.rejected + self.shed_deadline + self.failed
    }

    /// Fraction of offered load that was refused or shed (0.0 for an empty
    /// run) — the dashboard's shed rate.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            (self.rejected + self.shed_deadline) as f64 / offered as f64
        }
    }

    /// The batch statistics of one engine, if the id is valid.
    pub fn engine(&self, id: usize) -> Option<&BatchReport> {
        self.per_engine.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty() -> ServerReport {
        ServerReport {
            requests: 0,
            elapsed: Duration::ZERO,
            rejected: 0,
            shed_deadline: 0,
            failed: 0,
            promotions: 0,
            per_engine: Vec::new(),
        }
    }

    #[test]
    fn throughput_guards_empty_and_zero_duration_runs() {
        // Empty run: no requests, regardless of the clock.
        let report = ServerReport { elapsed: Duration::from_millis(3), ..empty() };
        assert_eq!(report.throughput(), 0.0);
        // Zero-duration run: a tiny mixed stream whose wall clock rounds to
        // zero must not produce inf/NaN.
        let instant = ServerReport { requests: 5, ..empty() };
        assert_eq!(instant.throughput(), 0.0);
        assert!(instant.throughput().is_finite());
        // The regular case still computes a rate.
        let normal = ServerReport { requests: 8, elapsed: Duration::from_secs(4), ..empty() };
        assert!((normal.throughput() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shed_rate_separates_goodput_from_offered_load() {
        assert_eq!(empty().shed_rate(), 0.0);
        let report =
            ServerReport { requests: 6, rejected: 3, shed_deadline: 1, failed: 2, ..empty() };
        assert_eq!(report.offered(), 12);
        assert!((report.shed_rate() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn engine_lookup_is_bounds_checked() {
        assert!(empty().engine(0).is_none());
    }
}
