//! Aggregated serving statistics: one [`BatchReport`] per engine plus
//! whole-server throughput.

use crate::engine::BatchReport;
use std::time::Duration;

/// Aggregated timing for one serving run, returned by
/// [`crate::serve::ServerSession::finish`] (and the collecting entry points
/// built on it).
///
/// Per-engine statistics reuse the batch layer's [`BatchReport`] — the same
/// bounded-reservoir kernel/dispatch p50/p99 a single-engine batch reports —
/// indexed by engine id, so a serving dashboard can tell *which* engine's
/// tail is misbehaving. The whole-server numbers (`requests`, `elapsed`,
/// [`ServerReport::throughput`]) span the mixed stream end to end.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Total requests executed, across all engines.
    pub requests: usize,
    /// Wall-clock time from the first submission to the last join.
    pub elapsed: Duration,
    /// Per-engine batch statistics, indexed by engine id. An engine that
    /// received no requests reports `inputs == 0`.
    pub per_engine: Vec<BatchReport>,
}

impl ServerReport {
    /// Requests completed per second of serving wall-clock time, across all
    /// engines. Guarded exactly like [`BatchReport::throughput`]: an empty
    /// run and a run whose wall clock rounds to zero both report `0.0`
    /// rather than dividing by zero.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 || self.requests == 0 {
            0.0
        } else {
            self.requests as f64 / secs
        }
    }

    /// The batch statistics of one engine, if the id is valid.
    pub fn engine(&self, id: usize) -> Option<&BatchReport> {
        self.per_engine.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_guards_empty_and_zero_duration_runs() {
        // Empty run: no requests, regardless of the clock.
        let empty =
            ServerReport { requests: 0, elapsed: Duration::from_millis(3), per_engine: Vec::new() };
        assert_eq!(empty.throughput(), 0.0);
        // Zero-duration run: a tiny mixed stream whose wall clock rounds to
        // zero must not produce inf/NaN.
        let instant = ServerReport { requests: 5, elapsed: Duration::ZERO, per_engine: Vec::new() };
        assert_eq!(instant.throughput(), 0.0);
        assert!(instant.throughput().is_finite());
        // The regular case still computes a rate.
        let normal =
            ServerReport { requests: 8, elapsed: Duration::from_secs(4), per_engine: Vec::new() };
        assert!((normal.throughput() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn engine_lookup_is_bounds_checked() {
        let report = ServerReport { requests: 0, elapsed: Duration::ZERO, per_engine: Vec::new() };
        assert!(report.engine(0).is_none());
    }
}
