//! Fault injection for chaos-testing the serving stack.
//!
//! Compiled only under `cfg(test)` or the `fault-injection` feature; release
//! builds of the crate carry none of this. The hooks are global, armed
//! countdowns consumed by **kernel-job entries** — the point where a worker
//! (or the sequential fast path) is about to run a compiled kernel — which
//! is exactly where a real crash in generated code would surface. The
//! serving layer's contract under these faults is what the chaos tests
//! assert: a panicked kernel job fails only its own request (a typed
//! [`crate::serve::ServerResponse::Failed`]), unrelated engines keep
//! serving, and the server remains usable afterwards.
//!
//! Because the state is process-global, tests that arm faults must
//! serialize through [`exclusive`] and should compute any reference results
//! **before** arming — every kernel-job entry in the process consumes
//! tickets, including plain [`crate::JitSpmm::execute`] calls.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// The panic message of an injected kernel fault; chaos tests match on it
/// to tell injected failures from real ones.
pub const INJECTED_PANIC: &str = "fault-injection: kernel job panic";

/// Fast-path switch: kernel entries load this (relaxed) and return when no
/// fault is armed, so the hook costs one atomic load in the common case.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Fire a panic on the Nth kernel entry from arming: the countdown starts
/// at N and the entry that decrements it to zero panics. 0 = disarmed.
static PANIC_COUNTDOWN: AtomicU64 = AtomicU64::new(0);

/// How many upcoming kernel entries sleep before running, and for how long.
static DELAY_TICKETS: AtomicU64 = AtomicU64::new(0);
static DELAY_NANOS: AtomicU64 = AtomicU64::new(0);

/// Serializes fault-armed tests; faults are process-global state.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// Holds the fault-injection lock; disarms everything when dropped, so a
/// panicking test cannot leak an armed fault into the next one.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Take the process-wide fault-injection lock (disarming any leftovers from
/// a previous holder). Every test that arms faults must hold one of these
/// for its whole duration.
pub fn exclusive() -> FaultGuard {
    let lock = EXCLUSIVE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    disarm();
    FaultGuard { _lock: lock }
}

/// Arm a one-shot panic on the `nth` kernel-job entry from now (1 = the
/// very next one). Exactly one entry fires, however many race.
pub fn arm_kernel_panic(nth: u64) {
    PANIC_COUNTDOWN.store(nth.max(1), Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
}

/// Make the next `count` kernel-job entries sleep `delay` before running —
/// a slow launch, for deadline and backpressure tests.
pub fn arm_kernel_delay(delay: Duration, count: u64) {
    DELAY_NANOS.store(u64::try_from(delay.as_nanos()).unwrap_or(u64::MAX), Ordering::SeqCst);
    DELAY_TICKETS.store(count, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
}

/// Clear every armed fault.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    PANIC_COUNTDOWN.store(0, Ordering::SeqCst);
    DELAY_TICKETS.store(0, Ordering::SeqCst);
    DELAY_NANOS.store(0, Ordering::SeqCst);
}

/// The hook: called at every kernel-job entry (worker-side
/// `KernelJob::run` and the batch layer's sequential fast path). No-op
/// unless a fault is armed.
pub(crate) fn kernel_entry() {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    // Slow-launch tickets: each claims one and sleeps.
    loop {
        let left = DELAY_TICKETS.load(Ordering::SeqCst);
        if left == 0 {
            break;
        }
        if DELAY_TICKETS
            .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            std::thread::sleep(Duration::from_nanos(DELAY_NANOS.load(Ordering::SeqCst)));
            break;
        }
    }
    // Panic countdown: the entry that claims ticket 1 fires, exactly once.
    loop {
        let left = PANIC_COUNTDOWN.load(Ordering::SeqCst);
        if left == 0 {
            break;
        }
        if PANIC_COUNTDOWN
            .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            if left == 1 {
                panic!("{INJECTED_PANIC}");
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn countdown_fires_exactly_once_on_the_nth_entry() {
        let _guard = exclusive();
        arm_kernel_panic(3);
        kernel_entry();
        kernel_entry();
        let fired = std::panic::catch_unwind(kernel_entry);
        assert!(fired.is_err(), "third entry fires the armed panic");
        // Spent: later entries are clean again.
        kernel_entry();
        kernel_entry();
    }

    #[test]
    fn delay_tickets_are_consumed_per_entry() {
        let _guard = exclusive();
        arm_kernel_delay(Duration::from_millis(1), 2);
        let start = std::time::Instant::now();
        kernel_entry();
        kernel_entry();
        assert!(start.elapsed() >= Duration::from_millis(2));
        assert_eq!(DELAY_TICKETS.load(Ordering::SeqCst), 0);
        // Spent tickets: no further sleeping (bounded by being instant-ish;
        // just assert it runs).
        kernel_entry();
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _guard = exclusive();
            arm_kernel_panic(1);
        }
        let _guard = exclusive();
        assert!(!ARMED.load(Ordering::SeqCst));
        kernel_entry();
    }
}
