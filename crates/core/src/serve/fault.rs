//! Fault injection for chaos-testing the serving stack.
//!
//! Compiled only under `cfg(test)` or the `fault-injection` feature; release
//! builds of the crate carry none of this. The hooks are global, armed
//! countdowns consumed by **kernel-job entries** — the point where a worker
//! (or the sequential fast path) is about to run a compiled kernel — which
//! is exactly where a real crash in generated code would surface. The
//! serving layer's contract under these faults is what the chaos tests
//! assert: a panicked kernel job fails only its own request (a typed
//! [`crate::serve::ServerResponse::Failed`]), unrelated engines keep
//! serving, and the server remains usable afterwards.
//!
//! Because the state is process-global, tests that arm faults must
//! serialize through [`exclusive`] and should compute any reference results
//! **before** arming — every kernel-job entry in the process consumes
//! tickets, including plain [`crate::JitSpmm::execute`] calls.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// The panic message of an injected kernel fault; chaos tests match on it
/// to tell injected failures from real ones.
pub const INJECTED_PANIC: &str = "fault-injection: kernel job panic";

/// The panic message of an injected tier-recompile fault. The tiering layer
/// catches it (a failed background recompile must never take down a serving
/// engine), so tests assert on the *absence* of promotion instead.
pub const INJECTED_RECOMPILE_PANIC: &str = "fault-injection: tier recompile panic";

/// Fast-path switch: kernel entries load this (relaxed) and return when no
/// fault is armed, so the hook costs one atomic load in the common case.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Fire a panic on the Nth kernel entry from arming: the countdown starts
/// at N and the entry that decrements it to zero panics. 0 = disarmed.
static PANIC_COUNTDOWN: AtomicU64 = AtomicU64::new(0);

/// How many upcoming kernel entries sleep before running, and for how long.
static DELAY_TICKETS: AtomicU64 = AtomicU64::new(0);
static DELAY_NANOS: AtomicU64 = AtomicU64::new(0);

/// Fire a panic on the Nth tier-recompile entry from arming. 0 = disarmed.
static RECOMPILE_COUNTDOWN: AtomicU64 = AtomicU64::new(0);

/// Serializes fault-armed tests; faults are process-global state.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

/// Holds the fault-injection lock; disarms everything when dropped, so a
/// panicking test cannot leak an armed fault into the next one.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Take the process-wide fault-injection lock (disarming any leftovers from
/// a previous holder). Every test that arms faults must hold one of these
/// for its whole duration.
pub fn exclusive() -> FaultGuard {
    let lock = EXCLUSIVE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    disarm();
    FaultGuard { _lock: lock }
}

/// Arm a one-shot panic on the `nth` kernel-job entry from now (1 = the
/// very next one). Exactly one entry fires, however many race.
pub fn arm_kernel_panic(nth: u64) {
    PANIC_COUNTDOWN.store(nth.max(1), Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
}

/// Make the next `count` kernel-job entries sleep `delay` before running —
/// a slow launch, for deadline and backpressure tests.
pub fn arm_kernel_delay(delay: Duration, count: u64) {
    DELAY_NANOS.store(u64::try_from(delay.as_nanos()).unwrap_or(u64::MAX), Ordering::SeqCst);
    DELAY_TICKETS.store(count, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
}

/// Arm a one-shot panic on the `nth` tier-recompile entry from now (1 = the
/// very next one) — a crash inside the background specializing compile. The
/// tiering layer must contain it: the engine keeps serving on its current
/// kernel and simply never promotes.
pub fn arm_recompile_panic(nth: u64) {
    RECOMPILE_COUNTDOWN.store(nth.max(1), Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
}

/// Clear every armed fault.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
    PANIC_COUNTDOWN.store(0, Ordering::SeqCst);
    DELAY_TICKETS.store(0, Ordering::SeqCst);
    DELAY_NANOS.store(0, Ordering::SeqCst);
    RECOMPILE_COUNTDOWN.store(0, Ordering::SeqCst);
}

/// The hook: called at every kernel-job entry (worker-side
/// `KernelJob::run` and the batch layer's sequential fast path). No-op
/// unless a fault is armed.
pub(crate) fn kernel_entry() {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    // Slow-launch tickets: each claims one and sleeps.
    loop {
        let left = DELAY_TICKETS.load(Ordering::SeqCst);
        if left == 0 {
            break;
        }
        if DELAY_TICKETS
            .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            std::thread::sleep(Duration::from_nanos(DELAY_NANOS.load(Ordering::SeqCst)));
            break;
        }
    }
    // Panic countdown: the entry that claims ticket 1 fires, exactly once.
    loop {
        let left = PANIC_COUNTDOWN.load(Ordering::SeqCst);
        if left == 0 {
            break;
        }
        if PANIC_COUNTDOWN
            .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            if left == 1 {
                panic!("{INJECTED_PANIC}");
            }
            break;
        }
    }
}

/// The hook called at every tier-recompile entry (the start of the
/// background specializing compile). No-op unless a recompile fault is
/// armed.
pub(crate) fn recompile_entry() {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    loop {
        let left = RECOMPILE_COUNTDOWN.load(Ordering::SeqCst);
        if left == 0 {
            break;
        }
        if RECOMPILE_COUNTDOWN
            .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            if left == 1 {
                panic!("{INJECTED_RECOMPILE_PANIC}");
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn countdown_fires_exactly_once_on_the_nth_entry() {
        let _guard = exclusive();
        arm_kernel_panic(3);
        kernel_entry();
        kernel_entry();
        let fired = std::panic::catch_unwind(kernel_entry);
        assert!(fired.is_err(), "third entry fires the armed panic");
        // Spent: later entries are clean again.
        kernel_entry();
        kernel_entry();
    }

    #[test]
    fn delay_tickets_are_consumed_per_entry() {
        let _guard = exclusive();
        arm_kernel_delay(Duration::from_millis(1), 2);
        let start = std::time::Instant::now();
        kernel_entry();
        kernel_entry();
        assert!(start.elapsed() >= Duration::from_millis(2));
        assert_eq!(DELAY_TICKETS.load(Ordering::SeqCst), 0);
        // Spent tickets: no further sleeping (bounded by being instant-ish;
        // just assert it runs).
        kernel_entry();
    }

    #[test]
    fn recompile_countdown_is_independent_of_kernel_entries() {
        let _guard = exclusive();
        arm_recompile_panic(1);
        // Kernel entries do not consume the recompile ticket.
        kernel_entry();
        kernel_entry();
        let fired = std::panic::catch_unwind(recompile_entry);
        assert!(fired.is_err(), "recompile entry fires the armed panic");
        recompile_entry();
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _guard = exclusive();
            arm_kernel_panic(1);
        }
        let _guard = exclusive();
        assert!(!ARMED.load(Ordering::SeqCst));
        kernel_entry();
    }
}
