//! The bounded request queue between producer threads and the serving loop,
//! with control-plane admission (policies, typed rejections) layered on top.

use crate::runtime::pool::lock;
use crate::serve::control::{AdmissionPolicy, ControlShared, RejectReason, SendError};
use jitspmm_sparse::{DenseMatrix, Scalar};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One serving request: a dense input tagged with the id of the engine that
/// should execute it, plus the control-plane metadata — priority and
/// deadline — the router orders and sheds by.
///
/// Build with [`ServerRequest::new`] and refine with the builder-style
/// [`ServerRequest::with_priority`] / [`ServerRequest::with_deadline`]:
///
/// ```
/// use jitspmm::serve::ServerRequest;
/// use jitspmm_sparse::DenseMatrix;
/// use std::time::Duration;
///
/// let request = ServerRequest::new(0, DenseMatrix::<f32>::random(64, 8, 7))
///     .with_priority(3)
///     .with_deadline(Duration::from_millis(50));
/// assert_eq!(request.priority, 3);
/// assert!(request.expires_at().is_some());
/// ```
#[derive(Debug)]
pub struct ServerRequest<T: Scalar> {
    /// Which of the server's engines this request targets.
    pub engine: usize,
    /// The dense right-hand side, owned — producers hand inputs over by
    /// value, so no borrow ties them to the serving scope.
    pub input: DenseMatrix<T>,
    /// Scheduling priority: higher values are drained from the reorder
    /// buffer first. Defaults to 0.
    pub priority: u8,
    /// Absolute expiry, converted from the relative budget at
    /// [`ServerRequest::with_deadline`] time. `None` = no deadline.
    pub(crate) deadline: Option<Instant>,
}

impl<T: Scalar> ServerRequest<T> {
    /// A request for `engine` with default priority (0) and no deadline.
    pub fn new(engine: usize, input: DenseMatrix<T>) -> ServerRequest<T> {
        ServerRequest { engine, input, priority: 0, deadline: None }
    }

    /// Set the scheduling priority (higher = drained first).
    pub fn with_priority(mut self, priority: u8) -> ServerRequest<T> {
        self.priority = priority;
        self
    }

    /// Give the request `budget` from **now**: if the router has not
    /// launched it by then, it is shed with
    /// [`RejectReason::DeadlinePassed`] instead of executed.
    pub fn with_deadline(mut self, budget: Duration) -> ServerRequest<T> {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// The absolute expiry instant, if a deadline was set.
    pub fn expires_at(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether the deadline (if any) has passed as of `now`.
    pub(crate) fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|deadline| now >= deadline)
    }
}

struct QueueState<T: Scalar> {
    items: VecDeque<ServerRequest<T>>,
    /// Live [`RequestSender`] clones; the queue ends when this reaches zero
    /// and the items drain.
    senders: usize,
}

struct QueueShared<T: Scalar> {
    state: Mutex<QueueState<T>>,
    /// Producers park here while the queue is at capacity.
    not_full: Condvar,
    /// The receiver parks here while the queue is empty.
    not_empty: Condvar,
    /// Set by [`RequestQueue::close`] (or the receiver's drop): pending and
    /// future sends are refused so blocked producers unwedge immediately.
    /// Atomic (rather than a `QueueState` field) because senders parked on
    /// the in-flight cap re-check it under the *control plane's* lock, not
    /// the queue's.
    closed: AtomicBool,
    policy: AdmissionPolicy,
    /// The server's control plane, when this queue admits for one
    /// ([`crate::serve::SpmmServer::serve_controlled`]): consulted for
    /// engine lifecycle and the in-flight cap, and credited with admissions.
    control: Option<Arc<ControlShared>>,
}

/// The result of a [`RequestQueue::recv_timeout`].
#[derive(Debug)]
pub enum RecvTimeout<T: Scalar> {
    /// The oldest queued request.
    Request(ServerRequest<T>),
    /// Nothing arrived within the timeout; the queue is still live — the
    /// serving loop uses the wake-up to apply control-plane changes (drain,
    /// retire) before waiting again.
    TimedOut,
    /// The stream is over: the queue is closed or every sender is gone and
    /// the items drained.
    Disconnected,
}

/// The producer side of a bounded request queue, created by
/// [`RequestQueue::bounded`] / [`RequestQueue::with_policy`]. Clone it
/// freely — one per producer thread — and drop every clone to signal the
/// end of the stream.
pub struct RequestSender<T: Scalar> {
    shared: Arc<QueueShared<T>>,
}

impl<T: Scalar> RequestSender<T> {
    /// Enqueue a request built with [`ServerRequest::new`] (carrying
    /// priority/deadline metadata), subject to the queue's
    /// [`AdmissionPolicy`]: a blocking policy parks the producer while the
    /// queue is at capacity (backpressure), a shedding policy refuses with
    /// [`SendError::Rejected`]`(`[`RejectReason::QueueFull`]`)` instead.
    ///
    /// # Errors
    ///
    /// [`SendError::Closed`] once the receiving side has closed the queue
    /// (the serving loop ended or aborted) — a producer loop can simply
    /// stop. [`SendError::Rejected`] when the control plane refuses the
    /// request (queue full under a shedding policy, target engine draining
    /// or retired, server draining, unknown engine id); the queue remains
    /// open and later sends may succeed.
    pub fn send_request(&self, request: ServerRequest<T>) -> Result<(), SendError> {
        let shared = &self.shared;
        let mut state = lock(&shared.state);
        loop {
            if shared.closed.load(Ordering::SeqCst) {
                return Err(SendError::Closed);
            }
            if let Some(control) = &shared.control {
                if let Err(reason) = control.admission(request.engine) {
                    control.note_rejected_send();
                    return Err(SendError::Rejected(reason));
                }
            }
            let over_in_flight = match (&shared.control, shared.policy.max_in_flight) {
                (Some(control), Some(cap)) => control.outstanding() >= cap,
                _ => false,
            };
            if !over_in_flight && state.items.len() < shared.policy.queue_depth {
                if let Some(control) = &shared.control {
                    control.admitted();
                }
                state.items.push_back(request);
                shared.not_empty.notify_one();
                return Ok(());
            }
            if shared.policy.shed_on_full {
                if let Some(control) = &shared.control {
                    control.note_rejected_send();
                }
                return Err(SendError::Rejected(RejectReason::QueueFull));
            }
            // Blocking admission. Queue-depth room is signalled on
            // `not_full`; the in-flight cap releases on the control plane's
            // condvar, so that case parks there — request completions wake
            // it the moment a slot frees. Both paths loop back to re-check
            // closure and admission from scratch.
            if over_in_flight {
                drop(state);
                let (control, cap) = match (&shared.control, shared.policy.max_in_flight) {
                    (Some(control), Some(cap)) => (control, cap),
                    _ => unreachable!("over_in_flight implies a control-plane cap"),
                };
                control.wait_cap_change(cap, &shared.closed);
                state = lock(&shared.state);
            } else {
                state =
                    shared.not_full.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
    }

    /// [`RequestSender::send_request`] for the common case: a request with
    /// default priority and no deadline.
    pub fn send(&self, engine: usize, input: DenseMatrix<T>) -> Result<(), SendError> {
        self.send_request(ServerRequest::new(engine, input))
    }

    /// The pre-control-plane convenience: `true` if the request was
    /// admitted, `false` if it was refused for any reason (closed queue or
    /// typed rejection). Use [`RequestSender::send`] to distinguish them.
    #[must_use = "a false return means the request was dropped"]
    pub fn try_send(&self, engine: usize, input: DenseMatrix<T>) -> bool {
        self.send(engine, input).is_ok()
    }
}

impl<T: Scalar> Clone for RequestSender<T> {
    fn clone(&self) -> RequestSender<T> {
        lock(&self.shared.state).senders += 1;
        RequestSender { shared: Arc::clone(&self.shared) }
    }
}

impl<T: Scalar> Drop for RequestSender<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.shared.state);
        state.senders -= 1;
        if state.senders == 0 {
            // Stream over: wake the receiver so it can observe the end, and
            // any sibling senders mid-wait (there are none, but a spurious
            // wake is harmless).
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T: Scalar> std::fmt::Debug for RequestSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestSender").finish_non_exhaustive()
    }
}

/// The receiving side of a bounded multi-producer request queue: the channel
/// between request producers (any number of threads) and the serving loop
/// that routes into engine pipelines.
///
/// Bounded on purpose — the queue is the server's admission control. Its
/// [`AdmissionPolicy`] decides what the bound does: block producers
/// (backpressure) or shed with typed [`RejectReason`]s (load shedding), and
/// a control-plane queue additionally refuses sends to draining or retired
/// engines.
pub struct RequestQueue<T: Scalar> {
    shared: Arc<QueueShared<T>>,
}

impl<T: Scalar> RequestQueue<T> {
    /// Create a queue holding at most `capacity` requests (clamped to at
    /// least 1) with the classic blocking policy, returning the first
    /// sender and the receiver.
    pub fn bounded(capacity: usize) -> (RequestSender<T>, RequestQueue<T>) {
        RequestQueue::with_policy(AdmissionPolicy::blocking(capacity))
    }

    /// Create a queue admitting under `policy`. Without a server's control
    /// plane attached, only `queue_depth` and `shed_on_full` apply; the
    /// in-flight cap needs [`crate::serve::SpmmServer::serve_controlled`],
    /// which creates its queue internally.
    pub fn with_policy(policy: AdmissionPolicy) -> (RequestSender<T>, RequestQueue<T>) {
        RequestQueue::build(policy, None)
    }

    /// A control-plane queue: admission consults (and credits) the server's
    /// shared control state.
    pub(crate) fn controlled(
        policy: AdmissionPolicy,
        control: Arc<ControlShared>,
    ) -> (RequestSender<T>, RequestQueue<T>) {
        RequestQueue::build(policy, Some(control))
    }

    fn build(
        policy: AdmissionPolicy,
        control: Option<Arc<ControlShared>>,
    ) -> (RequestSender<T>, RequestQueue<T>) {
        let shared = Arc::new(QueueShared {
            state: Mutex::new(QueueState { items: VecDeque::new(), senders: 1 }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            closed: AtomicBool::new(false),
            policy,
            control,
        });
        (RequestSender { shared: Arc::clone(&shared) }, RequestQueue { shared })
    }

    /// Dequeue the oldest request, blocking while the queue is empty.
    /// Returns `None` once every sender is gone and the queue has drained —
    /// the end of the stream — or immediately after [`RequestQueue::close`].
    pub fn recv(&self) -> Option<ServerRequest<T>> {
        let mut state = lock(&self.shared.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if self.shared.closed.load(Ordering::SeqCst) || state.senders == 0 {
                return None;
            }
            state =
                self.shared.not_empty.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// [`RequestQueue::recv`] with a bounded wait, so a serving loop can
    /// wake to apply control-plane changes (drain, retire) even while the
    /// queue is idle.
    pub fn recv_timeout(&self, timeout: Duration) -> RecvTimeout<T> {
        let deadline = Instant::now() + timeout;
        let mut state = lock(&self.shared.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                self.shared.not_full.notify_one();
                return RecvTimeout::Request(item);
            }
            if self.shared.closed.load(Ordering::SeqCst) || state.senders == 0 {
                return RecvTimeout::Disconnected;
            }
            let now = Instant::now();
            if now >= deadline {
                return RecvTimeout::TimedOut;
            }
            state = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    /// Dequeue the oldest request if one is already queued; never blocks.
    /// The serving loop uses this to drain a burst of arrivals into the
    /// reorder buffer in one sweep.
    pub fn try_recv(&self) -> Option<ServerRequest<T>> {
        let mut state = lock(&self.shared.state);
        let item = state.items.pop_front();
        if item.is_some() {
            self.shared.not_full.notify_one();
        }
        item
    }

    /// Close the queue from the receiving side: pending requests are
    /// discarded (credited back to the control plane, so a drain barrier
    /// cannot wait on requests nobody will answer), blocked and future
    /// [`RequestSender::send`] calls return [`SendError::Closed`]
    /// immediately, and [`RequestQueue::recv`] returns `None`. The serving
    /// loop calls this before propagating an error so producers blocked on
    /// a full queue can never deadlock against a receiver that has stopped
    /// receiving. Dropping the queue closes it too.
    pub fn close(&self) {
        let mut state = lock(&self.shared.state);
        self.shared.closed.store(true, Ordering::SeqCst);
        let discarded = state.items.len();
        state.items.clear();
        drop(state);
        if let Some(control) = &self.shared.control {
            control.completed(discarded);
            // Senders parked on the in-flight cap wait on the control
            // plane's condvar, not the queue's — wake them so they observe
            // the closure.
            control.wake_waiters();
        }
        self.shared.not_full.notify_all();
        self.shared.not_empty.notify_all();
    }
}

impl<T: Scalar> Drop for RequestQueue<T> {
    fn drop(&mut self) {
        self.close();
    }
}

impl<T: Scalar> std::fmt::Debug for RequestQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = lock(&self.shared.state);
        f.debug_struct("RequestQueue")
            .field("queued", &state.items.len())
            .field("policy", &self.shared.policy)
            .field("senders", &state.senders)
            .field("closed", &self.shared.closed.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn request(seed: u64) -> DenseMatrix<f32> {
        DenseMatrix::random(4, 2, seed)
    }

    #[test]
    fn requests_arrive_in_order_across_producers() {
        let (sender, queue) = RequestQueue::<f32>::bounded(4);
        let received = std::thread::scope(|scope| {
            let s2 = sender.clone();
            scope.spawn(move || {
                for i in 0..20 {
                    assert!(s2.send(0, request(i)).is_ok());
                }
            });
            scope.spawn(move || {
                for i in 0..20 {
                    assert!(sender.send(1, request(100 + i)).is_ok());
                }
            });
            let mut per_engine = [0usize; 2];
            while let Some(req) = queue.recv() {
                per_engine[req.engine] += 1;
            }
            per_engine
        });
        assert_eq!(received, [20, 20]);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let (sender, queue) = RequestQueue::<f32>::bounded(2);
        let enqueued = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            let counter = Arc::clone(&enqueued);
            scope.spawn(move || {
                for i in 0..6 {
                    assert!(sender.send(0, request(i)).is_ok());
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            });
            // Handshake instead of a fixed sleep: wait for the producer to
            // fill the queue, where the bound parks it.
            while enqueued.load(Ordering::SeqCst) < 2 {
                std::thread::yield_now();
            }
            assert!(
                enqueued.load(Ordering::SeqCst) <= 2,
                "producer ran past the queue bound before anything was consumed"
            );
            let mut popped = 0;
            while let Some(_req) = queue.recv() {
                popped += 1;
                // Deterministic backpressure invariant: completed sends can
                // never run more than capacity (plus the one send a pop just
                // made room for) ahead of consumption.
                assert!(
                    enqueued.load(Ordering::SeqCst) <= popped + 3,
                    "producer ran past the queue bound (capacity 2 + 1 in-flight send)"
                );
            }
            assert_eq!(popped, 6);
        });
    }

    #[test]
    fn close_unblocks_producers_and_refuses_sends() {
        let (sender, queue) = RequestQueue::<f32>::bounded(1);
        assert!(sender.send(0, request(1)).is_ok());
        std::thread::scope(|scope| {
            let s = sender.clone();
            let sending = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&sending);
            let blocked = scope.spawn(move || {
                flag.store(true, Ordering::SeqCst);
                s.send(0, request(2))
            });
            // Handshake instead of a fixed sleep: once the flag is up the
            // producer is at (or about to park in) its send; closing now
            // must yield `Closed` either way, never a hang.
            while !sending.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            queue.close();
            assert_eq!(blocked.join().unwrap(), Err(SendError::Closed));
        });
        assert_eq!(
            sender.send(0, request(3)),
            Err(SendError::Closed),
            "closed queue must refuse new sends"
        );
        assert!(!sender.try_send(0, request(4)), "try_send keeps the old bool semantics");
        assert!(queue.recv().is_none(), "closed queue must not hand out stale items");
    }

    #[test]
    fn dropping_all_senders_ends_the_stream() {
        let (sender, queue) = RequestQueue::<f32>::bounded(4);
        let clone = sender.clone();
        assert!(sender.send(0, request(1)).is_ok());
        drop(sender);
        assert!(clone.send(0, request(2)).is_ok());
        drop(clone);
        assert!(queue.recv().is_some());
        assert!(queue.recv().is_some());
        assert!(queue.recv().is_none(), "drained queue with no senders ends the stream");
    }

    #[test]
    fn shedding_policy_rejects_at_the_bound_without_blocking() {
        let (sender, queue) = RequestQueue::<f32>::with_policy(AdmissionPolicy::shedding(2));
        assert!(sender.send(0, request(1)).is_ok());
        assert!(sender.send(0, request(2)).is_ok());
        // The bound: a typed rejection, immediately — no parked producer.
        assert_eq!(sender.send(0, request(3)), Err(SendError::Rejected(RejectReason::QueueFull)));
        // Draining one makes room again.
        assert!(queue.recv().is_some());
        assert!(sender.send(0, request(4)).is_ok());
    }

    #[test]
    fn recv_timeout_distinguishes_idle_from_ended() {
        let (sender, queue) = RequestQueue::<f32>::bounded(4);
        assert!(matches!(queue.recv_timeout(Duration::from_millis(5)), RecvTimeout::TimedOut));
        assert!(sender.send(0, request(1)).is_ok());
        assert!(matches!(queue.recv_timeout(Duration::from_millis(5)), RecvTimeout::Request(_)));
        drop(sender);
        assert!(matches!(queue.recv_timeout(Duration::from_millis(5)), RecvTimeout::Disconnected));
    }

    #[test]
    fn try_recv_never_blocks() {
        let (sender, queue) = RequestQueue::<f32>::bounded(4);
        assert!(queue.try_recv().is_none());
        assert!(sender.send(3, request(1)).is_ok());
        assert_eq!(queue.try_recv().map(|r| r.engine), Some(3));
        assert!(queue.try_recv().is_none());
    }

    #[test]
    fn deadline_stamps_an_absolute_expiry() {
        let req = ServerRequest::new(0, request(1)).with_deadline(Duration::from_millis(10));
        assert!(!req.expired(Instant::now()));
        assert!(req.expired(Instant::now() + Duration::from_millis(20)));
        let no_deadline = ServerRequest::new(0, request(2));
        assert!(no_deadline.expires_at().is_none());
        assert!(!no_deadline.expired(Instant::now() + Duration::from_secs(3600)));
    }
}
