//! The bounded request queue between producer threads and the serving loop.

use crate::runtime::pool::lock;
use jitspmm_sparse::{DenseMatrix, Scalar};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// One serving request: a dense input tagged with the id of the engine that
/// should execute it (an index into the server's engine list).
#[derive(Debug)]
pub struct ServerRequest<T: Scalar> {
    /// Which of the server's engines this request targets.
    pub engine: usize,
    /// The dense right-hand side, owned — producers hand inputs over by
    /// value, so no borrow ties them to the serving scope.
    pub input: DenseMatrix<T>,
}

struct QueueState<T: Scalar> {
    items: VecDeque<ServerRequest<T>>,
    /// Live [`RequestSender`] clones; the queue ends when this reaches zero
    /// and the items drain.
    senders: usize,
    /// Set by [`RequestQueue::close`] (or the receiver's drop): pending and
    /// future sends are refused so blocked producers unwedge immediately.
    closed: bool,
}

struct QueueShared<T: Scalar> {
    state: Mutex<QueueState<T>>,
    /// Producers park here while the queue is at capacity.
    not_full: Condvar,
    /// The receiver parks here while the queue is empty.
    not_empty: Condvar,
    capacity: usize,
}

/// The producer side of a bounded request queue, created by
/// [`RequestQueue::bounded`]. Clone it freely — one per producer thread —
/// and drop every clone to signal the end of the stream.
pub struct RequestSender<T: Scalar> {
    shared: Arc<QueueShared<T>>,
}

impl<T: Scalar> RequestSender<T> {
    /// Enqueue a request, blocking while the queue is at capacity
    /// (backpressure: producers cannot run unboundedly ahead of the serving
    /// loop). Returns `false` — handing nothing over — once the receiving
    /// side has closed the queue (the serving loop ended or aborted), so a
    /// producer loop can simply stop.
    #[must_use = "a false return means the queue is closed and the request was dropped"]
    pub fn send(&self, engine: usize, input: DenseMatrix<T>) -> bool {
        let mut state = lock(&self.shared.state);
        loop {
            if state.closed {
                return false;
            }
            if state.items.len() < self.shared.capacity {
                state.items.push_back(ServerRequest { engine, input });
                self.shared.not_empty.notify_one();
                return true;
            }
            state =
                self.shared.not_full.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

impl<T: Scalar> Clone for RequestSender<T> {
    fn clone(&self) -> RequestSender<T> {
        lock(&self.shared.state).senders += 1;
        RequestSender { shared: Arc::clone(&self.shared) }
    }
}

impl<T: Scalar> Drop for RequestSender<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.shared.state);
        state.senders -= 1;
        if state.senders == 0 {
            // Stream over: wake the receiver so it can observe the end, and
            // any sibling senders mid-wait (there are none, but a spurious
            // wake is harmless).
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T: Scalar> std::fmt::Debug for RequestSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestSender").finish_non_exhaustive()
    }
}

/// The receiving side of a bounded multi-producer request queue: the channel
/// between request producers (any number of threads) and the serving loop
/// that routes into engine pipelines.
///
/// Bounded on purpose — the queue is the server's admission control. A full
/// queue blocks producers ([`RequestSender::send`]) instead of buffering
/// without limit, and the serving loop drains it in arrival order.
pub struct RequestQueue<T: Scalar> {
    shared: Arc<QueueShared<T>>,
}

impl<T: Scalar> RequestQueue<T> {
    /// Create a queue holding at most `capacity` requests (clamped to at
    /// least 1), returning the first sender and the receiver.
    pub fn bounded(capacity: usize) -> (RequestSender<T>, RequestQueue<T>) {
        let shared = Arc::new(QueueShared {
            state: Mutex::new(QueueState { items: VecDeque::new(), senders: 1, closed: false }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        });
        (RequestSender { shared: Arc::clone(&shared) }, RequestQueue { shared })
    }

    /// Dequeue the oldest request, blocking while the queue is empty.
    /// Returns `None` once every sender is gone and the queue has drained —
    /// the end of the stream — or immediately after [`RequestQueue::close`].
    pub fn recv(&self) -> Option<ServerRequest<T>> {
        let mut state = lock(&self.shared.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if state.closed || state.senders == 0 {
                return None;
            }
            state =
                self.shared.not_empty.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Close the queue from the receiving side: pending requests are
    /// discarded, blocked and future [`RequestSender::send`] calls return
    /// `false` immediately, and [`RequestQueue::recv`] returns `None`. The
    /// serving loop calls this before propagating an error so producers
    /// blocked on a full queue can never deadlock against a receiver that
    /// has stopped receiving. Dropping the queue closes it too.
    pub fn close(&self) {
        let mut state = lock(&self.shared.state);
        state.closed = true;
        state.items.clear();
        drop(state);
        self.shared.not_full.notify_all();
        self.shared.not_empty.notify_all();
    }
}

impl<T: Scalar> Drop for RequestQueue<T> {
    fn drop(&mut self) {
        self.close();
    }
}

impl<T: Scalar> std::fmt::Debug for RequestQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = lock(&self.shared.state);
        f.debug_struct("RequestQueue")
            .field("queued", &state.items.len())
            .field("capacity", &self.shared.capacity)
            .field("senders", &state.senders)
            .field("closed", &state.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn request(seed: u64) -> DenseMatrix<f32> {
        DenseMatrix::random(4, 2, seed)
    }

    #[test]
    fn requests_arrive_in_order_across_producers() {
        let (sender, queue) = RequestQueue::<f32>::bounded(4);
        let received = std::thread::scope(|scope| {
            let s2 = sender.clone();
            scope.spawn(move || {
                for i in 0..20 {
                    assert!(s2.send(0, request(i)));
                }
            });
            scope.spawn(move || {
                for i in 0..20 {
                    assert!(sender.send(1, request(100 + i)));
                }
            });
            let mut per_engine = [0usize; 2];
            while let Some(req) = queue.recv() {
                per_engine[req.engine] += 1;
            }
            per_engine
        });
        assert_eq!(received, [20, 20]);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let (sender, queue) = RequestQueue::<f32>::bounded(2);
        let enqueued = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            let counter = Arc::clone(&enqueued);
            scope.spawn(move || {
                for i in 0..6 {
                    assert!(sender.send(0, request(i)));
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            });
            // Give the producer time to run ahead; the bound must stop it
            // at capacity while nothing is consumed.
            std::thread::sleep(Duration::from_millis(50));
            assert!(
                enqueued.load(Ordering::SeqCst) <= 3,
                "producer ran past the queue bound (capacity 2 + 1 in-flight send)"
            );
            let mut total = 0;
            while let Some(_req) = queue.recv() {
                total += 1;
            }
            assert_eq!(total, 6);
        });
    }

    #[test]
    fn close_unblocks_producers_and_refuses_sends() {
        let (sender, queue) = RequestQueue::<f32>::bounded(1);
        assert!(sender.send(0, request(1)));
        std::thread::scope(|scope| {
            let s = sender.clone();
            let blocked = scope.spawn(move || s.send(0, request(2)));
            std::thread::sleep(Duration::from_millis(20));
            queue.close();
            // The blocked producer must return false, not hang.
            assert!(!blocked.join().unwrap());
        });
        assert!(!sender.send(0, request(3)), "closed queue must refuse new sends");
        assert!(queue.recv().is_none(), "closed queue must not hand out stale items");
    }

    #[test]
    fn dropping_all_senders_ends_the_stream() {
        let (sender, queue) = RequestQueue::<f32>::bounded(4);
        let clone = sender.clone();
        assert!(sender.send(0, request(1)));
        drop(sender);
        assert!(clone.send(0, request(2)));
        drop(clone);
        assert!(queue.recv().is_some());
        assert!(queue.recv().is_some());
        assert!(queue.recv().is_none(), "drained queue with no senders ends the stream");
    }
}
