//! The [`SpmmServer`]: N compiled engines, one pool, one mixed request
//! stream.

use crate::engine::{BatchStream, ExecutionReport, JitSpmm};
use crate::error::JitSpmmError;
use crate::runtime::{PoolScope, PooledMatrix, WorkerPool};
use crate::serve::queue::{RequestQueue, RequestSender, ServerRequest};
use crate::serve::report::ServerReport;
use crate::shard::{ShardedSpmm, ShardedStream};
use jitspmm_sparse::{DenseMatrix, Scalar};
use std::collections::VecDeque;
use std::panic::resume_unwind;
use std::sync::Arc;
use std::time::Instant;

/// A multi-engine serving router: owns N compiled [`JitSpmm`] engines —
/// different matrices, column counts, strategies — that share one
/// [`WorkerPool`], and routes a mixed stream of engine-tagged requests to
/// their per-engine batch pipelines.
///
/// Each engine's launches are lane-capped to its configured thread count, so
/// requests for different engines execute **concurrently on disjoint worker
/// subsets** of the shared pool instead of serializing; within one engine,
/// requests pipeline through that engine's [`BatchStream`] and come back in
/// submission order.
///
/// ```
/// use jitspmm::serve::{ServerRequest, SpmmServer};
/// use jitspmm::{JitSpmmBuilder, WorkerPool};
/// use jitspmm_sparse::{generate, DenseMatrix};
///
/// # fn main() -> Result<(), jitspmm::JitSpmmError> {
/// let pool = WorkerPool::new(2);
/// let a = generate::uniform::<f32>(96, 96, 800, 1);
/// let b = generate::uniform::<f32>(64, 80, 500, 2);
/// let server = SpmmServer::new(vec![
///     JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, 8)?,
///     JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, 4)?,
/// ])?;
/// // A mixed, interleaved request stream: engine ids tag each input.
/// let requests: Vec<ServerRequest<f32>> = (0..6)
///     .map(|i| {
///         let engine = i % 2;
///         let input = if engine == 0 {
///             DenseMatrix::random(96, 8, 10 + i as u64)
///         } else {
///             DenseMatrix::random(80, 4, 20 + i as u64)
///         };
///         ServerRequest { engine, input }
///     })
///     .collect();
/// let (responses, report) = server.serve_batch(0, requests)?;
/// assert_eq!(responses.len(), 6);
/// assert_eq!(report.requests, 6);
/// for r in &responses {
///     let reference = if r.engine == 0 { &a } else { &b };
///     // (Re-deriving the inputs from the seeds above.)
///     # let input = if r.engine == 0 {
///     #     DenseMatrix::random(96, 8, 10 + r.request as u64)
///     # } else {
///     #     DenseMatrix::random(80, 4, 20 + r.request as u64)
///     # };
///     assert!(r.output.approx_eq(&reference.spmm_reference(&input), 1e-4));
/// }
/// # Ok(())
/// # }
/// ```
pub struct SpmmServer<'a, T: Scalar> {
    engines: Vec<JitSpmm<'a, T>>,
    /// Sharded engines registered after construction
    /// ([`SpmmServer::add_sharded`]); their logical engine ids follow the
    /// single engines' (`engines.len()..engines.len() + sharded.len()`).
    sharded: Vec<ShardedSpmm<'a, T>>,
    pool: WorkerPool,
}

impl<T: Scalar> std::fmt::Debug for SpmmServer<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpmmServer")
            .field("engines", &self.engines.len())
            .field("sharded", &self.sharded.len())
            .field("pool_workers", &self.pool.size())
            .finish()
    }
}

impl<'a, T: Scalar> SpmmServer<'a, T> {
    /// Build a server over `engines`. Engine ids are the indices into this
    /// vector, in order.
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::InvalidConfig`] if `engines` is empty or if
    /// the engines do not all execute on the **same** [`WorkerPool`] — the
    /// disjoint-lane overlap the router promises only holds within one pool
    /// (build every engine with [`crate::JitSpmmBuilder::pool`] on clones of
    /// one pool).
    pub fn new(engines: Vec<JitSpmm<'a, T>>) -> Result<SpmmServer<'a, T>, JitSpmmError> {
        let Some(first) = engines.first() else {
            return Err(JitSpmmError::InvalidConfig(
                "an SpmmServer needs at least one engine".to_string(),
            ));
        };
        let pool = first.pool().clone();
        if let Some(stray) = engines.iter().position(|e| !e.pool().same_pool(&pool)) {
            return Err(JitSpmmError::InvalidConfig(format!(
                "engine {stray} executes on a different worker pool; all of a server's \
                 engines must share one pool"
            )));
        }
        Ok(SpmmServer { engines, sharded: Vec::new(), pool })
    }

    /// Register a sharded engine ([`ShardedSpmm`]) behind **one logical
    /// engine id**, which this returns. To the routing layer a sharded
    /// engine is indistinguishable from a single one: requests tag the
    /// returned id, responses come back in per-engine submission order with
    /// stitched full-height outputs, and the [`ServerReport`] carries the
    /// sharded engine's merged [`crate::BatchReport`] in its per-engine
    /// slot. Sharded ids follow the single-engine ids
    /// (`engines().len()..`).
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::InvalidConfig`] if the sharded engine does not
    /// execute on this server's pool (checked via
    /// [`WorkerPool::same_pool`], like every engine at construction).
    pub fn add_sharded(&mut self, sharded: ShardedSpmm<'a, T>) -> Result<usize, JitSpmmError> {
        if !sharded.pool().same_pool(&self.pool) {
            return Err(JitSpmmError::InvalidConfig(
                "the sharded engine executes on a different worker pool; all of a server's \
                 engines must share one pool"
                    .to_string(),
            ));
        }
        self.sharded.push(sharded);
        Ok(self.engines.len() + self.sharded.len() - 1)
    }

    /// The single (unsharded) engines this server routes to, in id order.
    /// Sharded engines registered via [`SpmmServer::add_sharded`] follow
    /// them in the id space and are listed by [`SpmmServer::sharded`].
    pub fn engines(&self) -> &[JitSpmm<'a, T>] {
        &self.engines
    }

    /// The sharded engines, in registration order; the logical id of
    /// `sharded()[i]` is `engines().len() + i`.
    pub fn sharded(&self) -> &[ShardedSpmm<'a, T>] {
        &self.sharded
    }

    /// Total number of logical engine ids (single + sharded).
    pub fn engine_count(&self) -> usize {
        self.engines.len() + self.sharded.len()
    }

    /// The shared worker pool every engine executes on.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Open a [`ServerSession`] inside `scope`: one [`BatchStream`] per
    /// engine (each holding its engine's launch lock until the session ends),
    /// ready to route requests. `depth` is the per-engine pipeline depth,
    /// with the same auto semantics as [`JitSpmm::batch_stream`] (`0` =
    /// default depth, sequential fast path on hosts with nothing to
    /// overlap).
    ///
    /// This is the low-level entry point; [`SpmmServer::serve_batch`] and
    /// [`SpmmServer::serve_stream`] drive a session for you.
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::LaunchInProgress`] if the calling thread already
    /// holds a launch of any engine, or a codegen error from compiling spare
    /// slot kernels.
    pub fn session<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        depth: usize,
    ) -> Result<ServerSession<'scope, 'env, T>, JitSpmmError> {
        let mut streams = Vec::with_capacity(self.engine_count());
        for engine in &self.engines {
            // A failure midway (a held launch lock, codegen) drops the
            // streams opened so far, releasing their engines.
            streams.push(RouteStream::Single(engine.batch_stream(scope, depth)?));
        }
        for sharded in &self.sharded {
            streams.push(RouteStream::Sharded(sharded.batch_stream(scope, depth)?));
        }
        let engines = streams.len();
        Ok(ServerSession {
            server: self,
            streams,
            pending: vec![VecDeque::new(); engines],
            completed: vec![0; engines],
            next_request: 0,
            started: None,
        })
    }

    /// Serve a pre-collected mixed request batch: validate **every** request
    /// (engine id and input shape) before any launch lock is taken, route
    /// them through per-engine pipelines, and return all responses sorted by
    /// global submission order, plus the aggregated [`ServerReport`].
    ///
    /// `depth` is the per-engine pipeline depth (`0` = auto, as
    /// [`JitSpmm::batch_stream`]).
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::UnknownEngine`] (carrying the offending engine id) or
    /// [`JitSpmmError::ShapeMismatch`] (naming the offending request index)
    /// if any request is malformed — nothing is launched in that case — and
    /// [`JitSpmmError::LaunchInProgress`] if the calling thread already
    /// holds a launch of one of the engines.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic of the run after joining the
    /// launches still in flight; the engines stay usable afterwards.
    pub fn serve_batch(
        &self,
        depth: usize,
        requests: Vec<ServerRequest<T>>,
    ) -> Result<(Vec<ServerResponse<T>>, ServerReport), JitSpmmError> {
        // Hoisted whole-batch validation: a malformed request fails the call
        // before any engine's launch lock or buffer pool is touched.
        for (index, request) in requests.iter().enumerate() {
            self.validate(request).map_err(|e| match e {
                JitSpmmError::ShapeMismatch(msg) => JitSpmmError::ShapeMismatch(format!(
                    "request {index} (engine {}): {msg}",
                    request.engine
                )),
                other => other,
            })?;
        }
        // The caller receives every response at once: let each engine's
        // buffer pool retain that many spares, so repeated serving rounds
        // recycle their output buffers instead of re-allocating. (Only once
        // the batch is actually going to run — a failed call must not mutate
        // engine state.)
        let mut per_engine_count = vec![0usize; self.engine_count()];
        for request in &requests {
            per_engine_count[request.engine] += 1;
        }
        for (engine, &count) in self.engines.iter().zip(&per_engine_count) {
            engine.reserve_outputs(count);
        }
        for (sharded, &count) in self.sharded.iter().zip(&per_engine_count[self.engines.len()..]) {
            sharded.reserve_outputs(count);
        }
        self.pool.scope(|scope| {
            let mut session = self.session(scope, depth)?;
            let mut responses = Vec::with_capacity(requests.len());
            for request in requests {
                // Validation was hoisted above; don't pay it again per
                // request on the routing path.
                if let Some(done) = session.submit_validated(request.engine, request.input) {
                    responses.push(done);
                }
            }
            let (rest, report) = session.finish();
            responses.extend(rest);
            responses.sort_by_key(|r| r.request);
            Ok((responses, report))
        })
    }

    /// Serve a request stream produced on another thread: `producer` runs on
    /// a fresh thread with the sending side of a bounded [`RequestQueue`]
    /// (capacity `queue_capacity`; sends block when the serving loop falls
    /// behind — admission control, not unbounded buffering), while the
    /// calling thread routes arrivals into the per-engine pipelines as they
    /// come in. The stream ends when the producer drops its last
    /// [`RequestSender`] clone; the call returns every response sorted by
    /// global submission order, the aggregated [`ServerReport`], and the
    /// producer's return value.
    ///
    /// # Errors
    ///
    /// A malformed request ([`JitSpmmError::UnknownEngine`] /
    /// [`JitSpmmError::ShapeMismatch`]) aborts the serve: the queue is
    /// closed — unblocking any producer mid-`send`, whose subsequent sends
    /// return `false` — in-flight launches are joined, and the error is
    /// returned after the producer thread has finished.
    /// [`JitSpmmError::LaunchInProgress`] as for
    /// [`SpmmServer::serve_batch`].
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic (after joining the remaining launches) or a
    /// producer panic; either way the queue is closed first so no thread is
    /// left blocked.
    pub fn serve_stream<P, R>(
        &self,
        depth: usize,
        queue_capacity: usize,
        producer: P,
    ) -> Result<(Vec<ServerResponse<T>>, ServerReport, R), JitSpmmError>
    where
        P: FnOnce(RequestSender<T>) -> R + Send,
        R: Send,
    {
        let mut responses = Vec::new();
        let (report, produced) =
            self.serve_stream_with(depth, queue_capacity, producer, |r| responses.push(r))?;
        responses.sort_by_key(|r| r.request);
        Ok((responses, report, produced))
    }

    /// [`SpmmServer::serve_stream`] in **response-streaming** form: instead
    /// of collecting every response and returning them at the end, each
    /// completed [`ServerResponse`] is handed to `consumer` as soon as its
    /// launch joins — the shape a latency-sensitive ingestion path wants,
    /// where a response should leave the server the moment it exists (and
    /// its pooled output buffer recycles as soon as the consumer drops it,
    /// instead of the whole result set staying resident).
    ///
    /// Responses arrive in **per-engine submission order** (each engine's
    /// pipeline completes oldest-first); across engines the order follows
    /// completion, not global submission — consult
    /// [`ServerResponse::request`] to re-sequence globally, or use
    /// [`SpmmServer::serve_stream`], which does exactly that.
    ///
    /// The producer/backpressure plumbing is identical to
    /// [`SpmmServer::serve_stream`]: `producer` runs on a fresh thread
    /// feeding a bounded [`RequestQueue`], and the queue is closed on every
    /// exit from this call — normal return, validation error, or a panic
    /// (the consumer's included) unwinding through it — so a producer
    /// blocked in `send` can never deadlock against a serving loop that has
    /// stopped consuming.
    ///
    /// # Errors
    ///
    /// As [`SpmmServer::serve_stream`].
    ///
    /// # Panics
    ///
    /// Re-raises a worker, producer or consumer panic; in every case the
    /// queue is closed and the in-flight launches joined first, so no
    /// thread is left blocked.
    pub fn serve_stream_with<P, R, C>(
        &self,
        depth: usize,
        queue_capacity: usize,
        producer: P,
        mut consumer: C,
    ) -> Result<(ServerReport, R), JitSpmmError>
    where
        P: FnOnce(RequestSender<T>) -> R + Send,
        R: Send,
        C: FnMut(ServerResponse<T>),
    {
        let (sender, queue) = RequestQueue::bounded(queue_capacity);
        std::thread::scope(|threads| {
            // Close the queue on *every* exit from this frame — normal
            // return, validation error, or a panic unwinding through it —
            // before `thread::scope` joins the producer, which may be
            // blocked in `send` on a full queue.
            let _close = CloseOnExit(&queue);
            let producer_thread = threads.spawn(move || producer(sender));
            let served = self.pool.scope(|scope| -> Result<_, JitSpmmError> {
                let mut session = self.session(scope, depth)?;
                while let Some(request) = queue.recv() {
                    if let Some(done) = session.submit(request.engine, request.input)? {
                        consumer(done);
                    }
                }
                let (rest, report) = session.finish();
                for done in rest {
                    consumer(done);
                }
                Ok(report)
            });
            queue.close();
            let produced = match producer_thread.join() {
                Ok(value) => value,
                Err(payload) => resume_unwind(payload),
            };
            served.map(|report| (report, produced))
        })
    }

    /// Validate one request — engine id, then input shape — without touching
    /// any engine state. The id space covers single engines first, then
    /// sharded ones.
    fn validate(&self, request: &ServerRequest<T>) -> Result<(), JitSpmmError> {
        self.check_request(request.engine, &request.input)
    }

    /// Shape-check `input` against logical engine `id` (single or sharded).
    fn check_request(&self, id: usize, input: &DenseMatrix<T>) -> Result<(), JitSpmmError> {
        if let Some(engine) = self.engines.get(id) {
            return engine.check_input_shape(input);
        }
        let sharded = self.sharded.get(id - self.engines.len()).ok_or({
            JitSpmmError::UnknownEngine { requested: id, engines: self.engine_count() }
        })?;
        sharded.check_input_shape(input)
    }
}

/// Closes the borrowed queue when dropped; see [`SpmmServer::serve_stream`].
struct CloseOnExit<'q, T: Scalar>(&'q RequestQueue<T>);

impl<T: Scalar> Drop for CloseOnExit<'_, T> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// One completed serving request, tagged with where it came from and where
/// it ran.
#[derive(Debug)]
pub struct ServerResponse<T: Scalar> {
    /// The engine that executed the request.
    pub engine: usize,
    /// Per-engine submission index (the `index`-th request routed to this
    /// engine); responses of one engine always arrive in this order.
    pub index: usize,
    /// Global submission sequence number across the whole session, assigned
    /// in [`ServerSession::submit`] order. The collecting entry points sort
    /// their result by this field.
    pub request: usize,
    /// The computed `Y = A_engine * X`, borrowed from the engine's buffer
    /// pool (dropping it recycles the buffer).
    pub output: PooledMatrix<T>,
    /// Per-launch timing, as the batch layer reports it.
    pub report: ExecutionReport,
}

/// An open serving session, created by [`SpmmServer::session`]: one
/// pipeline per logical engine — a [`BatchStream`] for single engines, a
/// [`ShardedStream`] for sharded ones — plus the request bookkeeping that
/// tags every response with its engine id and sequence numbers.
///
/// The session holds **every** engine's launch lock until it is finished or
/// dropped (dropping joins all in-flight launches and discards their
/// results). Submit with [`ServerSession::submit`]; drain with
/// [`ServerSession::finish`].
pub struct ServerSession<'scope, 'env, T: Scalar> {
    server: &'env SpmmServer<'env, T>,
    /// One pipeline per logical engine, indexed by engine id. Launch
    /// payload slots, output buffers and spare kernels are all
    /// per-engine-slot state owned by the individual streams.
    streams: Vec<RouteStream<'scope, 'env, T>>,
    /// Global sequence numbers of each engine's in-flight requests, oldest
    /// first (per-engine completion is oldest-first, so the front is always
    /// the next to finish).
    pending: Vec<VecDeque<usize>>,
    /// Per-engine count of completed responses handed out so far.
    completed: Vec<usize>,
    /// Next global submission sequence number.
    next_request: usize,
    /// First-submission timestamp, for the whole-server wall clock.
    started: Option<Instant>,
}

impl<T: Scalar> std::fmt::Debug for ServerSession<'_, '_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerSession")
            .field("engines", &self.streams.len())
            .field("submitted", &self.next_request)
            .finish()
    }
}

impl<T: Scalar> ServerSession<'_, '_, T> {
    /// Route one owned request to engine `engine`. If that engine's pipeline
    /// is at depth, the oldest in-flight launch **of that engine** is waited
    /// for first and its response returned; otherwise the call does not
    /// block and returns `None`. Responses of other engines are never
    /// returned here — they surface when their own engine is pushed again,
    /// or at [`ServerSession::finish`].
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::UnknownEngine`] for an out-of-range engine id
    /// and [`JitSpmmError::ShapeMismatch`] if the input is not that engine's
    /// `A.ncols() x d` — both checked before any launch state is touched;
    /// the rejected input is dropped and the session continues unharmed.
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic from the completed launch (the session is
    /// then dropped by unwinding, which joins all remaining launches and
    /// releases every engine).
    pub fn submit(
        &mut self,
        engine: usize,
        input: DenseMatrix<T>,
    ) -> Result<Option<ServerResponse<T>>, JitSpmmError> {
        if engine >= self.streams.len() {
            return Err(JitSpmmError::UnknownEngine {
                requested: engine,
                engines: self.streams.len(),
            });
        }
        self.server.check_request(engine, &input)?;
        Ok(self.submit_validated(engine, input))
    }

    /// [`ServerSession::submit`] for pre-validated requests —
    /// [`SpmmServer::serve_batch`] hoists the whole-batch validation out of
    /// the routing loop, mirroring the batch layer's
    /// `push_validated`/`push_owned_validated` split.
    pub(crate) fn submit_validated(
        &mut self,
        engine: usize,
        input: DenseMatrix<T>,
    ) -> Option<ServerResponse<T>> {
        self.started.get_or_insert_with(Instant::now);
        self.pending[engine].push_back(self.next_request);
        self.next_request += 1;
        let done = match &mut self.streams[engine] {
            RouteStream::Single(stream) => stream.push_owned_validated(input),
            // One owned request, fanned out to every shard pipeline: each
            // holds an `Arc` clone until its own launch joins.
            RouteStream::Sharded(stream) => stream.push_shared_validated(Arc::new(input)),
        };
        done.map(|(output, report)| {
            let request =
                self.pending[engine].pop_front().expect("completed launches were submitted");
            let index = self.completed[engine];
            self.completed[engine] += 1;
            ServerResponse { engine, index, request, output, report }
        })
    }

    /// Number of requests submitted so far, across all engines.
    pub fn submitted(&self) -> usize {
        self.next_request
    }

    /// Drain every engine's pipeline (in engine-id order, oldest launch
    /// first within each) and aggregate the [`ServerReport`]. The returned
    /// responses are the ones not already handed out by
    /// [`ServerSession::submit`], in per-engine submission order.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic among the remaining launches, after
    /// all of them have been joined.
    pub fn finish(mut self) -> (Vec<ServerResponse<T>>, ServerReport) {
        let mut responses = Vec::new();
        let mut per_engine = Vec::with_capacity(self.streams.len());
        for (engine, stream) in self.streams.drain(..).enumerate() {
            // A sharded engine contributes its merged (critical-path across
            // shards) batch report to the per-engine slot, so the
            // `ServerReport` aggregation is uniform across engine kinds.
            let (rest, report) = match stream {
                RouteStream::Single(stream) => stream.finish(),
                RouteStream::Sharded(stream) => {
                    let (rest, shard_report) = stream.finish();
                    (rest, shard_report.merged)
                }
            };
            for (output, exec) in rest {
                let request =
                    self.pending[engine].pop_front().expect("completed launches were submitted");
                let index = self.completed[engine];
                self.completed[engine] += 1;
                responses.push(ServerResponse { engine, index, request, output, report: exec });
            }
            per_engine.push(report);
        }
        let elapsed = self.started.map(|t| t.elapsed()).unwrap_or_default();
        (responses, ServerReport { requests: self.next_request, elapsed, per_engine })
    }
}

/// One logical engine's pipeline inside a [`ServerSession`]: a plain
/// [`BatchStream`] for single engines, a [`ShardedStream`] (one pipeline
/// per shard, stitched outputs) for sharded ones. Both return completed
/// results as `(output, report)` pairs in submission order, which is all
/// the session's bookkeeping relies on.
enum RouteStream<'scope, 'env, T: Scalar> {
    /// A single compiled engine's pipeline.
    Single(BatchStream<'scope, 'env, T>),
    /// A sharded engine's lockstep shard pipelines.
    Sharded(ShardedStream<'scope, 'env, T>),
}
