//! The [`SpmmServer`]: N compiled engines, one pool, one mixed request
//! stream, plus the control plane that keeps it bounded under overload and
//! alive under faults.

use crate::engine::{
    BatchReport, BatchStats, BatchStream, ExecutionReport, JitSpmm, KernelTier, TierAction,
    TierPolicy,
};
use crate::error::JitSpmmError;
use crate::runtime::pool::lock;
use crate::runtime::{JobSpec, PoolScope, PooledMatrix, WorkerPool};
use crate::schedule::Strategy;
use crate::serve::control::{
    AdmissionPolicy, ControlHandle, ControlShared, EngineStatus, PendingUpdate, RejectReason,
    ReorderBuffer,
};
use crate::serve::queue::{RecvTimeout, RequestQueue, RequestSender, ServerRequest};
use crate::serve::report::ServerReport;
use crate::shard::{ShardedSpmm, ShardedStream};
use crate::update::{MutableSpmm, MutableStream};
use jitspmm_sparse::{DeltaBatch, DenseMatrix, Scalar};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One registered engine: single or sharded, behind one logical id. The
/// `Arc` pins the engine's address so [`SpmmServer::single`] can hand out
/// borrows while the registry vector grows behind its mutex.
enum EngineEntry<'a, T: Scalar> {
    Single(Arc<JitSpmm<'a, T>>),
    Sharded(Arc<ShardedSpmm<'a, T>>),
    /// An updatable engine ([`MutableSpmm`]): owns its matrix generations,
    /// so it carries no borrow lifetime; live deltas swap its generation
    /// between launches via [`ControlHandle::apply_update`].
    Mutable(Arc<MutableSpmm<T>>),
}

/// A multi-engine serving router: owns N compiled [`JitSpmm`] engines —
/// different matrices, column counts, strategies — that share one
/// [`WorkerPool`], and routes a mixed stream of engine-tagged requests to
/// their per-engine batch pipelines.
///
/// Each engine's launches are lane-capped to its configured thread count, so
/// requests for different engines execute **concurrently on disjoint worker
/// subsets** of the shared pool instead of serializing; within one engine,
/// requests pipeline through that engine's [`BatchStream`] and come back in
/// submission order.
///
/// On top of the routing sits a **control plane** (see the
/// [`crate::serve`] module docs): admission policies with typed rejections,
/// per-request priorities and deadlines ([`SpmmServer::serve_controlled`]),
/// live topology changes ([`SpmmServer::add_engine`] /
/// [`SpmmServer::retire_engine`]) and a drain barrier
/// ([`ControlHandle::drain`]).
///
/// ```
/// use jitspmm::serve::{ServerRequest, SpmmServer};
/// use jitspmm::{JitSpmmBuilder, WorkerPool};
/// use jitspmm_sparse::{generate, DenseMatrix};
///
/// # fn main() -> Result<(), jitspmm::JitSpmmError> {
/// let pool = WorkerPool::new(2);
/// let a = generate::uniform::<f32>(96, 96, 800, 1);
/// let b = generate::uniform::<f32>(64, 80, 500, 2);
/// let server = SpmmServer::new(vec![
///     JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, 8)?,
///     JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&b, 4)?,
/// ])?;
/// // A mixed, interleaved request stream: engine ids tag each input.
/// let requests: Vec<ServerRequest<f32>> = (0..6)
///     .map(|i| {
///         let engine = i % 2;
///         let input = if engine == 0 {
///             DenseMatrix::random(96, 8, 10 + i as u64)
///         } else {
///             DenseMatrix::random(80, 4, 20 + i as u64)
///         };
///         ServerRequest::new(engine, input)
///     })
///     .collect();
/// let (responses, report) = server.serve_batch(0, requests)?;
/// assert_eq!(responses.len(), 6);
/// assert_eq!(report.requests, 6);
/// for r in &responses {
///     let reference = if r.engine() == 0 { &a } else { &b };
///     // (Re-deriving the inputs from the seeds above.)
///     # let input = if r.engine() == 0 {
///     #     DenseMatrix::random(96, 8, 10 + r.request() as u64)
///     # } else {
///     #     DenseMatrix::random(80, 4, 20 + r.request() as u64)
///     # };
///     assert!(r.output().approx_eq(&reference.spmm_reference(&input), 1e-4));
/// }
/// # Ok(())
/// # }
/// ```
pub struct SpmmServer<'a, T: Scalar> {
    /// Logical-id-indexed engine registry. **Append-only**: entries are
    /// never removed, replaced or reordered while the server lives —
    /// retirement is a control-plane state, not a registry mutation — which
    /// is what makes the borrow-returning accessors sound.
    engines: Mutex<Vec<EngineEntry<'a, T>>>,
    control: Arc<ControlShared>,
    pool: WorkerPool,
}

impl<T: Scalar> std::fmt::Debug for SpmmServer<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpmmServer")
            .field("engines", &self.engine_count())
            .field("pool_workers", &self.pool.size())
            .finish()
    }
}

impl<'a, T: Scalar> SpmmServer<'a, T> {
    /// Build a server over `engines`. Engine ids are the indices into this
    /// vector, in order; every engine starts [`EngineStatus::Active`].
    ///
    /// # Errors
    ///
    /// Returns [`JitSpmmError::InvalidConfig`] if `engines` is empty or if
    /// the engines do not all execute on the **same** [`WorkerPool`] — the
    /// disjoint-lane overlap the router promises only holds within one pool
    /// (build every engine with [`crate::JitSpmmBuilder::pool`] on clones of
    /// one pool).
    pub fn new(engines: Vec<JitSpmm<'a, T>>) -> Result<SpmmServer<'a, T>, JitSpmmError> {
        let Some(first) = engines.first() else {
            return Err(JitSpmmError::InvalidConfig(
                "an SpmmServer needs at least one engine".to_string(),
            ));
        };
        let pool = first.pool().clone();
        if let Some(stray) = engines.iter().position(|e| !e.pool().same_pool(&pool)) {
            return Err(JitSpmmError::InvalidConfig(format!(
                "engine {stray} executes on a different worker pool; all of a server's \
                 engines must share one pool"
            )));
        }
        let control = Arc::new(ControlShared::new());
        for _ in &engines {
            control.register_engine();
        }
        let entries = engines.into_iter().map(|e| EngineEntry::Single(Arc::new(e))).collect();
        Ok(SpmmServer { engines: Mutex::new(entries), control, pool })
    }

    /// Build a server with **no** engines yet, over `pool`: register them
    /// afterwards with [`SpmmServer::add_engine`] /
    /// [`SpmmServer::add_sharded`] / [`SpmmServer::add_mutable`] — before or
    /// after sessions open. Until an engine is registered every request is
    /// rejected with [`JitSpmmError::UnknownEngine`] (or the typed
    /// [`RejectReason::UnknownEngine`] on the controlled path).
    pub fn with_pool(pool: WorkerPool) -> SpmmServer<'a, T> {
        SpmmServer {
            engines: Mutex::new(Vec::new()),
            control: Arc::new(ControlShared::new()),
            pool,
        }
    }

    /// Register another single engine while the server (and any session) is
    /// live, returning its new logical id. The engine starts
    /// [`EngineStatus::Active`]; open sessions pick it up on their next
    /// control sweep, and [`SpmmServer::serve_controlled`] routes to it as
    /// soon as a request names the id.
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::InvalidConfig`] if the engine does not execute on
    /// this server's pool.
    pub fn add_engine(&self, engine: JitSpmm<'a, T>) -> Result<usize, JitSpmmError> {
        if !engine.pool().same_pool(&self.pool) {
            return Err(JitSpmmError::InvalidConfig(
                "the engine executes on a different worker pool; all of a server's engines \
                 must share one pool"
                    .to_string(),
            ));
        }
        let mut engines = lock(&self.engines);
        engines.push(EngineEntry::Single(Arc::new(engine)));
        let id = engines.len() - 1;
        let registered = self.control.register_engine();
        debug_assert_eq!(registered, id, "registry and control plane use one id space");
        Ok(id)
    }

    /// [`SpmmServer::add_engine`] with explicit NUMA placement: re-pins the
    /// engine's soft placement hint ([`JitSpmm::place_on_node`]) to `node`
    /// before registration, overriding whatever the builder chose. For
    /// servers that place engines by hand — e.g. to land a warm-started
    /// engine (see [`crate::cache`]) on the node it was profiled on.
    ///
    /// # Errors
    ///
    /// As [`SpmmServer::add_engine`].
    pub fn add_engine_on_node(
        &self,
        mut engine: JitSpmm<'a, T>,
        node: Option<usize>,
    ) -> Result<usize, JitSpmmError> {
        engine.place_on_node(node);
        self.add_engine(engine)
    }

    /// Register a sharded engine ([`ShardedSpmm`]) behind **one logical
    /// engine id**, which this returns. To the routing layer a sharded
    /// engine is indistinguishable from a single one: requests tag the
    /// returned id, responses come back in per-engine submission order with
    /// stitched full-height outputs, and the [`ServerReport`] carries the
    /// sharded engine's merged [`crate::BatchReport`] in its per-engine
    /// slot. Like [`SpmmServer::add_engine`], this works while sessions are
    /// open.
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::InvalidConfig`] if the sharded engine does not
    /// execute on this server's pool (checked via
    /// [`WorkerPool::same_pool`], like every engine at construction).
    pub fn add_sharded(&self, sharded: ShardedSpmm<'a, T>) -> Result<usize, JitSpmmError> {
        if !sharded.pool().same_pool(&self.pool) {
            return Err(JitSpmmError::InvalidConfig(
                "the sharded engine executes on a different worker pool; all of a server's \
                 engines must share one pool"
                    .to_string(),
            ));
        }
        let mut engines = lock(&self.engines);
        engines.push(EngineEntry::Sharded(Arc::new(sharded)));
        let id = engines.len() - 1;
        let registered = self.control.register_engine();
        debug_assert_eq!(registered, id, "registry and control plane use one id space");
        Ok(id)
    }

    /// [`SpmmServer::add_sharded`] with explicit NUMA placement: re-pins
    /// every shard engine's hint ([`ShardedSpmm::place_on_node`]) to `node`
    /// before registration, overriding the automatic contiguous spread.
    ///
    /// # Errors
    ///
    /// As [`SpmmServer::add_sharded`].
    pub fn add_sharded_on_node(
        &self,
        mut sharded: ShardedSpmm<'a, T>,
        node: Option<usize>,
    ) -> Result<usize, JitSpmmError> {
        sharded.place_on_node(node);
        self.add_sharded(sharded)
    }

    /// Register an **updatable** engine ([`MutableSpmm`]) behind one
    /// logical engine id, which this returns. To the routing layer it
    /// serves exactly like a sharded engine — stitched full-height outputs,
    /// per-engine submission order — but its matrix can change while the
    /// server runs: queue a [`DeltaBatch`] through
    /// [`ControlHandle::apply_update`] and the serving loop swaps the
    /// engine's generation between launches (see [`crate::update`]). Like
    /// [`SpmmServer::add_engine`], this works while sessions are open.
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::InvalidConfig`] if the engine does not execute on
    /// this server's pool.
    pub fn add_mutable(&self, mutable: MutableSpmm<T>) -> Result<usize, JitSpmmError> {
        if !mutable.pool().same_pool(&self.pool) {
            return Err(JitSpmmError::InvalidConfig(
                "the mutable engine executes on a different worker pool; all of a server's \
                 engines must share one pool"
                    .to_string(),
            ));
        }
        let mut engines = lock(&self.engines);
        engines.push(EngineEntry::Mutable(Arc::new(mutable)));
        let id = engines.len() - 1;
        let registered = self.control.register_engine();
        debug_assert_eq!(registered, id, "registry and control plane use one id space");
        Ok(id)
    }

    /// Begin retiring engine `id`: it stops admitting ([`RejectReason::Draining`]
    /// at the queue, [`JitSpmmError::EngineRetired`] on the strict session
    /// paths), in-flight requests complete, and the next control sweep of an
    /// open session drains its pipeline and frees its launch-slot payloads.
    /// With no session open the id goes straight to
    /// [`EngineStatus::Retired`]. Ids are never reused. Returns `false` for
    /// an unknown id.
    pub fn retire_engine(&self, id: usize) -> bool {
        self.control.retire(id)
    }

    /// A cloneable handle onto this server's control plane: retire engines,
    /// drain to quiescence, observe lifecycle — from any thread, without
    /// borrowing the server.
    pub fn control(&self) -> ControlHandle {
        ControlHandle::new(Arc::clone(&self.control))
    }

    /// Lifecycle of engine `id`, or `None` for an unknown id.
    pub fn engine_status(&self, id: usize) -> Option<EngineStatus> {
        self.control.status(id)
    }

    /// Borrow the single (unsharded) engine behind logical id `id`; `None`
    /// if the id is unknown or names a sharded engine. Retired engines are
    /// still borrowable — retirement stops *serving*, not inspection.
    pub fn single(&self, id: usize) -> Option<&JitSpmm<'a, T>> {
        let engines = lock(&self.engines);
        match engines.get(id)? {
            EngineEntry::Single(engine) => {
                let ptr = Arc::as_ptr(engine);
                // SAFETY: the registry is append-only — entries are never
                // removed or replaced while the server lives — and the Arc
                // in the vector keeps the engine alive until the server
                // drops, which the returned borrow (tied to `&self`) cannot
                // outlive. Vector growth moves only the Arc handle, never
                // the pointee.
                Some(unsafe { &*ptr })
            }
            _ => None,
        }
    }

    /// Borrow the sharded engine behind logical id `id`; `None` if the id
    /// is unknown or names a single engine.
    pub fn sharded(&self, id: usize) -> Option<&ShardedSpmm<'a, T>> {
        let engines = lock(&self.engines);
        match engines.get(id)? {
            EngineEntry::Sharded(sharded) => {
                let ptr = Arc::as_ptr(sharded);
                // SAFETY: as in [`SpmmServer::single`] — append-only
                // registry, Arc-pinned pointee, borrow tied to `&self`.
                Some(unsafe { &*ptr })
            }
            _ => None,
        }
    }

    /// Borrow the updatable engine ([`MutableSpmm`]) behind logical id
    /// `id`; `None` if the id is unknown or names a non-updatable engine.
    pub fn mutable(&self, id: usize) -> Option<&MutableSpmm<T>> {
        let engines = lock(&self.engines);
        match engines.get(id)? {
            EngineEntry::Mutable(mutable) => {
                let ptr = Arc::as_ptr(mutable);
                // SAFETY: as in [`SpmmServer::single`] — append-only
                // registry, Arc-pinned pointee, borrow tied to `&self`.
                Some(unsafe { &*ptr })
            }
            _ => None,
        }
    }

    /// Total number of logical engine ids (single, sharded or mutable,
    /// whatever their lifecycle state).
    pub fn engine_count(&self) -> usize {
        lock(&self.engines).len()
    }

    /// The shared worker pool every engine executes on.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Run `f` against the registry entry for `id`, if any. Private — `f`
    /// runs under the registry lock and must not call back into it.
    fn with_entry<R>(&self, id: usize, f: impl FnOnce(&EngineEntry<'a, T>) -> R) -> Option<R> {
        let engines = lock(&self.engines);
        engines.get(id).map(f)
    }

    pub(crate) fn ctrl(&self) -> &ControlShared {
        &self.control
    }

    /// The strategy stamped into synthesized (zero-input) per-engine
    /// reports for lanes that never opened.
    pub(crate) fn engine_strategy(&self, id: usize) -> Option<Strategy> {
        self.with_entry(id, |entry| match entry {
            EngineEntry::Single(engine) => engine.strategy(),
            EngineEntry::Sharded(sharded) => sharded.dominant_strategy(),
            EngineEntry::Mutable(mutable) => mutable.dominant_strategy(),
        })
    }

    /// Engine `id`'s current kernel tier and promotion count, for stamping
    /// per-engine reports.
    pub(crate) fn engine_tier_info(&self, id: usize) -> Option<(KernelTier, usize)> {
        self.with_entry(id, |entry| match entry {
            EngineEntry::Single(engine) => (engine.tier(), engine.promotions()),
            EngineEntry::Sharded(sharded) => (sharded.tier(), sharded.promotions()),
            EngineEntry::Mutable(mutable) => (mutable.tier(), mutable.promotions()),
        })
    }

    /// Run the profile-guided tier recompile for engine `id` (one shard of
    /// it, for sharded engines). Called from a background pool job or inline
    /// by the serving loop; never panics (the tier layer contains recompile
    /// failures) and takes no engine lock, so serving proceeds throughout.
    pub(crate) fn tier_recompile_entry(&self, id: usize, shard: Option<usize>) {
        enum Target<'a, T: Scalar> {
            Single(Arc<JitSpmm<'a, T>>),
            Sharded(Arc<ShardedSpmm<'a, T>>),
            Mutable(Arc<MutableSpmm<T>>),
        }
        // Clone the Arc out so code generation runs outside the registry
        // lock.
        let target = self.with_entry(id, |entry| match entry {
            EngineEntry::Single(engine) => Target::Single(Arc::clone(engine)),
            EngineEntry::Sharded(sharded) => Target::Sharded(Arc::clone(sharded)),
            EngineEntry::Mutable(mutable) => Target::Mutable(Arc::clone(mutable)),
        });
        match target {
            Some(Target::Single(engine)) => engine.tier_recompile(),
            Some(Target::Sharded(sharded)) => {
                if let Some(engine) = sharded.engines().get(shard.unwrap_or(0)) {
                    engine.tier_recompile();
                }
            }
            Some(Target::Mutable(mutable)) => mutable.tier_recompile_shard(shard.unwrap_or(0)),
            None => {}
        }
    }

    /// Shape-check `input` against logical engine `id` (single or sharded).
    pub(crate) fn check_request(
        &self,
        id: usize,
        input: &DenseMatrix<T>,
    ) -> Result<(), JitSpmmError> {
        match self.with_entry(id, |entry| match entry {
            EngineEntry::Single(engine) => engine.check_input_shape(input),
            EngineEntry::Sharded(sharded) => sharded.check_input_shape(input),
            EngineEntry::Mutable(mutable) => mutable.check_input_shape(input),
        }) {
            Some(result) => result,
            None => {
                Err(JitSpmmError::UnknownEngine { requested: id, engines: self.engine_count() })
            }
        }
    }

    /// Strict-path validation: engine id, lifecycle, then input shape.
    fn validate_strict(&self, id: usize, input: &DenseMatrix<T>) -> Result<(), JitSpmmError> {
        match self.control.status(id) {
            Some(EngineStatus::Active) => {}
            Some(_) => return Err(JitSpmmError::EngineRetired { id }),
            // Unknown id: fall through for the richer UnknownEngine error.
            None => {}
        }
        self.check_request(id, input)
    }

    /// Open a [`ServerSession`] inside `scope`: one pipeline per **active**
    /// engine (each holding its engine's launch lock until the session
    /// ends), ready to route requests. `depth` is the per-engine pipeline
    /// depth, with the same auto semantics as [`JitSpmm::batch_stream`]
    /// (`0` = default depth, sequential fast path on hosts with nothing to
    /// overlap). Engines registered after the session opens get their
    /// pipeline lazily, on first submission to their id.
    ///
    /// This is the low-level entry point; [`SpmmServer::serve_batch`],
    /// [`SpmmServer::serve_stream`] and [`SpmmServer::serve_controlled`]
    /// drive a session for you.
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::LaunchInProgress`] if the calling thread already
    /// holds a launch of any engine, or a codegen error from compiling spare
    /// slot kernels.
    pub fn session<'scope, 'env>(
        &'env self,
        scope: &'scope PoolScope<'scope, 'env>,
        depth: usize,
    ) -> Result<ServerSession<'scope, 'env, 'a, T>, JitSpmmError> {
        self.control.session_opened();
        let mut session = ServerSession {
            server: self,
            scope,
            depth,
            lanes: Vec::new(),
            ready: VecDeque::new(),
            counters: ServeCounters::default(),
            next_request: 0,
            started: None,
            epoch_seen: 0,
            catch_faults: false,
        };
        session.sync_topology();
        for id in 0..session.lanes.len() {
            if self.control.status(id) == Some(EngineStatus::Active) {
                // A failure midway (a held launch lock, codegen) drops the
                // session — and with it the streams opened so far, releasing
                // their engines — and the drop rebalances the control
                // plane's session count.
                session.open_stream(id)?;
            }
        }
        Ok(session)
    }

    /// Serve a pre-collected mixed request batch: validate **every** request
    /// (engine id, lifecycle, input shape) before any launch lock is taken,
    /// route them through per-engine pipelines in FIFO order — priorities
    /// and deadlines are ignored on this strict path; use
    /// [`SpmmServer::serve_controlled`] for those — and return all responses
    /// sorted by global submission order, plus the aggregated
    /// [`ServerReport`].
    ///
    /// `depth` is the per-engine pipeline depth (`0` = auto, as
    /// [`JitSpmm::batch_stream`]).
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::UnknownEngine`] (carrying the offending engine id),
    /// [`JitSpmmError::EngineRetired`] for a draining/retired target, or
    /// [`JitSpmmError::ShapeMismatch`] (naming the offending request index)
    /// if any request is malformed — nothing is launched in that case — and
    /// [`JitSpmmError::LaunchInProgress`] if the calling thread already
    /// holds a launch of one of the engines.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic of the run after joining the
    /// launches still in flight; the engines stay usable afterwards.
    pub fn serve_batch(
        &self,
        depth: usize,
        requests: Vec<ServerRequest<T>>,
    ) -> Result<(Vec<ServerResponse<T>>, ServerReport), JitSpmmError> {
        // Hoisted whole-batch validation: a malformed request fails the call
        // before any engine's launch lock or buffer pool is touched.
        for (index, request) in requests.iter().enumerate() {
            self.validate_strict(request.engine, &request.input).map_err(|e| match e {
                JitSpmmError::ShapeMismatch(msg) => JitSpmmError::ShapeMismatch(format!(
                    "request {index} (engine {}): {msg}",
                    request.engine
                )),
                other => other,
            })?;
        }
        // The caller receives every response at once: let each engine's
        // buffer pool retain that many spares, so repeated serving rounds
        // recycle their output buffers instead of re-allocating. (Only once
        // the batch is actually going to run — a failed call must not mutate
        // engine state.)
        let mut per_engine_count = vec![0usize; self.engine_count()];
        for request in &requests {
            per_engine_count[request.engine] += 1;
        }
        for (id, &count) in per_engine_count.iter().enumerate() {
            if count > 0 {
                self.with_entry(id, |entry| match entry {
                    EngineEntry::Single(engine) => engine.reserve_outputs(count),
                    EngineEntry::Sharded(sharded) => sharded.reserve_outputs(count),
                    EngineEntry::Mutable(mutable) => mutable.reserve_outputs(count),
                });
            }
        }
        self.pool.scope(|scope| {
            let mut session = self.session(scope, depth)?;
            let mut responses = Vec::with_capacity(requests.len());
            for request in requests {
                // Validation was hoisted above; don't pay it again per
                // request on the routing path.
                if let Some(done) = session.submit_validated(request.engine, request.input) {
                    responses.push(done);
                }
            }
            let (rest, report) = session.finish();
            responses.extend(rest);
            responses.sort_by_key(|r| r.request());
            Ok((responses, report))
        })
    }

    /// Serve a request stream produced on another thread: `producer` runs on
    /// a fresh thread with the sending side of a bounded [`RequestQueue`]
    /// (capacity `queue_capacity`; sends block when the serving loop falls
    /// behind — admission control, not unbounded buffering), while the
    /// calling thread routes arrivals into the per-engine pipelines as they
    /// come in. The stream ends when the producer drops its last
    /// [`RequestSender`] clone; the call returns every response sorted by
    /// global submission order, the aggregated [`ServerReport`], and the
    /// producer's return value.
    ///
    /// This is the strict FIFO path; [`SpmmServer::serve_controlled`] adds
    /// shedding policies, priorities, deadlines and graceful degradation.
    ///
    /// # Errors
    ///
    /// A malformed request ([`JitSpmmError::UnknownEngine`] /
    /// [`JitSpmmError::EngineRetired`] / [`JitSpmmError::ShapeMismatch`])
    /// aborts the serve: the queue is closed — unblocking any producer
    /// mid-`send`, whose subsequent sends return
    /// [`crate::serve::SendError::Closed`] — in-flight launches are joined,
    /// and the error is returned after the producer thread has finished.
    /// [`JitSpmmError::LaunchInProgress`] as for
    /// [`SpmmServer::serve_batch`].
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic (after joining the remaining launches) or a
    /// producer panic; either way the queue is closed first so no thread is
    /// left blocked.
    pub fn serve_stream<P, R>(
        &self,
        depth: usize,
        queue_capacity: usize,
        producer: P,
    ) -> Result<(Vec<ServerResponse<T>>, ServerReport, R), JitSpmmError>
    where
        P: FnOnce(RequestSender<T>) -> R + Send,
        R: Send,
    {
        let mut responses = Vec::new();
        let (report, produced) =
            self.serve_stream_with(depth, queue_capacity, producer, |r| responses.push(r))?;
        responses.sort_by_key(|r| r.request());
        Ok((responses, report, produced))
    }

    /// [`SpmmServer::serve_stream`] in **response-streaming** form: instead
    /// of collecting every response and returning them at the end, each
    /// completed [`ServerResponse`] is handed to `consumer` as soon as its
    /// launch joins — the shape a latency-sensitive ingestion path wants,
    /// where a response should leave the server the moment it exists (and
    /// its pooled output buffer recycles as soon as the consumer drops it,
    /// instead of the whole result set staying resident).
    ///
    /// Responses arrive in **per-engine submission order** (each engine's
    /// pipeline completes oldest-first); across engines the order follows
    /// completion, not global submission — consult
    /// [`ServerResponse::request`] to re-sequence globally, or use
    /// [`SpmmServer::serve_stream`], which does exactly that.
    ///
    /// The producer/backpressure plumbing is identical to
    /// [`SpmmServer::serve_stream`]: `producer` runs on a fresh thread
    /// feeding a bounded [`RequestQueue`], and the queue is closed on every
    /// exit from this call — normal return, validation error, or a panic
    /// (the consumer's included) unwinding through it — so a producer
    /// blocked in `send` can never deadlock against a serving loop that has
    /// stopped consuming.
    ///
    /// # Errors
    ///
    /// As [`SpmmServer::serve_stream`].
    ///
    /// # Panics
    ///
    /// Re-raises a worker, producer or consumer panic; in every case the
    /// queue is closed and the in-flight launches joined first, so no
    /// thread is left blocked.
    pub fn serve_stream_with<P, R, C>(
        &self,
        depth: usize,
        queue_capacity: usize,
        producer: P,
        mut consumer: C,
    ) -> Result<(ServerReport, R), JitSpmmError>
    where
        P: FnOnce(RequestSender<T>) -> R + Send,
        R: Send,
        C: FnMut(ServerResponse<T>),
    {
        let (sender, queue) = RequestQueue::bounded(queue_capacity);
        std::thread::scope(|threads| {
            // Close the queue on *every* exit from this frame — normal
            // return, validation error, or a panic unwinding through it —
            // before `thread::scope` joins the producer, which may be
            // blocked in `send` on a full queue.
            let _close = CloseOnExit(&queue);
            let producer_thread = threads.spawn(move || producer(sender));
            let served = self.pool.scope(|scope| -> Result<_, JitSpmmError> {
                let mut session = self.session(scope, depth)?;
                while let Some(request) = queue.recv() {
                    if let Some(done) = session.submit(request.engine, request.input)? {
                        consumer(done);
                    }
                }
                let (rest, report) = session.finish();
                for done in rest {
                    consumer(done);
                }
                Ok(report)
            });
            queue.close();
            let produced = match producer_thread.join() {
                Ok(value) => value,
                Err(payload) => resume_unwind(payload),
            };
            served.map(|report| (report, produced))
        })
    }

    /// The control-plane serving loop: a producer thread feeds a queue
    /// admitting under `options.admission` (block or shed, with typed
    /// [`crate::serve::SendError`]s), arrivals are re-ordered by
    /// **priority, then deadline, then arrival** through a
    /// [`ReorderBuffer`], deadline-expired requests are shed right before
    /// launch, and every outcome — completed, rejected, failed — reaches
    /// `consumer` as a typed [`ServerResponse`]. Worker panics are
    /// contained to the request that hit them (`options.fault_containment`,
    /// on by default); unrelated engines keep serving and the server stays
    /// usable afterwards.
    ///
    /// The loop wakes every `options.tick` even when the queue is idle, to
    /// apply control-plane changes (retirement drains, server-wide drain)
    /// and to join in-flight launches so responses keep streaming.
    ///
    /// Returns the aggregated [`ServerReport`] — `requests` counts
    /// completions only; `rejected` / `shed_deadline` / `failed` account
    /// for everything else, including sends the queue refused — and the
    /// producer's return value.
    ///
    /// ```
    /// use jitspmm::serve::{AdmissionPolicy, ServeOptions, ServerRequest, SpmmServer};
    /// use jitspmm::{JitSpmmBuilder, WorkerPool};
    /// use jitspmm_sparse::{generate, DenseMatrix};
    /// use std::time::Duration;
    ///
    /// # fn main() -> Result<(), jitspmm::JitSpmmError> {
    /// let pool = WorkerPool::new(2);
    /// let a = generate::uniform::<f32>(64, 64, 400, 1);
    /// let server =
    ///     SpmmServer::new(vec![JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&a, 4)?])?;
    /// let options = ServeOptions::new(AdmissionPolicy::shedding(8));
    /// let (report, sent) = server.serve_controlled(
    ///     options,
    ///     |sender| {
    ///         let mut sent = 0;
    ///         for i in 0..4u64 {
    ///             let request = ServerRequest::new(0, DenseMatrix::random(64, 4, i))
    ///                 .with_priority((i % 3) as u8)
    ///                 .with_deadline(Duration::from_secs(30));
    ///             if sender.send_request(request).is_ok() {
    ///                 sent += 1;
    ///             }
    ///         }
    ///         sent
    ///     },
    ///     |response| assert!(response.is_completed()),
    /// )?;
    /// assert_eq!(report.requests, sent);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::LaunchInProgress`] or a codegen error from opening
    /// the session. Malformed *requests* do not error the loop here — they
    /// come back as [`ServerResponse::Rejected`] / [`ServerResponse::Failed`].
    ///
    /// # Panics
    ///
    /// Re-raises a producer or consumer panic (queue closed, launches
    /// joined first). Worker panics only unwind out of here when
    /// `options.fault_containment` is off.
    pub fn serve_controlled<P, R, C>(
        &self,
        options: ServeOptions,
        producer: P,
        mut consumer: C,
    ) -> Result<(ServerReport, R), JitSpmmError>
    where
        P: FnOnce(RequestSender<T>) -> R + Send,
        R: Send,
        C: FnMut(ServerResponse<T>),
    {
        let (sender, queue) =
            RequestQueue::controlled(options.admission, Arc::clone(&self.control));
        let tick = options.tick.max(Duration::from_micros(100));
        // Background tier recompiles: the sweep queues (engine, shard) ids
        // here and submits one lane-capped pool job per entry, so a
        // recompile never occupies more than one worker and never blocks
        // the serving thread. Inline (policy `background == false`, or a
        // zero-worker pool) recompiles skip the queue entirely.
        let tier_jobs: Mutex<VecDeque<(usize, Option<usize>)>> = Mutex::new(VecDeque::new());
        let tier_task = |_lane: usize| {
            if let Some((id, shard)) = lock(&tier_jobs).pop_front() {
                self.tier_recompile_entry(id, shard);
            }
        };
        let tier_background =
            options.tiering.is_some_and(|policy| policy.background) && self.pool.size() > 0;
        std::thread::scope(|threads| {
            let _close = CloseOnExit(&queue);
            let producer_thread = threads.spawn(move || producer(sender));
            let served = self.pool.scope(|scope| -> Result<_, JitSpmmError> {
                let mut session = self.session(scope, options.depth)?;
                session.fault_containment(options.fault_containment);
                let mut buffer = ReorderBuffer::new();
                let mut disconnected = false;
                loop {
                    session.apply_control();
                    if options.tiering.is_some() {
                        session.apply_tiering(tier_background, &mut |id, shard| {
                            lock(&tier_jobs).push_back((id, shard));
                            drop(scope.submit(JobSpec::new(1).max_lanes(1), &tier_task));
                        });
                    }
                    // Hand out everything ready; each emission answers one
                    // admitted request on the control plane (consumer first,
                    // so a drain barrier returning implies the consumer saw
                    // every response).
                    while let Some(response) = session.take_ready() {
                        consumer(response);
                        self.control.completed(1);
                    }
                    // Launch the most urgent buffered request, then sweep
                    // the burst that arrived meanwhile so the next pop
                    // compares the whole backlog.
                    if let Some(request) = buffer.pop() {
                        session.submit_controlled(request);
                        while let Some(request) = queue.try_recv() {
                            buffer.push(request);
                        }
                        continue;
                    }
                    if disconnected {
                        if session.in_flight() == 0 {
                            break;
                        }
                        session.complete_any();
                        continue;
                    }
                    match queue.recv_timeout(tick) {
                        RecvTimeout::Request(request) => {
                            buffer.push(request);
                            while let Some(request) = queue.try_recv() {
                                buffer.push(request);
                            }
                        }
                        // Idle tick: make progress on in-flight launches so
                        // responses stream out even with nothing arriving.
                        RecvTimeout::TimedOut => {
                            session.complete_any();
                        }
                        RecvTimeout::Disconnected => disconnected = true,
                    }
                }
                let (rest, mut report) = session.finish();
                for response in rest {
                    consumer(response);
                    self.control.completed(1);
                }
                // Sends the queue refused (shed, draining, unknown id)
                // never reached the session; fold them into the report so
                // offered load adds up.
                report.rejected += self.control.take_rejected_sends();
                Ok(report)
            });
            queue.close();
            let produced = match producer_thread.join() {
                Ok(value) => value,
                Err(payload) => resume_unwind(payload),
            };
            served.map(|report| (report, produced))
        })
    }
}

/// Options for [`SpmmServer::serve_controlled`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Per-engine pipeline depth (`0` = auto, as
    /// [`JitSpmm::batch_stream`]).
    pub depth: usize,
    /// How the request queue admits (depth, in-flight cap, block vs shed).
    pub admission: AdmissionPolicy,
    /// How often the serving loop wakes on an idle queue to apply control
    /// changes and join in-flight launches. Clamped to at least 100µs.
    pub tick: Duration,
    /// Convert worker panics into typed [`ServerResponse::Failed`]
    /// responses (on by default). Off restores the strict re-raise
    /// behavior of [`SpmmServer::serve_stream_with`].
    pub fault_containment: bool,
    /// Promote tiered engines mid-session: every control sweep polls their
    /// warmup state, schedules the profile-guided recompile, and hot-swaps
    /// ready kernels between batches (sharded engines promote per shard).
    /// Engines decide *whether and to what* to promote from the
    /// [`TierPolicy`] they were built with
    /// ([`crate::JitSpmmBuilder::tiered`]); this policy's `background` flag
    /// decides *where* the recompile runs — on the serving pool (default)
    /// or inline on the serving thread. `None` (the default) never
    /// promotes: tiered engines stay on whatever tier they are on.
    pub tiering: Option<TierPolicy>,
}

impl ServeOptions {
    /// Defaults (auto depth, 1ms tick, fault containment on, no tiering)
    /// with the given admission policy.
    pub fn new(admission: AdmissionPolicy) -> ServeOptions {
        ServeOptions {
            depth: 0,
            admission,
            tick: Duration::from_millis(1),
            fault_containment: true,
            tiering: None,
        }
    }

    /// Set the per-engine pipeline depth.
    pub fn with_depth(mut self, depth: usize) -> ServeOptions {
        self.depth = depth;
        self
    }

    /// Promote tiered engines during the session (see
    /// [`ServeOptions::tiering`]).
    pub fn tiering(mut self, policy: TierPolicy) -> ServeOptions {
        self.tiering = Some(policy);
        self
    }
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions::new(AdmissionPolicy::blocking(16))
    }
}

/// Closes the borrowed queue when dropped; see [`SpmmServer::serve_stream`].
struct CloseOnExit<'q, T: Scalar>(&'q RequestQueue<T>);

impl<T: Scalar> Drop for CloseOnExit<'_, T> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// The outcome of one serving request: completed with an output, rejected
/// by the control plane with a typed [`RejectReason`], or failed after
/// launch (a contained worker panic, or a shape mismatch on the controlled
/// path). Every request submitted to a controlled serve produces exactly
/// one of these.
#[derive(Debug)]
pub enum ServerResponse<T: Scalar> {
    /// The request executed; `output` is `Y = A_engine * X`.
    Completed {
        /// The engine that executed the request.
        engine: usize,
        /// Per-engine completion index (the `index`-th response of this
        /// engine); responses of one engine always arrive in this order.
        index: usize,
        /// Global submission sequence number across the whole session.
        request: usize,
        /// The computed output, borrowed from the engine's buffer pool
        /// (dropping it recycles the buffer).
        output: PooledMatrix<T>,
        /// Per-launch timing, as the batch layer reports it.
        report: ExecutionReport,
    },
    /// The control plane refused the request after admission (deadline
    /// passed, engine draining/unknown); nothing was launched.
    Rejected {
        /// The engine the request named.
        engine: usize,
        /// Global submission sequence number.
        request: usize,
        /// Why it was refused.
        reason: RejectReason,
    },
    /// The request was launched (or about to launch) and failed — a worker
    /// panic contained to this request, or a shape mismatch caught at
    /// routing time.
    Failed {
        /// The engine the request named.
        engine: usize,
        /// Global submission sequence number.
        request: usize,
        /// The panic message or validation error.
        message: String,
    },
}

impl<T: Scalar> ServerResponse<T> {
    /// The engine id the request named.
    pub fn engine(&self) -> usize {
        match self {
            ServerResponse::Completed { engine, .. }
            | ServerResponse::Rejected { engine, .. }
            | ServerResponse::Failed { engine, .. } => *engine,
        }
    }

    /// Global submission sequence number across the session.
    pub fn request(&self) -> usize {
        match self {
            ServerResponse::Completed { request, .. }
            | ServerResponse::Rejected { request, .. }
            | ServerResponse::Failed { request, .. } => *request,
        }
    }

    /// Whether the request completed with an output.
    pub fn is_completed(&self) -> bool {
        matches!(self, ServerResponse::Completed { .. })
    }

    /// Per-engine completion index.
    ///
    /// # Panics
    ///
    /// If the response is not [`ServerResponse::Completed`].
    pub fn index(&self) -> usize {
        match self {
            ServerResponse::Completed { index, .. } => *index,
            other => panic!("response for request {} has no index: not completed", other.request()),
        }
    }

    /// Borrow the computed output.
    ///
    /// # Panics
    ///
    /// If the response is not [`ServerResponse::Completed`].
    pub fn output(&self) -> &PooledMatrix<T> {
        match self {
            ServerResponse::Completed { output, .. } => output,
            other => {
                panic!("response for request {} has no output: not completed", other.request())
            }
        }
    }

    /// Take the computed output, if the request completed.
    pub fn into_output(self) -> Option<PooledMatrix<T>> {
        match self {
            ServerResponse::Completed { output, .. } => Some(output),
            _ => None,
        }
    }

    /// Per-launch timing, if the request completed.
    pub fn report(&self) -> Option<&ExecutionReport> {
        match self {
            ServerResponse::Completed { report, .. } => Some(report),
            _ => None,
        }
    }

    /// The rejection reason, if the control plane refused the request.
    pub fn rejection(&self) -> Option<RejectReason> {
        match self {
            ServerResponse::Rejected { reason, .. } => Some(*reason),
            _ => None,
        }
    }

    /// The failure message, if the request failed after admission.
    pub fn failure(&self) -> Option<&str> {
        match self {
            ServerResponse::Failed { message, .. } => Some(message),
            _ => None,
        }
    }
}

/// Per-session outcome counters, aggregated into the [`ServerReport`].
#[derive(Debug, Default, Clone, Copy)]
struct ServeCounters {
    completed: usize,
    rejected: usize,
    shed_deadline: usize,
    failed: usize,
    /// Tier hot-swaps installed by this session's sweeps.
    promotions: usize,
}

/// One logical engine's lane inside a session: its pipeline (opened lazily
/// for engines registered after the session started, `None` once the lane
/// is closed by retirement or poisoning), the sequence numbers of its
/// in-flight requests, and its closed-lane report.
struct Lane<'scope, 'env, T: Scalar> {
    stream: Option<RouteStream<'scope, 'env, T>>,
    /// Global sequence numbers of this lane's in-flight requests, oldest
    /// first (per-engine completion is oldest-first, so the front is always
    /// the next to finish).
    pending: VecDeque<usize>,
    /// Completed responses handed out so far (the per-engine index).
    completed: usize,
    /// Per-launch statistics accumulated across **every** pipeline this
    /// lane opened: a tier hot-swap recycles the pipeline mid-session, so
    /// the lane — not the stream — owns the session-spanning view.
    stats: BatchStats,
    /// First-submission timestamp, for the lane's wall clock.
    started: Option<Instant>,
    /// Resolved pipeline depth, captured when the first pipeline opens.
    depth: usize,
    /// Widest lane count any completed launch of this engine used.
    max_threads: usize,
    /// Set when the lane closes (drain, retirement, poisoning, finish);
    /// a lane with a report refuses further submissions.
    report: Option<BatchReport>,
}

impl<'scope, 'env, T: Scalar> Lane<'scope, 'env, T> {
    fn new() -> Lane<'scope, 'env, T> {
        Lane {
            stream: None,
            pending: VecDeque::new(),
            completed: 0,
            stats: BatchStats::default(),
            started: None,
            depth: 0,
            max_threads: 0,
            report: None,
        }
    }
}

/// An open serving session, created by [`SpmmServer::session`]: one lane
/// per logical engine — a [`BatchStream`] for single engines, a
/// [`ShardedStream`] for sharded ones — plus the request bookkeeping that
/// tags every response with its engine id and sequence numbers, and the
/// control-plane hooks ([`ServerSession::apply_control`], fault
/// containment) the controlled serving loop drives.
///
/// The session holds every open lane's launch lock until it is finished or
/// dropped (dropping joins all in-flight launches and discards their
/// results). Submit with [`ServerSession::submit`]; drain with
/// [`ServerSession::finish`].
pub struct ServerSession<'scope, 'env, 'a, T: Scalar> {
    /// `'a` is the server's own data lifetime (the matrices its engines
    /// borrow), `'env` the session's borrow of it — kept apart because the
    /// registry mutex makes [`SpmmServer`] invariant in `'a`.
    server: &'env SpmmServer<'a, T>,
    /// Kept so lanes can open lazily (engines registered mid-session).
    scope: &'scope PoolScope<'scope, 'env>,
    depth: usize,
    lanes: Vec<Lane<'scope, 'env, T>>,
    /// Responses produced but not yet handed out (the controlled loop
    /// drains this; the strict paths surface it at finish).
    ready: VecDeque<ServerResponse<T>>,
    counters: ServeCounters,
    /// Next global submission sequence number.
    next_request: usize,
    /// First-submission timestamp, for the whole-server wall clock.
    started: Option<Instant>,
    /// Last control-plane epoch applied; skips the per-engine scan when
    /// nothing changed.
    epoch_seen: u64,
    /// Convert worker panics into [`ServerResponse::Failed`] instead of
    /// re-raising (the controlled loop turns this on).
    catch_faults: bool,
}

impl<T: Scalar> std::fmt::Debug for ServerSession<'_, '_, '_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerSession")
            .field("engines", &self.lanes.len())
            .field("submitted", &self.next_request)
            .field("ready", &self.ready.len())
            .finish()
    }
}

/// Extract a printable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panic".to_string()
    }
}

/// Build a lane's per-engine [`BatchReport`] from the statistics it
/// accumulated (zero-input lanes report zeros), stamped with the engine's
/// current tier and promotion count. Free function so callers can hold
/// disjoint field borrows.
fn lane_report<T: Scalar>(
    lane: &mut Lane<'_, '_, T>,
    strategy: Option<Strategy>,
    tier: Option<(KernelTier, usize)>,
) -> BatchReport {
    let elapsed = lane.started.map(|t| t.elapsed()).unwrap_or_default();
    let mut report = std::mem::take(&mut lane.stats).report(
        elapsed,
        lane.depth.max(1),
        lane.max_threads.max(1),
        strategy.expect("lane ids mirror registered engines"),
    );
    if let Some((tier, promotions)) = tier {
        report.tier = tier;
        report.promotions = promotions;
    }
    report
}

/// Pop the lane's oldest pending sequence number and queue a completed
/// response, recording the launch into the lane's statistics. Free function
/// so callers can hold disjoint field borrows.
fn emit_completed<T: Scalar>(
    lane: &mut Lane<'_, '_, T>,
    engine: usize,
    ready: &mut VecDeque<ServerResponse<T>>,
    counters: &mut ServeCounters,
    output: PooledMatrix<T>,
    report: ExecutionReport,
) {
    let request = lane.pending.pop_front().expect("completed launches were submitted");
    let index = lane.completed;
    lane.completed += 1;
    counters.completed += 1;
    lane.stats.record(&report);
    lane.max_threads = lane.max_threads.max(report.threads);
    ready.push_back(ServerResponse::Completed { engine, index, request, output, report });
}

/// Pop the lane's oldest pending sequence number and queue a typed failure.
fn emit_failed<T: Scalar>(
    lane: &mut Lane<'_, '_, T>,
    engine: usize,
    ready: &mut VecDeque<ServerResponse<T>>,
    counters: &mut ServeCounters,
    message: String,
) {
    let request = lane.pending.pop_front().expect("failed launches were submitted");
    counters.failed += 1;
    ready.push_back(ServerResponse::Failed { engine, request, message });
}

impl<T: Scalar> ServerSession<'_, '_, '_, T> {
    /// Grow the lane vector to cover engines registered since the last
    /// look; new lanes open their pipeline lazily, on first submission.
    fn sync_topology(&mut self) {
        let count = self.server.engine_count();
        while self.lanes.len() < count {
            self.lanes.push(Lane::new());
        }
    }

    /// Open lane `id`'s pipeline if it has none yet (and was not closed).
    fn open_stream(&mut self, id: usize) -> Result<(), JitSpmmError> {
        if self.lanes[id].stream.is_some() || self.lanes[id].report.is_some() {
            return Ok(());
        }
        let stream = if let Some(engine) = self.server.single(id) {
            RouteStream::Single(engine.batch_stream(self.scope, self.depth)?)
        } else if let Some(sharded) = self.server.sharded(id) {
            RouteStream::Sharded(sharded.batch_stream(self.scope, self.depth)?)
        } else if let Some(mutable) = self.server.mutable(id) {
            // The stream pins the engine's current generation (a read
            // guard): a queued update waits until this lane recycles.
            RouteStream::Mutable(mutable.batch_stream(self.scope, self.depth)?)
        } else {
            return Err(JitSpmmError::UnknownEngine {
                requested: id,
                engines: self.server.engine_count(),
            });
        };
        self.lanes[id].depth = stream.depth();
        self.lanes[id].stream = Some(stream);
        Ok(())
    }

    /// Turn worker-panic containment on or off for this session (off by
    /// default; [`SpmmServer::serve_controlled`] turns it on). Contained
    /// panics surface as [`ServerResponse::Failed`] for exactly the request
    /// that hit them; a panic in a **sharded** lane additionally poisons
    /// that lane — its sibling shard outputs are unrecoverable — failing
    /// its remaining in-flight requests and closing it, while every other
    /// lane keeps serving.
    pub fn fault_containment(&mut self, on: bool) {
        self.catch_faults = on;
    }

    /// Apply pending control-plane changes: pick up newly registered
    /// engines, and drain + close the lanes of engines marked
    /// [`EngineStatus::Draining`] (their in-flight requests complete and
    /// surface as ready responses; their launch-slot payloads are freed
    /// with the closed stream; the control plane then records them
    /// [`EngineStatus::Retired`]). Cheap when nothing changed.
    pub fn apply_control(&mut self) {
        // Queued matrix updates are checked on every sweep, not just on an
        // epoch bump: a deferred update — requeued because some stream
        // still pinned its engine's generation — must be retried even when
        // the topology epoch has not moved.
        if self.server.ctrl().has_updates() {
            self.drain_updates();
        }
        let epoch = self.server.ctrl().epoch();
        if epoch == self.epoch_seen {
            return;
        }
        self.epoch_seen = epoch;
        self.sync_topology();
        for id in 0..self.lanes.len() {
            if self.server.ctrl().status(id) == Some(EngineStatus::Draining) {
                self.close_lane(id);
                self.server.ctrl().mark_retired(id);
            }
        }
    }

    /// Apply every queued matrix update ([`ControlHandle::apply_update`]):
    /// recycle the target lane's pipeline — which joins its in-flight
    /// launches on the **old** generation and releases this session's pin
    /// on it — then swap the merged generation in; the lane reopens on its
    /// next submission against the new matrix. An update whose engine is
    /// still pinned elsewhere (a stream the caller holds outside this
    /// session) is deferred to the next sweep together with the rest of
    /// that engine's queue, so per-engine update order holds; an update
    /// naming a non-updatable engine, or carrying a delta of the wrong
    /// scalar type, counts as failed.
    fn drain_updates(&mut self) {
        let server = self.server;
        let mut blocked: Vec<usize> = Vec::new();
        let mut deferred: Vec<PendingUpdate> = Vec::new();
        for update in server.ctrl().take_updates() {
            let id = update.engine;
            if blocked.contains(&id) {
                deferred.push(update);
                continue;
            }
            let outcome = match (server.mutable(id), update.delta.downcast_ref::<DeltaBatch<T>>()) {
                (Some(mutable), Some(delta)) => {
                    self.recycle_lane(id);
                    mutable.try_apply(delta).map(|result| result.ok().map(|r| r.revision))
                }
                // A non-updatable engine or a mismatched scalar type: a
                // counted failure, never a retry.
                _ => Some(None),
            };
            match outcome {
                Some(Some(revision)) => server.ctrl().note_update_applied(id, revision),
                Some(None) => server.ctrl().note_update_failed(),
                None => {
                    blocked.push(id);
                    deferred.push(update);
                }
            }
        }
        // Reinsert deferred updates at the queue's front in their original
        // order (each insert prepends, so walk them back to front).
        for update in deferred.into_iter().rev() {
            server.ctrl().requeue_update(update);
        }
    }

    /// Join lane `id`'s oldest in-flight launch, queueing its response (or
    /// typed failure, under fault containment). Returns whether a launch
    /// was joined.
    fn complete_one(&mut self, id: usize) -> bool {
        let catch = self.catch_faults;
        let ServerSession { lanes, ready, counters, server, .. } = &mut *self;
        let lane = &mut lanes[id];
        let Some(stream) = lane.stream.as_mut() else {
            return false;
        };
        if stream.in_flight() == 0 {
            return false;
        }
        if !catch {
            // Strict semantics: a worker panic re-raises here (the batch
            // layer restores its bookkeeping first; unwinding drops the
            // session, joining everything else).
            let (output, report) = stream.complete_next().expect("in-flight checked above");
            emit_completed(lane, id, ready, counters, output, report);
            return true;
        }
        match catch_unwind(AssertUnwindSafe(|| stream.complete_next())) {
            Ok(Some((output, report))) => {
                emit_completed(lane, id, ready, counters, output, report);
            }
            Ok(None) => return false,
            Err(payload) => {
                let poisoned = stream.is_sharded();
                emit_failed(lane, id, ready, counters, panic_message(payload.as_ref()));
                if poisoned {
                    // A sharded lane lost lockstep: the panicking input's
                    // sibling shard outputs were discarded with the unwind.
                    // Close the lane — dropping the stream joins what's
                    // left and frees its slot payloads — and fail its
                    // remaining requests; unrelated lanes are untouched.
                    drop(lane.stream.take());
                    while !lane.pending.is_empty() {
                        emit_failed(
                            lane,
                            id,
                            ready,
                            counters,
                            "sharded lane poisoned by a worker panic".to_string(),
                        );
                    }
                    lane.report = Some(lane_report(
                        lane,
                        server.engine_strategy(id),
                        server.engine_tier_info(id),
                    ));
                }
            }
        }
        true
    }

    /// Join the in-flight launch whose response is globally oldest, if any;
    /// the controlled loop's idle-tick progress step.
    pub(crate) fn complete_any(&mut self) -> bool {
        let next = self
            .lanes
            .iter()
            .enumerate()
            .filter(|(_, lane)| lane.stream.as_ref().is_some_and(|s| s.in_flight() > 0))
            .min_by_key(|(_, lane)| lane.pending.front().copied().unwrap_or(usize::MAX))
            .map(|(id, _)| id);
        match next {
            Some(id) => self.complete_one(id),
            None => false,
        }
    }

    /// Release lane `id`'s pipeline — joining its in-flight launches
    /// (fault-aware, one at a time) and queueing the remaining responses —
    /// **without** closing the lane. The per-engine statistics live in the
    /// lane and span the gap; the next submission lazily reopens a pipeline,
    /// which then snapshots the engine's current (possibly hot-swapped)
    /// core. This is what frees an engine's launch lock for a tier install
    /// mid-session. Idempotent.
    fn recycle_lane(&mut self, id: usize) {
        loop {
            let Some(lane) = self.lanes.get(id) else {
                return;
            };
            match lane.stream.as_ref() {
                Some(stream) if stream.in_flight() > 0 => {
                    self.complete_one(id);
                }
                _ => break,
            }
        }
        let ServerSession { lanes, ready, counters, .. } = &mut *self;
        let lane = &mut lanes[id];
        if let Some(stream) = lane.stream.take() {
            // Nothing is in flight (drained above), so finishing cannot
            // re-raise a worker panic. The stream's own interim report is
            // discarded: the lane accumulated the same launches.
            let (rest, _interim) = stream.finish_report();
            for (output, exec) in rest {
                emit_completed(lane, id, ready, counters, output, exec);
            }
        }
    }

    /// Drain lane `id`, close its pipeline and record its report.
    /// Idempotent.
    fn close_lane(&mut self, id: usize) {
        self.recycle_lane(id);
        let ServerSession { lanes, server, .. } = &mut *self;
        let Some(lane) = lanes.get_mut(id) else {
            return;
        };
        if lane.report.is_none() {
            lane.report =
                Some(lane_report(lane, server.engine_strategy(id), server.engine_tier_info(id)));
        }
    }

    /// One tiering sweep (driven by [`SpmmServer::serve_controlled`] when
    /// [`ServeOptions::tiering`] is set): poll every open lane's engine —
    /// each shard of a sharded engine — and act. A claimed recompile is
    /// handed to `spawn` (a background pool job) or run inline when
    /// `background` is off; a ready core is installed after recycling the
    /// lane's pipeline, which releases the launch lock the install needs.
    /// Non-tiered engines poll as idle, so the sweep is cheap.
    fn apply_tiering(&mut self, background: bool, spawn: &mut dyn FnMut(usize, Option<usize>)) {
        for id in 0..self.lanes.len() {
            if self.lanes[id].report.is_some() {
                continue;
            }
            let Some(actions) = self.server.with_entry(id, |entry| match entry {
                EngineEntry::Single(engine) => vec![(None, engine.tier_poll())],
                EngineEntry::Sharded(sharded) => sharded
                    .engines()
                    .iter()
                    .enumerate()
                    .map(|(shard, engine)| (Some(shard), engine.tier_poll()))
                    .collect::<Vec<_>>(),
                EngineEntry::Mutable(mutable) => mutable
                    .tier_actions()
                    .into_iter()
                    .map(|(shard, action)| (Some(shard), action))
                    .collect::<Vec<_>>(),
            }) else {
                continue;
            };
            let mut recycled = false;
            for (shard, action) in actions {
                match action {
                    TierAction::Idle => {}
                    TierAction::Recompile => {
                        if background {
                            spawn(id, shard);
                        } else {
                            self.server.tier_recompile_entry(id, shard);
                        }
                    }
                    TierAction::Install => {
                        if !recycled {
                            self.recycle_lane(id);
                            recycled = true;
                        }
                        let installed = self
                            .server
                            .with_entry(id, |entry| match entry {
                                EngineEntry::Single(engine) => engine.tier_try_install(),
                                EngineEntry::Sharded(sharded) => sharded
                                    .engines()
                                    .get(shard.unwrap_or(0))
                                    .is_some_and(|engine| engine.tier_try_install()),
                                EngineEntry::Mutable(mutable) => {
                                    mutable.tier_try_install_shard(shard.unwrap_or(0))
                                }
                            })
                            .unwrap_or(false);
                        if installed {
                            self.counters.promotions += 1;
                        }
                    }
                }
            }
        }
    }

    /// Pop the next produced-but-unclaimed response.
    pub(crate) fn take_ready(&mut self) -> Option<ServerResponse<T>> {
        self.ready.pop_front()
    }

    /// Total launches currently in flight across all lanes.
    pub fn in_flight(&self) -> usize {
        self.lanes.iter().filter_map(|l| l.stream.as_ref()).map(|s| s.in_flight()).sum()
    }

    /// Route one owned request to engine `engine` — the strict session
    /// path: FIFO, no deadline/priority handling, errors instead of typed
    /// rejections. If that engine's pipeline is at depth, the oldest
    /// in-flight launch **of that engine** is waited for first and its
    /// response returned; otherwise the call does not block and returns
    /// `None`. Responses of other engines are never returned here — they
    /// surface when their own engine is pushed again, or at
    /// [`ServerSession::finish`].
    ///
    /// # Errors
    ///
    /// [`JitSpmmError::UnknownEngine`] for an out-of-range engine id,
    /// [`JitSpmmError::EngineRetired`] for a draining/retired one, and
    /// [`JitSpmmError::ShapeMismatch`] if the input is not that engine's
    /// `A.ncols() x d` — all checked before any launch state is touched;
    /// the rejected input is dropped and the session continues unharmed.
    ///
    /// # Panics
    ///
    /// Re-raises a worker panic from the completed launch (the session is
    /// then dropped by unwinding, which joins all remaining launches and
    /// releases every engine), unless [`ServerSession::fault_containment`]
    /// is on.
    pub fn submit(
        &mut self,
        engine: usize,
        input: DenseMatrix<T>,
    ) -> Result<Option<ServerResponse<T>>, JitSpmmError> {
        self.sync_topology();
        if engine >= self.lanes.len() {
            return Err(JitSpmmError::UnknownEngine {
                requested: engine,
                engines: self.lanes.len(),
            });
        }
        match self.server.ctrl().status(engine) {
            Some(EngineStatus::Active) => {}
            _ => return Err(JitSpmmError::EngineRetired { id: engine }),
        }
        self.server.check_request(engine, &input)?;
        self.open_stream(engine)?;
        Ok(self.submit_validated(engine, input))
    }

    /// [`ServerSession::submit`] for pre-validated requests —
    /// [`SpmmServer::serve_batch`] hoists the whole-batch validation out of
    /// the routing loop, mirroring the batch layer's
    /// `push_validated`/`push_owned_validated` split.
    pub(crate) fn submit_validated(
        &mut self,
        engine: usize,
        input: DenseMatrix<T>,
    ) -> Option<ServerResponse<T>> {
        self.started.get_or_insert_with(Instant::now);
        let seq = self.next_request;
        self.next_request += 1;
        if self.lanes[engine].stream.is_none()
            && (self.lanes[engine].report.is_some() || self.open_stream(engine).is_err())
        {
            // The lane closed between validation and routing (a concurrent
            // retirement): a typed rejection, not a lost request.
            self.counters.rejected += 1;
            return Some(ServerResponse::Rejected {
                engine,
                request: seq,
                reason: RejectReason::Draining,
            });
        }
        let ServerSession { lanes, ready, counters, .. } = &mut *self;
        let lane = &mut lanes[engine];
        lane.pending.push_back(seq);
        lane.started.get_or_insert_with(Instant::now);
        let stream = lane.stream.as_mut().expect("lane opened above");
        let done = stream.push_owned(input);
        done.map(|(output, report)| {
            emit_completed(lane, engine, ready, counters, output, report);
            ready.pop_back().expect("emitted just above")
        })
    }

    /// The controlled routing path: every outcome — launch, typed
    /// rejection, contained failure — is queued as a ready response; the
    /// caller drains [`ServerSession::take_ready`]. Checks, in order:
    /// engine id, lifecycle, input shape, deadline on arrival, room in the
    /// pipeline (joining older launches as needed), and the deadline
    /// **again** right before the push, so time burned waiting for room
    /// sheds the request instead of launching it late.
    pub(crate) fn submit_controlled(&mut self, request: ServerRequest<T>) {
        self.started.get_or_insert_with(Instant::now);
        self.sync_topology();
        let engine = request.engine;
        let seq = self.next_request;
        self.next_request += 1;
        if engine >= self.lanes.len() {
            self.counters.rejected += 1;
            self.ready.push_back(ServerResponse::Rejected {
                engine,
                request: seq,
                reason: RejectReason::UnknownEngine,
            });
            return;
        }
        if self.server.ctrl().status(engine) != Some(EngineStatus::Active)
            || self.lanes[engine].report.is_some()
        {
            self.counters.rejected += 1;
            self.ready.push_back(ServerResponse::Rejected {
                engine,
                request: seq,
                reason: RejectReason::Draining,
            });
            return;
        }
        if let Err(error) = self.server.check_request(engine, &request.input) {
            self.counters.failed += 1;
            self.ready.push_back(ServerResponse::Failed {
                engine,
                request: seq,
                message: error.to_string(),
            });
            return;
        }
        if request.expired(Instant::now()) {
            self.counters.shed_deadline += 1;
            self.ready.push_back(ServerResponse::Rejected {
                engine,
                request: seq,
                reason: RejectReason::DeadlinePassed,
            });
            return;
        }
        if let Err(error) = self.open_stream(engine) {
            self.counters.failed += 1;
            self.ready.push_back(ServerResponse::Failed {
                engine,
                request: seq,
                message: error.to_string(),
            });
            return;
        }
        // Make room, joining this lane's oldest launches; a fault while
        // joining can poison (close) the lane under us.
        loop {
            match self.lanes[engine].stream.as_ref() {
                None => {
                    self.counters.rejected += 1;
                    self.ready.push_back(ServerResponse::Rejected {
                        engine,
                        request: seq,
                        reason: RejectReason::Draining,
                    });
                    return;
                }
                Some(stream) if stream.is_full() => {
                    self.complete_one(engine);
                }
                Some(_) => break,
            }
        }
        // The deadline check at push: waiting for room may have burned the
        // request's budget.
        if request.expired(Instant::now()) {
            self.counters.shed_deadline += 1;
            self.ready.push_back(ServerResponse::Rejected {
                engine,
                request: seq,
                reason: RejectReason::DeadlinePassed,
            });
            return;
        }
        let catch = self.catch_faults;
        let ServerSession { lanes, ready, counters, server, .. } = &mut *self;
        let lane = &mut lanes[engine];
        lane.pending.push_back(seq);
        lane.started.get_or_insert_with(Instant::now);
        let stream = lane.stream.as_mut().expect("lane checked above");
        let input = request.input;
        let pushed = if catch {
            catch_unwind(AssertUnwindSafe(|| stream.push_owned(input)))
        } else {
            Ok(stream.push_owned(input))
        };
        match pushed {
            Ok(done) => {
                // The pipeline was pre-drained below depth, so a push can
                // only hand back a result on the sequential fast path
                // (where the kernel ran synchronously just now).
                if let Some((output, report)) = done {
                    emit_completed(lane, engine, ready, counters, output, report);
                }
            }
            Err(payload) => {
                // The panic fired during the synchronous (sequential-mode)
                // kernel run of *this* request, before it entered the
                // pipeline: un-book it and fail it. A single-engine stream
                // stays consistent (the batch layer restores its bookkeeping
                // before unwinding); a sharded stream may have fanned the
                // input out to some shards but not others, so treat the
                // lane as poisoned exactly like a pipelined shard panic.
                let poisoned = lane.stream.as_ref().is_some_and(RouteStream::is_sharded);
                lane.pending.pop_back();
                counters.failed += 1;
                ready.push_back(ServerResponse::Failed {
                    engine,
                    request: seq,
                    message: panic_message(payload.as_ref()),
                });
                if poisoned {
                    drop(lane.stream.take());
                    while !lane.pending.is_empty() {
                        emit_failed(
                            lane,
                            engine,
                            ready,
                            counters,
                            "sharded lane poisoned by a worker panic".to_string(),
                        );
                    }
                    lane.report = Some(lane_report(
                        lane,
                        server.engine_strategy(engine),
                        server.engine_tier_info(engine),
                    ));
                }
            }
        }
    }

    /// Number of requests submitted so far, across all engines.
    pub fn submitted(&self) -> usize {
        self.next_request
    }

    /// Drain every lane (in engine-id order, oldest launch first within
    /// each), apply any pending control changes, and aggregate the
    /// [`ServerReport`]. The returned responses are the ones not already
    /// handed out, in the order they became ready.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic among the remaining launches, after
    /// all of them have been joined — unless fault containment is on, in
    /// which case panics surface as [`ServerResponse::Failed`] responses.
    pub fn finish(mut self) -> (Vec<ServerResponse<T>>, ServerReport) {
        self.apply_control();
        for id in 0..self.lanes.len() {
            self.close_lane(id);
        }
        let per_engine: Vec<BatchReport> =
            self.lanes.iter_mut().map(|lane| lane.report.take().expect("lane closed")).collect();
        let elapsed = self.started.map(|t| t.elapsed()).unwrap_or_default();
        let responses: Vec<ServerResponse<T>> = self.ready.drain(..).collect();
        let report = ServerReport {
            requests: self.counters.completed,
            elapsed,
            rejected: self.counters.rejected,
            shed_deadline: self.counters.shed_deadline,
            failed: self.counters.failed,
            promotions: self.counters.promotions,
            per_engine,
        };
        (responses, report)
    }
}

impl<T: Scalar> Drop for ServerSession<'_, '_, '_, T> {
    fn drop(&mut self) {
        // Lanes (and their streams) drop with the struct, joining in-flight
        // launches; the control plane just needs its session count back.
        self.server.ctrl().session_closed();
    }
}

/// One logical engine's pipeline inside a [`ServerSession`]: a plain
/// [`BatchStream`] for single engines, a [`ShardedStream`] (one pipeline
/// per shard, stitched outputs) for sharded ones. Both return completed
/// results as `(output, report)` pairs in submission order, which is all
/// the session's bookkeeping relies on.
enum RouteStream<'scope, 'env, T: Scalar> {
    /// A single compiled engine's pipeline.
    Single(BatchStream<'scope, 'env, T>),
    /// A sharded engine's lockstep shard pipelines.
    Sharded(ShardedStream<'scope, 'env, T>),
    /// A mutable engine's pipeline, pinned to one matrix generation for the
    /// stream's lifetime (queued updates apply when the lane recycles).
    Mutable(MutableStream<'scope, 'env, T>),
}

impl<T: Scalar> RouteStream<'_, '_, T> {
    fn in_flight(&self) -> usize {
        match self {
            RouteStream::Single(s) => s.in_flight(),
            RouteStream::Sharded(s) => s.in_flight(),
            RouteStream::Mutable(s) => s.in_flight(),
        }
    }

    /// The resolved pipeline depth.
    fn depth(&self) -> usize {
        match self {
            RouteStream::Single(s) => s.depth(),
            RouteStream::Sharded(s) => s.depth(),
            RouteStream::Mutable(s) => s.depth(),
        }
    }

    fn is_full(&self) -> bool {
        self.in_flight() == self.depth()
    }

    /// Whether a worker panic poisons the whole lane: true for any
    /// shard-fanned pipeline (sharded or mutable), where the panicking
    /// input's sibling shard outputs are unrecoverable.
    fn is_sharded(&self) -> bool {
        matches!(self, RouteStream::Sharded(_) | RouteStream::Mutable(_))
    }

    /// Push one owned input (fanned out by shared handle for sharded
    /// lanes). Pre-validated; may hand back the oldest completed result.
    fn push_owned(&mut self, input: DenseMatrix<T>) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        match self {
            RouteStream::Single(s) => s.push_owned_validated(input),
            // One owned request, fanned out to every shard pipeline: each
            // holds an `Arc` clone until its own launch joins.
            RouteStream::Sharded(s) => s.push_shared_validated(Arc::new(input)),
            RouteStream::Mutable(s) => s.push_shared_validated(Arc::new(input)),
        }
    }

    /// Join the oldest in-flight launch, if any.
    fn complete_next(&mut self) -> Option<(PooledMatrix<T>, ExecutionReport)> {
        match self {
            RouteStream::Single(s) => s.complete_next(),
            RouteStream::Sharded(s) => s.complete_next(),
            RouteStream::Mutable(s) => s.complete_next(),
        }
    }

    /// Finish the pipeline. A sharded engine contributes its merged
    /// (critical-path across shards) batch report, so the [`ServerReport`]
    /// aggregation is uniform across engine kinds.
    fn finish_report(self) -> (Vec<(PooledMatrix<T>, ExecutionReport)>, BatchReport) {
        match self {
            RouteStream::Single(s) => s.finish(),
            RouteStream::Sharded(s) => {
                let (rest, shard_report) = s.finish();
                (rest, shard_report.merged)
            }
            RouteStream::Mutable(s) => {
                let (rest, shard_report) = s.finish();
                (rest, shard_report.merged)
            }
        }
    }
}
