//! The serving control plane: admission policies, typed rejections, engine
//! lifecycle (active → draining → retired), and the priority/deadline
//! reorder buffer the controlled serving loop drains from.
//!
//! Everything here is scalar-independent bookkeeping — no kernels, no
//! buffers. The [`crate::serve::RequestQueue`] consults the shared control
//! state at admission time, [`crate::serve::ServerSession`] applies engine
//! lifecycle transitions between launches, and producers observe the plane
//! through a cloneable [`ControlHandle`].

use crate::runtime::pool::lock;
use crate::serve::queue::ServerRequest;
use jitspmm_sparse::{DeltaBatch, Scalar};
use std::any::Any;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a request was refused instead of executed. Carried by
/// [`crate::serve::SendError::Rejected`] (refused at the queue) and
/// [`crate::serve::ServerResponse::Rejected`] (refused by the router after
/// admission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The admission policy's queue-depth or in-flight cap was hit and the
    /// policy sheds instead of blocking.
    QueueFull,
    /// The target engine is draining/retired, or the whole server is
    /// draining.
    Draining,
    /// The request's deadline had already passed when the router was about
    /// to launch it.
    DeadlinePassed,
    /// The request named an engine id the server does not have.
    UnknownEngine,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "admission queue full"),
            RejectReason::Draining => write!(f, "engine or server draining"),
            RejectReason::DeadlinePassed => write!(f, "deadline passed before launch"),
            RejectReason::UnknownEngine => write!(f, "unknown engine id"),
        }
    }
}

/// Why [`crate::serve::RequestSender::send`] refused a request. `Closed`
/// means the serving loop has stopped receiving (shutdown); `Rejected`
/// means the control plane shed the request (overload, drain, bad id) while
/// the server keeps serving — producers typically stop on the former and
/// back off on the latter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The queue is closed: the serving loop ended or aborted.
    Closed,
    /// The control plane refused the request; the queue remains open.
    Rejected(RejectReason),
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Closed => write!(f, "request queue closed"),
            SendError::Rejected(reason) => write!(f, "request rejected: {reason}"),
        }
    }
}

impl std::error::Error for SendError {}

/// How a [`crate::serve::RequestQueue`] admits requests.
///
/// `queue_depth` bounds how many requests may sit in the queue; what happens
/// at the bound is the policy: block the producer (backpressure, the
/// pre-control-plane behavior) or shed with a typed
/// [`RejectReason::QueueFull`]. An optional `max_in_flight` cap additionally
/// bounds requests admitted but not yet responded to across the whole
/// server — queue plus reorder buffer plus engine pipelines — which is the
/// cap a latency SLO actually wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Maximum queued (admitted, not yet received) requests; at least 1.
    pub queue_depth: usize,
    /// Cap on admitted-but-unanswered requests across the server, enforced
    /// only on control-plane queues (the ones
    /// [`crate::serve::SpmmServer::serve_controlled`] creates). `None`
    /// disables the cap.
    pub max_in_flight: Option<usize>,
    /// At the bound: `true` sheds with [`RejectReason::QueueFull`], `false`
    /// blocks the producer until room frees up.
    pub shed_on_full: bool,
}

impl AdmissionPolicy {
    /// Block producers at the bound — classic bounded-queue backpressure.
    pub fn blocking(queue_depth: usize) -> AdmissionPolicy {
        AdmissionPolicy {
            queue_depth: queue_depth.max(1),
            max_in_flight: None,
            shed_on_full: false,
        }
    }

    /// Shed at the bound with [`RejectReason::QueueFull`] — load shedding,
    /// for producers that would rather drop than wait.
    pub fn shedding(queue_depth: usize) -> AdmissionPolicy {
        AdmissionPolicy { queue_depth: queue_depth.max(1), max_in_flight: None, shed_on_full: true }
    }

    /// Additionally cap admitted-but-unanswered requests at `cap` (clamped
    /// to at least 1).
    pub fn with_max_in_flight(mut self, cap: usize) -> AdmissionPolicy {
        self.max_in_flight = Some(cap.max(1));
        self
    }
}

/// Lifecycle of one logical engine id inside a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineStatus {
    /// Serving requests.
    Active,
    /// Retirement requested: in-flight requests complete, new sends are
    /// rejected with [`RejectReason::Draining`].
    Draining,
    /// Fully drained: the id's pipeline is closed and its slot payloads
    /// freed. The id is never reused.
    Retired,
}

/// The mutable control state, shared between the server, its queues, its
/// sessions and every [`ControlHandle`] clone.
struct ControlCore {
    /// Lifecycle per logical engine id (same id space as the server's).
    engines: Vec<EngineStatus>,
    /// Requests admitted by a control-plane queue and not yet responded to.
    outstanding: usize,
    /// Server-wide drain: every new send is rejected with
    /// [`RejectReason::Draining`] until [`ControlHandle::resume`].
    draining: bool,
    /// Open [`crate::serve::ServerSession`]s; a retire with no session to
    /// apply it completes immediately.
    sessions: usize,
    /// Bumped on every lifecycle change; sessions compare it to skip the
    /// per-engine scan on the hot path.
    epoch: u64,
    /// Sends refused at the queue (shed, drain, unknown id) since the last
    /// harvest; folded into [`crate::serve::ServerReport::rejected`].
    rejected_sends: usize,
    /// Producers currently parked in [`ControlShared::wait_cap_change`];
    /// completions notify `changed` whenever this is non-zero so a freed
    /// in-flight slot wakes a capped sender immediately.
    cap_waiters: usize,
    /// Cumulative count of sends that blocked on the in-flight cap —
    /// telemetry for overload tests and dashboards.
    cap_blocked: usize,
    /// Matrix revision per logical engine id: 0 at registration, bumped by
    /// the serving session when it applies a pending matrix update to a
    /// mutable engine (immutable engines stay at 0 forever).
    revisions: Vec<u64>,
    /// Matrix updates applied by sessions since the server was built.
    updates_applied: usize,
    /// Matrix updates that failed (wrong engine kind, wrong scalar type, or
    /// a rebuild error) since the server was built.
    updates_failed: usize,
}

/// A matrix update submitted through [`ControlHandle::apply_update`] and
/// not yet applied by a serving session. The delta is type-erased because
/// the control plane is scalar-independent; the session downcasts it back
/// to its server's `DeltaBatch<T>`.
pub(crate) struct PendingUpdate {
    /// The logical engine id the delta targets.
    pub(crate) engine: usize,
    /// A boxed [`DeltaBatch<T>`](jitspmm_sparse::DeltaBatch).
    pub(crate) delta: Box<dyn Any + Send>,
}

/// Condvar-paired control state; `changed` is notified on every lifecycle
/// transition and whenever `outstanding` returns to zero, which is what the
/// [`ControlHandle::drain`] barrier waits on.
pub(crate) struct ControlShared {
    state: Mutex<ControlCore>,
    changed: Condvar,
    /// Matrix updates awaiting a serving session, in submission order. A
    /// separate mutex from `state`: sessions drain it (and apply deltas,
    /// which can take a while) without holding up admission checks.
    updates: Mutex<Vec<PendingUpdate>>,
}

impl ControlShared {
    pub(crate) fn new() -> ControlShared {
        ControlShared {
            state: Mutex::new(ControlCore {
                engines: Vec::new(),
                outstanding: 0,
                draining: false,
                sessions: 0,
                epoch: 0,
                rejected_sends: 0,
                cap_waiters: 0,
                cap_blocked: 0,
                revisions: Vec::new(),
                updates_applied: 0,
                updates_failed: 0,
            }),
            changed: Condvar::new(),
            updates: Mutex::new(Vec::new()),
        }
    }

    /// Register the next engine id as [`EngineStatus::Active`]; returns the
    /// id, which matches the server's because registrations happen in the
    /// server's insertion order.
    pub(crate) fn register_engine(&self) -> usize {
        let mut state = lock(&self.state);
        state.engines.push(EngineStatus::Active);
        state.revisions.push(0);
        state.epoch += 1;
        let id = state.engines.len() - 1;
        drop(state);
        self.changed.notify_all();
        id
    }

    pub(crate) fn status(&self, id: usize) -> Option<EngineStatus> {
        lock(&self.state).engines.get(id).copied()
    }

    pub(crate) fn engine_count(&self) -> usize {
        lock(&self.state).engines.len()
    }

    pub(crate) fn epoch(&self) -> u64 {
        lock(&self.state).epoch
    }

    /// Request retirement of `id`. Active engines become `Draining` (or
    /// `Retired` immediately when no session is open to drain them); returns
    /// `false` for an unknown id.
    pub(crate) fn retire(&self, id: usize) -> bool {
        let mut state = lock(&self.state);
        let sessions = state.sessions;
        let Some(status) = state.engines.get_mut(id) else {
            return false;
        };
        if *status == EngineStatus::Active {
            *status = if sessions == 0 { EngineStatus::Retired } else { EngineStatus::Draining };
            state.epoch += 1;
            drop(state);
            self.changed.notify_all();
        }
        true
    }

    /// Mark a draining engine fully retired (its pipeline closed, payloads
    /// freed). Called by the session that performed the drain.
    pub(crate) fn mark_retired(&self, id: usize) {
        let mut state = lock(&self.state);
        if let Some(status) = state.engines.get_mut(id) {
            if *status != EngineStatus::Retired {
                *status = EngineStatus::Retired;
                state.epoch += 1;
                drop(state);
                self.changed.notify_all();
            }
        }
    }

    pub(crate) fn begin_drain(&self) {
        let mut state = lock(&self.state);
        state.draining = true;
        state.epoch += 1;
        drop(state);
        self.changed.notify_all();
    }

    pub(crate) fn resume(&self) {
        let mut state = lock(&self.state);
        state.draining = false;
        state.epoch += 1;
        drop(state);
        self.changed.notify_all();
    }

    pub(crate) fn is_draining(&self) -> bool {
        lock(&self.state).draining
    }

    pub(crate) fn session_opened(&self) {
        lock(&self.state).sessions += 1;
    }

    /// A session ended. With no session left, every `Draining` engine is
    /// promoted to `Retired`: its stream (and slot payloads) died with the
    /// session, so the drain is complete by construction.
    pub(crate) fn session_closed(&self) {
        let mut state = lock(&self.state);
        state.sessions = state.sessions.saturating_sub(1);
        if state.sessions == 0 {
            let mut changed = false;
            for status in &mut state.engines {
                if *status == EngineStatus::Draining {
                    *status = EngineStatus::Retired;
                    changed = true;
                }
            }
            if changed {
                state.epoch += 1;
            }
        }
        drop(state);
        self.changed.notify_all();
    }

    /// Admission check for a send targeting `engine`: refused while the
    /// server drains, for unknown ids, and for non-active engines.
    pub(crate) fn admission(&self, engine: usize) -> Result<(), RejectReason> {
        let state = lock(&self.state);
        if state.draining {
            return Err(RejectReason::Draining);
        }
        match state.engines.get(engine) {
            None => Err(RejectReason::UnknownEngine),
            Some(EngineStatus::Active) => Ok(()),
            Some(_) => Err(RejectReason::Draining),
        }
    }

    /// One request admitted (queued).
    pub(crate) fn admitted(&self) {
        lock(&self.state).outstanding += 1;
    }

    /// `n` admitted requests answered (or discarded by a queue close); wakes
    /// the drain barrier when the count reaches zero and any sender parked
    /// on the in-flight cap as soon as a slot frees up.
    pub(crate) fn completed(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut state = lock(&self.state);
        state.outstanding = state.outstanding.saturating_sub(n);
        let wake = state.outstanding == 0 || state.cap_waiters > 0;
        drop(state);
        if wake {
            self.changed.notify_all();
        }
    }

    pub(crate) fn outstanding(&self) -> usize {
        lock(&self.state).outstanding
    }

    /// Park until a completion may have brought `outstanding` under `cap`,
    /// or `closed` (the caller's queue-closed flag) is raised. The under-cap
    /// and closed checks share one lock acquisition with the wait — the same
    /// lock [`ControlShared::completed`] mutates under and
    /// [`ControlShared::wake_waiters`] passes through — so neither a slot
    /// freed nor a closure raised between the caller's last check and this
    /// wait can be missed. Single-shot on purpose: the caller's admission
    /// loop re-checks closure and re-evaluates the cap, so a spurious wake
    /// only costs one lap.
    pub(crate) fn wait_cap_change(&self, cap: usize, closed: &std::sync::atomic::AtomicBool) {
        let mut state = lock(&self.state);
        if closed.load(std::sync::atomic::Ordering::SeqCst) || state.outstanding < cap {
            return;
        }
        state.cap_waiters += 1;
        state.cap_blocked += 1;
        state = self.changed.wait(state).unwrap_or_else(|p| p.into_inner());
        state.cap_waiters -= 1;
    }

    /// Wake every parked cap waiter (and drain barrier); a closing queue
    /// calls this — after raising its closed flag — so capped senders
    /// observe the closure instead of parking forever. The empty critical
    /// section orders this notification after any waiter's check-then-park:
    /// a sender either parked before we acquired the lock (and is woken) or
    /// acquires it after us (and sees the flag).
    pub(crate) fn wake_waiters(&self) {
        drop(lock(&self.state));
        self.changed.notify_all();
    }

    /// Cumulative sends that blocked on the in-flight cap.
    pub(crate) fn cap_blocked_count(&self) -> usize {
        lock(&self.state).cap_blocked
    }

    /// A send was refused at the queue; harvested into the serve report.
    pub(crate) fn note_rejected_send(&self) {
        lock(&self.state).rejected_sends += 1;
    }

    /// Take (and reset) the refused-send count accumulated since the last
    /// call.
    pub(crate) fn take_rejected_sends(&self) -> usize {
        std::mem::take(&mut lock(&self.state).rejected_sends)
    }

    /// Block until no admitted request is unanswered. With a timeout,
    /// returns whether quiescence was reached.
    pub(crate) fn wait_quiescent(&self, timeout: Option<Duration>) -> bool {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = lock(&self.state);
        loop {
            if state.outstanding == 0 {
                return true;
            }
            state = match deadline {
                None => self.changed.wait(state).unwrap_or_else(|p| p.into_inner()),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return false;
                    }
                    self.changed
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|p| p.into_inner())
                        .0
                }
            };
        }
    }

    /// Queue a matrix update for engine `engine`; `false` for an unknown
    /// id (the delta is dropped). The update is applied by the next serving
    /// session pass — between launches, never inside one.
    pub(crate) fn submit_update(&self, engine: usize, delta: Box<dyn Any + Send>) -> bool {
        if lock(&self.state).engines.get(engine).is_none() {
            return false;
        }
        lock(&self.updates).push(PendingUpdate { engine, delta });
        // Nudge any session parked on its receive tick indirectly: the
        // session checks for pending updates at the top of every loop
        // iteration, so a bounded tick suffices; waking the condvar here
        // covers drain barriers that double as update flushes.
        self.changed.notify_all();
        true
    }

    /// Whether any update awaits a session — the cheap pre-check sessions
    /// run every loop iteration.
    pub(crate) fn has_updates(&self) -> bool {
        !lock(&self.updates).is_empty()
    }

    /// Take every queued update, in submission order.
    pub(crate) fn take_updates(&self) -> Vec<PendingUpdate> {
        std::mem::take(&mut lock(&self.updates))
    }

    /// Put an update back at the front of the queue (the target engine's
    /// generation lock was contended; retry next pass without reordering
    /// against later updates to the same engine).
    pub(crate) fn requeue_update(&self, update: PendingUpdate) {
        lock(&self.updates).insert(0, update);
    }

    /// A session applied an update: record the engine's new revision and
    /// wake [`ControlShared::wait_revision`] waiters.
    pub(crate) fn note_update_applied(&self, engine: usize, revision: u64) {
        let mut state = lock(&self.state);
        if let Some(slot) = state.revisions.get_mut(engine) {
            *slot = revision;
        }
        state.updates_applied += 1;
        drop(state);
        self.changed.notify_all();
    }

    /// A session failed to apply an update (wrong engine kind or scalar
    /// type, or the rebuild errored); the delta is dropped.
    pub(crate) fn note_update_failed(&self) {
        lock(&self.state).updates_failed += 1;
        self.changed.notify_all();
    }

    /// The recorded matrix revision of engine `id` (`None` for unknown).
    pub(crate) fn revision(&self, id: usize) -> Option<u64> {
        lock(&self.state).revisions.get(id).copied()
    }

    /// Applied/failed update counts since the server was built.
    pub(crate) fn update_counts(&self) -> (usize, usize) {
        let state = lock(&self.state);
        (state.updates_applied, state.updates_failed)
    }

    /// Block until engine `engine`'s recorded revision reaches `at_least`
    /// (or the timeout expires); returns whether it did. Returns `false`
    /// immediately for unknown ids.
    pub(crate) fn wait_revision(
        &self,
        engine: usize,
        at_least: u64,
        timeout: Option<Duration>,
    ) -> bool {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = lock(&self.state);
        loop {
            match state.revisions.get(engine) {
                None => return false,
                Some(&revision) if revision >= at_least => return true,
                Some(_) => {}
            }
            state = match deadline {
                None => self.changed.wait(state).unwrap_or_else(|p| p.into_inner()),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return false;
                    }
                    self.changed
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|p| p.into_inner())
                        .0
                }
            };
        }
    }
}

/// A cloneable, thread-safe handle onto a server's control plane, obtained
/// from [`crate::serve::SpmmServer::control`]. Producers and operators use
/// it to retire engines, drain the server to quiescence, and observe engine
/// lifecycle — all without borrowing the server itself.
#[derive(Clone)]
pub struct ControlHandle {
    shared: std::sync::Arc<ControlShared>,
}

impl ControlHandle {
    pub(crate) fn new(shared: std::sync::Arc<ControlShared>) -> ControlHandle {
        ControlHandle { shared }
    }

    /// Request retirement of engine `id` (see
    /// [`crate::serve::SpmmServer::retire_engine`]); `false` for an unknown
    /// id.
    pub fn retire_engine(&self, id: usize) -> bool {
        self.shared.retire(id)
    }

    /// Start a server-wide drain: every subsequent send is rejected with
    /// [`RejectReason::Draining`] until [`ControlHandle::resume`]. Does not
    /// wait; pair with [`ControlHandle::wait_quiescent`] or call
    /// [`ControlHandle::drain`].
    pub fn begin_drain(&self) {
        self.shared.begin_drain();
    }

    /// Drain barrier: stop admitting ([`ControlHandle::begin_drain`]) and
    /// block until every already-admitted request has been answered.
    pub fn drain(&self) {
        self.shared.begin_drain();
        self.shared.wait_quiescent(None);
    }

    /// Lift a server-wide drain so new sends are admitted again.
    pub fn resume(&self) {
        self.shared.resume();
    }

    /// Block until every admitted request has been answered.
    pub fn wait_quiescent(&self) {
        self.shared.wait_quiescent(None);
    }

    /// [`ControlHandle::wait_quiescent`] with a timeout; returns whether
    /// quiescence was reached.
    pub fn wait_quiescent_timeout(&self, timeout: Duration) -> bool {
        self.shared.wait_quiescent(Some(timeout))
    }

    /// Admitted requests not yet answered.
    pub fn outstanding(&self) -> usize {
        self.shared.outstanding()
    }

    /// Lifecycle of engine `id`, or `None` for an unknown id.
    pub fn engine_status(&self, id: usize) -> Option<EngineStatus> {
        self.shared.status(id)
    }

    /// Whether a server-wide drain is in effect.
    pub fn is_draining(&self) -> bool {
        self.shared.is_draining()
    }

    /// Cumulative number of sends that blocked on the admission policy's
    /// in-flight cap ([`AdmissionPolicy::with_max_in_flight`]) before being
    /// admitted. Overload telemetry: a steadily climbing count means
    /// producers outpace the cap.
    pub fn cap_blocked(&self) -> usize {
        self.shared.cap_blocked_count()
    }

    /// Queue an edge-delta update for the **mutable** engine `engine` (one
    /// registered via [`crate::serve::SpmmServer::add_mutable`]) on a live
    /// server. Returns `false` for an unknown engine id; otherwise the next
    /// serving-session pass applies it **between launches**: the engine's
    /// in-flight lane drains on the old kernels, the touched shards rebuild
    /// ([`crate::update::MutableSpmm::apply`]), and requests admitted
    /// afterwards execute against the merged matrix — bit-identically to a
    /// from-scratch compile. Updates targeting a non-mutable engine, or
    /// carrying a different scalar type than the server's, are counted as
    /// failed and dropped.
    ///
    /// Asynchronous by design: pair with [`ControlHandle::wait_revision`]
    /// (or poll [`ControlHandle::engine_revision`]) to observe the swap.
    pub fn apply_update<T: Scalar>(&self, engine: usize, delta: DeltaBatch<T>) -> bool {
        self.shared.submit_update(engine, Box::new(delta))
    }

    /// The matrix revision of engine `id` as recorded by applied updates
    /// (0 until the first update lands; `None` for unknown ids).
    pub fn engine_revision(&self, id: usize) -> Option<u64> {
        self.shared.revision(id)
    }

    /// Block until engine `engine`'s revision reaches `at_least` or the
    /// timeout expires; returns whether it did. The counterpart to
    /// [`ControlHandle::apply_update`]'s asynchrony: submit, then wait for
    /// the serving session to report the swap.
    pub fn wait_revision(&self, engine: usize, at_least: u64, timeout: Duration) -> bool {
        self.shared.wait_revision(engine, at_least, Some(timeout))
    }

    /// Matrix updates applied and failed since the server was built.
    pub fn update_counts(&self) -> (usize, usize) {
        self.shared.update_counts()
    }
}

impl std::fmt::Debug for ControlHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlHandle")
            .field("engines", &self.shared.engine_count())
            .field("outstanding", &self.shared.outstanding())
            .field("draining", &self.shared.is_draining())
            .finish()
    }
}

/// An entry in the reorder buffer: the request plus its ordering keys and an
/// arrival sequence number for the FIFO tie-break.
struct Entry<T: Scalar> {
    priority: u8,
    deadline: Option<Instant>,
    arrival: u64,
    request: ServerRequest<T>,
}

impl<T: Scalar> Entry<T> {
    /// Max-heap key: higher priority first, then earlier deadline (a
    /// deadline beats no deadline), then arrival order.
    fn key_cmp(&self, other: &Entry<T>) -> std::cmp::Ordering {
        self.priority
            .cmp(&other.priority)
            .then_with(|| match (self.deadline, other.deadline) {
                (Some(a), Some(b)) => b.cmp(&a),
                (Some(_), None) => std::cmp::Ordering::Greater,
                (None, Some(_)) => std::cmp::Ordering::Less,
                (None, None) => std::cmp::Ordering::Equal,
            })
            .then_with(|| other.arrival.cmp(&self.arrival))
    }
}

impl<T: Scalar> PartialEq for Entry<T> {
    fn eq(&self, other: &Entry<T>) -> bool {
        self.key_cmp(other) == std::cmp::Ordering::Equal
    }
}

impl<T: Scalar> Eq for Entry<T> {}

impl<T: Scalar> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Entry<T>) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Scalar> Ord for Entry<T> {
    fn cmp(&self, other: &Entry<T>) -> std::cmp::Ordering {
        self.key_cmp(other)
    }
}

/// The priority/deadline reorder buffer between [`crate::serve::RequestQueue`]
/// arrival order and per-engine pipeline pushes: a binary max-heap keyed by
/// priority (higher first), then deadline (earlier first, and any deadline
/// before none), then arrival order — so equal-priority traffic without
/// deadlines still serves FIFO, deterministically.
///
/// [`crate::serve::SpmmServer::serve_controlled`] drains every queued
/// arrival into this buffer before popping the next request to launch;
/// construct one directly only to test or replicate that ordering.
pub struct ReorderBuffer<T: Scalar> {
    heap: BinaryHeap<Entry<T>>,
    arrivals: u64,
}

impl<T: Scalar> Default for ReorderBuffer<T> {
    fn default() -> ReorderBuffer<T> {
        ReorderBuffer::new()
    }
}

impl<T: Scalar> ReorderBuffer<T> {
    /// An empty buffer.
    pub fn new() -> ReorderBuffer<T> {
        ReorderBuffer { heap: BinaryHeap::new(), arrivals: 0 }
    }

    /// Buffer one arrival, capturing its ordering keys.
    pub fn push(&mut self, request: ServerRequest<T>) {
        let arrival = self.arrivals;
        self.arrivals += 1;
        self.heap.push(Entry {
            priority: request.priority,
            deadline: request.expires_at(),
            arrival,
            request,
        });
    }

    /// Remove and return the most urgent buffered request.
    pub fn pop(&mut self) -> Option<ServerRequest<T>> {
        self.heap.pop().map(|entry| entry.request)
    }

    /// Number of buffered requests.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T: Scalar> std::fmt::Debug for ReorderBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReorderBuffer").field("buffered", &self.heap.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitspmm_sparse::DenseMatrix;

    fn request(engine: usize) -> ServerRequest<f32> {
        ServerRequest::new(engine, DenseMatrix::random(2, 1, engine as u64))
    }

    #[test]
    fn reorder_buffer_pops_priority_then_deadline_then_fifo() {
        let mut buffer = ReorderBuffer::new();
        // Arrival order deliberately scrambled relative to urgency.
        buffer.push(request(0).with_priority(1)); // mid priority, FIFO first
        buffer.push(request(1)); // lowest priority (0)
        buffer.push(request(2).with_priority(1).with_deadline(Duration::from_secs(60)));
        buffer.push(request(3).with_priority(1).with_deadline(Duration::from_secs(5)));
        buffer.push(request(4).with_priority(7)); // highest priority
        buffer.push(request(5).with_priority(1)); // mid priority, FIFO second
        let order: Vec<usize> = std::iter::from_fn(|| buffer.pop()).map(|r| r.engine).collect();
        // Priority 7 first; within priority 1 the tighter deadline wins, any
        // deadline beats none, and deadline-free ties break by arrival.
        assert_eq!(order, vec![4, 3, 2, 0, 5, 1]);
        assert!(buffer.is_empty());
    }

    #[test]
    fn reorder_buffer_is_fifo_for_uniform_requests() {
        let mut buffer = ReorderBuffer::new();
        for engine in 0..16 {
            buffer.push(request(engine));
        }
        let order: Vec<usize> = std::iter::from_fn(|| buffer.pop()).map(|r| r.engine).collect();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn admission_policy_clamps_and_composes() {
        assert_eq!(AdmissionPolicy::blocking(0).queue_depth, 1);
        assert!(AdmissionPolicy::shedding(4).shed_on_full);
        assert!(!AdmissionPolicy::blocking(4).shed_on_full);
        assert_eq!(AdmissionPolicy::shedding(4).with_max_in_flight(0).max_in_flight, Some(1));
    }

    #[test]
    fn control_lifecycle_transitions() {
        let ctrl = ControlShared::new();
        assert_eq!(ctrl.register_engine(), 0);
        assert_eq!(ctrl.register_engine(), 1);
        assert_eq!(ctrl.status(0), Some(EngineStatus::Active));
        // No session open: retirement completes immediately.
        assert!(ctrl.retire(0));
        assert_eq!(ctrl.status(0), Some(EngineStatus::Retired));
        assert!(!ctrl.retire(9), "unknown ids are reported, not invented");
        // With a session open, retirement drains first.
        ctrl.session_opened();
        assert!(ctrl.retire(1));
        assert_eq!(ctrl.status(1), Some(EngineStatus::Draining));
        assert_eq!(ctrl.admission(1), Err(RejectReason::Draining));
        assert_eq!(ctrl.admission(7), Err(RejectReason::UnknownEngine));
        // The session closing finishes the drain.
        ctrl.session_closed();
        assert_eq!(ctrl.status(1), Some(EngineStatus::Retired));
    }

    #[test]
    fn drain_barrier_tracks_outstanding_requests() {
        let ctrl = ControlShared::new();
        ctrl.register_engine();
        ctrl.admitted();
        ctrl.admitted();
        assert!(!ctrl.wait_quiescent(Some(Duration::from_millis(5))));
        ctrl.completed(1);
        ctrl.completed(1);
        assert!(ctrl.wait_quiescent(Some(Duration::from_millis(5))));
        ctrl.begin_drain();
        assert_eq!(ctrl.admission(0), Err(RejectReason::Draining));
        ctrl.resume();
        assert_eq!(ctrl.admission(0), Ok(()));
    }
}
