//! Unit tests for the serving router (split out of `server.rs` to keep
//! the layer files readable).

use super::server::*;
use crate::engine::JitSpmm;
use crate::engine::JitSpmmBuilder;
use crate::error::JitSpmmError;
use crate::runtime::WorkerPool;
use crate::schedule::Strategy;
use crate::serve::queue::ServerRequest;
use jitspmm_asm::CpuFeatures;
use jitspmm_sparse::DenseMatrix;
use jitspmm_sparse::{generate, CsrMatrix};

fn host_ok() -> bool {
    let f = CpuFeatures::detect();
    f.avx && f.has_fma()
}

fn matrices() -> Vec<CsrMatrix<f32>> {
    vec![
        generate::uniform::<f32>(120, 100, 1_000, 1),
        generate::rmat::<f32>(7, 1_500, generate::RmatConfig::GRAPH500, 2),
        generate::uniform::<f32>(60, 60, 400, 3),
    ]
}

/// Engines over `matrices()` with heterogeneous d and strategies, all on
/// one pool.
fn build_engines<'m>(pool: &WorkerPool, matrices: &'m [CsrMatrix<f32>]) -> Vec<JitSpmm<'m, f32>> {
    matrices
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let strategy = if i % 2 == 0 {
                Strategy::RowSplitDynamic { batch: 16 }
            } else {
                Strategy::RowSplitStatic
            };
            JitSpmmBuilder::new()
                .pool(pool.clone())
                .threads(1)
                .strategy(strategy)
                .build(m, 4 + 4 * i)
                .unwrap()
        })
        .collect()
}

fn input_for(m: &CsrMatrix<f32>, d: usize, seed: u64) -> DenseMatrix<f32> {
    DenseMatrix::random(m.ncols(), d, seed)
}

#[test]
fn server_requires_a_shared_pool() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let ms = matrices();
    let pool_a = WorkerPool::new(1);
    let pool_b = WorkerPool::new(1);
    let engines = vec![
        JitSpmmBuilder::new().pool(pool_a.clone()).build(&ms[0], 4).unwrap(),
        JitSpmmBuilder::new().pool(pool_b.clone()).build(&ms[1], 4).unwrap(),
    ];
    assert!(matches!(SpmmServer::new(engines).unwrap_err(), JitSpmmError::InvalidConfig(_)));
    assert!(matches!(
        SpmmServer::<f32>::new(Vec::new()).unwrap_err(),
        JitSpmmError::InvalidConfig(_)
    ));
    // Clones of one pool are the same pool.
    let engines = vec![
        JitSpmmBuilder::new().pool(pool_a.clone()).build(&ms[0], 4).unwrap(),
        JitSpmmBuilder::new().pool(pool_a.clone()).build(&ms[1], 4).unwrap(),
    ];
    assert!(SpmmServer::new(engines).is_ok());
}

#[test]
fn mixed_stream_matches_per_engine_sequential_execution() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let ms = matrices();
    let pool = WorkerPool::new(2);
    let engines = build_engines(&pool, &ms);
    // Reference: each request through its engine's blocking execute.
    let requests: Vec<ServerRequest<f32>> = (0..12)
        .map(|i| {
            let engine = i % engines.len();
            ServerRequest::new(engine, input_for(&ms[engine], engines[engine].d(), 700 + i as u64))
        })
        .collect();
    let expected: Vec<DenseMatrix<f32>> = requests
        .iter()
        .map(|r| engines[r.engine].execute(&r.input).unwrap().0.into_dense())
        .collect();
    let server = SpmmServer::new(engines).unwrap();
    let (responses, report) = server.serve_batch(0, requests).unwrap();
    assert_eq!(responses.len(), expected.len());
    assert_eq!(report.requests, expected.len());
    assert_eq!(report.per_engine.len(), 3);
    for (i, response) in responses.iter().enumerate() {
        assert_eq!(response.request(), i, "responses are sorted by global order");
        assert_eq!(response.engine(), i % 3);
        assert_eq!(
            **response.output(),
            expected[i],
            "request {i} must be bit-identical to sequential execution"
        );
    }
    // Per-engine order: the k-th response of engine e has index k.
    for e in 0..3 {
        let indices: Vec<usize> =
            responses.iter().filter(|r| r.engine() == e).map(|r| r.index()).collect();
        assert_eq!(indices, (0..indices.len()).collect::<Vec<_>>());
        assert_eq!(report.per_engine[e].inputs, indices.len());
    }
}

#[test]
fn serve_stream_routes_cross_thread_producers() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let ms = matrices();
    let pool = WorkerPool::new(2);
    let engines = build_engines(&pool, &ms);
    let dims: Vec<usize> = engines.iter().map(|e| e.d()).collect();
    let expected: Vec<DenseMatrix<f32>> = (0..10)
        .map(|i| {
            let e = i % engines.len();
            engines[e].execute(&input_for(&ms[e], dims[e], 800 + i as u64)).unwrap().0.into_dense()
        })
        .collect();
    let server = SpmmServer::new(engines).unwrap();
    let ms_ref = &ms;
    let dims_ref = &dims;
    let (responses, report, produced) = server
        .serve_stream(0, 3, move |sender| {
            let mut sent = 0usize;
            for i in 0..10usize {
                let e = i % dims_ref.len();
                if sender.send(e, input_for(&ms_ref[e], dims_ref[e], 800 + i as u64)).is_ok() {
                    sent += 1;
                }
            }
            sent
        })
        .unwrap();
    assert_eq!(produced, 10);
    assert_eq!(report.requests, 10);
    assert_eq!(responses.len(), 10);
    for (i, response) in responses.iter().enumerate() {
        assert_eq!(**response.output(), expected[i], "streamed request {i} diverged");
    }
    assert!(report.elapsed >= report.per_engine.iter().map(|r| r.elapsed).max().unwrap());
}

#[test]
fn session_validates_before_touching_engine_state() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let ms = matrices();
    let pool = WorkerPool::new(2);
    let engines = build_engines(&pool, &ms);
    let d0 = engines[0].d();
    let server = SpmmServer::new(engines).unwrap();
    server.pool().clone().scope(|scope| {
        let mut session = server.session(scope, 2).unwrap();
        // Unknown engine id: refused, nothing submitted.
        assert!(matches!(
            session.submit(7, input_for(&ms[0], d0, 1)).unwrap_err(),
            JitSpmmError::UnknownEngine { requested: 7, engines: 3 }
        ));
        // Wrong shape for engine 0: refused, session unharmed.
        assert!(matches!(
            session.submit(0, DenseMatrix::<f32>::zeros(5, 5)).unwrap_err(),
            JitSpmmError::ShapeMismatch(_)
        ));
        assert_eq!(session.submitted(), 0);
        // The session still serves fine afterwards.
        let good = input_for(&ms[0], d0, 2);
        let expected = server.single(0).unwrap().matrix().spmm_reference(&good);
        session.submit(0, good).unwrap();
        let (rest, report) = session.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(report.requests, 1);
        assert!(rest[0].output().approx_eq(&expected, 1e-4));
    });
}

#[test]
fn serve_batch_rejects_malformed_requests_up_front() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let ms = matrices();
    let pool = WorkerPool::new(2);
    let engines = build_engines(&pool, &ms);
    let d0 = engines[0].d();
    let server = SpmmServer::new(engines).unwrap();
    // A wrong-shape request mid-batch fails the whole call, naming the
    // request, before anything launches.
    let requests = vec![
        ServerRequest::new(0, input_for(&ms[0], d0, 1)),
        ServerRequest::new(0, DenseMatrix::<f32>::zeros(3, 3)),
    ];
    match server.serve_batch(0, requests).unwrap_err() {
        JitSpmmError::ShapeMismatch(msg) => {
            assert!(msg.contains("request 1"), "should name the request: {msg}")
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
    // An unknown engine id likewise.
    let requests = vec![ServerRequest::new(9, input_for(&ms[0], d0, 1))];
    assert!(matches!(
        server.serve_batch(0, requests).unwrap_err(),
        JitSpmmError::UnknownEngine { requested: 9, engines: 3 }
    ));
    // And the server still works.
    let good = vec![ServerRequest::new(0, input_for(&ms[0], d0, 2))];
    let (responses, _) = server.serve_batch(0, good).unwrap();
    assert_eq!(responses.len(), 1);
}

#[test]
fn serve_stream_error_unblocks_producers() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let ms = matrices();
    let pool = WorkerPool::new(2);
    let engines = build_engines(&pool, &ms);
    let d0 = engines[0].d();
    let server = SpmmServer::new(engines).unwrap();
    let ms_ref = &ms;
    // The second request is malformed; the producer keeps trying to send
    // on a tiny queue and must terminate (sends returning false) instead
    // of deadlocking against an aborted serving loop.
    let result = server.serve_stream(0, 1, move |sender| {
        let mut refused = 0usize;
        for i in 0..50usize {
            let input = if i == 1 {
                DenseMatrix::<f32>::zeros(2, 2)
            } else {
                input_for(&ms_ref[0], d0, i as u64)
            };
            if sender.send(0, input).is_err() {
                refused += 1;
            }
        }
        refused
    });
    assert!(matches!(result.unwrap_err(), JitSpmmError::ShapeMismatch(_)));
    // The engines remain usable.
    let x = input_for(&ms[0], d0, 99);
    let (y, _) = server.single(0).unwrap().execute(&x).unwrap();
    assert!(y.approx_eq(&ms[0].spmm_reference(&x), 1e-4));
}

#[test]
fn single_engine_server_is_just_a_batch() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let m = generate::uniform::<f32>(80, 80, 600, 9);
    let pool = WorkerPool::new(2);
    let engine = JitSpmmBuilder::new().pool(pool.clone()).threads(2).build(&m, 8).unwrap();
    let inputs: Vec<DenseMatrix<f32>> =
        (0..5).map(|i| DenseMatrix::random(80, 8, 40 + i)).collect();
    let expected: Vec<DenseMatrix<f32>> =
        inputs.iter().map(|x| engine.execute(x).unwrap().0.into_dense()).collect();
    let server = SpmmServer::new(vec![engine]).unwrap();
    let requests: Vec<ServerRequest<f32>> =
        inputs.into_iter().map(|input| ServerRequest::new(0, input)).collect();
    let (responses, report) = server.serve_batch(2, requests).unwrap();
    assert_eq!(report.requests, 5);
    assert!(report.throughput() >= 0.0);
    for (response, expected) in responses.iter().zip(&expected) {
        assert_eq!(**response.output(), *expected);
    }
}

#[test]
fn sharded_engine_serves_behind_one_logical_id() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    use crate::shard::{plan_shards, ShardedSpmm};
    let small = generate::uniform::<f32>(90, 70, 700, 21);
    let big = generate::rmat::<f32>(9, 8_000, generate::RmatConfig::GRAPH500, 22);
    let pool = WorkerPool::new(2);
    let single = JitSpmmBuilder::new().pool(pool.clone()).threads(1).build(&small, 4).unwrap();
    let plan = plan_shards(&big, 3, 1).unwrap();
    let sharded = ShardedSpmm::compile(&plan, 8, pool.clone()).unwrap();
    // References before the server takes ownership.
    let single_inputs: Vec<DenseMatrix<f32>> =
        (0..4).map(|i| input_for(&small, 4, 600 + i)).collect();
    let sharded_inputs: Vec<DenseMatrix<f32>> =
        (0..4).map(|i| input_for(&big, 8, 700 + i)).collect();
    let expected_single: Vec<DenseMatrix<f32>> =
        single_inputs.iter().map(|x| single.execute(x).unwrap().0.into_dense()).collect();
    let expected_sharded: Vec<DenseMatrix<f32>> = sharded_inputs
        .iter()
        .map(|x| pool.scope(|scope| sharded.execute(scope, x)).unwrap().0.into_dense())
        .collect();

    let server = SpmmServer::new(vec![single]).unwrap();
    let sharded_id = server.add_sharded(sharded).unwrap();
    assert_eq!(sharded_id, 1);
    assert_eq!(server.engine_count(), 2);
    // A sharded engine on a foreign pool is refused.
    let foreign_plan = plan_shards(&big, 2, 1).unwrap();
    let foreign = ShardedSpmm::compile(&foreign_plan, 8, WorkerPool::new(1)).unwrap();
    assert!(matches!(server.add_sharded(foreign).unwrap_err(), JitSpmmError::InvalidConfig(_)));

    // An interleaved mixed stream across both ids.
    let requests: Vec<ServerRequest<f32>> = (0..8)
        .map(|i| {
            let engine = i % 2;
            let input = if engine == 0 {
                single_inputs[i / 2].clone()
            } else {
                sharded_inputs[i / 2].clone()
            };
            ServerRequest::new(engine, input)
        })
        .collect();
    let (responses, report) = server.serve_batch(0, requests).unwrap();
    assert_eq!(responses.len(), 8);
    assert_eq!(report.per_engine.len(), 2);
    assert_eq!(report.per_engine[0].inputs, 4);
    assert_eq!(report.per_engine[1].inputs, 4);
    for response in &responses {
        let expected = if response.engine() == 0 {
            &expected_single[response.index()]
        } else {
            &expected_sharded[response.index()]
        };
        assert_eq!(
            **response.output(),
            *expected,
            "engine {} request {} must be bit-identical to direct execution",
            response.engine(),
            response.index()
        );
    }
    // Validation covers the sharded id space: bad shapes and unknown ids
    // are refused before any launch.
    let bad = vec![ServerRequest::new(sharded_id, DenseMatrix::zeros(3, 3))];
    assert!(matches!(server.serve_batch(0, bad).unwrap_err(), JitSpmmError::ShapeMismatch(_)));
    let unknown = vec![ServerRequest::new(2, input_for(&big, 8, 1))];
    assert!(matches!(
        server.serve_batch(0, unknown).unwrap_err(),
        JitSpmmError::UnknownEngine { requested: 2, engines: 2 }
    ));
}

#[test]
fn serve_stream_with_hands_responses_to_the_consumer() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    let ms = matrices();
    let pool = WorkerPool::new(2);
    let engines = build_engines(&pool, &ms);
    let dims: Vec<usize> = engines.iter().map(|e| e.d()).collect();
    let expected: Vec<DenseMatrix<f32>> = (0..9)
        .map(|i| {
            let e = i % engines.len();
            engines[e].execute(&input_for(&ms[e], dims[e], 900 + i as u64)).unwrap().0.into_dense()
        })
        .collect();
    let server = SpmmServer::new(engines).unwrap();
    let (ms_ref, dims_ref) = (&ms, &dims);
    let mut streamed = Vec::new();
    let (report, produced) = server
        .serve_stream_with(
            0,
            3,
            move |sender| {
                let mut sent = 0usize;
                for i in 0..9usize {
                    let e = i % dims_ref.len();
                    if sender.send(e, input_for(&ms_ref[e], dims_ref[e], 900 + i as u64)).is_ok() {
                        sent += 1;
                    }
                }
                sent
            },
            |response| streamed.push(response),
        )
        .unwrap();
    assert_eq!(produced, 9);
    assert_eq!(report.requests, 9);
    assert_eq!(streamed.len(), 9);
    // Responses arrive in per-engine submission order; re-sequence by the
    // global submission number to compare against the references.
    streamed.sort_by_key(|r| r.request());
    for (i, response) in streamed.iter().enumerate() {
        assert_eq!(response.request(), i);
        assert_eq!(
            **response.output(),
            expected[i],
            "streamed response {i} must be bit-identical to sequential execution"
        );
    }
}

#[test]
fn panicking_consumer_still_closes_the_queue() {
    if !host_ok() {
        eprintln!("skipping: host lacks AVX/FMA");
        return;
    }
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let ms = matrices();
    let pool = WorkerPool::new(2);
    let engines = build_engines(&pool, &ms);
    let d0 = engines[0].d();
    let server = SpmmServer::new(engines).unwrap();
    let ms_ref = &ms;
    // The consumer panics on the first response while the producer still
    // has dozens of sends to push through a capacity-1 queue: the panic
    // must close the queue (producer sends return false instead of
    // blocking forever) and then propagate. The test completing at all is
    // the no-deadlock assertion.
    let result = catch_unwind(AssertUnwindSafe(|| {
        server.serve_stream_with(
            0,
            1,
            move |sender| {
                let mut refused = 0usize;
                for i in 0..50usize {
                    if sender.send(0, input_for(&ms_ref[0], d0, i as u64)).is_err() {
                        refused += 1;
                    }
                }
                refused
            },
            |_response| panic!("consumer exploded"),
        )
    }));
    let payload = result.unwrap_err();
    let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
    assert_eq!(message, "consumer exploded");
    // The server (and its engines) remain fully usable afterwards.
    let x = input_for(&ms[0], d0, 123);
    let (y, _) = server.single(0).unwrap().execute(&x).unwrap();
    assert!(y.approx_eq(&ms[0].spmm_reference(&x), 1e-4));
}
